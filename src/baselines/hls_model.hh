/**
 * @file
 * Commercial-HLS execution model (the Fig. 9 comparator, standing in
 * for LegUp / Intel HLS). HLS lowers loops to statically scheduled
 * circuits coordinated by a central FSM (§2.1): innermost loops are
 * modulo-scheduled with an initiation interval bounded by memory
 * ports and loop-carried recurrences, nested loops execute serially
 * (the paper: "HLS serialize the nested loop executions"), and every
 * region transition pays FSM overhead. Optionally models the
 * stream-buffer optimization HLS applies to streaming kernels (FFT,
 * DENSE), which the paper could not disable.
 */
#pragma once

#include <set>
#include <string>

#include "ir/module.hh"

namespace muir::baselines
{

/** Configuration of the modeled HLS tool. */
struct HlsOptions
{
    /** Simultaneous memory ports of the generated datapath. */
    unsigned memPorts = 2;
    /** Statically scheduled on-chip RAM access latency. */
    unsigned memLatency = 3;
    /** With stream buffers the tool hides the RAM latency. */
    bool streamBuffers = false;
    /** FSM state-transition overhead entering/leaving each region. */
    unsigned fsmOverhead = 3;
    /** Clock penalty relative to a dataflow design (the paper reports
     *  μIR clocks ~20% above HLS for the same program). */
    double clockPenalty = 1.2;
};

/** Result of statically scheduling one kernel. */
struct HlsResult
{
    uint64_t cycles = 0;
    /** Achieved clock in MHz (derived from the μIR clock / penalty). */
    double mhz = 0;
    /** cycles / mhz, microseconds. */
    double timeUs() const { return mhz > 0 ? cycles / mhz : 0; }
};

/**
 * Statically schedule kernel and predict its HLS execution time.
 * Dynamic trip counts are measured by interpreting the module (the
 * same inputs must be pre-bound by the caller via the returned
 * interpreter — see scheduleHls overload below).
 *
 * @param uir_mhz The μIR design's achieved clock (from the cost
 *        model); the HLS clock is uir_mhz / clockPenalty.
 */
HlsResult scheduleHls(const ir::Module &module, const std::string &kernel,
                      const std::map<std::string, std::vector<float>>
                          &float_inputs,
                      const std::map<std::string, std::vector<int32_t>>
                          &int_inputs,
                      double uir_mhz, const HlsOptions &opts = {});

} // namespace muir::baselines
