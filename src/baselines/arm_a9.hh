/**
 * @file
 * ARM Cortex-A9-class CPU model (the Fig. 18 comparator): dual-issue
 * out-of-order core at 1 GHz, driven by the interpreter's dynamic
 * instruction trace. Models issue-width limits, a bounded scheduling
 * window, operand dependences, unit latencies, and an L1 data cache.
 * Tensor intrinsics in the trace are expanded into their scalar
 * equivalents (the CPU has no tensor function unit — §6.6: "CPU
 * pipeline limits compute density").
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.hh"

namespace muir::baselines
{

/** CPU configuration (defaults model a 1 GHz dual-issue A9). */
struct ArmOptions
{
    unsigned issueWidth = 2;
    unsigned windowSize = 40;
    double ghz = 1.0;
    /** L1 D-cache geometry. */
    unsigned cacheKb = 32;
    unsigned cacheWays = 4;
    unsigned lineBytes = 32;
    unsigned hitLatency = 4;
    unsigned missLatency = 60;
    /** Front-end cost of a taken branch. */
    unsigned branchCost = 1;
};

/** Result of one modeled CPU run. */
struct ArmResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    double ghz = 1.0;
    double ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0;
    }
    double timeUs() const { return cycles / (ghz * 1000.0); }
};

/**
 * Execute the kernel on the modeled CPU: interprets the module with
 * the given inputs and schedules the dynamic trace.
 */
ArmResult runOnArm(const ir::Module &module, const std::string &kernel,
                   const std::map<std::string, std::vector<float>>
                       &float_inputs,
                   const std::map<std::string, std::vector<int32_t>>
                       &int_inputs,
                   const ArmOptions &opts = {});

} // namespace muir::baselines
