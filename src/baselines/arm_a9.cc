#include "baselines/arm_a9.hh"

#include <algorithm>

#include "ir/interp.hh"
#include "support/logging.hh"

namespace muir::baselines
{

using namespace ir;

namespace
{

/** Scalar-equivalent (instruction count, unit latency) of one op. */
struct OpProfile
{
    unsigned insts = 1;
    unsigned latency = 1;
    bool isMem = false;
    unsigned memAccesses = 0;
};

OpProfile
profileOf(Op op)
{
    switch (op) {
      case Op::Mul:
        return {1, 3};
      case Op::SDiv: case Op::SRem:
        return {1, 12};
      case Op::FAdd: case Op::FSub: case Op::FMul:
        return {1, 4}; // VFP/NEON pipelined.
      case Op::FDiv:
        return {1, 15};
      case Op::FExp:
        return {12, 18}; // libm polynomial.
      case Op::FSqrt:
        return {1, 14};
      case Op::Load:
        return {1, 0, true, 1};
      case Op::Store:
        return {1, 1, true, 1};
      // Tensor intrinsics expand to scalar loops on the CPU.
      case Op::TLoad: case Op::TStore:
        return {4, 0, true, 4};
      case Op::TMul:
        return {12, 4}; // 8 muls + 4 adds on a 2x2 tile.
      case Op::TAdd: case Op::TSub:
        return {4, 4};
      case Op::TRelu:
        return {4, 1};
      case Op::Phi:
        return {0, 0}; // Register renaming makes phis free.
      case Op::Br: case Op::CondBr: case Op::Detach: case Op::Reattach:
      case Op::Sync: case Op::Ret:
        return {1, 1};
      default:
        return {1, 1};
    }
}

/** Tiny L1 model with LRU sets. */
class L1Cache
{
  public:
    explicit L1Cache(const ArmOptions &opts)
        : lineBytes_(opts.lineBytes), ways_(opts.cacheWays)
    {
        unsigned lines = opts.cacheKb * 1024 / opts.lineBytes;
        sets_ = std::max(1u, lines / std::max(1u, ways_));
        tags_.assign(sets_, {});
    }

    bool
    access(uint64_t addr)
    {
        uint64_t line = addr / lineBytes_;
        auto &set = tags_[line % sets_];
        auto it = std::find(set.begin(), set.end(), line);
        if (it != set.end()) {
            set.erase(it);
            set.insert(set.begin(), line);
            return true;
        }
        set.insert(set.begin(), line);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

  private:
    unsigned lineBytes_;
    unsigned ways_;
    unsigned sets_;
    std::vector<std::vector<uint64_t>> tags_;
};

/** The trace-driven dual-issue OoO scheduler. */
class ArmScheduler
{
  public:
    explicit ArmScheduler(const ArmOptions &opts)
        : opts_(opts), cache_(opts)
    {
    }

    void
    onInst(const Instruction &inst, uint64_t addr)
    {
        OpProfile prof = profileOf(inst.op());
        if (prof.insts == 0)
            return;

        // Operand readiness from the last dynamic writer.
        uint64_t ready = 0;
        for (const Value *operand : inst.operands()) {
            auto it = writers_.find(operand);
            if (it != writers_.end())
                ready = std::max(ready, it->second);
        }

        uint64_t finish = ready;
        for (unsigned k = 0; k < prof.insts; ++k) {
            // Dual issue: at most issueWidth instructions per cycle.
            if (issuedThisCycle_ >= opts_.issueWidth) {
                ++cycle_;
                issuedThisCycle_ = 0;
            }
            uint64_t issue = std::max(cycle_, ready);
            // Scheduling window: issue stalls until the oldest
            // outstanding instruction completes once the window fills.
            while (inflight_.size() >= opts_.windowSize) {
                issue = std::max(issue, inflight_.front());
                inflight_.erase(inflight_.begin());
            }
            if (issue > cycle_) {
                cycle_ = issue;
                issuedThisCycle_ = 0;
            }
            ++issuedThisCycle_;
            ++instructions_;

            unsigned lat = prof.latency;
            if (prof.isMem && k < prof.memAccesses) {
                bool hit = cache_.access(addr + k * 4);
                lat += hit ? opts_.hitLatency : opts_.missLatency;
            }
            finish = std::max(finish, issue + lat);
            inflight_.push_back(finish);
        }
        if (inst.op() == Op::CondBr)
            cycle_ += opts_.branchCost;

        writers_[&inst] = finish;
        lastFinish_ = std::max(lastFinish_, finish);
    }

    uint64_t cycles() const { return std::max(cycle_, lastFinish_); }
    uint64_t instructions() const { return instructions_; }

  private:
    ArmOptions opts_;
    L1Cache cache_;
    std::map<const Value *, uint64_t> writers_;
    std::vector<uint64_t> inflight_;
    uint64_t cycle_ = 0;
    uint64_t lastFinish_ = 0;
    uint64_t instructions_ = 0;
    unsigned issuedThisCycle_ = 0;
};

} // namespace

ArmResult
runOnArm(const ir::Module &module, const std::string &kernel,
         const std::map<std::string, std::vector<float>> &float_inputs,
         const std::map<std::string, std::vector<int32_t>> &int_inputs,
         const ArmOptions &opts)
{
    const Function *fn = module.function(kernel);
    muir_assert(fn != nullptr, "ARM: kernel %s not found", kernel.c_str());

    Interpreter interp(module);
    for (const auto &[name, data] : float_inputs)
        interp.memory().writeFloats(module.global(name), data);
    for (const auto &[name, data] : int_inputs)
        interp.memory().writeInts(module.global(name), data);

    ArmScheduler sched(opts);
    interp.setTraceSink([&](const Instruction &inst, uint64_t addr) {
        sched.onInst(inst, addr);
    });
    interp.run(*fn, {});

    ArmResult result;
    result.cycles = sched.cycles();
    result.instructions = sched.instructions();
    result.ghz = opts.ghz;
    return result;
}

} // namespace muir::baselines
