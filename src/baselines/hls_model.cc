#include "baselines/hls_model.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "ir/analysis/cfg.hh"
#include "ir/analysis/dominators.hh"
#include "ir/analysis/loop_info.hh"
#include "ir/interp.hh"
#include "support/logging.hh"
#include "uir/delay_model.hh"

namespace muir::baselines
{

using namespace ir;

namespace
{

/** Cycle latency of one op in the static schedule. */
unsigned
opCycles(Op op, const HlsOptions &opts)
{
    if (op == Op::Load || op == Op::TLoad)
        return opts.streamBuffers ? 1 : opts.memLatency;
    if (op == Op::Store || op == Op::TStore)
        return 1;
    if (op == Op::Phi || isTerminatorOp(op))
        return 0;
    if (!isComputeOp(op))
        return 1;
    return static_cast<unsigned>(
        std::ceil(uir::opDelayUnits(op) - 1e-9));
}

/**
 * Critical-path latency (in cycles) of one iteration's body: longest
 * def-use chain through the blocks of the loop (its own blocks only).
 */
unsigned
bodyLatency(const std::vector<BasicBlock *> &blocks,
            const HlsOptions &opts)
{
    std::map<const Instruction *, unsigned> depth;
    unsigned best = 1;
    // Blocks arrive in function order; defs precede uses for our
    // canonical loops, and phi cycles are cut (depth 0 at first use).
    for (BasicBlock *bb : blocks) {
        for (const auto &inst : bb->insts()) {
            unsigned in_depth = 0;
            for (const Value *operand : inst->operands()) {
                auto *def = dynamic_cast<const Instruction *>(operand);
                if (def == nullptr)
                    continue;
                auto it = depth.find(def);
                if (it != depth.end())
                    in_depth = std::max(in_depth, it->second);
            }
            unsigned d = in_depth + opCycles(inst->op(), opts);
            depth[inst.get()] = d;
            best = std::max(best, d);
        }
    }
    return best;
}

/** Loop-carried recurrence length: phi -> ... -> phi.next chain. */
unsigned
recurrenceII(const Loop &loop, const HlsOptions &opts)
{
    unsigned ii = 1;
    for (const auto &inst : loop.header->insts()) {
        if (inst->op() != Op::Phi)
            break;
        // Depth of the latch incoming value computed within the loop.
        for (unsigned k = 0; k < inst->numIncoming(); ++k) {
            if (!loop.contains(inst->incomingBlock(k)))
                continue;
            // Walk the def chain from the incoming value back to the
            // phi, accumulating latency (bounded depth).
            unsigned chain = 0;
            const Value *v = inst->incomingValue(k);
            for (unsigned steps = 0; steps < 64; ++steps) {
                auto *def = dynamic_cast<const Instruction *>(v);
                if (def == nullptr || def == inst.get())
                    break;
                chain += opCycles(def->op(), opts);
                // Follow the operand on the longest path
                // heuristically: the first instruction operand.
                const Value *next = nullptr;
                for (const Value *operand : def->operands()) {
                    if (dynamic_cast<const Instruction *>(operand)) {
                        next = operand;
                        break;
                    }
                }
                if (next == nullptr)
                    break;
                v = next;
            }
            ii = std::max(ii, std::max(1u, chain));
        }
    }
    return ii;
}

/** Memory ops in the loop's own blocks. */
unsigned
memOpsIn(const std::vector<BasicBlock *> &blocks)
{
    unsigned n = 0;
    for (BasicBlock *bb : blocks)
        for (const auto &inst : bb->insts())
            if (isMemoryOp(inst->op()))
                ++n;
    return n;
}

} // namespace

HlsResult
scheduleHls(const Module &module, const std::string &kernel,
            const std::map<std::string, std::vector<float>> &float_inputs,
            const std::map<std::string, std::vector<int32_t>> &int_inputs,
            double uir_mhz, const HlsOptions &opts)
{
    const Function *fn = module.function(kernel);
    muir_assert(fn != nullptr, "HLS: kernel %s not found", kernel.c_str());

    // Measure dynamic trip counts by interpreting the program on the
    // real inputs (the schedule is static; the counts are not).
    Interpreter interp(module);
    for (const auto &[name, data] : float_inputs)
        interp.memory().writeFloats(module.global(name), data);
    for (const auto &[name, data] : int_inputs)
        interp.memory().writeInts(module.global(name), data);
    interp.run(*fn, {});
    const auto &counts = interp.blockCounts();
    auto entries = [&](const BasicBlock *bb) -> uint64_t {
        auto it = counts.find(bb);
        return it == counts.end() ? 0 : it->second;
    };

    Cfg cfg(*fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);

    // Schedule loops innermost-out. Innermost loops pipeline with
    // II = max(recurrence, memory-port pressure); outer loops run
    // their own body plus children serially per iteration.
    std::map<const Loop *, uint64_t> loop_cycles;
    auto loops = li.allLoops();
    for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
        Loop *loop = *it;
        auto own = loop->ownBlocks();
        uint64_t iters = entries(loop->header);
        // Header entries = iterations + one exit test per invocation.
        uint64_t invocations = 1;
        for (BasicBlock *pred : loop->header->predecessors())
            if (!loop->contains(pred))
                invocations = std::max<uint64_t>(1, entries(pred));
        uint64_t body_iters = iters > invocations ? iters - invocations
                                                  : 0;

        unsigned latency = bodyLatency(own, opts);
        uint64_t child_time = 0;
        for (Loop *sub : loop->subloops)
            child_time += loop_cycles.at(sub);

        // Stream buffers give each streamed array a dedicated FIFO
        // port, effectively doubling the memory parallelism.
        unsigned ports = opts.streamBuffers ? opts.memPorts * 2
                                            : opts.memPorts;
        uint64_t cycles;
        if (loop->subloops.empty()) {
            unsigned ii = std::max<unsigned>(
                recurrenceII(*loop, opts),
                (memOpsIn(own) + ports - 1) / ports);
            ii = std::max(1u, ii);
            cycles = body_iters * ii +
                     invocations * (latency + opts.fsmOverhead);
        } else {
            // Serialized nested execution: no cross-iteration overlap.
            cycles = body_iters * (latency + opts.fsmOverhead) +
                     child_time + invocations * opts.fsmOverhead;
        }
        loop_cycles[loop] = cycles;
    }

    // Top level: straight-line blocks plus top-level loops.
    std::vector<BasicBlock *> top_blocks;
    for (BasicBlock *bb : cfg.rpo())
        if (li.loopFor(bb) == nullptr)
            top_blocks.push_back(bb);
    uint64_t total = bodyLatency(top_blocks, opts) + opts.fsmOverhead;
    for (Loop *loop : li.topLevel())
        total += loop_cycles.at(loop);

    HlsResult result;
    result.cycles = total;
    result.mhz = uir_mhz / opts.clockPenalty;
    return result;
}

} // namespace muir::baselines
