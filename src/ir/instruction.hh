/**
 * @file
 * Instructions of the mini compiler IR. The opcode set covers the
 * LLVM subset the paper's front end lowers (integer/FP arithmetic,
 * compares, select, casts, GEP-style addressing, loads/stores), the
 * Tapir parallel constructs (detach/reattach/sync) used for Cilk
 * programs, and the Tensor2D intrinsics of §6.3.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/value.hh"

namespace muir::ir
{

class BasicBlock;
class Function;

/** Every operation the IR can express. */
enum class Op
{
    // Integer arithmetic / logic.
    Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, LShr, AShr,
    // Floating point arithmetic and math intrinsics.
    FAdd, FSub, FMul, FDiv, FExp, FSqrt,
    // Integer compares (produce i1).
    ICmpEq, ICmpNe, ICmpSlt, ICmpSle, ICmpSgt, ICmpSge,
    // Float compares (produce i1).
    FCmpOeq, FCmpOlt, FCmpOle, FCmpOgt, FCmpOge,
    // Data movement / casts.
    Select, Trunc, ZExt, SExt, SIToFP, FPToSI,
    // Memory: GEP computes base + index (element-granular) addressing.
    GEP, Load, Store,
    // Control flow (terminators).
    Br, CondBr, Ret,
    // Tapir parallel control flow (terminators).
    Detach, Reattach, Sync,
    // SSA merge and calls.
    Phi, Call,
    // Tensor2D intrinsics (higher-order ops, §6.3).
    TLoad, TStore, TMul, TAdd, TSub, TRelu,
};

/** @return the mnemonic, e.g. "fadd". */
const char *opName(Op op);

/** @return true for Br/CondBr/Ret/Detach/Reattach/Sync. */
bool isTerminatorOp(Op op);

/** @return true for integer/FP arithmetic, compares, casts and select. */
bool isComputeOp(Op op);

/** @return true for Load/Store/TLoad/TStore. */
bool isMemoryOp(Op op);

/** @return true for the Tensor2D intrinsics. */
bool isTensorOp(Op op);

/** @return true for compares producing i1. */
bool isCompareOp(Op op);

/**
 * An SSA instruction. Owns nothing; operands are non-owning Value
 * pointers with def-use chains kept consistent through the mutators.
 * Successor blocks (for terminators) and phi incoming blocks live in
 * a parallel block-operand list.
 */
class Instruction : public Value
{
  public:
    Instruction(Op op, Type type, std::string name)
        : Value(VKind::Instruction, std::move(type), std::move(name)),
          op_(op)
    {
    }
    ~Instruction() override;

    Op op() const { return op_; }
    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    /** @name Operands @{ */
    const std::vector<Value *> &operands() const { return operands_; }
    Value *operand(unsigned i) const;
    unsigned numOperands() const { return operands_.size(); }
    void addOperand(Value *v);
    void setOperand(unsigned i, Value *v);
    /** Replace every occurrence of from with to in the operand list. */
    void replaceOperand(Value *from, Value *to);
    /** Drop all operands (used when erasing instructions). */
    void dropOperands();
    /** @} */

    /** @name Block operands: successors, or phi incoming blocks @{ */
    const std::vector<BasicBlock *> &blockOperands() const
    {
        return blockOperands_;
    }
    BasicBlock *blockOperand(unsigned i) const;
    void addBlockOperand(BasicBlock *bb) { blockOperands_.push_back(bb); }
    void setBlockOperand(unsigned i, BasicBlock *bb);
    /** @} */

    /** Direct callee for Call instructions. */
    Function *callee() const { return callee_; }
    void setCallee(Function *f) { callee_ = f; }

    bool isTerminator() const { return isTerminatorOp(op_); }

    /** @name Phi helpers @{ */
    unsigned numIncoming() const { return operands_.size(); }
    Value *incomingValue(unsigned i) const { return operand(i); }
    BasicBlock *incomingBlock(unsigned i) const { return blockOperand(i); }
    void addIncoming(Value *v, BasicBlock *bb);
    /** @} */

    /** @name Terminator successor helpers @{ */
    unsigned numSuccessors() const { return blockOperands_.size(); }
    BasicBlock *successor(unsigned i) const { return blockOperand(i); }
    /** @} */

  private:
    Op op_;
    BasicBlock *parent_ = nullptr;
    std::vector<Value *> operands_;
    std::vector<BasicBlock *> blockOperands_;
    Function *callee_ = nullptr;
};

} // namespace muir::ir
