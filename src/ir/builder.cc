#include "ir/builder.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::ir
{

Instruction *
IRBuilder::insert(Op op, Type type, const std::string &name)
{
    muir_assert(bb_ != nullptr, "no insertion point set");
    auto inst = std::make_unique<Instruction>(op, std::move(type),
                                              nextName(name));
    return bb_->append(std::move(inst));
}

std::string
IRBuilder::nextName(const std::string &hint)
{
    if (!hint.empty())
        return hint;
    return fmt("t%u", nameCounter_++);
}

Value *
IRBuilder::binary(Op op, Value *lhs, Value *rhs, const std::string &name)
{
    muir_assert(lhs->type() == rhs->type(),
                "binary op %s type mismatch: %s vs %s", opName(op),
                lhs->type().str().c_str(), rhs->type().str().c_str());
    Type result = isCompareOp(op) ? Type::i1() : lhs->type();
    Instruction *inst = insert(op, result, name);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return inst;
}

#define MUIR_BINOP(method, opcode)                                           \
    Value *IRBuilder::method(Value *l, Value *r, const std::string &n)       \
    {                                                                        \
        return binary(Op::opcode, l, r, n);                                  \
    }

MUIR_BINOP(add, Add)
MUIR_BINOP(sub, Sub)
MUIR_BINOP(mul, Mul)
MUIR_BINOP(sdiv, SDiv)
MUIR_BINOP(srem, SRem)
MUIR_BINOP(andOp, And)
MUIR_BINOP(orOp, Or)
MUIR_BINOP(xorOp, Xor)
MUIR_BINOP(shl, Shl)
MUIR_BINOP(lshr, LShr)
MUIR_BINOP(ashr, AShr)
MUIR_BINOP(fadd, FAdd)
MUIR_BINOP(fsub, FSub)
MUIR_BINOP(fmul, FMul)
MUIR_BINOP(fdiv, FDiv)
#undef MUIR_BINOP

Value *
IRBuilder::fexp(Value *v, const std::string &n)
{
    muir_assert(v->type().isFloat(), "fexp on non-float");
    Instruction *inst = insert(Op::FExp, Type::f32(), n);
    inst->addOperand(v);
    return inst;
}

Value *
IRBuilder::fsqrt(Value *v, const std::string &n)
{
    muir_assert(v->type().isFloat(), "fsqrt on non-float");
    Instruction *inst = insert(Op::FSqrt, Type::f32(), n);
    inst->addOperand(v);
    return inst;
}

Value *
IRBuilder::icmp(Op op, Value *l, Value *r, const std::string &n)
{
    muir_assert(l->type().isInt() || l->type().isPtr(),
                "icmp on non-integer");
    return binary(op, l, r, n);
}

Value *
IRBuilder::fcmp(Op op, Value *l, Value *r, const std::string &n)
{
    muir_assert(l->type().isFloat(), "fcmp on non-float");
    return binary(op, l, r, n);
}

Value *
IRBuilder::select(Value *cond, Value *t, Value *f, const std::string &n)
{
    muir_assert(cond->type().isBool(), "select condition must be i1");
    muir_assert(t->type() == f->type(), "select arm type mismatch");
    Instruction *inst = insert(Op::Select, t->type(), n);
    inst->addOperand(cond);
    inst->addOperand(t);
    inst->addOperand(f);
    return inst;
}

Value *
IRBuilder::zext(Value *v, Type to, const std::string &n)
{
    Instruction *inst = insert(Op::ZExt, std::move(to), n);
    inst->addOperand(v);
    return inst;
}

Value *
IRBuilder::sext(Value *v, Type to, const std::string &n)
{
    Instruction *inst = insert(Op::SExt, std::move(to), n);
    inst->addOperand(v);
    return inst;
}

Value *
IRBuilder::trunc(Value *v, Type to, const std::string &n)
{
    Instruction *inst = insert(Op::Trunc, std::move(to), n);
    inst->addOperand(v);
    return inst;
}

Value *
IRBuilder::sitofp(Value *v, const std::string &n)
{
    muir_assert(v->type().isInt(), "sitofp on non-integer");
    Instruction *inst = insert(Op::SIToFP, Type::f32(), n);
    inst->addOperand(v);
    return inst;
}

Value *
IRBuilder::fptosi(Value *v, Type to, const std::string &n)
{
    muir_assert(v->type().isFloat(), "fptosi on non-float");
    Instruction *inst = insert(Op::FPToSI, std::move(to), n);
    inst->addOperand(v);
    return inst;
}

Value *
IRBuilder::gep(Value *base, Value *index, const std::string &n)
{
    muir_assert(base->type().isPtr(), "gep base must be a pointer, got %s",
                base->type().str().c_str());
    muir_assert(index->type().isInt(), "gep index must be an integer");
    Instruction *inst = insert(Op::GEP, base->type(), n);
    inst->addOperand(base);
    inst->addOperand(index);
    return inst;
}

Value *
IRBuilder::load(Value *ptr, const std::string &n)
{
    muir_assert(ptr->type().isPtr(), "load from non-pointer");
    muir_assert(ptr->type().pointee().isScalar(),
                "use tload for tensor loads");
    Instruction *inst = insert(Op::Load, ptr->type().pointee(), n);
    inst->addOperand(ptr);
    return inst;
}

Instruction *
IRBuilder::store(Value *value, Value *ptr)
{
    muir_assert(ptr->type().isPtr(), "store to non-pointer");
    muir_assert(value->type() == ptr->type().pointee(),
                "store type mismatch: %s into %s*",
                value->type().str().c_str(),
                ptr->type().pointee().str().c_str());
    Instruction *inst = insert(Op::Store, Type::voidTy(), "");
    inst->addOperand(value);
    inst->addOperand(ptr);
    return inst;
}

Value *
IRBuilder::tload(Value *ptr, const std::string &n)
{
    muir_assert(ptr->type().isPtr() && ptr->type().pointee().isTensor(),
                "tload from non-tensor pointer");
    Instruction *inst = insert(Op::TLoad, ptr->type().pointee(), n);
    inst->addOperand(ptr);
    return inst;
}

Instruction *
IRBuilder::tstore(Value *value, Value *ptr)
{
    muir_assert(value->type().isTensor(), "tstore of non-tensor");
    muir_assert(ptr->type().isPtr() &&
                    ptr->type().pointee() == value->type(),
                "tstore type mismatch");
    Instruction *inst = insert(Op::TStore, Type::voidTy(), "");
    inst->addOperand(value);
    inst->addOperand(ptr);
    return inst;
}

Value *
IRBuilder::tmul(Value *l, Value *r, const std::string &n)
{
    return binary(Op::TMul, l, r, n);
}

Value *
IRBuilder::tadd(Value *l, Value *r, const std::string &n)
{
    return binary(Op::TAdd, l, r, n);
}

Value *
IRBuilder::tsub(Value *l, Value *r, const std::string &n)
{
    return binary(Op::TSub, l, r, n);
}

Value *
IRBuilder::trelu(Value *v, const std::string &n)
{
    muir_assert(v->type().isTensor(), "trelu on non-tensor");
    Instruction *inst = insert(Op::TRelu, v->type(), n);
    inst->addOperand(v);
    return inst;
}

Instruction *
IRBuilder::br(BasicBlock *target)
{
    Instruction *inst = insert(Op::Br, Type::voidTy(), "");
    inst->addBlockOperand(target);
    return inst;
}

Instruction *
IRBuilder::condBr(Value *cond, BasicBlock *t, BasicBlock *f)
{
    muir_assert(cond->type().isBool(), "condbr condition must be i1");
    Instruction *inst = insert(Op::CondBr, Type::voidTy(), "");
    inst->addOperand(cond);
    inst->addBlockOperand(t);
    inst->addBlockOperand(f);
    return inst;
}

Instruction *
IRBuilder::ret(Value *value)
{
    Instruction *inst = insert(Op::Ret, Type::voidTy(), "");
    if (value)
        inst->addOperand(value);
    return inst;
}

Instruction *
IRBuilder::phi(Type type, const std::string &n)
{
    return insert(Op::Phi, std::move(type), n);
}

Value *
IRBuilder::call(Function *callee, const std::vector<Value *> &args,
                const std::string &n)
{
    muir_assert(callee != nullptr, "call of null function");
    muir_assert(args.size() == callee->numArgs(),
                "call of %s: %zu args, expected %u",
                callee->name().c_str(), args.size(), callee->numArgs());
    Instruction *inst = insert(Op::Call, callee->returnType(), n);
    for (unsigned i = 0; i < args.size(); ++i) {
        muir_assert(args[i]->type() == callee->arg(i)->type(),
                    "call of %s: arg %u type mismatch",
                    callee->name().c_str(), i);
        inst->addOperand(args[i]);
    }
    inst->setCallee(callee);
    return inst;
}

Instruction *
IRBuilder::detach(BasicBlock *detached, BasicBlock *continuation)
{
    Instruction *inst = insert(Op::Detach, Type::voidTy(), "");
    inst->addBlockOperand(detached);
    inst->addBlockOperand(continuation);
    return inst;
}

Instruction *
IRBuilder::reattach(BasicBlock *continuation)
{
    Instruction *inst = insert(Op::Reattach, Type::voidTy(), "");
    inst->addBlockOperand(continuation);
    return inst;
}

Instruction *
IRBuilder::sync(BasicBlock *next)
{
    Instruction *inst = insert(Op::Sync, Type::voidTy(), "");
    inst->addBlockOperand(next);
    return inst;
}

ForLoop::ForLoop(IRBuilder &b, const std::string &name, Value *begin,
                 Value *end, Value *step, bool parallel)
    : b_(b), parallel_(parallel), step_(step)
{
    Function *fn = b.insertBlock()->parent();
    preheader_ = b.insertBlock();
    header_ = fn->addBlock(name + ".header");
    BasicBlock *body_entry = nullptr;
    if (parallel_) {
        BasicBlock *spawn = fn->addBlock(name + ".spawn");
        body_ = fn->addBlock(name + ".body");
        latch_ = fn->addBlock(name + ".latch");
        body_entry = spawn;
        // spawn: detach(body, latch) — body runs concurrently with the
        // next iteration, exactly Tapir's cilk_for lowering.
        b.setInsertPoint(spawn);
        b.detach(body_, latch_);
    } else {
        body_ = fn->addBlock(name + ".body");
        latch_ = fn->addBlock(name + ".latch");
        body_entry = body_;
    }
    exit_ = fn->addBlock(name + ".exit");

    b.setInsertPoint(preheader_);
    b.br(header_);

    b.setInsertPoint(header_);
    iv_ = b.phi(begin->type(), name);
    iv_->addIncoming(begin, preheader_);
    Value *cond = b.icmp(Op::ICmpSlt, iv_, end, name + ".cond");
    b.condBr(cond, body_entry, exit_);

    b.setInsertPoint(body_);
}

Instruction *
ForLoop::addCarried(Value *init, const std::string &name)
{
    muir_assert(!parallel_, "carried values in a parallel loop are a race");
    muir_assert(!finished_, "addCarried after finish");
    auto inst = std::make_unique<Instruction>(Op::Phi, init->type(), name);
    Instruction *phi = header_->insertPhi(std::move(inst));
    phi->addIncoming(init, preheader_);
    return phi;
}

void
ForLoop::setCarriedNext(Instruction *phi, Value *next)
{
    muir_assert(!finished_, "setCarriedNext after finish");
    carried_.emplace_back(phi, next);
}

void
ForLoop::finish()
{
    muir_assert(!finished_, "loop already finished");
    finished_ = true;
    // Close the body with reattach (parallel) or a jump to the latch.
    if (parallel_) {
        b_.reattach(latch_);
    } else {
        b_.br(latch_);
    }
    // Latch: iv += step, back edge.
    b_.setInsertPoint(latch_);
    Value *next_iv = b_.add(iv_, step_, iv_->name() + ".next");
    iv_->addIncoming(next_iv, latch_);
    for (auto &[phi, next] : carried_)
        phi->addIncoming(next, latch_);
    b_.br(header_);
    // Exit: parallel loops sync before continuing.
    b_.setInsertPoint(exit_);
    if (parallel_) {
        Function *fn = exit_->parent();
        BasicBlock *after = fn->addBlock(exit_->name() + ".synced");
        b_.sync(after);
        b_.setInsertPoint(after);
        exit_ = after;
    }
}

} // namespace muir::ir
