/**
 * @file
 * Value-semantic type system for the mini compiler IR. Mirrors the
 * subset of LLVM types the paper's front end consumes: integers, f32,
 * pointers (each pointing into a named memory object), and 2-D tensors
 * (the Tensor2D intrinsic type of §3.3/§6.3).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace muir::ir
{

/** An IR type. Cheap to copy; pointers share their pointee node. */
class Type
{
  public:
    enum class Kind { Void, Int, Float, Ptr, Tensor };

    Type() : kind_(Kind::Void) {}

    /** @name Factories @{ */
    static Type voidTy() { return Type(); }
    static Type intTy(unsigned bits);
    static Type i1() { return intTy(1); }
    static Type i8() { return intTy(8); }
    static Type i32() { return intTy(32); }
    static Type i64() { return intTy(64); }
    static Type f32();
    /** A rows x cols tensor of f32 (elem_float) or i32 elements. */
    static Type tensor(unsigned rows, unsigned cols, bool elem_float = true);
    static Type ptrTo(const Type &pointee);
    /** @} */

    Kind kind() const { return kind_; }
    bool isVoid() const { return kind_ == Kind::Void; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isBool() const { return isInt() && bits_ == 1; }
    bool isFloat() const { return kind_ == Kind::Float; }
    bool isPtr() const { return kind_ == Kind::Ptr; }
    bool isTensor() const { return kind_ == Kind::Tensor; }
    bool isScalar() const { return isInt() || isFloat(); }

    /** Bit width for Int/Float types. */
    unsigned bits() const { return bits_; }
    /** Tensor shape. */
    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }
    /** Tensor element count. */
    unsigned tensorElems() const { return rows_ * cols_; }
    /** Whether tensor elements are floating point. */
    bool tensorElemFloat() const { return elemFloat_; }

    /** The pointed-to type; only valid for pointers. */
    const Type &pointee() const;

    /** Storage footprint in bytes (tensors are dense row-major). */
    unsigned sizeBytes() const;

    bool operator==(const Type &other) const;
    bool operator!=(const Type &other) const { return !(*this == other); }

    /** Human-readable spelling, e.g. "i32", "f32*", "tensor<2x2xf32>". */
    std::string str() const;

  private:
    Kind kind_;
    unsigned bits_ = 0;
    unsigned rows_ = 0;
    unsigned cols_ = 0;
    bool elemFloat_ = true;
    std::shared_ptr<Type> pointee_;
};

} // namespace muir::ir
