/**
 * @file
 * Basic blocks: ordered instruction sequences ending in a terminator.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.hh"

namespace muir::ir
{

class Function;

/** A straight-line instruction sequence with a single terminator. */
class BasicBlock
{
  public:
    BasicBlock(std::string name, Function *parent)
        : name_(std::move(name)), parent_(parent)
    {
    }

    BasicBlock(const BasicBlock &) = delete;
    BasicBlock &operator=(const BasicBlock &) = delete;

    const std::string &name() const { return name_; }
    Function *parent() const { return parent_; }

    /** Append an instruction, transferring ownership. */
    Instruction *append(std::unique_ptr<Instruction> inst);

    /**
     * Insert a phi after any existing leading phis. Unlike append this
     * is legal on a terminated block, so loop builders can add carried
     * values after the header's compare/branch exist.
     */
    Instruction *insertPhi(std::unique_ptr<Instruction> inst);

    /**
     * Insert an instruction immediately before the terminator (legal
     * only on terminated blocks) — used by behaviour-level transforms
     * such as loop unrolling to extend an existing body.
     */
    Instruction *insertBeforeTerminator(std::unique_ptr<Instruction> inst);

    /** Instructions in program order. */
    const std::vector<std::unique_ptr<Instruction>> &insts() const
    {
        return insts_;
    }

    bool empty() const { return insts_.empty(); }

    /** The terminator, or nullptr if the block is still open. */
    Instruction *terminator() const;

    /** Successor blocks (from the terminator). */
    std::vector<BasicBlock *> successors() const;

    /** Predecessor blocks, recomputed by scanning the function. */
    std::vector<BasicBlock *> predecessors() const;

  private:
    std::string name_;
    Function *parent_;
    std::vector<std::unique_ptr<Instruction>> insts_;
};

} // namespace muir::ir
