/**
 * @file
 * Functional interpreter for the mini compiler IR. Provides the golden
 * reference each workload is validated against, and feeds the dynamic
 * instruction stream consumed by the ARM-A9 baseline model. Parallel
 * constructs run with serial-elision semantics (detach executes the
 * spawned region inline), which Cilk guarantees is a valid execution.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ir/module.hh"

namespace muir::ir
{

/** First valid data address: globals allocate upward from here, so
 *  anything below is a null-page trap (used by the μfit bus guard). */
inline constexpr uint64_t kHeapBase = 0x1000;

/** A runtime value: integer, float, pointer (address), or tensor. */
struct RuntimeValue
{
    enum class Kind { Int, Float, Ptr, Tensor };

    Kind kind = Kind::Int;
    int64_t i = 0;
    double f = 0.0;
    uint64_t ptr = 0;
    unsigned rows = 0, cols = 0;
    std::shared_ptr<std::vector<float>> tensor;

    static RuntimeValue makeInt(int64_t v);
    static RuntimeValue makeFloat(double v);
    static RuntimeValue makePtr(uint64_t addr);
    static RuntimeValue makeTensor(unsigned rows, unsigned cols,
                                   std::vector<float> data);

    int64_t asInt() const;
    double asFloat() const;
    uint64_t asPtr() const;
};

/**
 * Flat byte-addressable memory image with the module's globals
 * allocated at fixed, 64-byte-aligned addresses. Tracks which global
 * (memory space) each address falls into.
 */
class MemoryImage
{
  public:
    explicit MemoryImage(const Module &module);

    /** Base address of a global array. */
    uint64_t baseOf(const GlobalArray *g) const;

    /** Memory-space id owning an address (kGlobalSpace if none). */
    unsigned spaceOf(uint64_t addr) const;

    /** @name Typed accessors @{ */
    int64_t loadInt(uint64_t addr, unsigned bytes) const;
    void storeInt(uint64_t addr, unsigned bytes, int64_t value);
    float loadFloat(uint64_t addr) const;
    void storeFloat(uint64_t addr, float value);
    /** @} */

    /** @name Whole-array convenience for binding inputs/outputs @{ */
    void writeFloats(const GlobalArray *g, const std::vector<float> &data);
    std::vector<float> readFloats(const GlobalArray *g) const;
    void writeInts(const GlobalArray *g, const std::vector<int32_t> &data);
    std::vector<int32_t> readInts(const GlobalArray *g) const;
    /** @} */

    uint64_t sizeBytes() const { return bytes_.size(); }

    /** Raw backing store (μfit snapshots and golden comparison). */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** @return whether [addr, addr+bytes) is a valid data range. */
    bool
    inRange(uint64_t addr, unsigned bytes) const
    {
        return addr >= kHeapBase && addr + bytes >= addr &&
               addr + bytes <= bytes_.size();
    }

  private:
    void checkRange(uint64_t addr, unsigned bytes) const;

    std::vector<uint8_t> bytes_;
    std::map<const GlobalArray *, uint64_t> bases_;
    /** Sorted (start, end, space) ranges. */
    struct Range { uint64_t start, end; unsigned space; };
    std::vector<Range> ranges_;
};

/**
 * Observer of the dynamic instruction stream (one call per executed
 * instruction, in serial-elision order). addr is 0 for non-memory ops.
 */
using TraceSink =
    std::function<void(const Instruction &, uint64_t addr)>;

/** The interpreter. One instance may run many functions sequentially. */
class Interpreter
{
  public:
    explicit Interpreter(const Module &module);

    MemoryImage &memory() { return memory_; }
    const MemoryImage &memory() const { return memory_; }

    /** Install (or clear) a dynamic-trace observer. */
    void setTraceSink(TraceSink sink) { sink_ = std::move(sink); }

    /** Execute a function to completion. */
    RuntimeValue run(const Function &fn,
                     const std::vector<RuntimeValue> &args);

    /** Total dynamic instructions executed so far. */
    uint64_t dynamicInstCount() const { return dynInsts_; }

    /** Times each basic block was entered (for static schedulers). */
    const std::map<const BasicBlock *, uint64_t> &blockCounts() const
    {
        return blockCounts_;
    }

  private:
    using Frame = std::map<const Value *, RuntimeValue>;

    RuntimeValue eval(const Value *v, const Frame &frame) const;
    RuntimeValue evalInst(const Instruction &inst, Frame &frame);
    uint64_t gepAddr(const Instruction &inst, const Frame &frame) const;

    const Module &module_;
    MemoryImage memory_;
    TraceSink sink_;
    uint64_t dynInsts_ = 0;
    unsigned callDepth_ = 0;
    std::map<const BasicBlock *, uint64_t> blockCounts_;
};

} // namespace muir::ir
