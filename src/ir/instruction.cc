#include "ir/instruction.hh"

#include "support/logging.hh"

namespace muir::ir
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::SDiv: return "sdiv";
      case Op::SRem: return "srem";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::LShr: return "lshr";
      case Op::AShr: return "ashr";
      case Op::FAdd: return "fadd";
      case Op::FSub: return "fsub";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::FExp: return "fexp";
      case Op::FSqrt: return "fsqrt";
      case Op::ICmpEq: return "icmp.eq";
      case Op::ICmpNe: return "icmp.ne";
      case Op::ICmpSlt: return "icmp.slt";
      case Op::ICmpSle: return "icmp.sle";
      case Op::ICmpSgt: return "icmp.sgt";
      case Op::ICmpSge: return "icmp.sge";
      case Op::FCmpOeq: return "fcmp.oeq";
      case Op::FCmpOlt: return "fcmp.olt";
      case Op::FCmpOle: return "fcmp.ole";
      case Op::FCmpOgt: return "fcmp.ogt";
      case Op::FCmpOge: return "fcmp.oge";
      case Op::Select: return "select";
      case Op::Trunc: return "trunc";
      case Op::ZExt: return "zext";
      case Op::SExt: return "sext";
      case Op::SIToFP: return "sitofp";
      case Op::FPToSI: return "fptosi";
      case Op::GEP: return "gep";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::Br: return "br";
      case Op::CondBr: return "condbr";
      case Op::Ret: return "ret";
      case Op::Detach: return "detach";
      case Op::Reattach: return "reattach";
      case Op::Sync: return "sync";
      case Op::Phi: return "phi";
      case Op::Call: return "call";
      case Op::TLoad: return "tload";
      case Op::TStore: return "tstore";
      case Op::TMul: return "tmul";
      case Op::TAdd: return "tadd";
      case Op::TSub: return "tsub";
      case Op::TRelu: return "trelu";
    }
    return "?";
}

bool
isTerminatorOp(Op op)
{
    switch (op) {
      case Op::Br:
      case Op::CondBr:
      case Op::Ret:
      case Op::Detach:
      case Op::Reattach:
      case Op::Sync:
        return true;
      default:
        return false;
    }
}

bool
isComputeOp(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::SDiv:
      case Op::SRem: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::LShr: case Op::AShr:
      case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FDiv:
      case Op::FExp: case Op::FSqrt:
      case Op::ICmpEq: case Op::ICmpNe: case Op::ICmpSlt: case Op::ICmpSle:
      case Op::ICmpSgt: case Op::ICmpSge:
      case Op::FCmpOeq: case Op::FCmpOlt: case Op::FCmpOle:
      case Op::FCmpOgt: case Op::FCmpOge:
      case Op::Select: case Op::Trunc: case Op::ZExt: case Op::SExt:
      case Op::SIToFP: case Op::FPToSI: case Op::GEP:
      case Op::TMul: case Op::TAdd: case Op::TSub: case Op::TRelu:
        return true;
      default:
        return false;
    }
}

bool
isMemoryOp(Op op)
{
    return op == Op::Load || op == Op::Store || op == Op::TLoad ||
           op == Op::TStore;
}

bool
isTensorOp(Op op)
{
    switch (op) {
      case Op::TLoad: case Op::TStore: case Op::TMul: case Op::TAdd:
      case Op::TSub: case Op::TRelu:
        return true;
      default:
        return false;
    }
}

bool
isCompareOp(Op op)
{
    switch (op) {
      case Op::ICmpEq: case Op::ICmpNe: case Op::ICmpSlt: case Op::ICmpSle:
      case Op::ICmpSgt: case Op::ICmpSge:
      case Op::FCmpOeq: case Op::FCmpOlt: case Op::FCmpOle:
      case Op::FCmpOgt: case Op::FCmpOge:
        return true;
      default:
        return false;
    }
}

Instruction::~Instruction()
{
    dropOperands();
}

Value *
Instruction::operand(unsigned i) const
{
    muir_assert(i < operands_.size(), "operand index %u out of range", i);
    return operands_[i];
}

void
Instruction::addOperand(Value *v)
{
    muir_assert(v != nullptr, "null operand");
    operands_.push_back(v);
    v->addUser(this);
}

void
Instruction::setOperand(unsigned i, Value *v)
{
    muir_assert(i < operands_.size(), "operand index %u out of range", i);
    muir_assert(v != nullptr, "null operand");
    operands_[i]->removeUser(this);
    operands_[i] = v;
    v->addUser(this);
}

void
Instruction::replaceOperand(Value *from, Value *to)
{
    for (unsigned i = 0; i < operands_.size(); ++i) {
        if (operands_[i] == from) {
            operands_[i]->removeUser(this);
            operands_[i] = to;
            to->addUser(this);
        }
    }
}

void
Instruction::dropOperands()
{
    for (Value *v : operands_)
        v->removeUser(this);
    operands_.clear();
}

BasicBlock *
Instruction::blockOperand(unsigned i) const
{
    muir_assert(i < blockOperands_.size(), "block operand %u out of range",
                i);
    return blockOperands_[i];
}

void
Instruction::setBlockOperand(unsigned i, BasicBlock *bb)
{
    muir_assert(i < blockOperands_.size(), "block operand %u out of range",
                i);
    blockOperands_[i] = bb;
}

void
Instruction::addIncoming(Value *v, BasicBlock *bb)
{
    muir_assert(op_ == Op::Phi, "addIncoming on non-phi");
    addOperand(v);
    addBlockOperand(bb);
}

} // namespace muir::ir
