/**
 * @file
 * Behaviour-level loop unrolling. The paper's front end deliberately
 * accepts software programs so that compiler transformations can
 * expose hardware opportunity ("we would like to leverage software
 * transformations such as loop unrolling", §2.2); after unrolling, the
 * μIR lowering turns the replicated body into parallel function units
 * — exactly the HLS interpretation of unrolling (§2.1), but decoupled
 * from the microarchitecture passes that follow.
 */
#pragma once

#include "ir/function.hh"

namespace muir::ir
{

/** Unrolling constraints/options. */
struct UnrollOptions
{
    /** Replication factor (1 = no-op). */
    unsigned factor = 2;
    /** Only unroll bodies up to this many instructions. */
    unsigned maxBodyInsts = 48;
};

/**
 * Unroll innermost canonical counted loops of fn by opts.factor.
 * A loop qualifies when: it is innermost; its bounds and step are
 * integer constants; its trip count divides the factor evenly; its
 * body is a single basic block (plus the canonical latch); and the
 * body is within the size limit. Loop-carried values are chained
 * through the replicated bodies; the induction update becomes
 * step x factor, preserving the canonical form the μIR front end
 * pattern-matches.
 *
 * @return the number of loops unrolled.
 */
unsigned unrollLoops(Function &fn, const UnrollOptions &opts = {});

} // namespace muir::ir
