#include "ir/transforms/loop_unroll.hh"

#include <map>
#include <vector>

#include "ir/analysis/cfg.hh"
#include "ir/analysis/dominators.hh"
#include "ir/analysis/loop_info.hh"
#include "ir/module.hh"
#include "support/logging.hh"

namespace muir::ir
{

namespace
{

/** Canonical-loop facts extracted before the transform. */
struct Canonical
{
    Instruction *ivPhi = nullptr;
    Instruction *cmp = nullptr;
    Instruction *ivNext = nullptr; // add(iv, step) in the latch.
    std::vector<Instruction *> carried;
    BasicBlock *preheader = nullptr;
    BasicBlock *body = nullptr;
    BasicBlock *latch = nullptr;
    int64_t begin = 0, end = 0, step = 0;
};

const Constant *
asIntConst(const Value *v)
{
    auto *c = dynamic_cast<const Constant *>(v);
    return (c && !c->isFloatConstant()) ? c : nullptr;
}

Value *
incomingFrom(const Instruction *phi, const BasicBlock *bb)
{
    for (unsigned i = 0; i < phi->numIncoming(); ++i)
        if (phi->incomingBlock(i) == bb)
            return phi->incomingValue(i);
    return nullptr;
}

/** Match the canonical shape the IRBuilder's ForLoop produces. */
bool
matchCanonical(Loop &loop, Canonical &out)
{
    BasicBlock *header = loop.header;
    if (loop.latches.size() != 1)
        return false;
    out.latch = loop.latches[0];

    Instruction *term = header->terminator();
    if (!term || term->op() != Op::CondBr)
        return false;
    auto *cmp = dynamic_cast<Instruction *>(term->operand(0));
    if (!cmp || cmp->op() != Op::ICmpSlt)
        return false;
    out.cmp = cmp;
    out.body = term->successor(0);
    if (out.body == out.latch || !loop.contains(out.body))
        return false;
    // Single-block body: body branches straight to the latch.
    auto succs = out.body->successors();
    if (succs.size() != 1 || succs[0] != out.latch)
        return false;

    for (BasicBlock *pred : header->predecessors()) {
        if (pred == out.latch)
            continue;
        if (out.preheader != nullptr)
            return false;
        out.preheader = pred;
    }
    if (!out.preheader)
        return false;

    for (const auto &inst : header->insts()) {
        if (inst->op() != Op::Phi)
            break;
        if (cmp->operand(0) == inst.get())
            out.ivPhi = inst.get();
        else
            out.carried.push_back(inst.get());
    }
    if (!out.ivPhi)
        return false;

    auto *iv_next =
        dynamic_cast<Instruction *>(incomingFrom(out.ivPhi, out.latch));
    if (!iv_next || iv_next->op() != Op::Add ||
        iv_next->parent() != out.latch)
        return false;
    out.ivNext = iv_next;

    const Value *step = iv_next->operand(0) == out.ivPhi
                            ? iv_next->operand(1)
                            : iv_next->operand(0);
    const Constant *begin_c =
        asIntConst(incomingFrom(out.ivPhi, out.preheader));
    const Constant *end_c = asIntConst(cmp->operand(1));
    const Constant *step_c = asIntConst(step);
    if (!begin_c || !end_c || !step_c || step_c->intValue() <= 0)
        return false;
    out.begin = begin_c->intValue();
    out.end = end_c->intValue();
    out.step = step_c->intValue();

    // Carried next-values must be defined in the body (or be the phi
    // itself / loop-invariant), so cloning can chain them. A next
    // value living in the header or latch cannot be chained.
    for (Instruction *phi : out.carried) {
        Value *next = incomingFrom(phi, out.latch);
        if (auto *def = dynamic_cast<Instruction *>(next)) {
            bool in_body = def->parent() == out.body;
            bool invariant = !loop.contains(def->parent());
            if (def != phi && !in_body && !invariant)
                return false;
        }
    }
    return true;
}

/** Clone the body factor-1 more times, chaining iv and carried uses. */
void
unrollOne(Function &fn, const Canonical &c, unsigned factor)
{
    Module &m = *fn.parent();
    BasicBlock *body = c.body;

    // Current mapping for iv / carried values per replica.
    std::map<const Value *, Value *> current;
    // Snapshot of the original body (excluding the terminator).
    std::vector<Instruction *> original;
    for (const auto &inst : body->insts())
        if (!inst->isTerminator())
            original.push_back(inst.get());

    // next-value producers of carried phis (pre-unroll).
    std::map<const Instruction *, Value *> next_of;
    for (Instruction *phi : c.carried)
        next_of[phi] = incomingFrom(phi, c.latch);
    Value *iv_step_type_zero = nullptr;
    (void)iv_step_type_zero;

    std::map<const Value *, Value *> carried_now;
    for (Instruction *phi : c.carried) {
        Value *next = next_of[phi];
        carried_now[phi] = next; // Value after replica 0.
    }

    for (unsigned k = 1; k < factor; ++k) {
        std::map<const Value *, Value *> clone_map;
        // iv for this replica: iv + k*step.
        auto iv_off = std::make_unique<Instruction>(
            Op::Add, c.ivPhi->type(),
            c.ivPhi->name() + ".u" + std::to_string(k));
        Instruction *iv_k = body->insertBeforeTerminator(std::move(iv_off));
        iv_k->addOperand(c.ivPhi);
        iv_k->addOperand(m.constInt(c.ivPhi->type(), c.step * k));
        clone_map[c.ivPhi] = iv_k;
        // Carried phis read the running chained value.
        for (Instruction *phi : c.carried)
            clone_map[phi] = carried_now[phi];

        auto resolve = [&](Value *v) -> Value * {
            auto it = clone_map.find(v);
            return it == clone_map.end() ? v : it->second;
        };

        for (Instruction *inst : original) {
            auto clone = std::make_unique<Instruction>(
                inst->op(), inst->type(),
                inst->name().empty()
                    ? ""
                    : inst->name() + ".u" + std::to_string(k));
            Instruction *cl = body->insertBeforeTerminator(
                std::move(clone));
            for (Value *operand : inst->operands())
                cl->addOperand(resolve(operand));
            cl->setCallee(inst->callee());
            clone_map[inst] = cl;
        }
        // Advance the carried chain through this replica.
        for (Instruction *phi : c.carried) {
            Value *next = next_of[phi];
            carried_now[phi] = resolve(next);
        }
    }

    // Retarget the latch: iv += step*factor; carried phis take the
    // final replica's values.
    unsigned step_idx = c.ivNext->operand(0) == c.ivPhi ? 1 : 0;
    c.ivNext->setOperand(step_idx, m.constInt(c.ivPhi->type(),
                                              c.step * factor));
    for (Instruction *phi : c.carried) {
        for (unsigned i = 0; i < phi->numIncoming(); ++i)
            if (phi->incomingBlock(i) == c.latch)
                phi->setOperand(i, carried_now[phi]);
    }
}

} // namespace

unsigned
unrollLoops(Function &fn, const UnrollOptions &opts)
{
    if (opts.factor <= 1)
        return 0;
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);

    unsigned unrolled = 0;
    for (Loop *loop : li.allLoops()) {
        if (!loop->subloops.empty())
            continue; // Innermost only.
        Canonical c;
        if (!matchCanonical(*loop, c))
            continue;
        int64_t trips = c.step > 0 ? (c.end - c.begin + c.step - 1) / c.step
                                   : 0;
        if (trips <= 0 || trips % opts.factor != 0)
            continue;
        unsigned body_size = c.body->insts().size();
        if (body_size > opts.maxBodyInsts)
            continue;
        unrollOne(fn, c, opts.factor);
        ++unrolled;
    }
    return unrolled;
}

} // namespace muir::ir
