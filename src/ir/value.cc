#include "ir/value.hh"

#include <algorithm>

#include "ir/instruction.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::ir
{

void
Value::replaceAllUsesWith(Value *replacement)
{
    muir_assert(replacement != this, "RAUW with self");
    // Copy: replaceOperand mutates users_.
    std::vector<Instruction *> users_copy = users_;
    for (Instruction *user : users_copy)
        user->replaceOperand(this, replacement);
}

void
Value::removeUser(Instruction *user)
{
    auto it = std::find(users_.begin(), users_.end(), user);
    muir_assert(it != users_.end(), "removing non-user");
    users_.erase(it);
}

std::string
Constant::str() const
{
    if (isFloat_)
        return fmt("%g", fpValue_);
    return fmt("%lld", static_cast<long long>(intValue_));
}

} // namespace muir::ir
