/**
 * @file
 * Value hierarchy of the mini compiler IR: everything an instruction
 * can consume is a Value — function arguments, constants, or the
 * results of other instructions. Def-use chains are maintained so the
 * verifier and front end can walk users.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hh"

namespace muir::ir
{

class Instruction;

/** Base class of everything usable as an instruction operand. */
class Value
{
  public:
    enum class VKind { Argument, Constant, Instruction };

    Value(VKind vkind, Type type, std::string name)
        : vkind_(vkind), type_(std::move(type)), name_(std::move(name))
    {
    }
    virtual ~Value() = default;

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    VKind valueKind() const { return vkind_; }
    const Type &type() const { return type_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Instructions currently using this value as an operand. */
    const std::vector<Instruction *> &users() const { return users_; }

    /** Redirect every use of this value to replacement. */
    void replaceAllUsesWith(Value *replacement);

    /** @name Def-use maintenance (called by Instruction only) @{ */
    void addUser(Instruction *user) { users_.push_back(user); }
    void removeUser(Instruction *user);
    /** @} */

  private:
    VKind vkind_;
    Type type_;
    std::string name_;
    std::vector<Instruction *> users_;
};

/** A formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(Type type, std::string name, unsigned index)
        : Value(VKind::Argument, std::move(type), std::move(name)),
          index_(index)
    {
    }

    /** Position in the function's parameter list. */
    unsigned index() const { return index_; }

  private:
    unsigned index_;
};

/** An integer or floating-point literal. */
class Constant : public Value
{
  public:
    /** Integer constant of the given type. */
    Constant(Type type, int64_t value)
        : Value(VKind::Constant, std::move(type), ""), intValue_(value)
    {
    }

    /** f32 constant. */
    Constant(Type type, double value)
        : Value(VKind::Constant, std::move(type), ""), fpValue_(value),
          isFloat_(true)
    {
    }

    bool isFloatConstant() const { return isFloat_; }
    int64_t intValue() const { return intValue_; }
    double fpValue() const { return fpValue_; }

    /** Printable literal, e.g. "42" or "3.5f". */
    std::string str() const;

  private:
    int64_t intValue_ = 0;
    double fpValue_ = 0.0;
    bool isFloat_ = false;
};

} // namespace muir::ir
