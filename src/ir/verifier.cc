#include "ir/verifier.hh"

#include <algorithm>
#include <set>

#include "ir/printer.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::ir
{

namespace
{

void
verifyFunction(const Function &fn, std::vector<std::string> &errors)
{
    auto err = [&](const std::string &msg) {
        errors.push_back(fmt("%s: %s", fn.name().c_str(), msg.c_str()));
    };

    if (fn.blocks().empty()) {
        err("function has no blocks");
        return;
    }

    std::set<const Value *> defined;
    for (const auto &arg : fn.args())
        defined.insert(arg.get());

    // Collect all instruction results first: we check dominance only
    // loosely (defined somewhere in the function) — full SSA dominance
    // is implied by construction through IRBuilder.
    for (const auto &bb : fn.blocks())
        for (const auto &inst : bb->insts())
            defined.insert(inst.get());

    for (const auto &bb : fn.blocks()) {
        const auto &insts = bb->insts();
        if (insts.empty() || !insts.back()->isTerminator()) {
            err(fmt("block %s lacks a terminator", bb->name().c_str()));
            continue;
        }
        bool seen_nonphi = false;
        for (size_t i = 0; i < insts.size(); ++i) {
            const Instruction &inst = *insts[i];
            if (inst.isTerminator() && i + 1 != insts.size())
                err(fmt("terminator %s mid-block in %s",
                        opName(inst.op()), bb->name().c_str()));
            if (inst.op() == Op::Phi) {
                if (seen_nonphi)
                    err(fmt("phi %%%s after non-phi in %s",
                            inst.name().c_str(), bb->name().c_str()));
            } else {
                seen_nonphi = true;
            }
            for (const Value *operand : inst.operands()) {
                if (operand->valueKind() == Value::VKind::Instruction &&
                    !defined.count(operand)) {
                    err(fmt("use of undefined value in %s",
                            printInst(inst).c_str()));
                }
            }
            if (inst.op() == Op::Phi) {
                auto preds = bb->predecessors();
                if (inst.numIncoming() != preds.size()) {
                    err(fmt("phi %%%s has %u incoming, block %s has %zu "
                            "preds",
                            inst.name().c_str(), inst.numIncoming(),
                            bb->name().c_str(), preds.size()));
                }
                for (unsigned k = 0; k < inst.numIncoming(); ++k) {
                    BasicBlock *in = inst.incomingBlock(k);
                    if (std::find(preds.begin(), preds.end(), in) ==
                        preds.end()) {
                        err(fmt("phi %%%s incoming from non-pred %s",
                                inst.name().c_str(), in->name().c_str()));
                    }
                    if (inst.incomingValue(k)->type() != inst.type())
                        err(fmt("phi %%%s incoming type mismatch",
                                inst.name().c_str()));
                }
            }
            if (inst.op() == Op::Ret) {
                if (fn.returnType().isVoid()) {
                    if (inst.numOperands() != 0)
                        err("ret with value in void function");
                } else if (inst.numOperands() != 1 ||
                           inst.operand(0)->type() != fn.returnType()) {
                    err("ret value/type mismatch");
                }
            }
            if (inst.op() == Op::CondBr &&
                !inst.operand(0)->type().isBool())
                err("condbr condition is not i1");
            if (inst.op() == Op::Detach && inst.numSuccessors() != 2)
                err("detach needs (detached, continue) successors");
            if (inst.op() == Op::Call && inst.callee() == nullptr)
                err("call without callee");
        }
    }
}

} // namespace

std::vector<std::string>
verify(const Module &module)
{
    std::vector<std::string> errors;
    for (const auto &fn : module.functions())
        verifyFunction(*fn, errors);
    return errors;
}

void
verifyOrDie(const Module &module)
{
    auto errors = verify(module);
    if (!errors.empty())
        muir_panic("IR verification failed:\n  %s",
                   join(errors, "\n  ").c_str());
}

} // namespace muir::ir
