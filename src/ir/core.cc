/**
 * @file
 * Implementations for BasicBlock, Function and Module.
 */
#include <algorithm>

#include "ir/basic_block.hh"
#include "ir/function.hh"
#include "ir/module.hh"
#include "support/logging.hh"

namespace muir::ir
{

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> inst)
{
    muir_assert(terminator() == nullptr,
                "appending to terminated block %s", name_.c_str());
    inst->setParent(this);
    insts_.push_back(std::move(inst));
    return insts_.back().get();
}

Instruction *
BasicBlock::insertPhi(std::unique_ptr<Instruction> inst)
{
    muir_assert(inst->op() == Op::Phi, "insertPhi of non-phi");
    inst->setParent(this);
    auto it = insts_.begin();
    while (it != insts_.end() && (*it)->op() == Op::Phi)
        ++it;
    it = insts_.insert(it, std::move(inst));
    return it->get();
}

Instruction *
BasicBlock::insertBeforeTerminator(std::unique_ptr<Instruction> inst)
{
    muir_assert(terminator() != nullptr,
                "insertBeforeTerminator on open block %s", name_.c_str());
    inst->setParent(this);
    auto it = insts_.insert(insts_.end() - 1, std::move(inst));
    return it->get();
}

Instruction *
BasicBlock::terminator() const
{
    if (insts_.empty())
        return nullptr;
    Instruction *last = insts_.back().get();
    return last->isTerminator() ? last : nullptr;
}

std::vector<BasicBlock *>
BasicBlock::successors() const
{
    Instruction *term = terminator();
    if (!term)
        return {};
    return term->blockOperands();
}

std::vector<BasicBlock *>
BasicBlock::predecessors() const
{
    std::vector<BasicBlock *> preds;
    for (const auto &bb : parent_->blocks()) {
        auto succs = bb->successors();
        if (std::find(succs.begin(), succs.end(), this) != succs.end())
            preds.push_back(bb.get());
    }
    return preds;
}

Function::~Function()
{
    for (const auto &bb : blocks_)
        for (const auto &inst : bb->insts())
            inst->dropOperands();
}

Argument *
Function::addArg(Type type, std::string name)
{
    args_.push_back(std::make_unique<Argument>(std::move(type),
                                               std::move(name),
                                               args_.size()));
    return args_.back().get();
}

Argument *
Function::arg(unsigned i) const
{
    muir_assert(i < args_.size(), "arg index %u out of range in %s", i,
                name_.c_str());
    return args_[i].get();
}

BasicBlock *
Function::addBlock(std::string name)
{
    blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
    return blocks_.back().get();
}

BasicBlock *
Function::entry() const
{
    muir_assert(!blocks_.empty(), "function %s has no blocks",
                name_.c_str());
    return blocks_.front().get();
}

unsigned
Function::numInsts() const
{
    unsigned n = 0;
    for (const auto &bb : blocks_)
        n += bb->insts().size();
    return n;
}

Function *
Module::addFunction(std::string name, Type return_type)
{
    muir_assert(function(name) == nullptr, "duplicate function %s",
                name.c_str());
    functions_.push_back(std::make_unique<Function>(std::move(name),
                                                    std::move(return_type),
                                                    this));
    return functions_.back().get();
}

Function *
Module::function(const std::string &name) const
{
    for (const auto &f : functions_)
        if (f->name() == name)
            return f.get();
    return nullptr;
}

GlobalArray *
Module::addGlobal(std::string name, Type elem_type, uint64_t num_elems)
{
    muir_assert(global(name) == nullptr, "duplicate global %s",
                name.c_str());
    unsigned space_id = globals_.size() + 1; // Space 0 is reserved: DRAM.
    globals_.push_back(std::make_unique<GlobalArray>(
        elem_type, num_elems, std::move(name), space_id));
    return globals_.back().get();
}

GlobalArray *
Module::global(const std::string &name) const
{
    for (const auto &g : globals_)
        if (g->name() == name)
            return g.get();
    return nullptr;
}

Constant *
Module::constInt(Type type, int64_t value)
{
    auto key = std::make_pair(type.bits(), value);
    auto it = intConstants_.find(key);
    if (it != intConstants_.end())
        return it->second;
    constants_.push_back(std::make_unique<Constant>(type, value));
    Constant *c = constants_.back().get();
    intConstants_[key] = c;
    return c;
}

Constant *
Module::constF32(double value)
{
    auto it = fpConstants_.find(value);
    if (it != fpConstants_.end())
        return it->second;
    constants_.push_back(std::make_unique<Constant>(Type::f32(), value));
    Constant *c = constants_.back().get();
    fpConstants_[value] = c;
    return c;
}

unsigned
Module::numInsts() const
{
    unsigned n = 0;
    for (const auto &f : functions_)
        n += f->numInsts();
    return n;
}

} // namespace muir::ir
