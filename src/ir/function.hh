/**
 * @file
 * Functions: argument lists plus an owned list of basic blocks, the
 * first of which is the entry block.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hh"
#include "ir/value.hh"

namespace muir::ir
{

class Module;

/** A function definition. */
class Function
{
  public:
    Function(std::string name, Type return_type, Module *parent)
        : name_(std::move(name)), returnType_(std::move(return_type)),
          parent_(parent)
    {
    }

    Function(const Function &) = delete;
    Function &operator=(const Function &) = delete;

    /**
     * Severs every def-use edge before members are destroyed, so
     * instruction destruction order (and the module's constant pool
     * lifetime) cannot leave dangling user-list entries.
     */
    ~Function();

    const std::string &name() const { return name_; }
    const Type &returnType() const { return returnType_; }
    Module *parent() const { return parent_; }

    /** Append a formal parameter. */
    Argument *addArg(Type type, std::string name);

    const std::vector<std::unique_ptr<Argument>> &args() const
    {
        return args_;
    }
    Argument *arg(unsigned i) const;
    unsigned numArgs() const { return args_.size(); }

    /** Create and append a basic block. */
    BasicBlock *addBlock(std::string name);

    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    BasicBlock *entry() const;

    /** Total instruction count (for stats/tests). */
    unsigned numInsts() const;

  private:
    std::string name_;
    Type returnType_;
    Module *parent_;
    std::vector<std::unique_ptr<Argument>> args_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

} // namespace muir::ir
