/**
 * @file
 * Modules: the top-level IR container. A module owns functions,
 * deduplicated constants, and global arrays. Each global array is a
 * distinct memory object; its index doubles as the memory-space id the
 * points-to analysis reports (the LLVMPointsto() of Algorithm 2).
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace muir::ir
{

/**
 * A statically allocated global array. Workloads bind input data to
 * globals before interpretation; the address is assigned by the
 * interpreter's memory allocator.
 */
class GlobalArray : public Value
{
  public:
    GlobalArray(Type elem_type, uint64_t num_elems, std::string name,
                unsigned space_id)
        : Value(VKind::Argument, Type::ptrTo(elem_type), std::move(name)),
          elemType_(elem_type), numElems_(num_elems), spaceId_(space_id)
    {
    }

    const Type &elemType() const { return elemType_; }
    uint64_t numElems() const { return numElems_; }
    uint64_t sizeBytes() const { return numElems_ * elemType_.sizeBytes(); }

    /** Memory-space / memory-object id (unique per global). */
    unsigned spaceId() const { return spaceId_; }

  private:
    Type elemType_;
    uint64_t numElems_;
    unsigned spaceId_;
};

/** The top-level IR container. */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    const std::string &name() const { return name_; }

    /** Create and register a function. */
    Function *addFunction(std::string name, Type return_type);

    /** Look up a function by name; nullptr if absent. */
    Function *function(const std::string &name) const;

    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    /** Create a global array (a new memory object / space). */
    GlobalArray *addGlobal(std::string name, Type elem_type,
                           uint64_t num_elems);

    GlobalArray *global(const std::string &name) const;

    const std::vector<std::unique_ptr<GlobalArray>> &globals() const
    {
        return globals_;
    }

    /** @name Deduplicated constants @{ */
    Constant *constInt(Type type, int64_t value);
    Constant *constI32(int32_t value) { return constInt(Type::i32(), value); }
    Constant *constI64(int64_t value) { return constInt(Type::i64(), value); }
    Constant *constBool(bool value) { return constInt(Type::i1(), value); }
    Constant *constF32(double value);
    /** @} */

    /** Total instruction count across all functions. */
    unsigned numInsts() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<GlobalArray>> globals_;
    std::vector<std::unique_ptr<Constant>> constants_;
    std::map<std::pair<unsigned, int64_t>, Constant *> intConstants_;
    std::map<double, Constant *> fpConstants_;
    // Functions are declared last so they are destroyed first: their
    // destructor severs def-use edges into globals/constants above.
    std::vector<std::unique_ptr<Function>> functions_;
};

} // namespace muir::ir
