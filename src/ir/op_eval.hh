/**
 * @file
 * Side-effect-free opcode semantics, shared by the compiler-IR
 * interpreter and the μIR functional executor so both levels compute
 * identical values (the "passes preserve behaviour" property depends
 * on this single source of truth).
 */
#pragma once

#include <vector>

#include "ir/instruction.hh"
#include "ir/interp.hh"

namespace muir::ir
{

/**
 * Apply a pure (non-memory, non-control) op to evaluated operands.
 * Covers integer/FP arithmetic, compares, casts, select, and the
 * tensor compute intrinsics. result_type is needed by width-sensitive
 * casts (trunc/zext).
 */
RuntimeValue applyPureOp(Op op, const std::vector<RuntimeValue> &operands,
                         const Type &result_type);

} // namespace muir::ir
