#include "ir/type.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::ir
{

Type
Type::intTy(unsigned bits)
{
    muir_assert(bits == 1 || bits == 8 || bits == 16 || bits == 32 ||
                    bits == 64,
                "unsupported integer width %u", bits);
    Type t;
    t.kind_ = Kind::Int;
    t.bits_ = bits;
    return t;
}

Type
Type::f32()
{
    Type t;
    t.kind_ = Kind::Float;
    t.bits_ = 32;
    return t;
}

Type
Type::tensor(unsigned rows, unsigned cols, bool elem_float)
{
    muir_assert(rows > 0 && cols > 0, "empty tensor shape %ux%u", rows, cols);
    Type t;
    t.kind_ = Kind::Tensor;
    t.rows_ = rows;
    t.cols_ = cols;
    t.elemFloat_ = elem_float;
    t.bits_ = 32;
    return t;
}

Type
Type::ptrTo(const Type &pointee)
{
    muir_assert(!pointee.isVoid() && !pointee.isPtr(),
                "pointer to %s not supported", pointee.str().c_str());
    Type t;
    t.kind_ = Kind::Ptr;
    t.bits_ = 64;
    t.pointee_ = std::make_shared<Type>(pointee);
    return t;
}

const Type &
Type::pointee() const
{
    muir_assert(isPtr() && pointee_, "pointee() on non-pointer %s",
                str().c_str());
    return *pointee_;
}

unsigned
Type::sizeBytes() const
{
    switch (kind_) {
      case Kind::Void:
        return 0;
      case Kind::Int:
        return bits_ <= 8 ? 1 : bits_ / 8;
      case Kind::Float:
        return 4;
      case Kind::Ptr:
        return 8;
      case Kind::Tensor:
        return rows_ * cols_ * 4;
    }
    return 0;
}

bool
Type::operator==(const Type &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Void:
        return true;
      case Kind::Int:
      case Kind::Float:
        return bits_ == other.bits_;
      case Kind::Ptr:
        return pointee() == other.pointee();
      case Kind::Tensor:
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               elemFloat_ == other.elemFloat_;
    }
    return false;
}

std::string
Type::str() const
{
    switch (kind_) {
      case Kind::Void:
        return "void";
      case Kind::Int:
        return fmt("i%u", bits_);
      case Kind::Float:
        return "f32";
      case Kind::Ptr:
        return pointee().str() + "*";
      case Kind::Tensor:
        return fmt("tensor<%ux%ux%s>", rows_, cols_,
                   elemFloat_ ? "f32" : "i32");
    }
    return "?";
}

} // namespace muir::ir
