/**
 * @file
 * Text rendering of the mini compiler IR (LLVM-flavoured syntax), for
 * debugging and golden-file tests.
 */
#pragma once

#include <string>

#include "ir/module.hh"

namespace muir::ir
{

/** Render one instruction, e.g. "%sum = fadd f32 %a, %b". */
std::string printInst(const Instruction &inst);

/** Render a whole function. */
std::string printFunction(const Function &fn);

/** Render a whole module, globals first. */
std::string printModule(const Module &module);

} // namespace muir::ir
