/**
 * @file
 * IRBuilder: the construction API workloads use to express programs
 * (standing in for the paper's LLVM/Tapir front end), plus a ForLoop
 * helper that builds canonical counted loops — serial or Cilk-style
 * parallel (detach/reattach/sync) — with loop-carried values.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/module.hh"

namespace muir::ir
{

/** Builds instructions at an insertion point, with type checking. */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module) : module_(module) {}

    Module &module() { return module_; }

    /** @name Insertion point @{ */
    void setInsertPoint(BasicBlock *bb) { bb_ = bb; }
    BasicBlock *insertBlock() const { return bb_; }
    /** @} */

    /** @name Integer / FP arithmetic @{ */
    Value *binary(Op op, Value *lhs, Value *rhs, const std::string &name);
    Value *add(Value *l, Value *r, const std::string &n = "");
    Value *sub(Value *l, Value *r, const std::string &n = "");
    Value *mul(Value *l, Value *r, const std::string &n = "");
    Value *sdiv(Value *l, Value *r, const std::string &n = "");
    Value *srem(Value *l, Value *r, const std::string &n = "");
    Value *andOp(Value *l, Value *r, const std::string &n = "");
    Value *orOp(Value *l, Value *r, const std::string &n = "");
    Value *xorOp(Value *l, Value *r, const std::string &n = "");
    Value *shl(Value *l, Value *r, const std::string &n = "");
    Value *lshr(Value *l, Value *r, const std::string &n = "");
    Value *ashr(Value *l, Value *r, const std::string &n = "");
    Value *fadd(Value *l, Value *r, const std::string &n = "");
    Value *fsub(Value *l, Value *r, const std::string &n = "");
    Value *fmul(Value *l, Value *r, const std::string &n = "");
    Value *fdiv(Value *l, Value *r, const std::string &n = "");
    Value *fexp(Value *v, const std::string &n = "");
    Value *fsqrt(Value *v, const std::string &n = "");
    /** @} */

    /** @name Compares (result i1) @{ */
    Value *icmp(Op op, Value *l, Value *r, const std::string &n = "");
    Value *fcmp(Op op, Value *l, Value *r, const std::string &n = "");
    /** @} */

    /** @name Casts and select @{ */
    Value *select(Value *cond, Value *t, Value *f, const std::string &n = "");
    Value *zext(Value *v, Type to, const std::string &n = "");
    Value *sext(Value *v, Type to, const std::string &n = "");
    Value *trunc(Value *v, Type to, const std::string &n = "");
    Value *sitofp(Value *v, const std::string &n = "");
    Value *fptosi(Value *v, Type to, const std::string &n = "");
    /** @} */

    /** @name Memory @{ */
    /** Element-granular address: &base[index]. */
    Value *gep(Value *base, Value *index, const std::string &n = "");
    Value *load(Value *ptr, const std::string &n = "");
    Instruction *store(Value *value, Value *ptr);
    /** @} */

    /** @name Tensor2D intrinsics @{ */
    Value *tload(Value *ptr, const std::string &n = "");
    Instruction *tstore(Value *value, Value *ptr);
    Value *tmul(Value *l, Value *r, const std::string &n = "");
    Value *tadd(Value *l, Value *r, const std::string &n = "");
    Value *tsub(Value *l, Value *r, const std::string &n = "");
    Value *trelu(Value *v, const std::string &n = "");
    /** @} */

    /** @name Control flow @{ */
    Instruction *br(BasicBlock *target);
    Instruction *condBr(Value *cond, BasicBlock *t, BasicBlock *f);
    Instruction *ret(Value *value = nullptr);
    Instruction *phi(Type type, const std::string &n = "");
    Value *call(Function *callee, const std::vector<Value *> &args,
                const std::string &n = "");
    /** @} */

    /** @name Tapir parallel control flow @{ */
    Instruction *detach(BasicBlock *detached, BasicBlock *continuation);
    Instruction *reattach(BasicBlock *continuation);
    Instruction *sync(BasicBlock *next);
    /** @} */

    /** @name Constant shorthands @{ */
    Constant *i32(int32_t v) { return module_.constI32(v); }
    Constant *i64(int64_t v) { return module_.constI64(v); }
    Constant *boolean(bool v) { return module_.constBool(v); }
    Constant *f32(double v) { return module_.constF32(v); }
    /** @} */

  private:
    Instruction *insert(Op op, Type type, const std::string &name);
    std::string nextName(const std::string &hint);

    Module &module_;
    BasicBlock *bb_ = nullptr;
    unsigned nameCounter_ = 0;
};

/**
 * Canonical counted loop builder: for (iv = begin; iv < end; iv += step).
 *
 * Construction emits preheader branch, header (phi + compare + condbr)
 * and positions the builder in the body block. Loop-carried values can
 * be registered with addCarried()/setCarriedNext() (serial loops only).
 * finish() closes the latch/back-edge and moves the builder to the exit
 * block. Parallel loops wrap the body in detach/reattach and emit a
 * sync on exit, matching Tapir's lowering of cilk_for.
 */
class ForLoop
{
  public:
    ForLoop(IRBuilder &b, const std::string &name, Value *begin, Value *end,
            Value *step, bool parallel = false);

    /** The induction variable (valid inside the body). */
    Value *iv() const { return iv_; }

    /** Register a loop-carried value initialized to init. */
    Instruction *addCarried(Value *init, const std::string &name);

    /** Set the next-iteration value of a carried phi. */
    void setCarriedNext(Instruction *phi, Value *next);

    /** Close the loop; the builder continues in the exit block. */
    void finish();

    BasicBlock *header() const { return header_; }
    BasicBlock *body() const { return body_; }
    BasicBlock *exit() const { return exit_; }

  private:
    IRBuilder &b_;
    bool parallel_;
    bool finished_ = false;
    Value *step_;
    Instruction *iv_ = nullptr;
    BasicBlock *preheader_ = nullptr;
    BasicBlock *header_ = nullptr;
    BasicBlock *body_ = nullptr;
    BasicBlock *latch_ = nullptr;
    BasicBlock *exit_ = nullptr;
    std::vector<std::pair<Instruction *, Value *>> carried_;
};

} // namespace muir::ir
