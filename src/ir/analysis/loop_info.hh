/**
 * @file
 * Natural-loop discovery on the dominator tree. Loops become μIR task
 * blocks in Stage 1 of the front end (each nested loop is its own
 * asynchronously scheduled task, §3.5).
 */
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "ir/analysis/dominators.hh"

namespace muir::ir
{

/** One natural loop: header + body blocks + nesting links. */
struct Loop
{
    BasicBlock *header = nullptr;
    /** All blocks of the loop, including subloop blocks. */
    std::set<BasicBlock *> blocks;
    /** Blocks branching back to the header. */
    std::vector<BasicBlock *> latches;
    Loop *parent = nullptr;
    std::vector<Loop *> subloops;

    /** Nesting depth; top-level loops have depth 1. */
    unsigned depth() const
    {
        unsigned d = 1;
        for (Loop *p = parent; p; p = p->parent)
            ++d;
        return d;
    }

    bool contains(const BasicBlock *bb) const
    {
        return blocks.count(const_cast<BasicBlock *>(bb)) > 0;
    }

    /** Blocks belonging to this loop but to no subloop. */
    std::vector<BasicBlock *> ownBlocks() const;
};

/** All natural loops of a function. */
class LoopInfo
{
  public:
    LoopInfo(const Cfg &cfg, const DominatorTree &dt);

    /** Outermost loops in program order. */
    const std::vector<Loop *> &topLevel() const { return topLevel_; }

    /** All loops, outer before inner. */
    std::vector<Loop *> allLoops() const;

    /** Innermost loop containing bb, or nullptr. */
    Loop *loopFor(const BasicBlock *bb) const;

  private:
    std::vector<std::unique_ptr<Loop>> loops_;
    std::vector<Loop *> topLevel_;
    std::map<const BasicBlock *, Loop *> innermost_;
};

} // namespace muir::ir
