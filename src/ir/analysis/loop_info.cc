#include "ir/analysis/loop_info.hh"

#include <algorithm>

#include "support/logging.hh"

namespace muir::ir
{

std::vector<BasicBlock *>
Loop::ownBlocks() const
{
    std::vector<BasicBlock *> own;
    for (BasicBlock *bb : blocks) {
        bool in_sub = false;
        for (const Loop *sub : subloops)
            if (sub->contains(bb))
                in_sub = true;
        if (!in_sub)
            own.push_back(bb);
    }
    return own;
}

LoopInfo::LoopInfo(const Cfg &cfg, const DominatorTree &dt)
{
    // Find back edges (tail -> header where header dominates tail), in
    // RPO so outer loops are discovered before inner ones.
    std::map<BasicBlock *, Loop *> header_loop;
    for (BasicBlock *bb : cfg.rpo()) {
        for (BasicBlock *succ : bb->successors()) {
            if (!dt.dominates(succ, bb))
                continue;
            // bb -> succ is a back edge; succ is a loop header.
            Loop *loop = nullptr;
            auto it = header_loop.find(succ);
            if (it != header_loop.end()) {
                loop = it->second;
            } else {
                loops_.push_back(std::make_unique<Loop>());
                loop = loops_.back().get();
                loop->header = succ;
                header_loop[succ] = loop;
            }
            loop->latches.push_back(bb);
            // Grow the loop body: reverse reachability from the latch
            // to the header.
            std::vector<BasicBlock *> stack{bb};
            loop->blocks.insert(succ);
            while (!stack.empty()) {
                BasicBlock *cur = stack.back();
                stack.pop_back();
                if (!loop->blocks.insert(cur).second)
                    continue;
                for (BasicBlock *pred : cfg.preds(cur))
                    stack.push_back(pred);
            }
        }
    }

    // Establish nesting: loop A is a child of the smallest loop B != A
    // that contains A's header.
    for (auto &loop : loops_) {
        Loop *best = nullptr;
        for (auto &other : loops_) {
            if (other.get() == loop.get())
                continue;
            if (!other->contains(loop->header))
                continue;
            if (!best || other->blocks.size() < best->blocks.size())
                best = other.get();
        }
        loop->parent = best;
        if (best)
            best->subloops.push_back(loop.get());
        else
            topLevel_.push_back(loop.get());
    }

    // Innermost-loop map.
    for (auto &loop : loops_) {
        for (BasicBlock *bb : loop->blocks) {
            auto it = innermost_.find(bb);
            if (it == innermost_.end() ||
                loop->blocks.size() < it->second->blocks.size()) {
                innermost_[bb] = loop.get();
            }
        }
    }

    // Deterministic order: by header RPO index.
    auto by_rpo = [&](Loop *a, Loop *b) {
        return cfg.rpoIndex(a->header) < cfg.rpoIndex(b->header);
    };
    std::sort(topLevel_.begin(), topLevel_.end(), by_rpo);
    for (auto &loop : loops_)
        std::sort(loop->subloops.begin(), loop->subloops.end(), by_rpo);
}

std::vector<Loop *>
LoopInfo::allLoops() const
{
    std::vector<Loop *> all;
    std::vector<Loop *> stack(topLevel_.rbegin(), topLevel_.rend());
    while (!stack.empty()) {
        Loop *loop = stack.back();
        stack.pop_back();
        all.push_back(loop);
        for (auto it = loop->subloops.rbegin(); it != loop->subloops.rend();
             ++it) {
            stack.push_back(*it);
        }
    }
    return all;
}

Loop *
LoopInfo::loopFor(const BasicBlock *bb) const
{
    auto it = innermost_.find(bb);
    return it == innermost_.end() ? nullptr : it->second;
}

} // namespace muir::ir
