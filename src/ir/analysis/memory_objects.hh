/**
 * @file
 * Memory-object (points-to) analysis. Every pointer in our IR is
 * derived from a GlobalArray through GEP/select/phi chains, so each
 * memory operation maps to a unique memory-space id — exactly the
 * LLVMPointsto() helper the paper's Algorithm 2 (scratchpad banking)
 * invokes. Pointers that cannot be resolved to a single object map to
 * space 0 (global/DRAM).
 */
#pragma once

#include <map>

#include "ir/module.hh"

namespace muir::ir
{

/** Space id for "unknown / global memory" (behind the cache). */
inline constexpr unsigned kGlobalSpace = 0;

/** Points-to facts for one function. */
class MemoryObjects
{
  public:
    explicit MemoryObjects(const Function &fn);

    /**
     * The memory object a pointer value refers to, or nullptr when
     * unresolvable (then space is kGlobalSpace).
     */
    const GlobalArray *objectFor(const Value *pointer) const;

    /** Memory-space id for a pointer value. */
    unsigned spaceFor(const Value *pointer) const;

    /** Memory-space id accessed by a Load/Store/TLoad/TStore. */
    unsigned spaceForAccess(const Instruction &mem_op) const;

  private:
    const GlobalArray *resolve(const Value *pointer,
                               std::map<const Value *,
                                        const GlobalArray *> &memo,
                               unsigned depth) const;

    mutable std::map<const Value *, const GlobalArray *> memo_;
};

} // namespace muir::ir
