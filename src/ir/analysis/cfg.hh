/**
 * @file
 * Control-flow-graph utilities: reverse-post-order, predecessor maps,
 * and Tapir detach-region discovery.
 */
#pragma once

#include <map>
#include <vector>

#include "ir/function.hh"

namespace muir::ir
{

/** Cached CFG facts for one function. */
class Cfg
{
  public:
    explicit Cfg(const Function &fn);

    const Function &function() const { return *fn_; }

    /** Blocks in reverse post order from the entry. */
    const std::vector<BasicBlock *> &rpo() const { return rpo_; }

    /** RPO index of a block (entry = 0). */
    unsigned rpoIndex(const BasicBlock *bb) const;

    /** Predecessors (computed once, unlike BasicBlock::predecessors). */
    const std::vector<BasicBlock *> &preds(const BasicBlock *bb) const;

    /** @return true if bb is reachable from the entry. */
    bool reachable(const BasicBlock *bb) const;

  private:
    const Function *fn_;
    std::vector<BasicBlock *> rpo_;
    std::map<const BasicBlock *, unsigned> rpoIndex_;
    std::map<const BasicBlock *, std::vector<BasicBlock *>> preds_;
};

/**
 * The blocks of a detached (spawned) region: everything reachable from
 * the detach's first successor without passing through the reattach
 * continuation. The region always terminates in reattach(continuation).
 */
std::vector<BasicBlock *> detachRegion(const Instruction &detach);

} // namespace muir::ir
