#include "ir/analysis/memory_objects.hh"

#include "support/logging.hh"

namespace muir::ir
{

MemoryObjects::MemoryObjects(const Function &fn)
{
    // Resolution is demand-driven; pre-warm the memo with every pointer
    // used by a memory op so spaceForAccess is O(1) afterwards.
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (!isMemoryOp(inst->op()))
                continue;
            unsigned ptr_idx = (inst->op() == Op::Store ||
                                inst->op() == Op::TStore)
                                   ? 1
                                   : 0;
            std::map<const Value *, const GlobalArray *> in_flight;
            resolve(inst->operand(ptr_idx), in_flight, 0);
        }
    }
}

const GlobalArray *
MemoryObjects::resolve(const Value *pointer,
                       std::map<const Value *, const GlobalArray *> &memo,
                       unsigned depth) const
{
    auto it = memo_.find(pointer);
    if (it != memo_.end())
        return it->second;
    if (depth > 64 || memo.count(pointer))
        return nullptr; // Cycle (phi) — treat conservatively.
    memo[pointer] = nullptr;

    const GlobalArray *result = nullptr;
    if (auto *g = dynamic_cast<const GlobalArray *>(pointer)) {
        result = g;
    } else if (auto *inst = dynamic_cast<const Instruction *>(pointer)) {
        switch (inst->op()) {
          case Op::GEP:
            result = resolve(inst->operand(0), memo, depth + 1);
            break;
          case Op::Select: {
            const GlobalArray *a = resolve(inst->operand(1), memo,
                                           depth + 1);
            const GlobalArray *b = resolve(inst->operand(2), memo,
                                           depth + 1);
            result = (a == b) ? a : nullptr;
            break;
          }
          case Op::Phi: {
            const GlobalArray *common = nullptr;
            bool first = true;
            for (unsigned i = 0; i < inst->numIncoming(); ++i) {
                const GlobalArray *g2 = resolve(inst->incomingValue(i),
                                                memo, depth + 1);
                if (first) {
                    common = g2;
                    first = false;
                } else if (g2 != common) {
                    common = nullptr;
                }
            }
            result = common;
            break;
          }
          default:
            result = nullptr;
        }
    }
    memo_[pointer] = result;
    return result;
}

const GlobalArray *
MemoryObjects::objectFor(const Value *pointer) const
{
    auto it = memo_.find(pointer);
    if (it != memo_.end())
        return it->second;
    std::map<const Value *, const GlobalArray *> in_flight;
    return resolve(pointer, in_flight, 0);
}

unsigned
MemoryObjects::spaceFor(const Value *pointer) const
{
    const GlobalArray *g = objectFor(pointer);
    return g ? g->spaceId() : kGlobalSpace;
}

unsigned
MemoryObjects::spaceForAccess(const Instruction &mem_op) const
{
    muir_assert(isMemoryOp(mem_op.op()), "not a memory op");
    unsigned ptr_idx = (mem_op.op() == Op::Store ||
                        mem_op.op() == Op::TStore)
                           ? 1
                           : 0;
    return spaceFor(mem_op.operand(ptr_idx));
}

} // namespace muir::ir
