#include "ir/analysis/cfg.hh"

#include <algorithm>
#include <set>

#include "support/logging.hh"

namespace muir::ir
{

namespace
{

void
postOrder(BasicBlock *bb, std::set<BasicBlock *> &visited,
          std::vector<BasicBlock *> &order)
{
    if (!visited.insert(bb).second)
        return;
    for (BasicBlock *succ : bb->successors())
        postOrder(succ, visited, order);
    order.push_back(bb);
}

} // namespace

Cfg::Cfg(const Function &fn) : fn_(&fn)
{
    std::set<BasicBlock *> visited;
    std::vector<BasicBlock *> post;
    postOrder(fn.entry(), visited, post);
    rpo_.assign(post.rbegin(), post.rend());
    for (unsigned i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;
    for (BasicBlock *bb : rpo_)
        preds_[bb]; // Ensure every reachable block has an entry.
    for (BasicBlock *bb : rpo_)
        for (BasicBlock *succ : bb->successors())
            preds_[succ].push_back(bb);
}

unsigned
Cfg::rpoIndex(const BasicBlock *bb) const
{
    auto it = rpoIndex_.find(bb);
    muir_assert(it != rpoIndex_.end(), "block %s unreachable",
                bb->name().c_str());
    return it->second;
}

const std::vector<BasicBlock *> &
Cfg::preds(const BasicBlock *bb) const
{
    static const std::vector<BasicBlock *> empty;
    auto it = preds_.find(bb);
    return it == preds_.end() ? empty : it->second;
}

bool
Cfg::reachable(const BasicBlock *bb) const
{
    return rpoIndex_.count(bb) > 0;
}

std::vector<BasicBlock *>
detachRegion(const Instruction &detach)
{
    muir_assert(detach.op() == Op::Detach, "not a detach");
    BasicBlock *entry = detach.successor(0);
    BasicBlock *continuation = detach.successor(1);

    std::vector<BasicBlock *> region;
    std::set<BasicBlock *> visited;
    std::vector<BasicBlock *> stack{entry};
    while (!stack.empty()) {
        BasicBlock *bb = stack.back();
        stack.pop_back();
        if (bb == continuation || !visited.insert(bb).second)
            continue;
        region.push_back(bb);
        for (BasicBlock *succ : bb->successors())
            stack.push_back(succ);
    }
    return region;
}

} // namespace muir::ir
