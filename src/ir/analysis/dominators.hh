/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.
 */
#pragma once

#include <map>

#include "ir/analysis/cfg.hh"

namespace muir::ir
{

/** Immediate-dominator tree for one function. */
class DominatorTree
{
  public:
    explicit DominatorTree(const Cfg &cfg);

    /** Immediate dominator; nullptr for the entry block. */
    BasicBlock *idom(const BasicBlock *bb) const;

    /** @return true if a dominates b (reflexive). */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

  private:
    const Cfg *cfg_;
    std::map<const BasicBlock *, BasicBlock *> idom_;
};

} // namespace muir::ir
