#include "ir/analysis/dominators.hh"

#include "support/logging.hh"

namespace muir::ir
{

DominatorTree::DominatorTree(const Cfg &cfg) : cfg_(&cfg)
{
    const auto &rpo = cfg.rpo();
    if (rpo.empty())
        return;
    BasicBlock *entry = rpo.front();
    idom_[entry] = entry; // Temporarily self, cleared at the end.

    auto intersect = [&](BasicBlock *a, BasicBlock *b) {
        while (a != b) {
            while (cfg.rpoIndex(a) > cfg.rpoIndex(b))
                a = idom_.at(a);
            while (cfg.rpoIndex(b) > cfg.rpoIndex(a))
                b = idom_.at(b);
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < rpo.size(); ++i) {
            BasicBlock *bb = rpo[i];
            BasicBlock *new_idom = nullptr;
            for (BasicBlock *pred : cfg.preds(bb)) {
                if (!idom_.count(pred))
                    continue; // Not yet processed.
                new_idom = new_idom ? intersect(new_idom, pred) : pred;
            }
            muir_assert(new_idom != nullptr, "block %s has no processed "
                        "predecessor", bb->name().c_str());
            auto it = idom_.find(bb);
            if (it == idom_.end() || it->second != new_idom) {
                idom_[bb] = new_idom;
                changed = true;
            }
        }
    }
    idom_[entry] = nullptr;
}

BasicBlock *
DominatorTree::idom(const BasicBlock *bb) const
{
    auto it = idom_.find(bb);
    muir_assert(it != idom_.end(), "idom of unreachable block %s",
                bb->name().c_str());
    return it->second;
}

bool
DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    const BasicBlock *runner = b;
    while (runner != nullptr) {
        if (runner == a)
            return true;
        runner = idom(runner);
    }
    return false;
}

} // namespace muir::ir
