#include "ir/op_eval.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace muir::ir
{

namespace
{

RuntimeValue
tensorMatmul(const RuntimeValue &a, const RuntimeValue &b)
{
    muir_assert(a.kind == RuntimeValue::Kind::Tensor &&
                    b.kind == RuntimeValue::Kind::Tensor,
                "tmul on non-tensor");
    muir_assert(a.cols == b.rows, "tmul shape mismatch");
    std::vector<float> out(size_t(a.rows) * b.cols, 0.0f);
    for (unsigned r = 0; r < a.rows; ++r) {
        for (unsigned c = 0; c < b.cols; ++c) {
            float acc = 0.0f;
            for (unsigned k = 0; k < a.cols; ++k)
                acc += (*a.tensor)[r * a.cols + k] *
                       (*b.tensor)[k * b.cols + c];
            out[r * b.cols + c] = acc;
        }
    }
    return RuntimeValue::makeTensor(a.rows, b.cols, std::move(out));
}

template <typename F>
RuntimeValue
tensorElementwise(const RuntimeValue &a, const RuntimeValue &b, F fn)
{
    muir_assert(a.kind == RuntimeValue::Kind::Tensor &&
                    b.kind == RuntimeValue::Kind::Tensor,
                "tensor op on non-tensor");
    muir_assert(a.rows == b.rows && a.cols == b.cols,
                "tensor elementwise shape mismatch");
    std::vector<float> out(a.tensor->size());
    for (size_t k = 0; k < out.size(); ++k)
        out[k] = fn((*a.tensor)[k], (*b.tensor)[k]);
    return RuntimeValue::makeTensor(a.rows, a.cols, std::move(out));
}

} // namespace

RuntimeValue
applyPureOp(Op op, const std::vector<RuntimeValue> &ops,
            const Type &result_type)
{
    auto intBin = [&](auto fn) {
        return RuntimeValue::makeInt(fn(ops[0].asInt(), ops[1].asInt()));
    };
    auto fpBin = [&](auto fn) {
        // Round through f32 to model single-precision hardware.
        return RuntimeValue::makeFloat(static_cast<float>(
            fn(ops[0].asFloat(), ops[1].asFloat())));
    };
    auto fpCmp = [&](auto fn) {
        return RuntimeValue::makeInt(
            fn(ops[0].asFloat(), ops[1].asFloat()) ? 1 : 0);
    };

    switch (op) {
      case Op::Add: return intBin([](int64_t a, int64_t b) { return a + b; });
      case Op::Sub: return intBin([](int64_t a, int64_t b) { return a - b; });
      case Op::Mul: return intBin([](int64_t a, int64_t b) { return a * b; });
      case Op::SDiv:
        return intBin([](int64_t a, int64_t b) {
            muir_assert(b != 0, "division by zero");
            return a / b;
        });
      case Op::SRem:
        return intBin([](int64_t a, int64_t b) {
            muir_assert(b != 0, "remainder by zero");
            return a % b;
        });
      case Op::And: return intBin([](int64_t a, int64_t b) { return a & b; });
      case Op::Or:  return intBin([](int64_t a, int64_t b) { return a | b; });
      case Op::Xor: return intBin([](int64_t a, int64_t b) { return a ^ b; });
      case Op::Shl:
        return intBin([](int64_t a, int64_t b) { return a << (b & 63); });
      case Op::LShr:
        return intBin([](int64_t a, int64_t b) {
            return static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                        (b & 63));
        });
      case Op::AShr:
        return intBin([](int64_t a, int64_t b) { return a >> (b & 63); });

      case Op::FAdd: return fpBin([](double a, double b) { return a + b; });
      case Op::FSub: return fpBin([](double a, double b) { return a - b; });
      case Op::FMul: return fpBin([](double a, double b) { return a * b; });
      case Op::FDiv: return fpBin([](double a, double b) { return a / b; });
      case Op::FExp:
        return RuntimeValue::makeFloat(
            static_cast<float>(std::exp(ops[0].asFloat())));
      case Op::FSqrt:
        return RuntimeValue::makeFloat(
            static_cast<float>(std::sqrt(ops[0].asFloat())));

      case Op::ICmpEq:
        return intBin([](int64_t a, int64_t b) { return a == b ? 1 : 0; });
      case Op::ICmpNe:
        return intBin([](int64_t a, int64_t b) { return a != b ? 1 : 0; });
      case Op::ICmpSlt:
        return intBin([](int64_t a, int64_t b) { return a < b ? 1 : 0; });
      case Op::ICmpSle:
        return intBin([](int64_t a, int64_t b) { return a <= b ? 1 : 0; });
      case Op::ICmpSgt:
        return intBin([](int64_t a, int64_t b) { return a > b ? 1 : 0; });
      case Op::ICmpSge:
        return intBin([](int64_t a, int64_t b) { return a >= b ? 1 : 0; });
      case Op::FCmpOeq: return fpCmp([](double a, double b) { return a == b; });
      case Op::FCmpOlt: return fpCmp([](double a, double b) { return a < b; });
      case Op::FCmpOle: return fpCmp([](double a, double b) { return a <= b; });
      case Op::FCmpOgt: return fpCmp([](double a, double b) { return a > b; });
      case Op::FCmpOge: return fpCmp([](double a, double b) { return a >= b; });

      case Op::Select:
        return ops[0].asInt() ? ops[1] : ops[2];

      case Op::Trunc: {
        int64_t v = ops[0].asInt();
        unsigned bits = result_type.bits();
        if (bits >= 64)
            return RuntimeValue::makeInt(v);
        int64_t mask = (int64_t(1) << bits) - 1;
        int64_t shifted = v & mask;
        if (bits > 0 && (shifted & (int64_t(1) << (bits - 1))))
            shifted |= ~mask;
        return RuntimeValue::makeInt(shifted);
      }
      case Op::ZExt:
      case Op::SExt:
        // Canonical storage is already a sign-extended int64.
        return RuntimeValue::makeInt(ops[0].asInt());
      case Op::SIToFP:
        return RuntimeValue::makeFloat(
            static_cast<float>(ops[0].asInt()));
      case Op::FPToSI:
        return RuntimeValue::makeInt(
            static_cast<int64_t>(ops[0].asFloat()));

      case Op::TMul:
        return tensorMatmul(ops[0], ops[1]);
      case Op::TAdd:
        return tensorElementwise(ops[0], ops[1],
                                 [](float a, float b) { return a + b; });
      case Op::TSub:
        return tensorElementwise(ops[0], ops[1],
                                 [](float a, float b) { return a - b; });
      case Op::TRelu: {
        const RuntimeValue &a = ops[0];
        muir_assert(a.kind == RuntimeValue::Kind::Tensor,
                    "trelu on non-tensor");
        std::vector<float> out(a.tensor->size());
        for (size_t k = 0; k < out.size(); ++k)
            out[k] = std::max(0.0f, (*a.tensor)[k]);
        return RuntimeValue::makeTensor(a.rows, a.cols, std::move(out));
      }

      default:
        muir_panic("applyPureOp: op %s is not pure", opName(op));
    }
}

} // namespace muir::ir
