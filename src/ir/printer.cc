#include "ir/printer.hh"

#include <sstream>

#include "support/strings.hh"

namespace muir::ir
{

namespace
{

std::string
valueRef(const Value *v)
{
    if (auto *c = dynamic_cast<const Constant *>(v))
        return c->str();
    return "%" + v->name();
}

} // namespace

std::string
printInst(const Instruction &inst)
{
    std::ostringstream os;
    if (!inst.type().isVoid())
        os << "%" << inst.name() << " = ";
    os << opName(inst.op());
    if (!inst.type().isVoid())
        os << " " << inst.type().str();

    if (inst.op() == Op::Phi) {
        for (unsigned i = 0; i < inst.numIncoming(); ++i) {
            os << (i ? ", " : " ");
            os << "[" << valueRef(inst.incomingValue(i)) << ", %"
               << inst.incomingBlock(i)->name() << "]";
        }
        return os.str();
    }
    if (inst.op() == Op::Call)
        os << " @" << inst.callee()->name();

    for (unsigned i = 0; i < inst.numOperands(); ++i)
        os << (i ? ", " : " ") << valueRef(inst.operand(i));
    for (unsigned i = 0; i < inst.blockOperands().size(); ++i) {
        os << ((i || inst.numOperands()) ? ", " : " ");
        os << "%" << inst.blockOperand(i)->name();
    }
    return os.str();
}

std::string
printFunction(const Function &fn)
{
    std::ostringstream os;
    os << "func @" << fn.name() << "(";
    bool first = true;
    for (const auto &arg : fn.args()) {
        if (!first)
            os << ", ";
        os << arg->type().str() << " %" << arg->name();
        first = false;
    }
    os << ") -> " << fn.returnType().str() << " {\n";
    for (const auto &bb : fn.blocks()) {
        os << bb->name() << ":\n";
        for (const auto &inst : bb->insts())
            os << "    " << printInst(*inst) << "\n";
    }
    os << "}\n";
    return os.str();
}

std::string
printModule(const Module &module)
{
    std::ostringstream os;
    os << "module @" << module.name() << "\n";
    for (const auto &g : module.globals()) {
        os << "global @" << g->name() << " : " << g->elemType().str() << " x "
           << g->numElems() << "  (space " << g->spaceId() << ")\n";
    }
    for (const auto &fn : module.functions())
        os << "\n" << printFunction(*fn);
    return os.str();
}

} // namespace muir::ir
