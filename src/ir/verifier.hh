/**
 * @file
 * Structural well-formedness checks for the mini compiler IR.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/module.hh"

namespace muir::ir
{

/**
 * Verify a module; returns a list of human-readable violations, empty
 * when the module is well-formed. Checked invariants: every block has
 * exactly one terminator (at the end only); phis appear before
 * non-phis and have one incoming per predecessor; operand/def types
 * line up; detach blocks have matching reattach regions; rets match
 * the function return type.
 */
std::vector<std::string> verify(const Module &module);

/** Verify and panic on the first violation (for tests/tools). */
void verifyOrDie(const Module &module);

} // namespace muir::ir
