#include "ir/interp.hh"

#include <cmath>
#include <cstring>

#include "ir/analysis/memory_objects.hh"
#include "ir/op_eval.hh"
#include "ir/printer.hh"
#include "support/logging.hh"

namespace muir::ir
{

RuntimeValue
RuntimeValue::makeInt(int64_t v)
{
    RuntimeValue rv;
    rv.kind = Kind::Int;
    rv.i = v;
    return rv;
}

RuntimeValue
RuntimeValue::makeFloat(double v)
{
    RuntimeValue rv;
    rv.kind = Kind::Float;
    rv.f = v;
    return rv;
}

RuntimeValue
RuntimeValue::makePtr(uint64_t addr)
{
    RuntimeValue rv;
    rv.kind = Kind::Ptr;
    rv.ptr = addr;
    return rv;
}

RuntimeValue
RuntimeValue::makeTensor(unsigned rows, unsigned cols,
                         std::vector<float> data)
{
    muir_assert(data.size() == size_t(rows) * cols, "tensor size mismatch");
    RuntimeValue rv;
    rv.kind = Kind::Tensor;
    rv.rows = rows;
    rv.cols = cols;
    rv.tensor = std::make_shared<std::vector<float>>(std::move(data));
    return rv;
}

int64_t
RuntimeValue::asInt() const
{
    muir_assert(kind == Kind::Int, "not an int value");
    return i;
}

double
RuntimeValue::asFloat() const
{
    muir_assert(kind == Kind::Float, "not a float value");
    return f;
}

uint64_t
RuntimeValue::asPtr() const
{
    muir_assert(kind == Kind::Ptr, "not a pointer value");
    return ptr;
}

MemoryImage::MemoryImage(const Module &module)
{
    uint64_t cursor = kHeapBase;
    for (const auto &g : module.globals()) {
        cursor = (cursor + 63) & ~uint64_t(63);
        bases_[g.get()] = cursor;
        ranges_.push_back({cursor, cursor + g->sizeBytes(), g->spaceId()});
        cursor += g->sizeBytes();
    }
    bytes_.assign(cursor, 0);
}

uint64_t
MemoryImage::baseOf(const GlobalArray *g) const
{
    auto it = bases_.find(g);
    muir_assert(it != bases_.end(), "global %s not in image",
                g->name().c_str());
    return it->second;
}

unsigned
MemoryImage::spaceOf(uint64_t addr) const
{
    for (const Range &r : ranges_)
        if (addr >= r.start && addr < r.end)
            return r.space;
    return kGlobalSpace;
}

void
MemoryImage::checkRange(uint64_t addr, unsigned bytes) const
{
    muir_assert(addr >= kHeapBase && addr + bytes <= bytes_.size(),
                "out-of-bounds access at 0x%llx (%u bytes)",
                static_cast<unsigned long long>(addr), bytes);
}

int64_t
MemoryImage::loadInt(uint64_t addr, unsigned bytes) const
{
    checkRange(addr, bytes);
    int64_t value = 0;
    std::memcpy(&value, bytes_.data() + addr, bytes);
    // Sign extend from the stored width.
    unsigned shift = 64 - bytes * 8;
    return shift ? (value << shift) >> shift : value;
}

void
MemoryImage::storeInt(uint64_t addr, unsigned bytes, int64_t value)
{
    checkRange(addr, bytes);
    std::memcpy(bytes_.data() + addr, &value, bytes);
}

float
MemoryImage::loadFloat(uint64_t addr) const
{
    checkRange(addr, 4);
    float value = 0;
    std::memcpy(&value, bytes_.data() + addr, 4);
    return value;
}

void
MemoryImage::storeFloat(uint64_t addr, float value)
{
    checkRange(addr, 4);
    std::memcpy(bytes_.data() + addr, &value, 4);
}

void
MemoryImage::writeFloats(const GlobalArray *g, const std::vector<float> &data)
{
    muir_assert(data.size() * 4 <= g->sizeBytes(),
                "writing %zu floats into %s (%llu bytes)", data.size(),
                g->name().c_str(),
                static_cast<unsigned long long>(g->sizeBytes()));
    uint64_t base = baseOf(g);
    for (size_t k = 0; k < data.size(); ++k)
        storeFloat(base + k * 4, data[k]);
}

std::vector<float>
MemoryImage::readFloats(const GlobalArray *g) const
{
    uint64_t base = baseOf(g);
    size_t n = g->sizeBytes() / 4;
    std::vector<float> out(n);
    for (size_t k = 0; k < n; ++k)
        out[k] = loadFloat(base + k * 4);
    return out;
}

void
MemoryImage::writeInts(const GlobalArray *g, const std::vector<int32_t> &data)
{
    muir_assert(data.size() * 4 <= g->sizeBytes(), "writeInts overflow");
    uint64_t base = baseOf(g);
    for (size_t k = 0; k < data.size(); ++k)
        storeInt(base + k * 4, 4, data[k]);
}

std::vector<int32_t>
MemoryImage::readInts(const GlobalArray *g) const
{
    uint64_t base = baseOf(g);
    size_t n = g->sizeBytes() / 4;
    std::vector<int32_t> out(n);
    for (size_t k = 0; k < n; ++k)
        out[k] = static_cast<int32_t>(loadInt(base + k * 4, 4));
    return out;
}

Interpreter::Interpreter(const Module &module)
    : module_(module), memory_(module)
{
}

RuntimeValue
Interpreter::eval(const Value *v, const Frame &frame) const
{
    if (auto *c = dynamic_cast<const Constant *>(v)) {
        if (c->isFloatConstant())
            return RuntimeValue::makeFloat(c->fpValue());
        return RuntimeValue::makeInt(c->intValue());
    }
    if (auto *g = dynamic_cast<const GlobalArray *>(v))
        return RuntimeValue::makePtr(memory_.baseOf(g));
    auto it = frame.find(v);
    muir_assert(it != frame.end(), "evaluating undefined value %%%s",
                v->name().c_str());
    return it->second;
}

uint64_t
Interpreter::gepAddr(const Instruction &inst, const Frame &frame) const
{
    uint64_t base = eval(inst.operand(0), frame).asPtr();
    int64_t index = eval(inst.operand(1), frame).asInt();
    unsigned elem = inst.type().pointee().sizeBytes();
    return base + static_cast<uint64_t>(index) * elem;
}

RuntimeValue
Interpreter::run(const Function &fn, const std::vector<RuntimeValue> &args)
{
    muir_assert(args.size() == fn.numArgs(), "run(%s): bad arg count",
                fn.name().c_str());
    muir_assert(++callDepth_ < 512, "call depth exceeded (recursion?)");

    Frame frame;
    for (unsigned i = 0; i < fn.numArgs(); ++i)
        frame[fn.arg(i)] = args[i];

    const BasicBlock *bb = fn.entry();
    const BasicBlock *prev = nullptr;
    RuntimeValue result;

    // Detach continuations pending in this frame (serial elision runs
    // the spawned region first, then resumes at the continuation).
    std::vector<const BasicBlock *> pending;

    while (bb != nullptr) {
        ++blockCounts_[bb];
        // Two-phase phi evaluation: all phis read prev-block state.
        std::vector<std::pair<const Instruction *, RuntimeValue>> phi_vals;
        for (const auto &inst : bb->insts()) {
            if (inst->op() != Op::Phi)
                break;
            bool found = false;
            for (unsigned k = 0; k < inst->numIncoming(); ++k) {
                if (inst->incomingBlock(k) == prev) {
                    phi_vals.emplace_back(inst.get(),
                                          eval(inst->incomingValue(k),
                                               frame));
                    found = true;
                    break;
                }
            }
            muir_assert(found, "phi %%%s: no incoming for pred %s",
                        inst->name().c_str(),
                        prev ? prev->name().c_str() : "<entry>");
        }
        for (auto &[phi, value] : phi_vals)
            frame[phi] = value;

        const BasicBlock *next = nullptr;
        for (const auto &inst_ptr : bb->insts()) {
            const Instruction &inst = *inst_ptr;
            if (inst.op() == Op::Phi) {
                ++dynInsts_;
                if (sink_)
                    sink_(inst, 0);
                continue;
            }
            ++dynInsts_;

            switch (inst.op()) {
              case Op::Br:
                next = inst.successor(0);
                break;
              case Op::CondBr:
                next = eval(inst.operand(0), frame).asInt()
                           ? inst.successor(0)
                           : inst.successor(1);
                break;
              case Op::Detach:
                // Serial elision: run the spawned region now, resume at
                // the continuation when its reattach fires.
                pending.push_back(inst.successor(1));
                next = inst.successor(0);
                break;
              case Op::Reattach:
                muir_assert(!pending.empty(), "reattach without detach");
                muir_assert(pending.back() == inst.successor(0),
                            "mismatched reattach target");
                next = pending.back();
                pending.pop_back();
                break;
              case Op::Sync:
                next = inst.successor(0);
                break;
              case Op::Ret:
                if (inst.numOperands())
                    result = eval(inst.operand(0), frame);
                if (sink_)
                    sink_(inst, 0);
                --callDepth_;
                return result;
              default:
                frame[&inst] = evalInst(inst, frame);
                continue; // evalInst already traced memory ops.
            }
            if (sink_)
                sink_(inst, 0);
            if (next)
                break;
        }
        prev = bb;
        bb = next;
    }
    muir_panic("function %s fell off the end", fn.name().c_str());
}

RuntimeValue
Interpreter::evalInst(const Instruction &inst, Frame &frame)
{
    if (sink_ && !isMemoryOp(inst.op()))
        sink_(inst, 0);

    // Pure compute ops share their semantics with the μIR executor.
    if (isComputeOp(inst.op()) && inst.op() != Op::GEP) {
        std::vector<RuntimeValue> operands;
        operands.reserve(inst.numOperands());
        for (const Value *v : inst.operands())
            operands.push_back(eval(v, frame));
        return applyPureOp(inst.op(), operands, inst.type());
    }

    switch (inst.op()) {
      case Op::GEP:
        return RuntimeValue::makePtr(gepAddr(inst, frame));
      case Op::Load: {
        uint64_t addr = eval(inst.operand(0), frame).asPtr();
        if (sink_)
            sink_(inst, addr);
        if (inst.type().isFloat())
            return RuntimeValue::makeFloat(memory_.loadFloat(addr));
        return RuntimeValue::makeInt(
            memory_.loadInt(addr, inst.type().sizeBytes()));
      }
      case Op::Store: {
        RuntimeValue v = eval(inst.operand(0), frame);
        uint64_t addr = eval(inst.operand(1), frame).asPtr();
        if (sink_)
            sink_(inst, addr);
        if (v.kind == RuntimeValue::Kind::Float)
            memory_.storeFloat(addr, static_cast<float>(v.f));
        else
            memory_.storeInt(addr, inst.operand(0)->type().sizeBytes(),
                             v.i);
        return RuntimeValue();
      }
      case Op::TLoad: {
        uint64_t addr = eval(inst.operand(0), frame).asPtr();
        if (sink_)
            sink_(inst, addr);
        const Type &t = inst.type();
        std::vector<float> data(t.tensorElems());
        for (unsigned k = 0; k < t.tensorElems(); ++k)
            data[k] = memory_.loadFloat(addr + k * 4);
        return RuntimeValue::makeTensor(t.rows(), t.cols(),
                                        std::move(data));
      }
      case Op::TStore: {
        RuntimeValue v = eval(inst.operand(0), frame);
        uint64_t addr = eval(inst.operand(1), frame).asPtr();
        if (sink_)
            sink_(inst, addr);
        for (size_t k = 0; k < v.tensor->size(); ++k)
            memory_.storeFloat(addr + k * 4, (*v.tensor)[k]);
        return RuntimeValue();
      }

      case Op::Call: {
        std::vector<RuntimeValue> args;
        for (const Value *operand : inst.operands())
            args.push_back(eval(operand, frame));
        return run(*inst.callee(), args);
      }

      default:
        muir_panic("evalInst: unhandled op %s (%s)", opName(inst.op()),
                   printInst(inst).c_str());
    }
}

} // namespace muir::ir
