#include "support/metrics.hh"

#include <atomic>
#include <sstream>
#include <thread>

#include "support/json.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace muir::metrics
{

unsigned
histogramBucket(uint64_t value)
{
    if (value == 0)
        return 0;
    unsigned log2 = 0;
    while (value >>= 1)
        ++log2;
    unsigned bucket = 1 + log2;
    return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

uint64_t
histogramBucketLow(unsigned bucket)
{
    if (bucket == 0)
        return 0;
    return uint64_t(1) << (bucket - 1);
}

uint64_t
histogramBucketHigh(unsigned bucket)
{
    if (bucket == 0)
        return 0;
    if (bucket >= kHistogramBuckets - 1)
        return ~uint64_t(0);
    return (uint64_t(1) << bucket) - 1;
}

void
HistogramData::observe(uint64_t value)
{
    ++buckets[histogramBucket(value)];
    ++count;
    sum += value;
    minValue = std::min(minValue, value);
    maxValue = std::max(maxValue, value);
    moments.add(static_cast<double>(value));
}

void
HistogramData::merge(const HistogramData &other)
{
    if (other.count == 0)
        return;
    for (unsigned b = 0; b < kHistogramBuckets; ++b)
        buckets[b] += other.buckets[b];
    count += other.count;
    sum += other.sum;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
    moments.merge(other.moments);
}

std::map<uint64_t, uint64_t>
HistogramData::valueCounts() const
{
    std::map<uint64_t, uint64_t> out;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        uint64_t rep = std::min(histogramBucketHigh(b), maxValue);
        out[rep] += buckets[b];
    }
    return out;
}

uint64_t
HistogramData::percentile(double pct) const
{
    return histogramPercentile(valueCounts(), pct);
}

uint64_t
Snapshot::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

uint64_t
Snapshot::gauge(const std::string &name) const
{
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
}

double
Snapshot::timerMs(const std::string &name) const
{
    auto it = timers.find(name);
    return it == timers.end() ? 0.0 : it->second.ms;
}

const HistogramData *
Snapshot::histogram(const std::string &name) const
{
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
}

/**
 * One thread's private slice of a registry. Guarded by its own mutex:
 * the owning thread holds it for each record, snapshot() holds it
 * while merging — so records stay cheap (uncontended lock) and
 * snapshots see a consistent per-shard state.
 */
struct Registry::Shard
{
    std::mutex mutex;
    std::thread::id owner;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, uint64_t> gauges;
    std::map<std::string, TimerStat> timers;
    std::map<std::string, HistogramData> histograms;
};

namespace
{

/** Process-unique registry ids key the thread-local shard cache. */
std::atomic<uint64_t> g_next_registry_id{1};

struct ThreadShardCache
{
    uint64_t registryId = 0;
    Registry::Shard *shard = nullptr;
};

thread_local ThreadShardCache t_shard_cache;

std::atomic<Registry *> g_sink{nullptr};

} // namespace

Registry::Registry() : id_(g_next_registry_id.fetch_add(1)) {}

Registry::~Registry() = default;

Registry::Shard &
Registry::localShard() const
{
    if (t_shard_cache.registryId == id_ && t_shard_cache.shard)
        return *t_shard_cache.shard;
    std::lock_guard<std::mutex> lock(mutex_);
    std::thread::id self = std::this_thread::get_id();
    // The cache misses when a thread first touches this registry or
    // after it recorded into a different registry; re-find our shard
    // rather than grow a new one per miss.
    for (const auto &shard : shards_)
        if (shard->owner == self) {
            t_shard_cache = {id_, shard.get()};
            return *shard;
        }
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->owner = self;
    t_shard_cache = {id_, shards_.back().get()};
    return *shards_.back();
}

void
Registry::add(const std::string &name, uint64_t delta)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters[name] += delta;
}

void
Registry::gaugeMax(const std::string &name, uint64_t value)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    uint64_t &slot = shard.gauges[name];
    slot = std::max(slot, value);
}

void
Registry::timerAdd(const std::string &name, double ms, uint64_t calls)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    TimerStat &t = shard.timers[name];
    t.calls += calls;
    t.ms += ms;
}

void
Registry::observe(const std::string &name, uint64_t value)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.histograms[name].observe(value);
}

void
Registry::mergeHistogram(const std::string &name,
                         const HistogramData &data)
{
    if (data.count == 0)
        return;
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.histograms[name].merge(data);
}

Snapshot
Registry::snapshot() const
{
    // Shards are created-once and never removed before the registry
    // dies, so a pointer copy under the growth lock is enough; each
    // shard is then merged under its own mutex.
    std::vector<Shard *> shards;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shards.reserve(shards_.size());
        for (const auto &shard : shards_)
            shards.push_back(shard.get());
    }
    Snapshot snap;
    for (Shard *shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[name, value] : shard->counters)
            snap.counters[name] += value;
        for (const auto &[name, value] : shard->gauges) {
            uint64_t &slot = snap.gauges[name];
            slot = std::max(slot, value);
        }
        for (const auto &[name, t] : shard->timers) {
            TimerStat &slot = snap.timers[name];
            slot.calls += t.calls;
            slot.ms += t.ms;
        }
        for (const auto &[name, h] : shard->histograms)
            snap.histograms[name].merge(h);
    }
    return snap;
}

Registry *
sink()
{
    return g_sink.load(std::memory_order_acquire);
}

Registry *
installSink(Registry *registry)
{
    return g_sink.exchange(registry, std::memory_order_acq_rel);
}

const char *
idleClassName(IdleClass c)
{
    switch (c) {
      case IdleClass::DramReturn: return "dram_return";
      case IdleClass::QueueDrain: return "queue_drain";
      case IdleClass::TileII: return "tile_ii";
      case IdleClass::Port: return "port";
      case IdleClass::Other: return "other";
    }
    return "other";
}

SimSummary
summarizeSim(const Snapshot &snapshot)
{
    SimSummary s;
    s.runs = snapshot.counter("sim.runs");
    s.events = snapshot.counter("sim.events");
    s.firings = snapshot.counter("sim.firings");
    s.cycles = snapshot.counter("sim.cycles");
    s.invocations = snapshot.counter("sim.invocations");
    s.scheduleWallMs = snapshot.timerMs("sim.schedule");
    double wall_s = s.scheduleWallMs / 1000.0;
    if (wall_s > 0.0) {
        s.eventsPerSec = static_cast<double>(s.events) / wall_s;
        s.simCyclesPerWallSec = static_cast<double>(s.cycles) / wall_s;
    }
    s.idleTotal = snapshot.counter("sim.idle.total_cycles");
    for (unsigned c = 0; c < kNumIdleClasses; ++c)
        s.idleByClass[c] = snapshot.counter(
            std::string("sim.idle.") +
            idleClassName(static_cast<IdleClass>(c)) + ".cycles");
    if (s.cycles > 0) {
        s.idleFraction = static_cast<double>(s.idleTotal) /
                         static_cast<double>(s.cycles);
        uint64_t busy = s.cycles > s.idleTotal ? s.cycles - s.idleTotal
                                               : 1;
        s.speedupBound = static_cast<double>(s.cycles) /
                         static_cast<double>(busy);
    }
    return s;
}

const std::vector<std::string> &
hostMetricsSectionNames()
{
    static const std::vector<std::string> names = {"all", "phases",
                                                   "pool", "sim"};
    return names;
}

namespace
{

void
emitPercentiles(JsonWriter &jw, const HistogramData *hist)
{
    jw.field("count", hist ? hist->count : 0);
    jw.field("p50", hist ? hist->percentile(50.0) : 0);
    jw.field("p95", hist ? hist->percentile(95.0) : 0);
    jw.field("p99", hist ? hist->percentile(99.0) : 0);
    jw.field("max", hist && hist->count ? hist->maxValue : 0);
    jw.field("mean", hist ? hist->mean() : 0.0);
}

} // namespace

std::string
hostPerfJson(const Snapshot &snapshot, const std::string &workload)
{
    SimSummary sim = summarizeSim(snapshot);
    std::ostringstream os;
    JsonWriter jw(os, /*pretty=*/false);
    jw.beginObject();
    jw.field("schema", "muir.hostperf.v1");
    jw.field("workload", workload);

    jw.beginObject("phases");
    double compile_ms = snapshot.timerMs("phase.compile");
    double optimize_ms = snapshot.timerMs("phase.optimize");
    double simulate_ms = snapshot.timerMs("phase.simulate");
    jw.field("compile_ms", compile_ms);
    jw.field("optimize_ms", optimize_ms);
    jw.field("simulate_ms", simulate_ms);
    jw.field("total_ms", compile_ms + optimize_ms + simulate_ms);
    jw.end();

    jw.beginObject("sim");
    jw.field("runs", sim.runs);
    jw.field("events", sim.events);
    jw.field("node_firings", sim.firings);
    jw.field("cycles", sim.cycles);
    jw.field("invocations", sim.invocations);
    jw.field("schedule_wall_ms", sim.scheduleWallMs);
    jw.field("events_per_sec", sim.eventsPerSec);
    jw.field("sim_cycles_per_wall_sec", sim.simCyclesPerWallSec);
    jw.beginObject("ready_queue_depth");
    emitPercentiles(jw, snapshot.histogram("sim.ready_queue_depth"));
    jw.end();
    jw.beginObject("idle");
    jw.field("total_cycles", sim.idleTotal);
    jw.field("fraction", sim.idleFraction);
    jw.field("projected_speedup_bound", sim.speedupBound);
    jw.beginArray("classes");
    for (unsigned c = 0; c < kNumIdleClasses; ++c) {
        const char *name = idleClassName(static_cast<IdleClass>(c));
        const HistogramData *runs = snapshot.histogram(
            std::string("sim.idle.") + name + ".run_length");
        jw.beginObject();
        jw.field("class", name);
        jw.field("cycles", sim.idleByClass[c]);
        jw.field("share",
                 sim.idleTotal
                     ? static_cast<double>(sim.idleByClass[c]) /
                           static_cast<double>(sim.idleTotal)
                     : 0.0);
        jw.field("gaps", runs ? runs->count : 0);
        jw.field("mean_run", runs ? runs->mean() : 0.0);
        jw.field("p95_run", runs ? runs->percentile(95.0) : 0);
        jw.field("max_run", runs && runs->count ? runs->maxValue : 0);
        jw.end();
    }
    jw.end();
    jw.end();
    jw.end();

    jw.beginObject("pool");
    uint64_t busy_us = snapshot.counter("pool.busy_us");
    uint64_t idle_us = snapshot.counter("pool.idle_us");
    jw.field("workers", snapshot.gauge("pool.workers"));
    jw.field("spawns", snapshot.counter("pool.spawns"));
    jw.field("items", snapshot.counter("pool.items"));
    jw.field("busy_ms", static_cast<double>(busy_us) / 1000.0);
    jw.field("idle_ms", static_cast<double>(idle_us) / 1000.0);
    jw.field("utilization",
             busy_us + idle_us
                 ? static_cast<double>(busy_us) /
                       static_cast<double>(busy_us + idle_us)
                 : 0.0);
    jw.beginObject("claim_ns");
    emitPercentiles(jw, snapshot.histogram("pool.claim_ns"));
    jw.end();
    jw.end();

    jw.end();
    return os.str();
}

namespace
{

std::string
renderPhases(const Snapshot &snapshot)
{
    double compile_ms = snapshot.timerMs("phase.compile");
    double optimize_ms = snapshot.timerMs("phase.optimize");
    double simulate_ms = snapshot.timerMs("phase.simulate");
    AsciiTable t({"phase", "wall ms"});
    t.addRow({"compile", fmt("%.3f", compile_ms)});
    t.addRow({"optimize", fmt("%.3f", optimize_ms)});
    t.addRow({"simulate", fmt("%.3f", simulate_ms)});
    t.addSeparator();
    t.addRow({"total",
              fmt("%.3f", compile_ms + optimize_ms + simulate_ms)});
    return t.render("host phases");
}

std::string
renderSim(const Snapshot &snapshot)
{
    SimSummary sim = summarizeSim(snapshot);
    std::ostringstream os;
    AsciiTable t({"metric", "value"});
    t.addRow({"schedule runs", fmt("%llu",
                                   (unsigned long long)sim.runs)});
    t.addRow({"events", fmt("%llu", (unsigned long long)sim.events)});
    t.addRow({"node firings",
              fmt("%llu", (unsigned long long)sim.firings)});
    t.addRow({"sim cycles", fmt("%llu",
                                (unsigned long long)sim.cycles)});
    t.addRow({"invocations",
              fmt("%llu", (unsigned long long)sim.invocations)});
    t.addRow({"schedule wall ms", fmt("%.3f", sim.scheduleWallMs)});
    t.addRow({"events / sec", fmt("%.0f", sim.eventsPerSec)});
    t.addRow({"sim cycles / wall sec",
              fmt("%.0f", sim.simCyclesPerWallSec)});
    if (const HistogramData *depth =
            snapshot.histogram("sim.ready_queue_depth"))
        t.addRow({"ready-queue depth p50/p95/max",
                  fmt("%llu / %llu / %llu",
                      (unsigned long long)depth->percentile(50.0),
                      (unsigned long long)depth->percentile(95.0),
                      (unsigned long long)depth->maxValue)});
    os << t.render("simulator self-profile");

    AsciiTable idle({"idle class", "cycles", "share", "gaps",
                     "mean run", "p95 run", "max run"});
    for (unsigned c = 0; c < kNumIdleClasses; ++c) {
        const char *name = idleClassName(static_cast<IdleClass>(c));
        const HistogramData *runs = snapshot.histogram(
            std::string("sim.idle.") + name + ".run_length");
        idle.addRow(
            {name,
             fmt("%llu", (unsigned long long)sim.idleByClass[c]),
             fmt("%5.1f%%",
                 sim.idleTotal
                     ? 100.0 * static_cast<double>(sim.idleByClass[c]) /
                           static_cast<double>(sim.idleTotal)
                     : 0.0),
             fmt("%llu", (unsigned long long)(runs ? runs->count : 0)),
             fmt("%.1f", runs ? runs->mean() : 0.0),
             fmt("%llu",
                 (unsigned long long)(runs ? runs->percentile(95.0)
                                           : 0)),
             fmt("%llu", (unsigned long long)(
                             runs && runs->count ? runs->maxValue
                                                 : 0))});
    }
    os << idle.render("skip-ahead opportunity (dispatch-idle cycles)");
    os << fmt("idle fraction %.1f%% of %llu sim cycles -> projected "
              "skip-ahead speedup bound %.2fx\n",
              100.0 * sim.idleFraction,
              (unsigned long long)sim.cycles, sim.speedupBound);
    return os.str();
}

std::string
renderPool(const Snapshot &snapshot)
{
    std::ostringstream os;
    uint64_t busy_us = snapshot.counter("pool.busy_us");
    uint64_t idle_us = snapshot.counter("pool.idle_us");
    AsciiTable t({"metric", "value"});
    t.addRow({"peak workers",
              fmt("%llu",
                  (unsigned long long)snapshot.gauge("pool.workers"))});
    t.addRow({"pool spawns",
              fmt("%llu",
                  (unsigned long long)snapshot.counter("pool.spawns"))});
    t.addRow({"items", fmt("%llu", (unsigned long long)snapshot.counter(
                                       "pool.items"))});
    t.addRow({"busy ms", fmt("%.3f", busy_us / 1000.0)});
    t.addRow({"idle ms", fmt("%.3f", idle_us / 1000.0)});
    t.addRow({"utilization",
              fmt("%5.1f%%",
                  busy_us + idle_us
                      ? 100.0 * static_cast<double>(busy_us) /
                            static_cast<double>(busy_us + idle_us)
                      : 0.0)});
    if (const HistogramData *claim =
            snapshot.histogram("pool.claim_ns"))
        t.addRow({"claim ns p50/p95/p99",
                  fmt("%llu / %llu / %llu",
                      (unsigned long long)claim->percentile(50.0),
                      (unsigned long long)claim->percentile(95.0),
                      (unsigned long long)claim->percentile(99.0))});
    os << t.render("worker pool");

    // Per-worker rows exist only for threaded runs; the table is
    // omitted when the pool never went wide.
    AsciiTable workers({"worker", "items", "busy ms", "idle ms"});
    bool any = false;
    for (unsigned k = 0; k < 256; ++k) {
        std::string prefix = "pool.worker." + std::to_string(k) + ".";
        if (!snapshot.counters.count(prefix + "items") &&
            !snapshot.counters.count(prefix + "busy_us"))
            break;
        any = true;
        workers.addRow(
            {std::to_string(k),
             fmt("%llu", (unsigned long long)snapshot.counter(
                             prefix + "items")),
             fmt("%.3f",
                 snapshot.counter(prefix + "busy_us") / 1000.0),
             fmt("%.3f",
                 snapshot.counter(prefix + "idle_us") / 1000.0)});
    }
    if (any)
        os << workers.render("per-worker utilization");
    return os.str();
}

} // namespace

std::string
renderHostMetricsText(const Snapshot &snapshot,
                      const std::string &section)
{
    std::ostringstream os;
    if (section == "all" || section == "phases")
        os << renderPhases(snapshot);
    if (section == "all" || section == "sim")
        os << renderSim(snapshot);
    if (section == "all" || section == "pool")
        os << renderPool(snapshot);
    return os.str();
}

} // namespace muir::metrics
