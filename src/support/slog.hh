/**
 * @file
 * slog — structured NDJSON event logging for the serving stack.
 * Each record is one JSON object on one line: wall-clock timestamp,
 * level, event name, trace/span correlation ids, and a small attribute
 * list — so `grep trace_id logfile | jq` reconstructs one request's
 * story across threads, and the TRACE document and the log agree on
 * ids. The logger is thread-safe, level-filtered at the call site,
 * and keeps a bounded in-memory ring (newest-retained) alongside an
 * optional FILE* sink, mirroring the μtrace ring discipline.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace muir::slog
{

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/** "debug"/"info"/"warn"/"error". */
const char *levelName(Level level);

/** Parse a level name; @return false (and leaves @p out) on junk. */
bool levelFromName(const std::string &name, Level *out);

/** One structured event. */
struct Record
{
    /** Wall clock, UNIX epoch microseconds. */
    uint64_t unixUs = 0;
    Level level = Level::Info;
    /** Dotted event name, e.g. "request.deadline" or "drain.begin". */
    std::string event;
    /** Correlation ids (0 = not tied to a trace/span). */
    uint64_t traceId = 0;
    uint64_t spanId = 0;
    std::vector<std::pair<std::string, std::string>> attrs;
};

/**
 * Render one record as a single NDJSON line (no trailing newline):
 * fixed keys ts_us/level/event first, then trace/span when nonzero
 * (trace ids as 16-hex-digit strings, matching `muir.trace.v1`), then
 * the attributes. Attribute values longer than @p max_value bytes are
 * truncated with a "..." suffix so one hostile payload cannot bloat
 * the log.
 */
std::string renderNdjson(const Record &record,
                         size_t max_value = 256);

/** Logger tuning knobs. */
struct LoggerOptions
{
    Level minLevel = Level::Info;
    /** In-memory ring capacity (oldest evicted first). */
    size_t ringCapacity = 1024;
    /** Attribute-value truncation threshold for rendered lines. */
    size_t maxValueBytes = 256;
};

/**
 * The event log: filters by level, renders NDJSON to an optional
 * FILE* sink (flushed per record — logs must survive a crash), and
 * keeps the bounded ring for the in-process view. Thread-safe.
 */
class Logger
{
  public:
    explicit Logger(LoggerOptions options = {}, FILE *sink = nullptr);

    /** A record at @p level would be kept (call-site fast path). */
    bool wants(Level level) const
    {
        return level >= options_.minLevel;
    }

    /** Log one event. Below-threshold records count as suppressed. */
    void event(Level level, const std::string &name, uint64_t trace_id,
               uint64_t span_id,
               std::vector<std::pair<std::string, std::string>> attrs =
                   {});

    /** Ring contents, oldest first (@p limit keeps the newest N). */
    std::vector<Record> recent(size_t limit = 0) const;

    uint64_t emitted() const;
    uint64_t suppressed() const;

  private:
    const LoggerOptions options_;
    FILE *const sink_;

    mutable std::mutex mutex_;
    std::deque<Record> ring_;
    uint64_t emitted_ = 0;
    uint64_t suppressed_ = 0;
};

} // namespace muir::slog
