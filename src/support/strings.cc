#include "support/strings.hh"

#include <cstring>

namespace muir
{

std::string
fmtv(const char *format, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, format, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(format);
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, format, args);
    return out;
}

std::string
fmt(const char *format, ...)
{
    va_list args;
    va_start(args, format);
    std::string out = fmtv(format, args);
    va_end(args);
    return out;
}

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    parts.push_back(current);
    return parts;
}

std::string
replaceAll(std::string text, const std::string &from, const std::string &to)
{
    if (from.empty())
        return text;
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           std::memcmp(text.data(), prefix.data(), prefix.size()) == 0;
}

size_t
displayWidth(const std::string &s)
{
    size_t width = 0;
    for (unsigned char c : s)
        if ((c & 0xC0) != 0x80)
            ++width;
    return width;
}

std::string
padLeft(const std::string &s, size_t width)
{
    size_t have = displayWidth(s);
    if (have >= width)
        return s;
    return std::string(width - have, ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    size_t have = displayWidth(s);
    if (have >= width)
        return s;
    return s + std::string(width - have, ' ');
}

std::string
csvQuote(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out;
    out.reserve(field.size() + 2);
    out += '"';
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace muir
