#include "support/trace.hh"

#include <algorithm>
#include <sstream>

#include "support/json.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace muir::trace
{

// ------------------------------------------------------------ TraceData

uint64_t
TraceData::stageUs(const std::string &stage) const
{
    for (const Span &span : spans)
        if (span.parent == 0 && span.name == stage)
            return span.durUs;
    return 0;
}

// ----------------------------------------------------------- ActiveTrace

ActiveTrace::ActiveTrace(uint64_t trace_id, std::string name,
                         bool stamped,
                         std::chrono::steady_clock::time_point epoch)
    : epoch_(epoch)
{
    data_.traceId = trace_id;
    data_.name = std::move(name);
    data_.stamped = stamped;
    data_.startUnixUs = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

uint64_t
ActiveTrace::nowUs() const
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
ActiveTrace::rename(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    data_.name = name;
}

uint64_t
ActiveTrace::begin(const std::string &name, uint64_t parent)
{
    uint64_t start = nowUs();
    std::lock_guard<std::mutex> lock(mutex_);
    Span span;
    span.id = nextSpanId_++;
    span.parent = parent;
    span.name = name;
    span.startUs = start;
    span.open = true;
    data_.spans.push_back(std::move(span));
    return data_.spans.back().id;
}

void
ActiveTrace::end(uint64_t span_id)
{
    uint64_t now = nowUs();
    std::lock_guard<std::mutex> lock(mutex_);
    for (Span &span : data_.spans)
        if (span.id == span_id && span.open) {
            span.durUs = now > span.startUs ? now - span.startUs : 0;
            span.open = false;
            return;
        }
}

uint64_t
ActiveTrace::add(const std::string &name, uint64_t parent,
                 uint64_t start_us, uint64_t end_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Span span;
    span.id = nextSpanId_++;
    span.parent = parent;
    span.name = name;
    span.startUs = start_us;
    span.durUs = end_us > start_us ? end_us - start_us : 0;
    data_.spans.push_back(std::move(span));
    return data_.spans.back().id;
}

void
ActiveTrace::close(uint64_t span_id, uint64_t end_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Span &span : data_.spans)
        if (span.id == span_id) {
            span.durUs =
                end_us > span.startUs ? end_us - span.startUs : 0;
            span.open = false;
            return;
        }
}

void
ActiveTrace::attr(uint64_t span_id, const std::string &key,
                  const std::string &value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Span &span : data_.spans)
        if (span.id == span_id) {
            span.attrs.emplace_back(key, value);
            return;
        }
}

// --------------------------------------------------------------- Tracer

Tracer::Tracer(TracerOptions options) : options_(options) {}

std::shared_ptr<ActiveTrace>
Tracer::begin(const std::string &name, uint64_t stamped_id,
              std::chrono::steady_clock::time_point epoch)
{
    bool stamped = stamped_id != 0;
    if (!enabled() && !stamped)
        return nullptr;

    uint64_t decision_index;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        decision_index = decisionCounter_++;
        ++started_;
    }
    // The draw stream is indexed by decision, not by thread or
    // request identity: decision k under seed S is the same bit on
    // every run, which is what makes sampling testable.
    uint64_t draw = SplitMix64(options_.seed + decision_index).next();
    bool head_sampled =
        double(draw >> 11) * 0x1.0p-53 < options_.sampleRate;

    uint64_t id = stamped
                      ? stamped_id
                      : (SplitMix64(options_.seed ^
                                    0xB5B5B5B5B5B5B5B5ull)
                             .next() ^
                         SplitMix64(decision_index + 1).next()) |
                            1;
    auto t = std::shared_ptr<ActiveTrace>(
        new ActiveTrace(id, name, stamped, epoch));
    t->data_.headSampled = head_sampled;
    return t;
}

void
Tracer::finish(const std::shared_ptr<ActiveTrace> &t,
               const std::string &outcome, uint64_t dur_us_override)
{
    if (!t || t->finished_.exchange(true))
        return;
    uint64_t now = dur_us_override ? dur_us_override : t->nowUs();

    auto data = std::make_shared<TraceData>();
    {
        std::lock_guard<std::mutex> lock(t->mutex_);
        *data = t->data_;
    }
    data->outcome = outcome;
    data->durUs = now;
    // Cancellation can leave spans open; close them at the end of the
    // trace so exports never show an interval past the request.
    for (Span &span : data->spans)
        if (span.open)
            span.durUs =
                now > span.startUs ? now - span.startUs : 0;

    const char *retain = nullptr;
    if (data->stamped)
        retain = kRetainStamped;
    else if (outcome != kOutcomeOk)
        retain = kRetainOutcome;
    else if (options_.slowUs && data->durUs >= options_.slowUs)
        retain = kRetainSlow;
    else if (data->headSampled)
        retain = kRetainSampled;

    std::lock_guard<std::mutex> lock(mutex_);
    if (!retain) {
        ++dropped_;
        ++droppedByOutcome_[outcome];
        return;
    }
    data->retain = retain;
    ++retained_;
    ring_.push_back(std::move(data));
    while (ring_.size() > std::max<size_t>(options_.ringCapacity, 1)) {
        ring_.pop_front();
        ++evicted_;
    }
}

std::vector<std::shared_ptr<const TraceData>>
Tracer::recent(size_t limit, uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::shared_ptr<const TraceData>> out;
    for (const auto &data : ring_)
        if (id == 0 || data->traceId == id)
            out.push_back(data);
    if (limit && out.size() > limit)
        out.erase(out.begin(), out.end() - ptrdiff_t(limit));
    return out;
}

uint64_t
Tracer::started() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return started_;
}

uint64_t
Tracer::retained() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retained_;
}

uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

uint64_t
Tracer::evicted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evicted_;
}

uint64_t
Tracer::droppedFor(const std::string &outcome) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = droppedByOutcome_.find(outcome);
    return it == droppedByOutcome_.end() ? 0 : it->second;
}

// -------------------------------------------------------------- exports

std::string
tracesJson(const std::vector<std::shared_ptr<const TraceData>> &traces,
           const Tracer *tracer)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.beginObject("muir.trace.v1");
    w.beginObject("counters");
    w.field("started", tracer ? tracer->started() : uint64_t(0));
    w.field("retained", tracer ? tracer->retained() : uint64_t(0));
    w.field("dropped", tracer ? tracer->dropped() : uint64_t(0));
    w.field("evicted", tracer ? tracer->evicted() : uint64_t(0));
    w.end();
    w.beginArray("traces");
    for (const auto &t : traces) {
        w.beginObject();
        w.field("trace_id", fmt("%016llx",
                                (unsigned long long)t->traceId));
        w.field("name", t->name);
        w.field("outcome", t->outcome);
        w.field("retain", t->retain);
        w.field("stamped", t->stamped);
        w.field("head_sampled", t->headSampled);
        w.field("start_unix_us", t->startUnixUs);
        w.field("dur_us", t->durUs);
        w.beginArray("spans");
        for (const Span &span : t->spans) {
            w.beginObject();
            w.field("id", span.id);
            w.field("parent", span.parent);
            w.field("name", span.name);
            w.field("start_us", span.startUs);
            w.field("dur_us", span.durUs);
            w.field("open", span.open);
            w.beginObject("attrs");
            for (const auto &[key, value] : span.attrs)
                w.field(key, value);
            w.end();
            w.end();
        }
        w.end();
        w.end();
    }
    w.end();
    w.end();
    w.end();
    return os.str();
}

bool
tracesFromJson(const std::string &json, std::vector<TraceData> &out,
               std::string *error)
{
    JsonValue root;
    std::string parse_error;
    if (!jsonParse(json, &root, &parse_error)) {
        if (error)
            *error = "not JSON: " + parse_error;
        return false;
    }
    const JsonValue *doc = root.get("muir.trace.v1");
    if (!doc || !doc->isObject()) {
        if (error)
            *error = "missing muir.trace.v1 object";
        return false;
    }
    const JsonValue *traces = doc->get("traces");
    if (!traces || !traces->isArray()) {
        if (error)
            *error = "missing traces array";
        return false;
    }
    std::vector<TraceData> result;
    for (const JsonValue &item : traces->items) {
        TraceData data;
        const JsonValue *id = item.get("trace_id");
        data.traceId = id ? std::strtoull(id->asString().c_str(),
                                          nullptr, 16)
                          : 0;
        if (const JsonValue *v = item.get("name"))
            data.name = v->asString();
        if (const JsonValue *v = item.get("outcome"))
            data.outcome = v->asString();
        if (const JsonValue *v = item.get("retain"))
            data.retain = v->asString();
        if (const JsonValue *v = item.get("stamped"))
            data.stamped = v->kind == JsonValue::Kind::Bool &&
                           v->boolean;
        if (const JsonValue *v = item.get("head_sampled"))
            data.headSampled = v->kind == JsonValue::Kind::Bool &&
                               v->boolean;
        if (const JsonValue *v = item.get("start_unix_us"))
            data.startUnixUs = v->asU64();
        if (const JsonValue *v = item.get("dur_us"))
            data.durUs = v->asU64();
        if (const JsonValue *spans = item.get("spans");
            spans && spans->isArray()) {
            for (const JsonValue &sv : spans->items) {
                Span span;
                if (const JsonValue *v = sv.get("id"))
                    span.id = v->asU64();
                if (const JsonValue *v = sv.get("parent"))
                    span.parent = v->asU64();
                if (const JsonValue *v = sv.get("name"))
                    span.name = v->asString();
                if (const JsonValue *v = sv.get("start_us"))
                    span.startUs = v->asU64();
                if (const JsonValue *v = sv.get("dur_us"))
                    span.durUs = v->asU64();
                if (const JsonValue *v = sv.get("open"))
                    span.open = v->kind == JsonValue::Kind::Bool &&
                                v->boolean;
                if (const JsonValue *attrs = sv.get("attrs");
                    attrs && attrs->isObject())
                    for (const auto &[key, value] : attrs->members)
                        span.attrs.emplace_back(key,
                                                value.asString());
                data.spans.push_back(std::move(span));
            }
        }
        result.push_back(std::move(data));
    }
    out = std::move(result);
    return true;
}

namespace
{

/** One waterfall row: indent, name, timing columns, positioned bar. */
void
waterfallRow(std::ostringstream &os, const TraceData &trace,
             const Span &span, unsigned depth, unsigned bar_width,
             size_t name_col)
{
    std::string name(size_t(depth) * 2, ' ');
    name += span.name;
    std::string bar(bar_width, '.');
    if (trace.durUs > 0) {
        size_t lo = size_t(double(span.startUs) / double(trace.durUs) *
                           bar_width);
        size_t hi = size_t(double(span.startUs + span.durUs) /
                           double(trace.durUs) * bar_width);
        lo = std::min<size_t>(lo, bar_width - 1);
        hi = std::min<size_t>(std::max(hi, lo + 1), bar_width);
        for (size_t i = lo; i < hi; ++i)
            bar[i] = '#';
    }
    std::string attrs;
    for (const auto &[key, value] : span.attrs)
        attrs += " " + key + "=" + value;
    if (span.open)
        attrs += " (open)";
    os << fmt("  %s |%s| %9.3f %9.3f%s\n",
              padRight(name, name_col).c_str(), bar.c_str(),
              double(span.startUs) / 1000.0,
              double(span.durUs) / 1000.0, attrs.c_str());
}

void
waterfallChildren(std::ostringstream &os, const TraceData &trace,
                  uint64_t parent, unsigned depth, unsigned bar_width,
                  size_t name_col)
{
    for (const Span &span : trace.spans)
        if (span.parent == parent) {
            waterfallRow(os, trace, span, depth, bar_width, name_col);
            waterfallChildren(os, trace, span.id, depth + 1, bar_width,
                              name_col);
        }
}

/** Depth of a span in the tree (root children = 0). */
unsigned
spanDepth(const TraceData &trace, const Span &span)
{
    unsigned depth = 0;
    uint64_t parent = span.parent;
    while (parent != 0) {
        ++depth;
        bool found = false;
        for (const Span &other : trace.spans)
            if (other.id == parent) {
                parent = other.parent;
                found = true;
                break;
            }
        if (!found)
            break;
    }
    return depth;
}

} // namespace

std::string
renderWaterfall(const TraceData &trace, unsigned bar_width)
{
    std::ostringstream os;
    os << fmt("trace %016llx '%s' outcome=%s retain=%s total %.3f ms\n",
              (unsigned long long)trace.traceId, trace.name.c_str(),
              trace.outcome.empty() ? "-" : trace.outcome.c_str(),
              trace.retain.empty() ? "-" : trace.retain.c_str(),
              double(trace.durUs) / 1000.0);
    size_t name_col = 4;
    for (const Span &span : trace.spans)
        name_col = std::max(name_col,
                            span.name.size() +
                                size_t(spanDepth(trace, span)) * 2);
    os << fmt("  %s |%s| %9s %9s\n",
              padRight("span", name_col).c_str(),
              padRight("0 ms → total", bar_width).c_str(), "start",
              "ms");
    waterfallChildren(os, trace, 0, 0, bar_width, name_col);
    return os.str();
}

namespace
{

/**
 * Extract the inner text of the "traceEvents":[ ... ] array from an
 * already-validated trace-event document (string-aware bracket scan).
 */
bool
extractTraceEvents(const std::string &doc, std::string &inner)
{
    const std::string key = "\"traceEvents\":";
    size_t at = doc.find(key);
    if (at == std::string::npos)
        return false;
    size_t open = doc.find('[', at + key.size());
    if (open == std::string::npos)
        return false;
    int depth = 0;
    bool in_string = false;
    for (size_t i = open; i < doc.size(); ++i) {
        char c = doc[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '[' || c == '{')
            ++depth;
        else if (c == ']' || c == '}') {
            --depth;
            if (depth == 0) {
                inner = doc.substr(open + 1, i - open - 1);
                return true;
            }
        }
    }
    return false;
}

} // namespace

std::string
perfettoJson(const std::vector<std::shared_ptr<const TraceData>> &traces,
             const std::string &sim_trace_json, std::string *error)
{
    std::string sim_events;
    if (!sim_trace_json.empty()) {
        JsonValue probe;
        std::string parse_error;
        if (!jsonParse(sim_trace_json, &probe, &parse_error) ||
            !extractTraceEvents(sim_trace_json, sim_events)) {
            if (error)
                *error = "sim trace is not a trace-event document: " +
                         (parse_error.empty() ? "no traceEvents array"
                                              : parse_error);
            return "";
        }
    }

    uint64_t base_us = 0;
    for (const auto &t : traces)
        if (base_us == 0 || (t->startUnixUs && t->startUnixUs < base_us))
            base_us = t->startUnixUs;

    // Host spans go on pid 0, one tid per trace, all metadata first —
    // the same byte-stable discipline as chromeTraceJson.
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
           "\"args\":{\"name\":\"muir-serve host\"}}";
    for (size_t i = 0; i < traces.size(); ++i)
        out += fmt(",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                   "\"tid\":%zu,\"args\":{\"name\":\"trace %016llx "
                   "%s\"}}",
                   i + 1, (unsigned long long)traces[i]->traceId,
                   jsonEscape(traces[i]->name).c_str());
    for (size_t i = 0; i < traces.size(); ++i) {
        const TraceData &t = *traces[i];
        uint64_t offset =
            t.startUnixUs >= base_us ? t.startUnixUs - base_us : 0;
        out += fmt(",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,"
                   "\"tid\":%zu,\"ts\":%llu,\"dur\":%llu,"
                   "\"args\":{\"outcome\":\"%s\",\"trace\":"
                   "\"%016llx\"}}",
                   jsonEscape(t.name).c_str(), i + 1,
                   (unsigned long long)offset,
                   (unsigned long long)t.durUs,
                   jsonEscape(t.outcome).c_str(),
                   (unsigned long long)t.traceId);
        for (const Span &span : t.spans) {
            out += fmt(",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,"
                       "\"tid\":%zu,\"ts\":%llu,\"dur\":%llu,"
                       "\"args\":{",
                       jsonEscape(span.name).c_str(), i + 1,
                       (unsigned long long)(offset + span.startUs),
                       (unsigned long long)span.durUs);
            out += fmt("\"span\":%llu,\"parent\":%llu",
                       (unsigned long long)span.id,
                       (unsigned long long)span.parent);
            for (const auto &[key, value] : span.attrs)
                out += fmt(",\"%s\":\"%s\"",
                           jsonEscape(key).c_str(),
                           jsonEscape(value).c_str());
            out += "}}";
        }
    }
    if (!sim_events.empty()) {
        out += ",";
        out += sim_events;
    }
    out += "]}";
    return out;
}

} // namespace muir::trace
