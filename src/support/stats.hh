/**
 * @file
 * A lightweight named-statistics registry. Simulator components and
 * μopt passes register scalar counters so that tests and benches can
 * inspect structural activity (stalls, conflicts, fired nodes, ...).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace muir
{

/** A named bag of integer counters with formatted dumping. */
class StatSet
{
  public:
    /** Increment (creating if absent) a counter. */
    void inc(const std::string &name, uint64_t amount = 1);

    /** Set a counter to an absolute value. */
    void set(const std::string &name, uint64_t value);

    /** Read a counter; absent counters read as zero. */
    uint64_t get(const std::string &name) const;

    /** @return true if the counter has been written. */
    bool has(const std::string &name) const;

    /** Merge another stat set into this one (summing counters). */
    void merge(const StatSet &other);

    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Render as "name = value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace muir
