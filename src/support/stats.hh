/**
 * @file
 * A lightweight named-statistics registry. Simulator components and
 * μopt passes register scalar counters so that tests and benches can
 * inspect structural activity (stalls, conflicts, fired nodes, ...).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace muir
{

class StatSet;

/**
 * A prefix-bound view of a StatSet: `stats.scoped("task.t0.")` returns
 * a handle whose inc/set prepend the prefix once, instead of every
 * call site rebuilding `"task." + name + ".counter"` strings.
 */
class ScopedStats
{
  public:
    ScopedStats(StatSet &set, std::string prefix)
        : set_(&set), prefix_(std::move(prefix))
    {
    }

    void inc(const std::string &name, uint64_t amount = 1);
    void set(const std::string &name, uint64_t value);
    const std::string &prefix() const { return prefix_; }

  private:
    StatSet *set_;
    std::string prefix_;
};

/** A named bag of integer counters with formatted dumping. */
class StatSet
{
  public:
    /** Increment (creating if absent) a counter. */
    void inc(const std::string &name, uint64_t amount = 1);

    /** Set a counter to an absolute value. */
    void set(const std::string &name, uint64_t value);

    /** Read a counter; absent counters read as zero. */
    uint64_t get(const std::string &name) const;

    /** @return true if the counter has been written. */
    bool has(const std::string &name) const;

    /** Merge another stat set into this one (summing counters). */
    void merge(const StatSet &other);

    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Render as "name = value" lines. */
    std::string dump() const;

    /**
     * Render as one flat JSON object. Keys appear in sorted order (the
     * backing map is ordered), so output is deterministic and diffable.
     */
    std::string toJson() const;

    /** A view that prepends @p prefix to every counter name. */
    ScopedStats scoped(std::string prefix)
    {
        return ScopedStats(*this, std::move(prefix));
    }

  private:
    std::map<std::string, uint64_t> counters_;
};

/**
 * Streaming mean/variance accumulator (Welford's algorithm). One pass,
 * O(1) state, numerically stable — suitable for long host-side timing
 * streams where a naive sum-of-squares would lose precision. Two
 * accumulators combine exactly with merge() (Chan's parallel update),
 * which is what lets the metrics registry keep per-thread moments and
 * still report a global stddev at snapshot time.
 */
class Welford
{
  public:
    /** Fold one observation into the running moments. */
    void add(double value);

    /** Combine another accumulator into this one. */
    void merge(const Welford &other);

    uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation; 0 with fewer than two samples. */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    /** Sum of squared deviations from the running mean (M2). */
    double m2_ = 0.0;
};

/**
 * @name Histogram percentiles
 * The profiler and timeline keep distributions as value → count maps
 * (queue depths, per-window counter levels). These helpers answer
 * "what level is the p-th percentile observation at" without
 * materializing the expanded sample vector.
 * @{
 */

/**
 * The smallest key whose cumulative count reaches @p pct percent of
 * the total (nearest-rank percentile). @p pct is clamped to (0, 100];
 * an empty histogram yields 0.
 */
uint64_t histogramPercentile(const std::map<uint64_t, uint64_t> &hist,
                             double pct);

/** Shorthands for the summary columns the timeline tables print. */
uint64_t histogramP50(const std::map<uint64_t, uint64_t> &hist);
uint64_t histogramP95(const std::map<uint64_t, uint64_t> &hist);
uint64_t histogramP99(const std::map<uint64_t, uint64_t> &hist);

/** @} */

} // namespace muir
