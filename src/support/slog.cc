#include "support/slog.hh"

#include <chrono>

#include "support/json.hh"
#include "support/strings.hh"

namespace muir::slog
{

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Debug:
        return "debug";
    case Level::Info:
        return "info";
    case Level::Warn:
        return "warn";
    case Level::Error:
        return "error";
    }
    return "info";
}

bool
levelFromName(const std::string &name, Level *out)
{
    for (Level level : {Level::Debug, Level::Info, Level::Warn,
                        Level::Error})
        if (name == levelName(level)) {
            if (out)
                *out = level;
            return true;
        }
    return false;
}

std::string
renderNdjson(const Record &record, size_t max_value)
{
    std::string out = fmt("{\"ts_us\":%llu,\"level\":\"%s\","
                          "\"event\":\"%s\"",
                          (unsigned long long)record.unixUs,
                          levelName(record.level),
                          jsonEscape(record.event).c_str());
    if (record.traceId)
        out += fmt(",\"trace\":\"%016llx\"",
                   (unsigned long long)record.traceId);
    if (record.spanId)
        out += fmt(",\"span\":%llu",
                   (unsigned long long)record.spanId);
    for (const auto &[key, value] : record.attrs) {
        std::string v = value;
        if (max_value && v.size() > max_value) {
            v.resize(max_value);
            v += "...";
        }
        out += fmt(",\"%s\":\"%s\"", jsonEscape(key).c_str(),
                   jsonEscape(v).c_str());
    }
    out += "}";
    return out;
}

Logger::Logger(LoggerOptions options, FILE *sink)
    : options_(options), sink_(sink)
{
}

void
Logger::event(Level level, const std::string &name, uint64_t trace_id,
              uint64_t span_id,
              std::vector<std::pair<std::string, std::string>> attrs)
{
    if (!wants(level)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++suppressed_;
        return;
    }
    Record record;
    record.unixUs = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    record.level = level;
    record.event = name;
    record.traceId = trace_id;
    record.spanId = span_id;
    record.attrs = std::move(attrs);

    std::lock_guard<std::mutex> lock(mutex_);
    ++emitted_;
    if (sink_) {
        std::string line =
            renderNdjson(record, options_.maxValueBytes);
        fprintf(sink_, "%s\n", line.c_str());
        fflush(sink_);
    }
    ring_.push_back(std::move(record));
    while (ring_.size() > std::max<size_t>(options_.ringCapacity, 1))
        ring_.pop_front();
}

std::vector<Record>
Logger::recent(size_t limit) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Record> out(ring_.begin(), ring_.end());
    if (limit && out.size() > limit)
        out.erase(out.begin(), out.end() - ptrdiff_t(limit));
    return out;
}

uint64_t
Logger::emitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return emitted_;
}

uint64_t
Logger::suppressed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return suppressed_;
}

} // namespace muir::slog
