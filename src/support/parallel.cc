#include "support/parallel.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace muir
{

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

namespace
{

/**
 * Strict MUIR_JOBS parse, matching the muirc flag convention: decimal
 * digits only (no signs, spaces, hex, or trailing junk), value in
 * [1, 256]. Anything else is a configuration error, not a request.
 */
bool
parseJobsEnv(const char *text, unsigned &out)
{
    if (!*text)
        return false;
    unsigned long v = 0;
    for (const char *p = text; *p; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        v = v * 10 + unsigned(*p - '0');
        if (v > 256)
            return false;
    }
    if (v == 0)
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

} // namespace

unsigned
resolveJobs(unsigned requested)
{
    unsigned jobs = requested;
    if (!jobs) {
        if (const char *env = std::getenv("MUIR_JOBS")) {
            if (!parseJobsEnv(env, jobs)) {
                // Junk or out-of-range deserves a diagnostic and a
                // predictable fallback, not silent misbehavior. Warn
                // once per process: resolveJobs runs on every fan-out
                // and a campaign would otherwise repeat it thousands
                // of times.
                static std::atomic<bool> warned{false};
                if (!warned.exchange(true))
                    muir_warn("MUIR_JOBS='%s' is not an integer in "
                              "1..256; using hardware concurrency (%u)",
                              env, hardwareJobs());
                jobs = 0;
            }
        }
    }
    if (!jobs)
        jobs = hardwareJobs();
    return jobs > 256 ? 256 : jobs;
}

void
parallelFor(size_t n, unsigned jobs,
            const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    jobs = resolveJobs(jobs);
    if (jobs > n)
        jobs = static_cast<unsigned>(n);
    if (jobs <= 1) {
        // Inline serial path: no threads, no atomics — bit-identical
        // to the pre-pool loops it replaced.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> cursor{0};
    // Earliest-index exception wins, matching what a serial loop that
    // stopped at the throwing index would surface.
    std::mutex error_mutex;
    size_t error_index = ~size_t(0);
    std::exception_ptr error;

    // μmeter pool telemetry: per-worker busy/idle split plus the
    // work-claim latency distribution. The sink is bound once, before
    // the threads spawn; with no sink every clock read is skipped and
    // the loop below is the pre-μmeter loop plus one null test.
    metrics::Registry *meter = metrics::sink();
    if (meter) {
        meter->add("pool.spawns");
        meter->gaugeMax("pool.workers", jobs);
    }

    auto worker = [&](unsigned widx) {
        using Clock = std::chrono::steady_clock;
        metrics::HistogramData claim;
        uint64_t items = 0;
        double busy_us = 0.0;
        Clock::time_point entered;
        if (meter)
            entered = Clock::now();
        for (;;) {
            Clock::time_point before_claim;
            if (meter)
                before_claim = Clock::now();
            size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            Clock::time_point after_claim;
            if (meter) {
                after_claim = Clock::now();
                claim.observe(static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        after_claim - before_claim)
                        .count()));
            }
            if (i >= n)
                break;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
                // Let the pool drain instead of racing to cancel:
                // items are independent, so finishing in-flight work
                // is always safe.
            }
            if (meter) {
                ++items;
                std::chrono::duration<double, std::micro> d =
                    Clock::now() - after_claim;
                busy_us += d.count();
            }
        }
        if (meter) {
            std::chrono::duration<double, std::micro> wall =
                Clock::now() - entered;
            double idle_us = wall.count() > busy_us
                                 ? wall.count() - busy_us
                                 : 0.0;
            meter->add("pool.items", items);
            meter->add("pool.busy_us",
                       static_cast<uint64_t>(busy_us));
            meter->add("pool.idle_us",
                       static_cast<uint64_t>(idle_us));
            std::string prefix =
                "pool.worker." + std::to_string(widx) + ".";
            meter->add(prefix + "items", items);
            meter->add(prefix + "busy_us",
                       static_cast<uint64_t>(busy_us));
            meter->add(prefix + "idle_us",
                       static_cast<uint64_t>(idle_us));
            meter->mergeHistogram("pool.claim_ns", claim);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs - 1);
    for (unsigned t = 1; t < jobs; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (auto &t : threads)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace muir
