#include "support/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace muir
{

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
resolveJobs(unsigned requested)
{
    unsigned jobs = requested;
    if (!jobs) {
        if (const char *env = std::getenv("MUIR_JOBS")) {
            char *end = nullptr;
            unsigned long v = std::strtoul(env, &end, 10);
            if (end != env && *end == '\0' && v > 0)
                jobs = static_cast<unsigned>(v);
        }
    }
    if (!jobs)
        jobs = hardwareJobs();
    return jobs > 256 ? 256 : jobs;
}

void
parallelFor(size_t n, unsigned jobs,
            const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    jobs = resolveJobs(jobs);
    if (jobs > n)
        jobs = static_cast<unsigned>(n);
    if (jobs <= 1) {
        // Inline serial path: no threads, no atomics — bit-identical
        // to the pre-pool loops it replaced.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> cursor{0};
    // Earliest-index exception wins, matching what a serial loop that
    // stopped at the throwing index would surface.
    std::mutex error_mutex;
    size_t error_index = ~size_t(0);
    std::exception_ptr error;

    auto worker = [&] {
        for (;;) {
            size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
                // Let the pool drain instead of racing to cancel:
                // items are independent, so finishing in-flight work
                // is always safe.
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs - 1);
    for (unsigned t = 1; t < jobs; ++t)
        threads.emplace_back(worker);
    worker();
    for (auto &t : threads)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace muir
