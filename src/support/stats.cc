#include "support/stats.hh"

#include <sstream>

#include "support/json.hh"

namespace muir
{

void
ScopedStats::inc(const std::string &name, uint64_t amount)
{
    set_->inc(prefix_ + name, amount);
}

void
ScopedStats::set(const std::string &name, uint64_t value)
{
    set_->set(prefix_ + name, value);
}

void
StatSet::inc(const std::string &name, uint64_t amount)
{
    counters_[name] += amount;
}

void
StatSet::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << "\n";
    return os.str();
}

std::string
StatSet::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    for (const auto &[name, value] : counters_)
        w.field(name, value);
    w.end();
    return os.str();
}

} // namespace muir
