#include "support/stats.hh"

#include <cmath>
#include <sstream>

#include "support/json.hh"

namespace muir
{

void
ScopedStats::inc(const std::string &name, uint64_t amount)
{
    set_->inc(prefix_ + name, amount);
}

void
ScopedStats::set(const std::string &name, uint64_t value)
{
    set_->set(prefix_ + name, value);
}

void
StatSet::inc(const std::string &name, uint64_t amount)
{
    counters_[name] += amount;
}

void
StatSet::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << "\n";
    return os.str();
}

void
Welford::add(double value)
{
    ++count_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
Welford::merge(const Welford &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double n_a = static_cast<double>(count_);
    double n_b = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    uint64_t total = count_ + other.count_;
    mean_ += delta * n_b / (n_a + n_b);
    m2_ += other.m2_ + delta * delta * n_a * n_b / (n_a + n_b);
    count_ = total;
}

double
Welford::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Welford::stddev() const
{
    return std::sqrt(variance());
}

uint64_t
histogramPercentile(const std::map<uint64_t, uint64_t> &hist,
                    double pct)
{
    uint64_t total = 0;
    for (const auto &[value, count] : hist)
        total += count;
    if (total == 0)
        return 0;
    if (pct > 100.0)
        pct = 100.0;
    // Nearest-rank: the k-th smallest observation, k = ceil(p/100 · n),
    // with k at least 1 so p→0 degenerates to the minimum.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(total)));
    if (rank < 1)
        rank = 1;
    uint64_t seen = 0;
    for (const auto &[value, count] : hist) {
        seen += count;
        if (seen >= rank)
            return value;
    }
    return hist.rbegin()->first;
}

uint64_t
histogramP50(const std::map<uint64_t, uint64_t> &hist)
{
    return histogramPercentile(hist, 50.0);
}

uint64_t
histogramP95(const std::map<uint64_t, uint64_t> &hist)
{
    return histogramPercentile(hist, 95.0);
}

uint64_t
histogramP99(const std::map<uint64_t, uint64_t> &hist)
{
    return histogramPercentile(hist, 99.0);
}

std::string
StatSet::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    for (const auto &[name, value] : counters_)
        w.field(name, value);
    w.end();
    return os.str();
}

} // namespace muir
