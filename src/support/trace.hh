/**
 * @file
 * μtrace — request-scoped distributed tracing for the serving stack.
 * μmeter answers "how is the daemon doing in aggregate"; μtrace
 * answers "where did *this* request's time go": every request owns a
 * trace (a 64-bit id plus a tree of spans with parent links,
 * wall-clock starts, and durations), stages of the request path open
 * child spans, and finished traces land in a bounded in-memory ring
 * the TRACE protocol kind serves back out.
 *
 * Retention policy (the interesting traces survive, the bulk does
 * not): a seeded head-rate sampling decision is taken per trace —
 * deterministic under a fixed seed, so tests can assert the exact
 * pattern — and is then overridden by always-retain rules: traces a
 * client stamped (`trace=<id>` on the RUN line), traces resolving
 * ERROR/SHED/DEADLINE, and traces slower than the configured slow
 * threshold are kept regardless of the sampling draw. Every finished
 * trace takes exactly one retained-or-dropped decision (the storm
 * audits this), and the ring evicts oldest-first when full.
 *
 * Observational-guard contract (the μprof/μmeter discipline): with
 * tracing off and no stamped id, Tracer::begin returns null and every
 * span helper no-ops on the null handle — replies, simulated cycles,
 * and stats are byte-identical either way, guarded by test.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace muir::trace
{

/** Trace outcome vocabulary (mirrors the µserve reply kinds). */
inline constexpr const char *kOutcomeOk = "OK";
inline constexpr const char *kOutcomeError = "ERROR";
inline constexpr const char *kOutcomeShed = "SHED";
inline constexpr const char *kOutcomeDeadline = "DEADLINE";

/** Why a finished trace was retained ("" = it was dropped). */
inline constexpr const char *kRetainStamped = "stamped";
inline constexpr const char *kRetainOutcome = "outcome";
inline constexpr const char *kRetainSlow = "slow";
inline constexpr const char *kRetainSampled = "head-sampled";

/** One span: a named interval inside a trace, with a parent link. */
struct Span
{
    /** Unique within the trace; the root stage spans have parent 0. */
    uint64_t id = 0;
    uint64_t parent = 0;
    std::string name;
    /** Microseconds since the trace started. */
    uint64_t startUs = 0;
    uint64_t durUs = 0;
    /** Still open when the trace finished (cancellation paths). */
    bool open = false;
    std::vector<std::pair<std::string, std::string>> attrs;
};

/** One finished (or in-flight) trace: the whole request's story. */
struct TraceData
{
    uint64_t traceId = 0;
    /** Request description, e.g. "run workload=fib passes=queue:4". */
    std::string name;
    /** kOutcome* once finished; "" while the request is in flight. */
    std::string outcome;
    /** kRetain* for retained traces; "" means dropped. */
    std::string retain;
    /** The client supplied the id (trace=<id> on the RUN line). */
    bool stamped = false;
    /** The seeded head-sampling draw said keep. */
    bool headSampled = false;
    /** Wall-clock anchor (UNIX epoch µs) for log/Perfetto merging. */
    uint64_t startUnixUs = 0;
    /** Total request duration in µs. */
    uint64_t durUs = 0;
    std::vector<Span> spans;

    /** Duration of the first top-level span named @p name (0 = none). */
    uint64_t stageUs(const std::string &name) const;
};

/** Tracer tuning knobs. */
struct TracerOptions
{
    /**
     * Head-sampling probability in [0, 1]. 0 disables tracing for
     * unstamped requests entirely (no spans recorded, no clock reads
     * beyond what the server already takes).
     */
    double sampleRate = 0.0;
    /** Seed for the sampling draws and generated trace ids. */
    uint64_t seed = 1;
    /** Always retain traces slower than this (µs; 0 = rule off). */
    uint64_t slowUs = 0;
    /** Retained-trace ring capacity (oldest evicted first). */
    size_t ringCapacity = 256;
};

class Tracer;

/**
 * One request's trace under construction. Thread-safe: admission
 * records spans from the transport thread, execution from a worker.
 * Obtained from Tracer::begin() (possibly null — all methods must be
 * reached through the null-safe ScopedSpan or a null check).
 */
class ActiveTrace
{
  public:
    uint64_t traceId() const { return data_.traceId; }
    bool stamped() const { return data_.stamped; }

    /** Microseconds since the trace started (its own clock). */
    uint64_t nowUs() const;

    /** Rename the trace once the request is parsed. */
    void rename(const std::string &name);

    /** Open a live span; @return its id (parent 0 = top level). */
    uint64_t begin(const std::string &name, uint64_t parent = 0);

    /** Close a live span (duration = now − start). Unknown id: no-op. */
    void end(uint64_t span);

    /**
     * Record a completed span with explicit boundaries (µs since the
     * trace started). This is how the server makes the top-level
     * stage chain partition the request's wall time exactly: each
     * stage starts where the previous one ended.
     */
    uint64_t add(const std::string &name, uint64_t parent,
                 uint64_t start_us, uint64_t end_us);

    /**
     * Reset a span's end boundary. Lets a stage span be created at
     * its exact start stamp (so children can parent onto it while the
     * stage runs) and closed at its exact end stamp later.
     */
    void close(uint64_t span, uint64_t end_us);

    /** Attach a key=value attribute to a span. Unknown id: no-op. */
    void attr(uint64_t span, const std::string &key,
              const std::string &value);

  private:
    friend class Tracer;

    ActiveTrace(uint64_t trace_id, std::string name, bool stamped,
                std::chrono::steady_clock::time_point epoch);

    mutable std::mutex mutex_;
    TraceData data_;
    const std::chrono::steady_clock::time_point epoch_;
    uint64_t nextSpanId_ = 1;
    /** Guards the exactly-once finish decision (error unwind paths). */
    std::atomic<bool> finished_{false};
};

/**
 * The trace collector: sampling policy, retention rules, and the
 * bounded ring of retained traces. One per daemon; thread-safe.
 */
class Tracer
{
  public:
    explicit Tracer(TracerOptions options = {});

    /** Tracing is on for unstamped requests. */
    bool enabled() const { return options_.sampleRate > 0.0; }

    const TracerOptions &options() const { return options_; }

    /**
     * Start a trace. @p stamped_id is the client-provided id (0 =
     * unstamped). Returns null when tracing is off and the request is
     * unstamped — the no-overhead path. Stamped traces are always
     * recorded (and always retained), whatever the sample rate.
     * @p epoch anchors span offsets (defaults to "now"); the server
     * passes its dispatch-entry timestamp so pre-begin admission work
     * still lands inside the trace.
     */
    std::shared_ptr<ActiveTrace>
    begin(const std::string &name, uint64_t stamped_id = 0,
          std::chrono::steady_clock::time_point epoch =
              std::chrono::steady_clock::now());

    /**
     * Finish a trace: stamp the outcome, take the exactly-once
     * retained-or-dropped decision, and push retained traces into the
     * ring. @p dur_us_override fixes the total duration (0 = use the
     * trace's clock); the server passes its final stage boundary so
     * the stage spans partition the total exactly. Null @p t no-ops.
     */
    void finish(const std::shared_ptr<ActiveTrace> &t,
                const std::string &outcome,
                uint64_t dur_us_override = 0);

    /**
     * Retained traces, oldest first. @p id filters to one trace id
     * (0 = all); @p limit keeps only the newest N (0 = all).
     */
    std::vector<std::shared_ptr<const TraceData>>
    recent(size_t limit = 0, uint64_t id = 0) const;

    /** @name Decision counters (started == retained + dropped once idle) */
    /** @{ */
    uint64_t started() const;
    uint64_t retained() const;
    uint64_t dropped() const;
    uint64_t evicted() const;
    /** Dropped traces that resolved with @p outcome (audit hook). */
    uint64_t droppedFor(const std::string &outcome) const;
    /** @} */

  private:
    const TracerOptions options_;

    mutable std::mutex mutex_;
    std::deque<std::shared_ptr<const TraceData>> ring_;
    uint64_t decisionCounter_ = 0; ///< seeds the per-trace draw
    uint64_t started_ = 0;
    uint64_t retained_ = 0;
    uint64_t dropped_ = 0;
    uint64_t evicted_ = 0;
    std::map<std::string, uint64_t> droppedByOutcome_;
};

/**
 * Null-safe RAII span over a possibly-null ActiveTrace handle: the
 * tracing-off path costs one pointer test per scope.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const std::shared_ptr<ActiveTrace> &t, const char *name,
               uint64_t parent = 0)
        : trace_(t.get())
    {
        if (trace_)
            id_ = trace_->begin(name, parent);
    }
    ~ScopedSpan()
    {
        if (trace_)
            trace_->end(id_);
    }
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    uint64_t id() const { return id_; }

    void
    attr(const std::string &key, const std::string &value)
    {
        if (trace_)
            trace_->attr(id_, key, value);
    }

  private:
    ActiveTrace *trace_;
    uint64_t id_ = 0;
};

/**
 * @name Exports
 * @{
 */

/**
 * The `muir.trace.v1` JSON document: tracer decision counters plus
 * the given traces, oldest first, with a deterministic key schema
 * (values vary, keys never do). This is the TRACE reply payload.
 */
std::string
tracesJson(const std::vector<std::shared_ptr<const TraceData>> &traces,
           const Tracer *tracer = nullptr);

/**
 * Parse a `muir.trace.v1` document back (the client side of the TRACE
 * round trip). @return false with a one-line diagnostic on anything
 * that is not a well-formed v1 document.
 */
bool tracesFromJson(const std::string &json,
                    std::vector<TraceData> &out, std::string *error);

/**
 * ASCII waterfall of one trace: the span tree indented by depth, each
 * span with start/duration columns and a bar positioned on the
 * request's [0, total] axis (muir-client --trace).
 */
std::string renderWaterfall(const TraceData &trace,
                            unsigned bar_width = 32);

/**
 * Chrome trace-event (Perfetto) export of host-side spans: one "X"
 * duration event per span on a per-trace track under a "muir-serve
 * host" process. When @p sim_trace_json holds a `--emit-trace-json`
 * document (the μprof/μscope machinery), its traceEvents are spliced
 * into the same document, so one Perfetto view shows the request
 * lifecycle above the simulated-cycle slice and counter tracks.
 * @return "" with a diagnostic in @p error if the sim document does
 * not parse.
 */
std::string
perfettoJson(const std::vector<std::shared_ptr<const TraceData>> &traces,
             const std::string &sim_trace_json = "",
             std::string *error = nullptr);

/** @} */

} // namespace muir::trace
