/**
 * @file
 * μmeter — the host-side performance metrics registry. Everything else
 * in the repo measures *simulated* time; this module measures the
 * simulator itself: how many events per wall-second `scheduleDdg`
 * retires, where muirc's wall-clock goes per phase, how busy the μrun
 * worker pool keeps its threads, and — the headline analysis — how
 * much of the schedule is dispatch-idle and why, which quantifies the
 * skip-ahead opportunity the ROADMAP's μsched item targets.
 *
 * Design constraints, in priority order:
 *
 *  1. Zero observable effect when off. Producers fetch the process
 *     sink once (`metrics::sink()`); a null sink short-circuits every
 *     record call to a pointer test, and no producer takes a clock
 *     reading unless a sink is installed. Simulated cycles and StatSet
 *     contents are bit-identical either way — the same observational-
 *     guard contract μprof and μscope honor, guarded by test.
 *
 *  2. Thread-safe and low-contention. The registry shards per thread:
 *     each recording thread writes its own shard under its own mutex
 *     (uncontended in steady state), and `snapshot()` merges shards on
 *     demand. Gate cells and campaign items recording from a parallel
 *     fan-out never serialize against each other.
 *
 *  3. Deterministic schema. `hostPerfJson()` emits the
 *     `muir.hostperf.v1` section with a byte-stable key structure —
 *     values vary run to run, keys never do — so muir-diff and CI can
 *     parse it without per-machine special cases.
 *
 * Well-known instrument names (the contract between producers and the
 * report emitters):
 *
 *   timers      phase.compile / phase.optimize / phase.simulate
 *               sim.schedule (wall time inside scheduleDdg)
 *   counters    sim.runs, sim.events, sim.firings, sim.cycles,
 *               sim.invocations, sim.idle.total_cycles,
 *               sim.idle.<class>.cycles,
 *               pool.spawns, pool.items, pool.busy_us, pool.idle_us,
 *               pool.worker.<k>.{items,busy_us,idle_us}
 *   gauges      sim.ready_queue_peak, pool.workers (merge = max)
 *   histograms  sim.ready_queue_depth, sim.idle.<class>.run_length,
 *               pool.claim_ns
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/stats.hh"

namespace muir::metrics
{

/**
 * Histograms use a fixed power-of-two bucketing so recording is O(1),
 * merge is a 64-lane add, and the memory footprint is constant no
 * matter how wide the observed range is. Bucket 0 holds the value 0;
 * bucket b >= 1 holds [2^(b-1), 2^b - 1]; the top bucket absorbs
 * everything beyond 2^62.
 */
constexpr unsigned kHistogramBuckets = 64;

/** Bucket index for one observation. */
unsigned histogramBucket(uint64_t value);

/** Inclusive lower bound of a bucket. */
uint64_t histogramBucketLow(unsigned bucket);

/** Inclusive upper bound of a bucket (saturates for the top bucket). */
uint64_t histogramBucketHigh(unsigned bucket);

/**
 * One fixed-bucket histogram plus exact streaming moments. The bucket
 * array answers percentile queries (via the StatSet nearest-rank
 * helpers over a value→count expansion); the Welford accumulator keeps
 * mean/stddev exact rather than bucket-quantized.
 */
struct HistogramData
{
    uint64_t buckets[kHistogramBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t minValue = ~uint64_t(0);
    uint64_t maxValue = 0;
    Welford moments;

    void observe(uint64_t value);
    void merge(const HistogramData &other);

    bool empty() const { return count == 0; }
    double mean() const { return moments.mean(); }
    double stddev() const { return moments.stddev(); }

    /**
     * Expand to the value→count map the StatSet percentile helpers
     * consume. Each bucket is represented by its upper bound (its
     * lower bound for bucket 0), clamped to the observed max so the
     * p100/max column never exceeds reality.
     */
    std::map<uint64_t, uint64_t> valueCounts() const;

    /** Nearest-rank percentile over the bucketized distribution. */
    uint64_t percentile(double pct) const;
};

/** Accumulated scoped-timer state: call count and total wall time. */
struct TimerStat
{
    uint64_t calls = 0;
    double ms = 0.0;
};

/** A merged, point-in-time view of every shard of a registry. */
struct Snapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, uint64_t> gauges;
    std::map<std::string, TimerStat> timers;
    std::map<std::string, HistogramData> histograms;

    /** Read a counter; absent reads as 0. */
    uint64_t counter(const std::string &name) const;
    /** Read a gauge; absent reads as 0. */
    uint64_t gauge(const std::string &name) const;
    /** Accumulated timer milliseconds; absent reads as 0. */
    double timerMs(const std::string &name) const;
    /** Histogram by name; nullptr when absent. */
    const HistogramData *histogram(const std::string &name) const;
};

/**
 * The registry proper. All record paths are thread-safe; each thread
 * writes a private shard guarded by a shard-local mutex, so concurrent
 * recorders do not contend. `snapshot()` may run concurrently with
 * recording and sees a consistent per-shard prefix.
 */
class Registry
{
  public:
    Registry();
    ~Registry();
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Add to a monotonic counter. */
    void add(const std::string &name, uint64_t delta = 1);

    /** Raise a high-watermark gauge (merge across shards = max). */
    void gaugeMax(const std::string &name, uint64_t value);

    /** Accumulate wall time into a named timer. */
    void timerAdd(const std::string &name, double ms,
                  uint64_t calls = 1);

    /** Record one observation into a named histogram. */
    void observe(const std::string &name, uint64_t value);

    /** Fold a locally accumulated histogram in (one lock, not N). */
    void mergeHistogram(const std::string &name,
                        const HistogramData &data);

    /** Merge every shard into one consistent view. */
    Snapshot snapshot() const;

    /** Opaque per-thread slice; defined in metrics.cc. */
    struct Shard;

  private:
    Shard &localShard() const;

    mutable std::mutex mutex_; ///< guards shards_ growth
    mutable std::vector<std::unique_ptr<Shard>> shards_;
    const uint64_t id_; ///< process-unique, keys the thread-local cache
};

/**
 * @name Process-wide sink
 * Producers (scheduleDdg, the worker pool, gate cells) record into the
 * installed sink, if any. The sink pointer is an atomic: installation
 * is expected at tool startup / test scope, not per event. The caller
 * owns the registry and must keep it alive while installed.
 * @{
 */

/** The installed sink, or nullptr (the default: metrics off). */
Registry *sink();

/** Install @p registry (nullptr = disable); @return the previous sink. */
Registry *installSink(Registry *registry);

/** RAII sink installation for tool mains and test scopes. */
class ScopedSink
{
  public:
    explicit ScopedSink(Registry *registry)
        : previous_(installSink(registry))
    {
    }
    ~ScopedSink() { installSink(previous_); }
    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    Registry *previous_;
};

/**
 * Scoped wall-clock timer. Binds the sink at construction; a null
 * sink makes both ends of the scope no-ops (no clock read).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *name)
        : sink_(sink()), name_(name)
    {
        if (sink_)
            start_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer()
    {
        if (!sink_)
            return;
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start_;
        sink_->timerAdd(name_, elapsed.count());
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Registry *sink_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

/** @} */

/**
 * @name Skip-ahead opportunity classification
 * scheduleDdg attributes every cycle the dispatch frontier sits idle
 * to the resource the next event was waiting on. Fixed order — it is
 * the `muir.hostperf.v1` array order.
 * @{
 */

enum class IdleClass : unsigned
{
    DramReturn, ///< waiting on an outstanding DRAM line fill
    QueueDrain, ///< waiting on queue backpressure (the queueDep edge)
    TileII,     ///< waiting on a tile's initiation interval
    Port,       ///< waiting on junction/bank port arbitration
    Other,      ///< compute-latency critical path / completion edges
};

constexpr unsigned kNumIdleClasses = 5;

/** Stable lowercase name ("dram_return", ...). */
const char *idleClassName(IdleClass c);

/** @} */

/** Derived per-run scheduler summary the reports and benches share. */
struct SimSummary
{
    uint64_t runs = 0;
    uint64_t events = 0;
    uint64_t firings = 0;
    uint64_t cycles = 0;
    uint64_t invocations = 0;
    double scheduleWallMs = 0.0;
    double eventsPerSec = 0.0;
    double simCyclesPerWallSec = 0.0;
    uint64_t idleTotal = 0;
    uint64_t idleByClass[kNumIdleClasses] = {};
    /** Idle dispatch-frontier cycles / total simulated cycles. */
    double idleFraction = 0.0;
    /**
     * Amdahl-style upper bound on what an event-driven skip-ahead
     * scheduler could gain: cycles / (cycles - idle). An upper bound
     * because it assumes idle spans cost the same per-cycle as busy
     * ones and skip-ahead makes them free.
     */
    double speedupBound = 0.0;
};

/** Compute the sim.* summary from a snapshot. */
SimSummary summarizeSim(const Snapshot &snapshot);

/**
 * @name Reports
 * @{
 */

/** Section names `muirc --host-metrics` accepts (first is "all"). */
const std::vector<std::string> &hostMetricsSectionNames();

/**
 * The `muir.hostperf.v1` JSON object (no trailing newline). The key
 * structure is identical for every run — absent instruments emit as
 * zeros — so consumers can rely on the schema byte-for-byte.
 */
std::string hostPerfJson(const Snapshot &snapshot,
                         const std::string &workload);

/** ASCII tables for one section ("all", "phases", "pool", "sim"). */
std::string renderHostMetricsText(const Snapshot &snapshot,
                                  const std::string &section);

/** @} */

} // namespace muir::metrics
