#include "support/table.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir
{

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    muir_assert(row.size() == headers_.size(),
                "table row arity %zu != header arity %zu", row.size(),
                headers_.size());
    rows_.push_back(std::move(row));
}

void
AsciiTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
AsciiTable::render(const std::string &title) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = displayWidth(headers_[c]);
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], displayWidth(row[c]));

    size_t total = 1;
    for (size_t w : widths)
        total += w + 3;

    std::ostringstream os;
    if (!title.empty()) {
        os << std::string(total, '=') << "\n";
        os << title << "\n";
    }
    os << std::string(total, '=') << "\n";
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << " " << padRight(headers_[c], widths[c]) << " |";
    os << "\n" << std::string(total, '-') << "\n";
    for (const auto &row : rows_) {
        if (row.empty()) {
            os << std::string(total, '-') << "\n";
            continue;
        }
        os << "|";
        for (size_t c = 0; c < row.size(); ++c)
            os << " " << padLeft(row[c], widths[c]) << " |";
        os << "\n";
    }
    os << std::string(total, '=') << "\n";
    return os.str();
}

} // namespace muir
