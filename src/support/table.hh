/**
 * @file
 * ASCII table printer used by the benchmark harnesses to render the
 * paper's tables and figure series as aligned rows.
 */
#pragma once

#include <string>
#include <vector>

namespace muir
{

/**
 * A simple column-aligned ASCII table. Columns are sized to fit the
 * widest cell; numeric cells should be pre-formatted by the caller.
 */
class AsciiTable
{
  public:
    /** Create a table with the given column headers. */
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to a string, with an optional title banner. */
    std::string render(const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    /** Empty vector encodes a separator row. */
    std::vector<std::vector<std::string>> rows_;
};

} // namespace muir
