/**
 * @file
 * Deterministic pseudo-random generation shared by every component
 * that needs reproducible randomness (μfit site resolution, the bench
 * gate's seeded perturbations). Exactly Vigna's SplitMix64, so the
 * stream for a given seed is stable across platforms and releases —
 * campaign JSON and perturbation choices are part of committed test
 * expectations and must never drift.
 */
#pragma once

#include <cstdint>

namespace muir
{

/**
 * SplitMix64 (Vigna, 2015): 64 bits of state, one add + three
 * xor-shift-multiply rounds per draw. Statistically solid for fault
 * sampling and cheap enough to construct per run, which is how the
 * callers get per-run determinism: a generator seeded from (seed, run
 * index) yields the same stream no matter which thread replays the
 * run or in what order.
 *
 * Thread-safety: next() mutates state, so one generator must not be
 * shared across threads. Construct one per task instead — that is the
 * intended idiom, not a workaround.
 */
struct SplitMix64
{
    uint64_t state;

    explicit SplitMix64(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /** Uniform-ish draw in [0, n); 0 when n == 0. */
    uint64_t below(uint64_t n) { return n ? next() % n : 0; }
};

} // namespace muir
