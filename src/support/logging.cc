#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace muir
{

namespace
{
// Atomic so parallel campaign/gate workers can inform() while the
// driver toggles verbosity, without a data race. Relaxed is enough:
// the flag is a filter, not a synchronization point.
std::atomic<bool> verboseFlag{true};
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

} // namespace muir
