/**
 * @file
 * Status-message and error-reporting helpers, following the gem5
 * convention: panic() for internal invariant violations (a muir bug),
 * fatal() for user errors (bad configuration or input), warn()/inform()
 * for non-fatal diagnostics.
 */
#pragma once

#include <string>

#include "support/strings.hh"

namespace muir
{

/** Abort with a message; use for "should never happen" internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit(1) with a message; use for user-caused unrecoverable errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

} // namespace muir

#define muir_panic(...) \
    ::muir::panicImpl(__FILE__, __LINE__, ::muir::fmt(__VA_ARGS__))
#define muir_fatal(...) \
    ::muir::fatalImpl(__FILE__, __LINE__, ::muir::fmt(__VA_ARGS__))
#define muir_warn(...) ::muir::warnImpl(::muir::fmt(__VA_ARGS__))
#define muir_inform(...) ::muir::informImpl(::muir::fmt(__VA_ARGS__))

/** Assert an internal invariant, with a formatted explanation. */
#define muir_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::muir::panicImpl(__FILE__, __LINE__,                            \
                std::string("assertion failed: " #cond " — ") +              \
                    ::muir::fmt(__VA_ARGS__));                               \
        }                                                                    \
    } while (0)
