/**
 * @file
 * Small string-formatting helpers. GCC 12 lacks <format>, so fmt() is a
 * printf-style wrapper returning std::string, plus join/split utilities
 * used by the printers and emitters.
 */
#pragma once

#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace muir
{

/** printf-style formatting into a std::string. */
std::string fmtv(const char *format, va_list args);

/** printf-style formatting into a std::string. */
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string fmt(const char *format, ...);

/** Identity overload so macros can pass through an existing string. */
inline std::string fmt(const std::string &s) { return s; }

/** Join elements with a separator using operator<<. */
template <typename Container>
std::string
join(const Container &items, const std::string &sep)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &item : items) {
        if (!first)
            os << sep;
        os << item;
        first = false;
    }
    return os.str();
}

/** Split a string on a delimiter character. */
std::vector<std::string> split(const std::string &text, char delim);

/** @return text with every occurrence of from replaced by to. */
std::string replaceAll(std::string text, const std::string &from,
                       const std::string &to);

/** @return true if text starts with prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/**
 * Terminal column count of a UTF-8 string: code points, not bytes
 * (continuation bytes are free), so µscope's sparkline glyphs align
 * in tables. Identical to size() for pure-ASCII text.
 */
size_t displayWidth(const std::string &s);

/** Left-pad or right-pad to a column width (for ASCII tables). */
std::string padLeft(const std::string &s, size_t width);
std::string padRight(const std::string &s, size_t width);

/**
 * Quote a CSV field per RFC 4180 when needed: fields containing
 * commas, quotes, or newlines are wrapped in double quotes with
 * embedded quotes doubled; anything else passes through unchanged.
 */
std::string csvQuote(const std::string &field);

} // namespace muir
