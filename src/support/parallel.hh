/**
 * @file
 * A small bounded worker pool for the fan-out shaped work this
 * codebase is full of: N independent, deterministic simulations
 * (μfit campaign runs, bench-gate cells, sweep points) whose results
 * must come back in index order regardless of thread interleaving.
 *
 * The contract every consumer relies on:
 *
 *  - **Deterministic results.** `parallelFor(n, jobs, fn)` calls
 *    `fn(i)` exactly once for every i in [0, n); each fn writes only
 *    its own result slot, so the assembled output is byte-identical
 *    at any job count (`--jobs 1` vs `--jobs 8` is a committed test
 *    invariant, not an aspiration).
 *  - **Bounded width.** At most `jobs` worker threads exist at once;
 *    excess work items queue behind an atomic cursor. jobs == 0 or 1
 *    (and n <= 1) run inline on the caller's thread with no thread
 *    machinery at all, so the serial path stays bit-identical to the
 *    pre-pool code.
 *  - **Exception safety.** If any fn throws, the earliest-index
 *    exception is rethrown on the caller's thread after all workers
 *    drain; later items may or may not have run, exactly as if the
 *    loop were serial and stopped at the throwing index.
 *
 * Job-count resolution (`resolveJobs`): an explicit request wins,
 * else the MUIR_JOBS environment variable, else
 * std::thread::hardware_concurrency(). MUIR_JOBS is parsed strictly
 * (decimal digits, value in [1, 256]); junk or out-of-range values get
 * a one-line warning and fall back to the hardware concurrency rather
 * than silently misbehaving.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace muir
{

/** std::thread::hardware_concurrency(), never 0. */
unsigned hardwareJobs();

/**
 * Resolve an effective job count: @p requested if nonzero, else
 * MUIR_JOBS (when set to a strict decimal integer in [1, 256]; junk
 * or out-of-range values warn once and are ignored), else the
 * hardware concurrency. The result is clamped to [1, 256].
 */
unsigned resolveJobs(unsigned requested = 0);

/**
 * Run fn(0) .. fn(n-1), at most @p jobs at a time. Items are claimed
 * in index order; completion order is unspecified, so fn must not
 * depend on other items having run. Rethrows the earliest-index
 * exception after all in-flight work drains. jobs == 0 means
 * resolveJobs(0).
 */
void parallelFor(size_t n, unsigned jobs,
                 const std::function<void(size_t)> &fn);

/**
 * Map [0, n) through @p fn into an index-ordered vector. Result
 * ordering (and therefore any serialization of it) is independent of
 * the job count.
 */
template <typename T>
std::vector<T>
parallelMap(size_t n, unsigned jobs,
            const std::function<T(size_t)> &fn)
{
    std::vector<T> out(n);
    parallelFor(n, jobs, [&](size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace muir
