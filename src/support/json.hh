/**
 * @file
 * Minimal JSON support: a streaming writer with automatic comma and
 * indentation management (used by the μprof report/trace emitters,
 * μlint's JSON renderer replacement candidates, and the bench
 * trajectory files), a strict validator so tests can check that
 * everything we emit actually parses, and a small document parser
 * (JsonValue) so μscope tooling — muir-diff's run-report mode and the
 * bench regression gate — can read the JSON we write back in. The
 * repo deliberately has no external JSON dependency.
 */
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace muir
{

/** Escape a string for embedding inside JSON double quotes. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * A push-style JSON writer. Scopes (objects/arrays) nest via
 * beginObject/beginArray ... end; commas and newlines are inserted
 * automatically, so emitters never produce trailing-comma JSON.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {
    }

    /** @name Scopes @{ */
    void beginObject() { open('{'); }
    void beginObject(const std::string &key) { openKeyed(key, '{'); }
    void beginArray() { open('['); }
    void beginArray(const std::string &key) { openKeyed(key, '['); }

    /** Close the innermost object or array. */
    void
    end()
    {
        char close = stack_.back().array ? ']' : '}';
        bool had = stack_.back().count > 0;
        stack_.pop_back();
        if (pretty_ && had) {
            os_ << '\n';
            indent();
        }
        os_ << close;
    }
    /** @} */

    /** @name Object fields @{ */
    void field(const std::string &key, const std::string &v)
    {
        keyed(key);
        string(v);
    }
    void field(const std::string &key, const char *v)
    {
        field(key, std::string(v));
    }
    void field(const std::string &key, uint64_t v)
    {
        keyed(key);
        os_ << v;
    }
    void field(const std::string &key, int64_t v)
    {
        keyed(key);
        os_ << v;
    }
    void field(const std::string &key, int v)
    {
        field(key, static_cast<int64_t>(v));
    }
    void field(const std::string &key, unsigned v)
    {
        field(key, static_cast<uint64_t>(v));
    }
    void field(const std::string &key, double v)
    {
        keyed(key);
        number(v);
    }
    void field(const std::string &key, bool v)
    {
        keyed(key);
        os_ << (v ? "true" : "false");
    }
    /** Splice an already-serialized JSON value under a key. */
    void rawField(const std::string &key, const std::string &json)
    {
        keyed(key);
        os_ << json;
    }
    /** @} */

    /** @name Array elements @{ */
    void value(const std::string &v)
    {
        element();
        string(v);
    }
    void value(uint64_t v)
    {
        element();
        os_ << v;
    }
    void value(int64_t v)
    {
        element();
        os_ << v;
    }
    void value(double v)
    {
        element();
        number(v);
    }
    /** @} */

  private:
    struct Scope
    {
        bool array = false;
        unsigned count = 0;
    };

    void
    indent()
    {
        for (size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }

    /** Start a new element in the current scope (comma/newline). */
    void
    element()
    {
        if (!stack_.empty()) {
            if (stack_.back().count++ > 0)
                os_ << ',';
            if (pretty_) {
                os_ << '\n';
                indent();
            }
        }
    }

    void
    keyed(const std::string &key)
    {
        element();
        string(key);
        os_ << (pretty_ ? ": " : ":");
    }

    void
    open(char c)
    {
        element();
        os_ << c;
        stack_.push_back({c == '['});
    }

    void
    openKeyed(const std::string &key, char c)
    {
        keyed(key);
        os_ << c;
        stack_.push_back({c == '['});
    }

    void string(const std::string &s) { os_ << '"' << jsonEscape(s) << '"'; }

    /** JSON has no NaN/Inf; clamp to 0 rather than emit junk. */
    void
    number(double v)
    {
        if (!std::isfinite(v)) {
            os_ << 0;
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.10g", v);
        os_ << buf;
    }

    std::ostream &os_;
    bool pretty_;
    std::vector<Scope> stack_;
};

namespace detail
{

/** Recursive-descent JSON checker over [p, end). */
class JsonChecker
{
  public:
    JsonChecker(const char *p, const char *end) : p_(p), end_(end) {}

    bool
    parse(std::string *error)
    {
        bool ok = value() && (ws(), p_ == end_);
        if (!ok && error)
            *error = err_.empty() ? "trailing garbage" : err_;
        return ok;
    }

  private:
    bool
    fail(const char *what)
    {
        if (err_.empty())
            err_ = std::string(what) + " at offset " +
                   std::to_string(static_cast<size_t>(p_ - begin_));
        return false;
    }

    void
    ws()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                             *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (static_cast<size_t>(end_ - p_) < n ||
            std::char_traits<char>::compare(p_, lit, n) != 0)
            return fail("bad literal");
        p_ += n;
        return true;
    }

    bool
    value()
    {
        ws();
        if (p_ >= end_)
            return fail("unexpected end");
        switch (*p_) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++p_; // '{'
        ws();
        if (p_ < end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            ws();
            if (p_ >= end_ || *p_ != '"')
                return fail("expected object key");
            if (!string())
                return false;
            ws();
            if (p_ >= end_ || *p_ != ':')
                return fail("expected ':'");
            ++p_;
            if (!value())
                return false;
            ws();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            if (p_ < end_ && *p_ == '}') {
                ++p_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++p_; // '['
        ws();
        if (p_ < end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            if (p_ < end_ && *p_ == ']') {
                ++p_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string()
    {
        ++p_; // opening quote
        while (p_ < end_) {
            unsigned char c = *p_;
            if (c == '"') {
                ++p_;
                return true;
            }
            if (c == '\\') {
                ++p_;
                if (p_ >= end_)
                    return fail("bad escape");
                char e = *p_;
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        ++p_;
                        if (p_ >= end_ || !std::isxdigit(
                                              static_cast<unsigned char>(
                                                  *p_)))
                            return fail("bad \\u escape");
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape");
                }
                ++p_;
                continue;
            }
            if (c < 0x20)
                return fail("raw control char in string");
            ++p_;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const char *start = p_;
        if (p_ < end_ && *p_ == '-')
            ++p_;
        while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_)))
            ++p_;
        if (p_ < end_ && *p_ == '.') {
            ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
            ++p_;
            if (p_ < end_ && (*p_ == '+' || *p_ == '-'))
                ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        if (p_ == start || (p_ == start + 1 && *start == '-'))
            return fail("bad number");
        return true;
    }

    const char *p_;
    const char *end_;
    const char *begin_ = p_;
    std::string err_;
};

} // namespace detail

/** @return true when @p text is one complete, valid JSON document. */
inline bool
jsonValidate(const std::string &text, std::string *error = nullptr)
{
    detail::JsonChecker checker(text.data(), text.data() + text.size());
    return checker.parse(error);
}

/**
 * A parsed JSON document node. Objects keep their members in source
 * order (lookups are linear — our documents are small); numbers keep
 * their lexeme so integer counters survive round-trips exactly.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Number lexeme (Kind::Number) or string payload (Kind::String). */
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *
    get(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }

    /** Nested lookup: get("profile")->get("cycles") without null checks. */
    const JsonValue *
    get(const std::string &key, const std::string &key2) const
    {
        const JsonValue *v = get(key);
        return v ? v->get(key2) : nullptr;
    }

    uint64_t
    asU64(uint64_t fallback = 0) const
    {
        if (kind != Kind::Number)
            return fallback;
        return std::strtoull(text.c_str(), nullptr, 10);
    }

    double
    asDouble(double fallback = 0.0) const
    {
        if (kind != Kind::Number)
            return fallback;
        return std::strtod(text.c_str(), nullptr);
    }

    const std::string &
    asString() const
    {
        static const std::string empty;
        return kind == Kind::String ? text : empty;
    }
};

namespace detail
{

/** Recursive-descent parser building a JsonValue tree. */
class JsonParser
{
  public:
    JsonParser(const char *p, const char *end) : p_(p), end_(end) {}

    bool
    parse(JsonValue *out, std::string *error)
    {
        bool ok = value(*out) && (ws(), p_ == end_);
        if (!ok && error)
            *error = err_.empty() ? "trailing garbage" : err_;
        return ok;
    }

  private:
    bool
    fail(const char *what)
    {
        if (err_.empty())
            err_ = std::string(what) + " at offset " +
                   std::to_string(static_cast<size_t>(p_ - begin_));
        return false;
    }

    void
    ws()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                             *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (static_cast<size_t>(end_ - p_) < n ||
            std::char_traits<char>::compare(p_, lit, n) != 0)
            return fail("bad literal");
        p_ += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        ws();
        if (p_ >= end_)
            return fail("unexpected end");
        switch (*p_) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++p_; // '{'
        ws();
        if (p_ < end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            ws();
            if (p_ >= end_ || *p_ != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            ws();
            if (p_ >= end_ || *p_ != ':')
                return fail("expected ':'");
            ++p_;
            out.members.emplace_back(std::move(key), JsonValue{});
            if (!value(out.members.back().second))
                return false;
            ws();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            if (p_ < end_ && *p_ == '}') {
                ++p_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++p_; // '['
        ws();
        if (p_ < end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        while (true) {
            out.items.emplace_back();
            if (!value(out.items.back()))
                return false;
            ws();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            if (p_ < end_ && *p_ == ']') {
                ++p_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string &out)
    {
        ++p_; // opening quote
        while (p_ < end_) {
            unsigned char c = *p_;
            if (c == '"') {
                ++p_;
                return true;
            }
            if (c == '\\') {
                ++p_;
                if (p_ >= end_)
                    return fail("bad escape");
                char e = *p_;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        ++p_;
                        if (p_ >= end_ ||
                            !std::isxdigit(
                                static_cast<unsigned char>(*p_)))
                            return fail("bad \\u escape");
                        code = code * 16 +
                               (std::isdigit(
                                    static_cast<unsigned char>(*p_))
                                    ? unsigned(*p_ - '0')
                                    : unsigned(
                                          std::tolower(*p_) - 'a') +
                                          10);
                    }
                    // Our emitters only \u-escape control chars; keep
                    // anything beyond Latin-1 as '?' rather than grow
                    // a UTF-8 encoder for data we never produce.
                    out += code < 0x100 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default: return fail("bad escape");
                }
                ++p_;
                continue;
            }
            if (c < 0x20)
                return fail("raw control char in string");
            out += static_cast<char>(c);
            ++p_;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const char *start = p_;
        if (p_ < end_ && *p_ == '-')
            ++p_;
        while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_)))
            ++p_;
        if (p_ < end_ && *p_ == '.') {
            ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
            ++p_;
            if (p_ < end_ && (*p_ == '+' || *p_ == '-'))
                ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        if (p_ == start || (p_ == start + 1 && *start == '-'))
            return fail("bad number");
        out.kind = JsonValue::Kind::Number;
        out.text.assign(start, p_);
        return true;
    }

    const char *p_;
    const char *end_;
    const char *begin_ = p_;
    std::string err_;
};

} // namespace detail

/**
 * Parse one complete JSON document into @p out.
 * @return false (with @p error set) on malformed input.
 */
inline bool
jsonParse(const std::string &text, JsonValue *out,
          std::string *error = nullptr)
{
    *out = JsonValue{};
    detail::JsonParser parser(text.data(), text.data() + text.size());
    return parser.parse(out, error);
}

} // namespace muir
