/**
 * @file
 * In-house workloads (Table 2, bottom group): the Tensor2D intrinsic
 * benchmarks RELU[T], 2MM[T] (Figure 13's tiled matmul), CONV[T], plus
 * the scalar RELU and RGB2YUV kernels used by the cache-banking study
 * (Table 3).
 */
#include <algorithm>

#include "ir/builder.hh"
#include "support/strings.hh"
#include "ir/verifier.hh"
#include "workloads/workload.hh"

namespace muir::workloads
{

using namespace ir;

namespace
{

/** Tile shape used throughout §6.3. */
constexpr unsigned kT = 2;

std::vector<float>
randomTiles(uint64_t &seed, size_t tiles)
{
    std::vector<float> v(tiles * kT * kT);
    for (auto &x : v)
        x = prandFloat(seed, -2.0f, 2.0f);
    return v;
}

} // namespace

Workload
buildReluT()
{
    constexpr int kTiles = 64;
    Workload w;
    w.name = "relu_t";
    w.suite = Suite::InHouse;
    w.usesTensor = true;
    w.kernel = "relu_t";
    w.module = std::make_unique<Module>("relu_t");
    Module &m = *w.module;
    Type tile = Type::tensor(kT, kT);
    auto *gin = m.addGlobal("in", tile, kTiles);
    auto *gout = m.addGlobal("out", tile, kTiles);
    Function *fn = m.addFunction("relu_t", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "i", b.i32(0), b.i32(kTiles), b.i32(1));
    Value *t = b.tload(b.gep(gin, li.iv()), "t");
    b.tstore(b.trelu(t, "r"), b.gep(gout, li.iv()));
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x4e1;
    w.floatInputs["in"] = randomTiles(seed, kTiles);
    std::vector<float> out = w.floatInputs["in"];
    for (auto &x : out)
        x = std::max(0.0f, x);
    w.floatExpected["out"] = out;
    return w;
}

Workload
build2mmT()
{
    // Figure 13: tiled matrix multiply with Tensor2D intrinsics.
    // C[i][j] += A[i][k] x B[k][j] per 2x2 tile, NTiles x NTiles grid.
    constexpr int kNT = 4; // 8x8 matrix as 4x4 tiles.
    Workload w;
    w.name = "2mm_t";
    w.suite = Suite::InHouse;
    w.usesTensor = true;
    w.kernel = "mm2t";
    w.module = std::make_unique<Module>("2mm_t");
    Module &m = *w.module;
    Type tile = Type::tensor(kT, kT);
    auto *ga = m.addGlobal("A", tile, kNT * kNT);
    auto *gb = m.addGlobal("B", tile, kNT * kNT);
    auto *gc = m.addGlobal("C", tile, kNT * kNT);
    Function *fn = m.addFunction("mm2t", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "i", b.i32(0), b.i32(kNT), b.i32(1));
    ForLoop lj(b, "j", b.i32(0), b.i32(kNT), b.i32(1));
    ForLoop lk(b, "k", b.i32(0), b.i32(kNT), b.i32(1));
    Value *cptr = b.gep(gc, b.add(b.mul(li.iv(), b.i32(kNT)), lj.iv()),
                        "cptr");
    Value *ta = b.tload(
        b.gep(ga, b.add(b.mul(li.iv(), b.i32(kNT)), lk.iv())), "ta");
    Value *tb = b.tload(
        b.gep(gb, b.add(b.mul(lk.iv(), b.i32(kNT)), lj.iv())), "tb");
    Value *mul = b.tmul(ta, tb, "mul");
    Value *tc = b.tload(cptr, "tc");
    b.tstore(b.tadd(tc, mul, "sum"), cptr);
    lk.finish();
    lj.finish();
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x22f;
    w.floatInputs["A"] = randomTiles(seed, kNT * kNT);
    w.floatInputs["B"] = randomTiles(seed, kNT * kNT);
    w.floatInputs["C"] =
        std::vector<float>(size_t(kNT) * kNT * kT * kT, 0.0f);

    // Reference: tile-order accumulation identical to the kernel.
    auto at = [&](const std::vector<float> &mat, int ti, int tj, int r,
                  int c) {
        return mat[(size_t(ti) * kNT + tj) * kT * kT + r * kT + c];
    };
    std::vector<float> cm(size_t(kNT) * kNT * kT * kT, 0.0f);
    for (int i = 0; i < kNT; ++i)
        for (int j = 0; j < kNT; ++j)
            for (int k = 0; k < kNT; ++k)
                for (unsigned r = 0; r < kT; ++r)
                    for (unsigned c = 0; c < kT; ++c) {
                        float acc = 0.0f;
                        for (unsigned x = 0; x < kT; ++x)
                            acc += at(w.floatInputs["A"], i, k, r, x) *
                                   at(w.floatInputs["B"], k, j, x, c);
                        cm[(size_t(i) * kNT + j) * kT * kT + r * kT +
                           c] += acc;
                    }
    w.floatExpected["C"] = cm;
    return w;
}

Workload
buildConvT()
{
    // 1-D convolution over tile arrays: out[i] = sum_j w[j] (x) in[i+j]
    // with elementwise tile products (Figure 2's running example,
    // upgraded to Tensor2D ops).
    constexpr int kOut = 24, kW = 4;
    Workload w;
    w.name = "conv_t";
    w.suite = Suite::InHouse;
    w.usesTensor = true;
    w.kernel = "conv_t";
    w.module = std::make_unique<Module>("conv_t");
    Module &m = *w.module;
    Type tile = Type::tensor(kT, kT);
    auto *gin = m.addGlobal("in", tile, kOut + kW);
    auto *gw = m.addGlobal("w", tile, kW);
    auto *gzero = m.addGlobal("zero", tile, 1);
    auto *gout = m.addGlobal("out", tile, kOut);
    Function *fn = m.addFunction("conv_t", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "i", b.i32(0), b.i32(kOut), b.i32(1));
    Value *z = b.tload(b.gep(gzero, b.i32(0)), "z");
    ForLoop lj(b, "j", b.i32(0), b.i32(kW), b.i32(1));
    Instruction *acc = lj.addCarried(z, "acc");
    Value *xv = b.tload(b.gep(gin, b.add(li.iv(), lj.iv())), "xv");
    Value *wv = b.tload(b.gep(gw, lj.iv()), "wv");
    lj.setCarriedNext(acc, b.tadd(acc, b.tmul(xv, wv, "p"), "acc.n"));
    lj.finish();
    b.tstore(acc, b.gep(gout, li.iv()));
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0xc0171;
    w.floatInputs["in"] = randomTiles(seed, kOut + kW);
    w.floatInputs["w"] = randomTiles(seed, kW);
    w.floatInputs["zero"] = std::vector<float>(kT * kT, 0.0f);

    auto tileAt = [&](const std::vector<float> &v, int t) {
        return std::vector<float>(v.begin() + t * kT * kT,
                                  v.begin() + (t + 1) * kT * kT);
    };
    auto matmul22 = [](const std::vector<float> &a,
                       const std::vector<float> &bm) {
        std::vector<float> c(kT * kT, 0.0f);
        for (unsigned r = 0; r < kT; ++r)
            for (unsigned cc = 0; cc < kT; ++cc)
                for (unsigned k = 0; k < kT; ++k)
                    c[r * kT + cc] += a[r * kT + k] * bm[k * kT + cc];
        return c;
    };
    std::vector<float> out;
    for (int i = 0; i < kOut; ++i) {
        std::vector<float> acc(kT * kT, 0.0f);
        for (int j = 0; j < kW; ++j) {
            auto p = matmul22(tileAt(w.floatInputs["in"], i + j),
                              tileAt(w.floatInputs["w"], j));
            for (unsigned e = 0; e < kT * kT; ++e)
                acc[e] += p[e];
        }
        out.insert(out.end(), acc.begin(), acc.end());
    }
    w.floatExpected["out"] = out;
    (void)gout;
    return w;
}

Workload
build2mmTScalar()
{
    // Scalar twin of 2MM[T]: the same 8x8 matrix product written with
    // scalar loops — the Figure 15 baseline.
    constexpr int kN = 8;
    Workload w;
    w.name = "2mm_t_scalar";
    w.suite = Suite::InHouse;
    w.usesFp = true;
    w.kernel = "mm2ts";
    w.module = std::make_unique<Module>("2mm_t_scalar");
    Module &m = *w.module;
    auto *ga = m.addGlobal("A", Type::f32(), kN * kN);
    auto *gb = m.addGlobal("B", Type::f32(), kN * kN);
    auto *gc = m.addGlobal("C", Type::f32(), kN * kN);
    Function *fn = m.addFunction("mm2ts", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "i", b.i32(0), b.i32(kN), b.i32(1));
    ForLoop lj(b, "j", b.i32(0), b.i32(kN), b.i32(1));
    ForLoop lk(b, "k", b.i32(0), b.i32(kN), b.i32(1));
    Instruction *acc = lk.addCarried(b.f32(0.0), "acc");
    Value *aik = b.load(
        b.gep(ga, b.add(b.mul(li.iv(), b.i32(kN)), lk.iv())), "a");
    Value *bkj = b.load(
        b.gep(gb, b.add(b.mul(lk.iv(), b.i32(kN)), lj.iv())), "b");
    lk.setCarriedNext(acc, b.fadd(acc, b.fmul(aik, bkj), "fma"));
    lk.finish();
    b.store(acc, b.gep(gc, b.add(b.mul(li.iv(), b.i32(kN)), lj.iv())));
    lj.finish();
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x22f5;
    std::vector<float> a(kN * kN), bm(kN * kN);
    for (auto &x : a)
        x = prandFloat(seed, -2.0f, 2.0f);
    for (auto &x : bm)
        x = prandFloat(seed, -2.0f, 2.0f);
    w.floatInputs["A"] = a;
    w.floatInputs["B"] = bm;
    std::vector<float> c(kN * kN, 0.0f);
    for (int i = 0; i < kN; ++i)
        for (int j = 0; j < kN; ++j) {
            float s2 = 0.0f;
            for (int k = 0; k < kN; ++k)
                s2 += a[i * kN + k] * bm[k * kN + j];
            c[i * kN + j] = s2;
        }
    w.floatExpected["C"] = c;
    return w;
}

Workload
buildConvTScalar()
{
    // Scalar twin of CONV[T]: identical tile math. The 2x2 element
    // loops are fully unrolled into the j-loop body — the form a
    // compiler's -O3 produces for fixed tiny trip counts — so the twin
    // is a fair (well-optimized) scalar baseline.
    constexpr int kOut = 24, kW = 4;
    Workload w;
    w.name = "conv_t_scalar";
    w.suite = Suite::InHouse;
    w.usesFp = true;
    w.kernel = "convts";
    w.module = std::make_unique<Module>("conv_t_scalar");
    Module &m = *w.module;
    auto *gin = m.addGlobal("in", Type::f32(), (kOut + kW) * 4);
    auto *gw = m.addGlobal("w", Type::f32(), kW * 4);
    auto *gout = m.addGlobal("out", Type::f32(), kOut * 4);
    Function *fn = m.addFunction("convts", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    // out[i](r,c) = sum_j sum_k in[i+j](r,k) * w[j](k,c), 2x2 tiles.
    ForLoop li(b, "i", b.i32(0), b.i32(kOut), b.i32(1));
    ForLoop lj(b, "j", b.i32(0), b.i32(kW), b.i32(1));
    Instruction *acc[2][2];
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            acc[r][c] = lj.addCarried(b.f32(0.0),
                                      fmt("acc%d%d", r, c));
    Value *in_base = b.mul(b.add(li.iv(), lj.iv()), b.i32(4), "ib");
    Value *w_base = b.mul(lj.iv(), b.i32(4), "wb");
    Value *in_e[4], *w_e[4];
    for (int e = 0; e < 4; ++e) {
        in_e[e] = b.load(b.gep(gin, b.add(in_base, b.i32(e))),
                         fmt("ie%d", e));
        w_e[e] = b.load(b.gep(gw, b.add(w_base, b.i32(e))),
                        fmt("we%d", e));
    }
    // Unrolled 2x2 matmul accumulate.
    for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
            Value *p0 = b.fmul(in_e[r * 2 + 0], w_e[0 * 2 + c]);
            Value *p1 = b.fmul(in_e[r * 2 + 1], w_e[1 * 2 + c]);
            lj.setCarriedNext(
                acc[r][c],
                b.fadd(acc[r][c], b.fadd(p0, p1),
                       fmt("n%d%d", r, c)));
        }
    }
    lj.finish();
    Value *out_base = b.mul(li.iv(), b.i32(4), "ob");
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            b.store(acc[r][c],
                    b.gep(gout, b.add(out_base, b.i32(r * 2 + c))));
    li.finish();
    b.ret();
    verifyOrDie(m);

    // Reuse conv_t's data and golden results so the twin computes the
    // exact same answers.
    Workload tw = buildConvT();
    w.floatInputs["in"] = tw.floatInputs["in"];
    w.floatInputs["w"] = tw.floatInputs["w"];
    w.floatExpected["out"] = tw.floatExpected["out"];
    return w;
}

Workload
buildRelu()
{
    constexpr int kN = 256;
    Workload w;
    w.name = "relu";
    w.suite = Suite::InHouse;
    w.usesFp = true;
    w.kernel = "relu";
    w.module = std::make_unique<Module>("relu");
    Module &m = *w.module;
    auto *gx = m.addGlobal("x", Type::f32(), kN);
    auto *gout = m.addGlobal("out", Type::f32(), kN);
    Function *fn = m.addFunction("relu", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "i", b.i32(0), b.i32(kN), b.i32(1));
    Value *xv = b.load(b.gep(gx, li.iv()), "xv");
    Value *pos = b.fcmp(Op::FCmpOgt, xv, b.f32(0.0), "pos");
    b.store(b.select(pos, xv, b.f32(0.0), "r"), b.gep(gout, li.iv()));
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x4e10;
    std::vector<float> x(kN);
    for (auto &v : x)
        v = prandFloat(seed, -3.0f, 3.0f);
    w.floatInputs["x"] = x;
    std::vector<float> out(kN);
    for (int i = 0; i < kN; ++i)
        out[i] = std::max(0.0f, x[i]);
    w.floatExpected["out"] = out;
    return w;
}

Workload
buildRgb2Yuv()
{
    // Integer colour-space conversion (BT.601 fixed point).
    constexpr int kN = 128;
    Workload w;
    w.name = "rgb2yuv";
    w.suite = Suite::InHouse;
    w.kernel = "rgb2yuv";
    w.module = std::make_unique<Module>("rgb2yuv");
    Module &m = *w.module;
    auto *gr = m.addGlobal("r", Type::i32(), kN);
    auto *gg = m.addGlobal("g", Type::i32(), kN);
    auto *gb = m.addGlobal("b", Type::i32(), kN);
    auto *gy = m.addGlobal("y", Type::i32(), kN);
    auto *gu = m.addGlobal("u", Type::i32(), kN);
    auto *gv = m.addGlobal("v", Type::i32(), kN);
    Function *fn = m.addFunction("rgb2yuv", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "i", b.i32(0), b.i32(kN), b.i32(1));
    Value *r = b.load(b.gep(gr, li.iv()), "r");
    Value *g = b.load(b.gep(gg, li.iv()), "g");
    Value *bl = b.load(b.gep(gb, li.iv()), "bl");
    auto weighted = [&](int wr, int wg, int wb, int bias,
                        const std::string &nm) {
        Value *s = b.add(b.add(b.mul(r, b.i32(wr)),
                               b.mul(g, b.i32(wg))),
                         b.mul(bl, b.i32(wb)), nm + ".s");
        return b.add(b.ashr(b.add(s, b.i32(128)), b.i32(8)),
                     b.i32(bias), nm);
    };
    b.store(weighted(66, 129, 25, 16, "y"), b.gep(gy, li.iv()));
    b.store(weighted(-38, -74, 112, 128, "u"), b.gep(gu, li.iv()));
    b.store(weighted(112, -94, -18, 128, "v"), b.gep(gv, li.iv()));
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x96b;
    std::vector<int32_t> rv(kN), gv2(kN), bv(kN);
    for (int i = 0; i < kN; ++i) {
        rv[i] = prandInt(seed, 0, 256);
        gv2[i] = prandInt(seed, 0, 256);
        bv[i] = prandInt(seed, 0, 256);
    }
    w.intInputs["r"] = rv;
    w.intInputs["g"] = gv2;
    w.intInputs["b"] = bv;
    std::vector<int32_t> yv(kN), uv(kN), vv(kN);
    for (int i = 0; i < kN; ++i) {
        yv[i] = ((66 * rv[i] + 129 * gv2[i] + 25 * bv[i] + 128) >> 8) + 16;
        uv[i] = ((-38 * rv[i] - 74 * gv2[i] + 112 * bv[i] + 128) >> 8) + 128;
        vv[i] = ((112 * rv[i] - 94 * gv2[i] - 18 * bv[i] + 128) >> 8) + 128;
    }
    w.intExpected["y"] = yv;
    w.intExpected["u"] = uv;
    w.intExpected["v"] = vv;
    return w;
}

} // namespace muir::workloads
