/**
 * @file
 * TensorFlow-derived workloads (Table 2, third group): CONV (2-D
 * convolution), DENSE8/DENSE16 (fully connected layers), and
 * SOFTM8/SOFTM16 (row-wise softmax), all scalar f32 — the baseline
 * lowering the tensorization pass (§6.3) later upgrades.
 */
#include <cmath>

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "workloads/workload.hh"

namespace muir::workloads
{

using namespace ir;

Workload
buildConv()
{
    // Valid 2-D convolution: 16x16 image, 3x3 kernel -> 14x14 output.
    constexpr int kImg = 16, kK = 3, kOut = kImg - kK + 1;
    Workload w;
    w.name = "conv";
    w.suite = Suite::Tensorflow;
    w.usesFp = true;
    w.kernel = "conv";
    w.module = std::make_unique<Module>("conv");
    Module &m = *w.module;
    auto *gin = m.addGlobal("in", Type::f32(), kImg * kImg);
    auto *gw = m.addGlobal("w", Type::f32(), kK * kK);
    auto *gout = m.addGlobal("out", Type::f32(), kOut * kOut);
    Function *fn = m.addFunction("conv", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop oy(b, "oy", b.i32(0), b.i32(kOut), b.i32(1));
    ForLoop ox(b, "ox", b.i32(0), b.i32(kOut), b.i32(1));
    ForLoop ky(b, "ky", b.i32(0), b.i32(kK), b.i32(1));
    Instruction *row_acc = ky.addCarried(b.f32(0.0), "racc");
    ForLoop kx(b, "kx", b.i32(0), b.i32(kK), b.i32(1));
    Instruction *acc = kx.addCarried(row_acc, "acc");
    Value *iy = b.add(oy.iv(), ky.iv(), "iy");
    Value *ix = b.add(ox.iv(), kx.iv(), "ix");
    Value *pix = b.load(
        b.gep(gin, b.add(b.mul(iy, b.i32(kImg)), ix)), "pix");
    Value *wk = b.load(
        b.gep(gw, b.add(b.mul(ky.iv(), b.i32(kK)), kx.iv())), "wt");
    kx.setCarriedNext(acc, b.fadd(acc, b.fmul(pix, wk), "fma"));
    kx.finish();
    ky.setCarriedNext(row_acc, acc);
    ky.finish();
    b.store(row_acc,
            b.gep(gout, b.add(b.mul(oy.iv(), b.i32(kOut)), ox.iv())));
    ox.finish();
    oy.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0xc09f;
    std::vector<float> in(kImg * kImg), wt(kK * kK);
    for (auto &x : in)
        x = prandFloat(seed, -1.0f, 1.0f);
    for (auto &x : wt)
        x = prandFloat(seed, -0.5f, 0.5f);
    w.floatInputs["in"] = in;
    w.floatInputs["w"] = wt;
    std::vector<float> out(kOut * kOut, 0.0f);
    for (int y = 0; y < kOut; ++y) {
        for (int x = 0; x < kOut; ++x) {
            float acc = 0.0f;
            for (int ky2 = 0; ky2 < kK; ++ky2)
                for (int kx2 = 0; kx2 < kK; ++kx2)
                    acc += in[(y + ky2) * kImg + (x + kx2)] *
                           wt[ky2 * kK + kx2];
            out[y * kOut + x] = acc;
        }
    }
    w.floatExpected["out"] = out;
    return w;
}

Workload
buildDense(unsigned units)
{
    // Fully connected layer: out[u] = sum_j W[u][j]*x[j] + bias[u].
    constexpr int kIn = 32;
    Workload w;
    w.name = units == 8 ? "dense8" : "dense16";
    w.suite = Suite::Tensorflow;
    w.usesFp = true;
    w.kernel = "dense";
    w.module = std::make_unique<Module>("dense");
    Module &m = *w.module;
    auto *gw = m.addGlobal("W", Type::f32(), units * kIn);
    auto *gx = m.addGlobal("x", Type::f32(), kIn);
    auto *gbias = m.addGlobal("bias", Type::f32(), units);
    auto *gout = m.addGlobal("out", Type::f32(), units);
    Function *fn = m.addFunction("dense", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop lu(b, "u", b.i32(0), b.i32(int(units)), b.i32(1));
    ForLoop lj(b, "j", b.i32(0), b.i32(kIn), b.i32(1));
    Instruction *acc = lj.addCarried(b.f32(0.0), "acc");
    Value *wij = b.load(
        b.gep(gw, b.add(b.mul(lu.iv(), b.i32(kIn)), lj.iv())), "wij");
    Value *xj = b.load(b.gep(gx, lj.iv()), "xj");
    lj.setCarriedNext(acc, b.fadd(acc, b.fmul(wij, xj), "fma"));
    lj.finish();
    Value *biased = b.fadd(acc, b.load(b.gep(gbias, lu.iv()), "bv"),
                           "biased");
    b.store(biased, b.gep(gout, lu.iv()));
    lu.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0xde45e + units;
    std::vector<float> wm(units * kIn), x(kIn), bias(units);
    for (auto &v : wm)
        v = prandFloat(seed, -1.0f, 1.0f);
    for (auto &v : x)
        v = prandFloat(seed, -1.0f, 1.0f);
    for (auto &v : bias)
        v = prandFloat(seed, -0.2f, 0.2f);
    w.floatInputs["W"] = wm;
    w.floatInputs["x"] = x;
    w.floatInputs["bias"] = bias;
    std::vector<float> out(units);
    for (unsigned u = 0; u < units; ++u) {
        float acc = 0.0f;
        for (int j = 0; j < kIn; ++j)
            acc += wm[u * kIn + j] * x[j];
        out[u] = acc + bias[u];
    }
    w.floatExpected["out"] = out;
    return w;
}

Workload
buildSoftmax(unsigned rows)
{
    // Row-wise softmax: e[i] = exp(x[i]); out[i] = e[i]/sum(e).
    constexpr int kCols = 32;
    Workload w;
    w.name = rows == 8 ? "softm8" : "softm16";
    w.suite = Suite::Tensorflow;
    w.usesFp = true;
    w.kernel = "softmax";
    w.module = std::make_unique<Module>("softmax");
    Module &m = *w.module;
    auto *gx = m.addGlobal("x", Type::f32(), rows * kCols);
    auto *ge = m.addGlobal("e", Type::f32(), rows * kCols);
    auto *gout = m.addGlobal("out", Type::f32(), rows * kCols);
    Function *fn = m.addFunction("softmax", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop lr(b, "r", b.i32(0), b.i32(int(rows)), b.i32(1));
    Value *base = b.mul(lr.iv(), b.i32(kCols), "base");
    {
        ForLoop lc(b, "exp", b.i32(0), b.i32(kCols), b.i32(1));
        Value *xv = b.load(b.gep(gx, b.add(base, lc.iv())), "xv");
        b.store(b.fexp(xv, "ev"), b.gep(ge, b.add(base, lc.iv())));
        lc.finish();
    }
    ForLoop lsum(b, "sum", b.i32(0), b.i32(kCols), b.i32(1));
    Instruction *acc = lsum.addCarried(b.f32(0.0), "acc");
    Value *ev = b.load(b.gep(ge, b.add(base, lsum.iv())), "ev2");
    lsum.setCarriedNext(acc, b.fadd(acc, ev, "sum"));
    lsum.finish();
    {
        ForLoop ld(b, "div", b.i32(0), b.i32(kCols), b.i32(1));
        Value *ev3 = b.load(b.gep(ge, b.add(base, ld.iv())), "ev3");
        b.store(b.fdiv(ev3, acc, "nrm"),
                b.gep(gout, b.add(base, ld.iv())));
        ld.finish();
    }
    lr.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x50f7 + rows;
    std::vector<float> x(rows * kCols);
    for (auto &v : x)
        v = prandFloat(seed, -2.0f, 2.0f);
    w.floatInputs["x"] = x;
    std::vector<float> out(rows * kCols);
    for (unsigned r = 0; r < rows; ++r) {
        float sum = 0.0f;
        std::vector<float> e(kCols);
        for (int c = 0; c < kCols; ++c) {
            e[c] = std::exp(x[r * kCols + c]);
            sum += e[c];
        }
        for (int c = 0; c < kCols; ++c)
            out[r * kCols + c] = e[c] / sum;
    }
    w.floatExpected["out"] = out;
    return w;
}

} // namespace muir::workloads
