/**
 * @file
 * Shared experiment driver: lowers a workload to its baseline
 * accelerator with the paper's suite-appropriate memory configuration
 * (Cilk local arrays in a shared scratchpad, everything else behind
 * the shared L1, §6.4), and runs accelerators over bound inputs with
 * golden checking.
 */
#pragma once

#include <memory>

#include "frontend/lower.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace muir::workloads
{

/** The lowering options Table 2's baselines use for this workload. */
frontend::LowerOptions baselineOptions(const Workload &w);

/** Lower the workload's kernel to its baseline μIR accelerator. */
std::unique_ptr<uir::Accelerator> lowerBaseline(const Workload &w);

/** Outcome of one simulated run. */
struct RunResult
{
    uint64_t cycles = 0;
    uint64_t firings = 0;
    /** Empty when outputs matched the golden reference. */
    std::string check;
    StatSet stats;
    /** μprof results (set when RunOptions::profile). */
    std::shared_ptr<sim::ProfileResult> profile;
    std::shared_ptr<sim::ProfileCollector> profileData;
    /** μscope windowed telemetry (set when RunOptions::timeline). */
    std::shared_ptr<sim::Timeline> timeline;
    /** Per-event timeline (set when RunOptions::trace). */
    std::vector<sim::TimingTraceRow> trace;
    /** μfit verdict (set when RunOptions::watchdog). */
    sim::FaultVerdict verdict;
    /** Shared replay index (set when RunOptions::keepCompiled). */
    std::shared_ptr<const sim::CompiledDdg> compiled;
};

/** Optional collection switches for runOn. */
struct RunOptions
{
    bool profile = false;
    bool trace = false;
    /** Build the μscope windowed timeline. */
    bool timeline = false;
    /** Timeline window-count target (0 = auto ≈ 256). */
    unsigned timelineWindows = 0;
    /** Arm the μfit hang watchdog (see RunResult::verdict). */
    bool watchdog = false;
    /** Watchdog cycle budget (0 = drain detection only). */
    uint64_t maxCycles = 0;
    /** Replay this shared index instead of re-recording the DDG
     *  (sim/compiled_ddg.hh reuse contract). */
    const sim::CompiledDdg *compiled = nullptr;
    /** Compile the recorded DDG into RunResult::compiled for reuse. */
    bool keepCompiled = false;
};

/** Bind inputs, simulate, and check outputs against the golden data. */
RunResult runOn(const Workload &w, const uir::Accelerator &accel,
                const RunOptions &options = {});

} // namespace muir::workloads
