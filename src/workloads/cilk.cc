/**
 * @file
 * Cilk workloads (Table 2, middle group): FIB, M-SORT, SAXPY, STENCIL,
 * IMG-SCALE. All use Tapir spawn parallelism (parallel ForLoops); FIB
 * and M-SORT follow the paper's recursion-to-iteration conversion
 * (§3.5: "We use LLVM to convert recursion to an iterative pattern").
 */
#include <algorithm>

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "workloads/workload.hh"

namespace muir::workloads
{

using namespace ir;

Workload
buildSaxpy()
{
    constexpr int kN = 256;
    constexpr float kA = 2.5f;
    Workload w;
    w.name = "saxpy";
    w.suite = Suite::Cilk;
    w.usesFp = true;
    w.usesSpawn = true;
    w.kernel = "saxpy";
    w.module = std::make_unique<Module>("saxpy");
    Module &m = *w.module;
    auto *gx = m.addGlobal("x", Type::f32(), kN);
    auto *gy = m.addGlobal("y", Type::f32(), kN);
    Function *fn = m.addFunction("saxpy", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop loop(b, "i", b.i32(0), b.i32(kN), b.i32(1),
                 /*parallel=*/true);
    Value *xi = b.load(b.gep(gx, loop.iv()), "xi");
    Value *yi = b.load(b.gep(gy, loop.iv()), "yi");
    b.store(b.fadd(b.fmul(b.f32(kA), xi), yi, "r"),
            b.gep(gy, loop.iv()));
    loop.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x5a;
    std::vector<float> xs(kN), ys(kN);
    for (int i = 0; i < kN; ++i) {
        xs[i] = prandFloat(seed, -2.0f, 2.0f);
        ys[i] = prandFloat(seed, -2.0f, 2.0f);
    }
    w.floatInputs["x"] = xs;
    w.floatInputs["y"] = ys;
    std::vector<float> want(kN);
    for (int i = 0; i < kN; ++i)
        want[i] = kA * xs[i] + ys[i];
    w.floatExpected["y"] = want;
    return w;
}

Workload
buildStencil()
{
    // 5-point stencil over the interior; rows processed in parallel
    // (each spawned row task contains a serial column loop).
    constexpr int kH = 24, kW = 24;
    constexpr float kC0 = 0.6f, kC1 = 0.1f;
    Workload w;
    w.name = "stencil";
    w.suite = Suite::Cilk;
    w.usesFp = true;
    w.usesSpawn = true;
    w.kernel = "stencil";
    w.module = std::make_unique<Module>("stencil");
    Module &m = *w.module;
    auto *gin = m.addGlobal("in", Type::f32(), kH * kW);
    auto *gout = m.addGlobal("out", Type::f32(), kH * kW);
    Function *fn = m.addFunction("stencil", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "row", b.i32(1), b.i32(kH - 1), b.i32(1),
               /*parallel=*/true);
    ForLoop lj(b, "col", b.i32(1), b.i32(kW - 1), b.i32(1));
    Value *idx = b.add(b.mul(li.iv(), b.i32(kW)), lj.iv(), "idx");
    Value *c = b.load(b.gep(gin, idx), "c");
    Value *n = b.load(b.gep(gin, b.sub(idx, b.i32(kW))), "n");
    Value *s = b.load(b.gep(gin, b.add(idx, b.i32(kW))), "s");
    Value *e = b.load(b.gep(gin, b.add(idx, b.i32(1))), "e");
    Value *wv = b.load(b.gep(gin, b.sub(idx, b.i32(1))), "w");
    Value *ring = b.fadd(b.fadd(n, s), b.fadd(e, wv), "ring");
    Value *r = b.fadd(b.fmul(b.f32(kC0), c),
                      b.fmul(b.f32(kC1), ring), "r");
    b.store(r, b.gep(gout, idx));
    lj.finish();
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x57e;
    std::vector<float> in(kH * kW);
    for (auto &x : in)
        x = prandFloat(seed, 0.0f, 1.0f);
    w.floatInputs["in"] = in;
    std::vector<float> out(kH * kW, 0.0f);
    for (int i = 1; i < kH - 1; ++i) {
        for (int j = 1; j < kW - 1; ++j) {
            int idx2 = i * kW + j;
            float ring = (in[idx2 - kW] + in[idx2 + kW]) +
                         (in[idx2 + 1] + in[idx2 - 1]);
            out[idx2] = kC0 * in[idx2] + kC1 * ring;
        }
    }
    w.floatExpected["out"] = out;
    return w;
}

Workload
buildImgScale()
{
    // 2x nearest-neighbour downscale with brightness adjustment
    // (integer pixels), parallel over output rows.
    constexpr int kIn = 32, kOut = 16;
    constexpr int kBright = 180; // Q8 fixed point (~0.7).
    Workload w;
    w.name = "img_scale";
    w.suite = Suite::Cilk;
    w.usesSpawn = true;
    w.kernel = "img_scale";
    w.module = std::make_unique<Module>("img_scale");
    Module &m = *w.module;
    auto *gin = m.addGlobal("in", Type::i32(), kIn * kIn);
    auto *gout = m.addGlobal("out", Type::i32(), kOut * kOut);
    Function *fn = m.addFunction("img_scale", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop ly(b, "y", b.i32(0), b.i32(kOut), b.i32(1),
               /*parallel=*/true);
    ForLoop lx(b, "x", b.i32(0), b.i32(kOut), b.i32(1));
    Value *src_idx = b.add(b.mul(b.mul(ly.iv(), b.i32(2)), b.i32(kIn)),
                           b.mul(lx.iv(), b.i32(2)), "sidx");
    Value *pix = b.load(b.gep(gin, src_idx), "pix");
    Value *scaled = b.ashr(b.mul(pix, b.i32(kBright)), b.i32(8),
                           "scaled");
    b.store(scaled,
            b.gep(gout, b.add(b.mul(ly.iv(), b.i32(kOut)), lx.iv())));
    lx.finish();
    ly.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x1396;
    std::vector<int32_t> in(kIn * kIn);
    for (auto &x : in)
        x = prandInt(seed, 0, 256);
    w.intInputs["in"] = in;
    std::vector<int32_t> out(kOut * kOut);
    for (int y = 0; y < kOut; ++y)
        for (int x = 0; x < kOut; ++x)
            out[y * kOut + x] =
                (in[(2 * y) * kIn + 2 * x] * kBright) >> 8;
    w.intExpected["out"] = out;
    return w;
}

Workload
buildFib()
{
    // fib(k[i]) for a batch of queries; each query is a spawned task
    // running the iterative (recursion-converted) fib loop.
    constexpr int kTasks = 16;
    Workload w;
    w.name = "fib";
    w.suite = Suite::Cilk;
    w.usesSpawn = true;
    w.kernel = "fib";
    w.module = std::make_unique<Module>("fib");
    Module &m = *w.module;
    auto *gk = m.addGlobal("k", Type::i32(), kTasks);
    auto *gout = m.addGlobal("out", Type::i32(), kTasks);
    Function *fn = m.addFunction("fib", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "q", b.i32(0), b.i32(kTasks), b.i32(1),
               /*parallel=*/true);
    Value *kv = b.load(b.gep(gk, li.iv()), "kv");
    ForLoop lt(b, "t", b.i32(0), kv, b.i32(1));
    Instruction *fa = lt.addCarried(b.i32(0), "fa");
    Instruction *fb = lt.addCarried(b.i32(1), "fb");
    lt.setCarriedNext(fa, fb);
    lt.setCarriedNext(fb, b.add(fa, fb, "fn"));
    lt.finish();
    b.store(fa, b.gep(gout, li.iv()));
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0xf1b;
    std::vector<int32_t> ks(kTasks);
    for (auto &x : ks)
        x = prandInt(seed, 10, 16); // fib(10..15).
    w.intInputs["k"] = ks;
    std::vector<int32_t> out(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        int64_t a = 0, bb = 1;
        for (int t = 0; t < ks[i]; ++t) {
            int64_t next = a + bb;
            a = bb;
            bb = next;
        }
        out[i] = static_cast<int32_t>(a);
    }
    w.intExpected["out"] = out;
    return w;
}

Workload
buildMsort()
{
    // Bottom-up iterative merge sort (recursion converted): serial
    // loop over pass widths, parallel merge of block pairs into tmp,
    // parallel copy-back. The merge loop is branch-free (selects with
    // clamped indices), matching dataflow predication.
    constexpr int kN = 64;
    constexpr int kLogN = 6;
    Workload w;
    w.name = "msort";
    w.suite = Suite::Cilk;
    w.usesSpawn = true;
    w.kernel = "msort";
    w.module = std::make_unique<Module>("msort");
    Module &m = *w.module;
    auto *ga = m.addGlobal("a", Type::i32(), kN);
    auto *gtmp = m.addGlobal("tmp", Type::i32(), kN);
    Function *fn = m.addFunction("msort", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));

    ForLoop ls(b, "pass", b.i32(0), b.i32(kLogN), b.i32(1));
    Value *width = b.shl(b.i32(1), ls.iv(), "width");
    Value *span = b.shl(width, b.i32(1), "span");
    Value *nblocks = b.lshr(b.i32(kN), b.add(ls.iv(), b.i32(1)),
                            "nblocks");
    {
        ForLoop lb(b, "blk", b.i32(0), nblocks, b.i32(1),
                   /*parallel=*/true);
        Value *lo = b.mul(lb.iv(), span, "lo");
        Value *mid = b.add(lo, width, "mid");
        Value *hi = b.add(lo, span, "hi");
        ForLoop lk(b, "k", b.i32(0), span, b.i32(1));
        Instruction *pi = lk.addCarried(lo, "pi");
        Instruction *pj = lk.addCarried(mid, "pj");
        // Clamp indices so speculative loads stay in bounds.
        Value *ci = b.select(b.icmp(Op::ICmpSlt, pi, mid), pi,
                             b.sub(mid, b.i32(1)), "ci");
        Value *cj = b.select(b.icmp(Op::ICmpSlt, pj, hi), pj,
                             b.sub(hi, b.i32(1)), "cj");
        Value *ai = b.load(b.gep(ga, ci), "ai");
        Value *aj = b.load(b.gep(ga, cj), "aj");
        Value *i_ok = b.icmp(Op::ICmpSlt, pi, mid, "i_ok");
        Value *j_done = b.icmp(Op::ICmpSge, pj, hi, "j_done");
        Value *le = b.icmp(Op::ICmpSle, ai, aj, "le");
        Value *take_i =
            b.andOp(i_ok, b.orOp(j_done, le, "jd_le"), "take_i");
        Value *v = b.select(take_i, ai, aj, "v");
        b.store(v, b.gep(gtmp, b.add(lo, lk.iv())));
        lk.setCarriedNext(pi, b.select(take_i, b.add(pi, b.i32(1)), pi,
                                       "pi.n"));
        lk.setCarriedNext(pj, b.select(take_i, pj, b.add(pj, b.i32(1)),
                                       "pj.n"));
        lk.finish();
        lb.finish();
    }
    {
        ForLoop lc(b, "copy", b.i32(0), b.i32(kN), b.i32(1),
                   /*parallel=*/true);
        b.store(b.load(b.gep(gtmp, lc.iv()), "t"), b.gep(ga, lc.iv()));
        lc.finish();
    }
    ls.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x3507;
    std::vector<int32_t> a(kN);
    for (auto &x : a)
        x = prandInt(seed, -1000, 1000);
    w.intInputs["a"] = a;
    std::vector<int32_t> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    w.intExpected["a"] = sorted;
    return w;
}

} // namespace muir::workloads
