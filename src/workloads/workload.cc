#include "workloads/workload.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::workloads
{

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Polybench: return "polybench";
      case Suite::Cilk: return "cilk";
      case Suite::Tensorflow: return "tensorflow";
      case Suite::InHouse: return "in-house";
    }
    return "?";
}

float
prandFloat(uint64_t &state, float lo, float hi)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    double unit = double(state % 1000003) / 1000003.0;
    return static_cast<float>(lo + unit * (hi - lo));
}

int32_t
prandInt(uint64_t &state, int32_t lo, int32_t hi)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return lo + static_cast<int32_t>(state % uint64_t(hi - lo));
}

void
Workload::bind(ir::MemoryImage &mem) const
{
    for (const auto &[gname, data] : floatInputs) {
        const ir::GlobalArray *g = module->global(gname);
        muir_assert(g != nullptr, "%s: unknown input global %s",
                    name.c_str(), gname.c_str());
        mem.writeFloats(g, data);
    }
    for (const auto &[gname, data] : intInputs) {
        const ir::GlobalArray *g = module->global(gname);
        muir_assert(g != nullptr, "%s: unknown input global %s",
                    name.c_str(), gname.c_str());
        mem.writeInts(g, data);
    }
}

std::string
Workload::check(const ir::MemoryImage &mem, double rel_tol) const
{
    for (const auto &[gname, want] : floatExpected) {
        const ir::GlobalArray *g = module->global(gname);
        muir_assert(g != nullptr, "%s: unknown output global %s",
                    name.c_str(), gname.c_str());
        auto got = mem.readFloats(g);
        for (size_t i = 0; i < want.size(); ++i) {
            double diff = std::fabs(double(got[i]) - double(want[i]));
            double scale = std::max(1.0, std::fabs(double(want[i])));
            if (diff > rel_tol * scale) {
                return fmt("%s: %s[%zu] = %g, want %g", name.c_str(),
                           gname.c_str(), i, got[i], want[i]);
            }
        }
    }
    for (const auto &[gname, want] : intExpected) {
        const ir::GlobalArray *g = module->global(gname);
        muir_assert(g != nullptr, "%s: unknown output global %s",
                    name.c_str(), gname.c_str());
        auto got = mem.readInts(g);
        for (size_t i = 0; i < want.size(); ++i) {
            if (got[i] != want[i]) {
                return fmt("%s: %s[%zu] = %d, want %d", name.c_str(),
                           gname.c_str(), i, got[i], want[i]);
            }
        }
    }
    return "";
}

/** @name Builders defined in the per-suite translation units @{ */
Workload buildGemm();
Workload buildCovar();
Workload buildFft();
Workload buildSpmv();
Workload build2mm();
Workload build3mm();
Workload buildSaxpy();
Workload buildStencil();
Workload buildImgScale();
Workload buildFib();
Workload buildMsort();
Workload buildConv();
Workload buildDense(unsigned units);
Workload buildSoftmax(unsigned rows);
Workload buildReluT();
Workload build2mmT();
Workload buildConvT();
Workload build2mmTScalar();
Workload buildConvTScalar();
Workload buildRelu();
Workload buildRgb2Yuv();
/** @} */

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        // Polybench / MachSuite
        "gemm", "covar", "fft", "spmv", "2mm", "3mm",
        // Cilk
        "fib", "msort", "saxpy", "stencil", "img_scale",
        // Tensorflow
        "conv", "dense8", "dense16", "softm8", "softm16",
        // In-house
        "relu_t", "2mm_t", "conv_t", "relu", "rgb2yuv",
    };
    return names;
}

Workload
buildWorkload(const std::string &name)
{
    if (name == "gemm") return buildGemm();
    if (name == "covar") return buildCovar();
    if (name == "fft") return buildFft();
    if (name == "spmv") return buildSpmv();
    if (name == "2mm") return build2mm();
    if (name == "3mm") return build3mm();
    if (name == "saxpy") return buildSaxpy();
    if (name == "stencil") return buildStencil();
    if (name == "img_scale") return buildImgScale();
    if (name == "fib") return buildFib();
    if (name == "msort") return buildMsort();
    if (name == "conv") return buildConv();
    if (name == "dense8") return buildDense(8);
    if (name == "dense16") return buildDense(16);
    if (name == "softm8") return buildSoftmax(8);
    if (name == "softm16") return buildSoftmax(16);
    if (name == "relu_t") return buildReluT();
    if (name == "2mm_t") return build2mmT();
    if (name == "conv_t") return buildConvT();
    if (name == "relu") return buildRelu();
    if (name == "rgb2yuv") return buildRgb2Yuv();
    // Scalar twins of the Tensor2D workloads (Figure 15 baselines);
    // not part of the Table 2 registry.
    if (name == "2mm_t_scalar") return build2mmTScalar();
    if (name == "conv_t_scalar") return buildConvTScalar();
    muir_fatal("unknown workload %s", name.c_str());
}

} // namespace muir::workloads
