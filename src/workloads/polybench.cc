/**
 * @file
 * Polybench / MachSuite workloads (Table 2, top group): GEMM, COVAR,
 * FFT, SPMV, 2MM, 3MM — all single-precision floating point, built as
 * canonical counted loop nests.
 */
#include <cmath>

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "workloads/workload.hh"

namespace muir::workloads
{

using namespace ir;

namespace
{

/** Emit C[n x p] = A[n x m] * B[m x p] as a triple loop nest. */
void
emitMatmul(IRBuilder &b, Value *a, Value *bm, Value *c, int n, int m,
           int p, const std::string &tag)
{
    ForLoop li(b, tag + ".i", b.i32(0), b.i32(n), b.i32(1));
    ForLoop lj(b, tag + ".j", b.i32(0), b.i32(p), b.i32(1));
    ForLoop lk(b, tag + ".k", b.i32(0), b.i32(m), b.i32(1));
    Instruction *acc = lk.addCarried(b.f32(0.0), tag + ".acc");
    Value *aik = b.load(
        b.gep(a, b.add(b.mul(li.iv(), b.i32(m)), lk.iv())), tag + ".a");
    Value *bkj = b.load(
        b.gep(bm, b.add(b.mul(lk.iv(), b.i32(p)), lj.iv())), tag + ".b");
    lk.setCarriedNext(acc, b.fadd(acc, b.fmul(aik, bkj), tag + ".fma"));
    lk.finish();
    b.store(acc, b.gep(c, b.add(b.mul(li.iv(), b.i32(p)), lj.iv())));
    lj.finish();
    li.finish();
}

/** Reference matmul matching the kernel's accumulate order. */
std::vector<float>
refMatmul(const std::vector<float> &a, const std::vector<float> &bm,
          int n, int m, int p)
{
    std::vector<float> c(size_t(n) * p, 0.0f);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < p; ++j) {
            float acc = 0.0f;
            for (int k = 0; k < m; ++k)
                acc += a[i * m + k] * bm[k * p + j];
            c[i * p + j] = acc;
        }
    }
    return c;
}

std::vector<float>
randomMatrix(uint64_t &seed, size_t elems, float lo = -1.0f,
             float hi = 1.0f)
{
    std::vector<float> v(elems);
    for (auto &x : v)
        x = prandFloat(seed, lo, hi);
    return v;
}

} // namespace

Workload
buildGemm()
{
    constexpr int kN = 24;
    Workload w;
    w.name = "gemm";
    w.suite = Suite::Polybench;
    w.usesFp = true;
    w.kernel = "gemm";
    w.module = std::make_unique<Module>("gemm");
    Module &m = *w.module;
    auto *ga = m.addGlobal("A", Type::f32(), kN * kN);
    auto *gb = m.addGlobal("B", Type::f32(), kN * kN);
    auto *gc = m.addGlobal("C", Type::f32(), kN * kN);
    (void)gc;
    Function *fn = m.addFunction("gemm", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    emitMatmul(b, ga, gb, m.global("C"), kN, kN, kN, "mm");
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x9e3779b9;
    w.floatInputs["A"] = randomMatrix(seed, size_t(kN) * kN);
    w.floatInputs["B"] = randomMatrix(seed, size_t(kN) * kN);
    w.floatExpected["C"] = refMatmul(w.floatInputs["A"],
                                     w.floatInputs["B"], kN, kN, kN);
    return w;
}

Workload
buildCovar()
{
    // Polybench covariance: column means, mean subtraction, cov matrix.
    constexpr int kN = 12; // Observations.
    constexpr int kM = 12; // Variables.
    Workload w;
    w.name = "covar";
    w.suite = Suite::Polybench;
    w.usesFp = true;
    w.kernel = "covar";
    w.module = std::make_unique<Module>("covar");
    Module &m = *w.module;
    auto *gd = m.addGlobal("data", Type::f32(), kN * kM);
    auto *gmean = m.addGlobal("mean", Type::f32(), kM);
    auto *gcov = m.addGlobal("cov", Type::f32(), kM * kM);
    Function *fn = m.addFunction("covar", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));

    // mean[j] = sum_i data[i][j] / N
    {
        ForLoop lj(b, "mean.j", b.i32(0), b.i32(kM), b.i32(1));
        ForLoop li(b, "mean.i", b.i32(0), b.i32(kN), b.i32(1));
        Instruction *acc = li.addCarried(b.f32(0.0), "mean.acc");
        Value *dij = b.load(
            b.gep(gd, b.add(b.mul(li.iv(), b.i32(kM)), lj.iv())), "d");
        li.setCarriedNext(acc, b.fadd(acc, dij, "mean.sum"));
        li.finish();
        b.store(b.fdiv(acc, b.f32(double(kN))), b.gep(gmean, lj.iv()));
        lj.finish();
    }
    // cov[j1][j2] = sum_i (d[i][j1]-mean[j1])*(d[i][j2]-mean[j2])/(N-1)
    {
        ForLoop j1(b, "cov.j1", b.i32(0), b.i32(kM), b.i32(1));
        ForLoop j2(b, "cov.j2", b.i32(0), b.i32(kM), b.i32(1));
        ForLoop li(b, "cov.i", b.i32(0), b.i32(kN), b.i32(1));
        Instruction *acc = li.addCarried(b.f32(0.0), "cov.acc");
        Value *d1 = b.load(
            b.gep(gd, b.add(b.mul(li.iv(), b.i32(kM)), j1.iv())), "d1");
        Value *d2 = b.load(
            b.gep(gd, b.add(b.mul(li.iv(), b.i32(kM)), j2.iv())), "d2");
        Value *m1 = b.load(b.gep(gmean, j1.iv()), "m1");
        Value *m2 = b.load(b.gep(gmean, j2.iv()), "m2");
        Value *prod = b.fmul(b.fsub(d1, m1), b.fsub(d2, m2), "prod");
        li.setCarriedNext(acc, b.fadd(acc, prod, "cov.sum"));
        li.finish();
        Value *cov = b.fdiv(acc, b.f32(double(kN - 1)), "covv");
        b.store(cov, b.gep(gcov,
                           b.add(b.mul(j1.iv(), b.i32(kM)), j2.iv())));
        j2.finish();
        j1.finish();
    }
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0xc0c0aull;
    w.floatInputs["data"] = randomMatrix(seed, size_t(kN) * kM, 0.0f,
                                         4.0f);
    const auto &data = w.floatInputs["data"];
    std::vector<float> mean(kM, 0.0f);
    for (int j = 0; j < kM; ++j) {
        float acc = 0.0f;
        for (int i = 0; i < kN; ++i)
            acc += data[i * kM + j];
        mean[j] = acc / float(kN);
    }
    std::vector<float> cov(size_t(kM) * kM, 0.0f);
    for (int j1 = 0; j1 < kM; ++j1) {
        for (int j2 = 0; j2 < kM; ++j2) {
            float acc = 0.0f;
            for (int i = 0; i < kN; ++i)
                acc += (data[i * kM + j1] - mean[j1]) *
                       (data[i * kM + j2] - mean[j2]);
            cov[j1 * kM + j2] = acc / float(kN - 1);
        }
    }
    w.floatExpected["mean"] = mean;
    w.floatExpected["cov"] = cov;
    return w;
}

Workload
buildFft()
{
    // Iterative radix-2 DIT FFT over separate re/im arrays, with a
    // precomputed bit-reversal table and twiddle ROM (standard
    // MachSuite-style formulation).
    constexpr int kN = 128;
    constexpr int kLogN = 7;
    Workload w;
    w.name = "fft";
    w.suite = Suite::Polybench;
    w.usesFp = true;
    w.kernel = "fft";
    w.module = std::make_unique<Module>("fft");
    Module &m = *w.module;
    auto *gin_re = m.addGlobal("in_re", Type::f32(), kN);
    auto *gin_im = m.addGlobal("in_im", Type::f32(), kN);
    auto *gre = m.addGlobal("re", Type::f32(), kN);
    auto *gim = m.addGlobal("im", Type::f32(), kN);
    auto *gbrev = m.addGlobal("brev", Type::i32(), kN);
    auto *gtw_re = m.addGlobal("tw_re", Type::f32(), kN / 2);
    auto *gtw_im = m.addGlobal("tw_im", Type::f32(), kN / 2);
    Function *fn = m.addFunction("fft", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));

    // Bit-reversal permutation copy.
    {
        ForLoop li(b, "brv.i", b.i32(0), b.i32(kN), b.i32(1));
        Value *src = b.load(b.gep(gbrev, li.iv()), "src");
        b.store(b.load(b.gep(gin_re, src), "vr"), b.gep(gre, li.iv()));
        b.store(b.load(b.gep(gin_im, src), "vi"), b.gep(gim, li.iv()));
        li.finish();
    }
    // log2(N) butterfly stages.
    {
        ForLoop ls(b, "fft.s", b.i32(0), b.i32(kLogN), b.i32(1));
        Value *mh = b.shl(b.i32(1), ls.iv(), "mh");        // half span
        Value *span = b.shl(mh, b.i32(1), "span");         // 2^(s+1)
        Value *twsh = b.sub(b.i32(kLogN - 1), ls.iv(), "twsh");
        ForLoop lk(b, "fft.k", b.i32(0), b.i32(kN), span);
        ForLoop lj(b, "fft.j", b.i32(0), mh, b.i32(1));
        Value *tw_idx = b.shl(lj.iv(), twsh, "twi");
        Value *wr = b.load(b.gep(gtw_re, tw_idx), "wr");
        Value *wi = b.load(b.gep(gtw_im, tw_idx), "wi");
        Value *top = b.add(lk.iv(), lj.iv(), "top");
        Value *bot = b.add(top, mh, "bot");
        Value *ar = b.load(b.gep(gre, top), "ar");
        Value *ai = b.load(b.gep(gim, top), "ai");
        Value *br = b.load(b.gep(gre, bot), "br");
        Value *bi = b.load(b.gep(gim, bot), "bi");
        // t = w * b (complex).
        Value *tr = b.fsub(b.fmul(wr, br), b.fmul(wi, bi), "tr");
        Value *ti = b.fadd(b.fmul(wr, bi), b.fmul(wi, br), "ti");
        b.store(b.fadd(ar, tr), b.gep(gre, top));
        b.store(b.fadd(ai, ti), b.gep(gim, top));
        b.store(b.fsub(ar, tr), b.gep(gre, bot));
        b.store(b.fsub(ai, ti), b.gep(gim, bot));
        lj.finish();
        lk.finish();
        ls.finish();
    }
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0xff7;
    w.floatInputs["in_re"] = randomMatrix(seed, kN);
    w.floatInputs["in_im"] = randomMatrix(seed, kN);
    std::vector<int32_t> brev(kN);
    for (int i = 0; i < kN; ++i) {
        int r = 0;
        for (int bit = 0; bit < kLogN; ++bit)
            if (i & (1 << bit))
                r |= 1 << (kLogN - 1 - bit);
        brev[i] = r;
    }
    w.intInputs["brev"] = brev;
    std::vector<float> tw_re(kN / 2), tw_im(kN / 2);
    for (int i = 0; i < kN / 2; ++i) {
        double ang = -2.0 * 3.14159265358979323846 * i / kN;
        tw_re[i] = static_cast<float>(std::cos(ang));
        tw_im[i] = static_cast<float>(std::sin(ang));
    }
    w.floatInputs["tw_re"] = tw_re;
    w.floatInputs["tw_im"] = tw_im;

    // Reference FFT mirroring the kernel exactly.
    std::vector<float> re(kN), im(kN);
    for (int i = 0; i < kN; ++i) {
        re[i] = w.floatInputs["in_re"][brev[i]];
        im[i] = w.floatInputs["in_im"][brev[i]];
    }
    for (int s = 0; s < kLogN; ++s) {
        int mh = 1 << s, span = mh << 1;
        for (int k = 0; k < kN; k += span) {
            for (int j = 0; j < mh; ++j) {
                int twi = j << (kLogN - 1 - s);
                float wr = tw_re[twi], wi = tw_im[twi];
                int top = k + j, bot = top + mh;
                float tr = wr * re[bot] - wi * im[bot];
                float ti = wr * im[bot] + wi * re[bot];
                float arv = re[top], aiv = im[top];
                re[top] = arv + tr;
                im[top] = aiv + ti;
                re[bot] = arv - tr;
                im[bot] = aiv - ti;
            }
        }
    }
    w.floatExpected["re"] = re;
    w.floatExpected["im"] = im;
    (void)gre;
    (void)gim;
    return w;
}

Workload
buildSpmv()
{
    // CSR sparse matrix-vector product (MachSuite spmv).
    constexpr int kRows = 64;
    constexpr int kNnzPerRow = 8;
    constexpr int kCols = 64;
    Workload w;
    w.name = "spmv";
    w.suite = Suite::Polybench;
    w.usesFp = true;
    w.kernel = "spmv";
    w.module = std::make_unique<Module>("spmv");
    Module &m = *w.module;
    auto *gvals = m.addGlobal("vals", Type::f32(), kRows * kNnzPerRow);
    auto *gcols = m.addGlobal("cols", Type::i32(), kRows * kNnzPerRow);
    auto *growp = m.addGlobal("rowp", Type::i32(), kRows + 1);
    auto *gx = m.addGlobal("x", Type::f32(), kCols);
    auto *gy = m.addGlobal("y", Type::f32(), kRows);
    Function *fn = m.addFunction("spmv", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    ForLoop li(b, "row", b.i32(0), b.i32(kRows), b.i32(1));
    Value *lo = b.load(b.gep(growp, li.iv()), "lo");
    Value *hi = b.load(b.gep(growp, b.add(li.iv(), b.i32(1))), "hi");
    ForLoop lp(b, "nnz", lo, hi, b.i32(1));
    Instruction *acc = lp.addCarried(b.f32(0.0), "acc");
    Value *v = b.load(b.gep(gvals, lp.iv()), "v");
    Value *col = b.load(b.gep(gcols, lp.iv()), "col");
    Value *xv = b.load(b.gep(gx, col), "xv");
    lp.setCarriedNext(acc, b.fadd(acc, b.fmul(v, xv), "fma"));
    lp.finish();
    b.store(acc, b.gep(gy, li.iv()));
    li.finish();
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x5b11;
    w.floatInputs["vals"] = randomMatrix(seed, kRows * kNnzPerRow);
    std::vector<int32_t> cols(kRows * kNnzPerRow), rowp(kRows + 1);
    for (int i = 0; i <= kRows; ++i)
        rowp[i] = i * kNnzPerRow;
    for (auto &c : cols)
        c = prandInt(seed, 0, kCols);
    w.intInputs["cols"] = cols;
    w.intInputs["rowp"] = rowp;
    w.floatInputs["x"] = randomMatrix(seed, kCols);

    std::vector<float> y(kRows, 0.0f);
    for (int i = 0; i < kRows; ++i) {
        float acc = 0.0f;
        for (int p = rowp[i]; p < rowp[i + 1]; ++p)
            acc += w.floatInputs["vals"][p] *
                   w.floatInputs["x"][cols[p]];
        y[i] = acc;
    }
    w.floatExpected["y"] = y;
    (void)gy;
    return w;
}

Workload
build2mm()
{
    constexpr int kN = 14;
    Workload w;
    w.name = "2mm";
    w.suite = Suite::Polybench;
    w.usesFp = true;
    w.kernel = "mm2";
    w.module = std::make_unique<Module>("2mm");
    Module &m = *w.module;
    auto *ga = m.addGlobal("A", Type::f32(), kN * kN);
    auto *gb = m.addGlobal("B", Type::f32(), kN * kN);
    auto *gc = m.addGlobal("C", Type::f32(), kN * kN);
    auto *gtmp = m.addGlobal("tmp", Type::f32(), kN * kN);
    auto *gd = m.addGlobal("D", Type::f32(), kN * kN);
    Function *fn = m.addFunction("mm2", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    emitMatmul(b, ga, gb, gtmp, kN, kN, kN, "mm1");
    emitMatmul(b, gtmp, gc, gd, kN, kN, kN, "mm2");
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x2221;
    w.floatInputs["A"] = randomMatrix(seed, size_t(kN) * kN);
    w.floatInputs["B"] = randomMatrix(seed, size_t(kN) * kN);
    w.floatInputs["C"] = randomMatrix(seed, size_t(kN) * kN);
    auto tmp = refMatmul(w.floatInputs["A"], w.floatInputs["B"], kN, kN,
                         kN);
    w.floatExpected["tmp"] = tmp;
    w.floatExpected["D"] = refMatmul(tmp, w.floatInputs["C"], kN, kN, kN);
    (void)gd;
    return w;
}

Workload
build3mm()
{
    constexpr int kN = 12;
    Workload w;
    w.name = "3mm";
    w.suite = Suite::Polybench;
    w.usesFp = true;
    w.kernel = "mm3";
    w.module = std::make_unique<Module>("3mm");
    Module &m = *w.module;
    auto *ga = m.addGlobal("A", Type::f32(), kN * kN);
    auto *gb = m.addGlobal("B", Type::f32(), kN * kN);
    auto *gc = m.addGlobal("C", Type::f32(), kN * kN);
    auto *gd = m.addGlobal("D", Type::f32(), kN * kN);
    auto *ge = m.addGlobal("E", Type::f32(), kN * kN);
    auto *gf = m.addGlobal("F", Type::f32(), kN * kN);
    auto *gg = m.addGlobal("G", Type::f32(), kN * kN);
    Function *fn = m.addFunction("mm3", Type::voidTy());
    IRBuilder b(m);
    b.setInsertPoint(fn->addBlock("entry"));
    emitMatmul(b, ga, gb, ge, kN, kN, kN, "mm1"); // E = A*B
    emitMatmul(b, gc, gd, gf, kN, kN, kN, "mm2"); // F = C*D
    emitMatmul(b, ge, gf, gg, kN, kN, kN, "mm3"); // G = E*F
    b.ret();
    verifyOrDie(m);

    uint64_t seed = 0x3331;
    w.floatInputs["A"] = randomMatrix(seed, size_t(kN) * kN);
    w.floatInputs["B"] = randomMatrix(seed, size_t(kN) * kN);
    w.floatInputs["C"] = randomMatrix(seed, size_t(kN) * kN);
    w.floatInputs["D"] = randomMatrix(seed, size_t(kN) * kN);
    auto e = refMatmul(w.floatInputs["A"], w.floatInputs["B"], kN, kN,
                       kN);
    auto f = refMatmul(w.floatInputs["C"], w.floatInputs["D"], kN, kN,
                       kN);
    w.floatExpected["E"] = e;
    w.floatExpected["F"] = f;
    w.floatExpected["G"] = refMatmul(e, f, kN, kN, kN);
    (void)gg;
    return w;
}

} // namespace muir::workloads
