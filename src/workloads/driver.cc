#include "workloads/driver.hh"

namespace muir::workloads
{

frontend::LowerOptions
baselineOptions(const Workload &w)
{
    frontend::LowerOptions opts;
    opts.name = w.name;
    // Cilk programs declare their working arrays as local buffers, so
    // the paper's baseline places them in a shared scratchpad; the
    // other suites address global arrays through the L1 (§6.4).
    opts.sharedScratchpad = (w.suite == Suite::Cilk);
    return opts;
}

std::unique_ptr<uir::Accelerator>
lowerBaseline(const Workload &w)
{
    return frontend::lowerToUir(*w.module, w.kernel, baselineOptions(w));
}

RunResult
runOn(const Workload &w, const uir::Accelerator &accel,
      const RunOptions &options)
{
    ir::MemoryImage mem(*w.module);
    w.bind(mem);
    sim::SimOptions sopts;
    sopts.profile = options.profile;
    sopts.trace = options.trace;
    sopts.timeline = options.timeline;
    sopts.timelineWindows = options.timelineWindows;
    sopts.watchdog = options.watchdog;
    sopts.maxCycles = options.maxCycles;
    sopts.compiled = options.compiled;
    sopts.keepCompiled = options.keepCompiled;
    sim::SimResult sim = sim::simulate(accel, mem, {}, sopts);
    RunResult result;
    result.cycles = sim.cycles;
    result.firings = sim.firings;
    result.check = w.check(mem);
    result.verdict = std::move(sim.verdict);
    result.stats = std::move(sim.stats);
    result.profile = std::move(sim.profile);
    result.profileData = std::move(sim.profileData);
    result.timeline = std::move(sim.timeline);
    result.trace = std::move(sim.trace);
    result.compiled = std::move(sim.compiled);
    return result;
}

} // namespace muir::workloads
