/**
 * @file
 * The paper's benchmark suite (Table 2): Polybench/MachSuite kernels,
 * Cilk task-parallel programs, TensorFlow-derived layers, and the
 * in-house Tensor2D workloads. Each workload carries its program (as a
 * compiler-IR module built through the IRBuilder front-end stand-in),
 * deterministic input data, and independently computed golden outputs.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/interp.hh"
#include "ir/module.hh"

namespace muir::workloads
{

/** Which benchmark suite a workload came from (Table 2 grouping). */
enum class Suite { Polybench, Cilk, Tensorflow, InHouse };

/** @return printable suite name. */
const char *suiteName(Suite suite);

/** A benchmark: program + inputs + golden outputs. */
class Workload
{
  public:
    std::string name;
    Suite suite = Suite::Polybench;
    std::unique_ptr<ir::Module> module;
    /** Kernel function to lower/execute. */
    std::string kernel;
    /** Uses floating point (the F superscript in Table 2). */
    bool usesFp = false;
    /** Uses Tensor2D intrinsics (the [T] suffix). */
    bool usesTensor = false;
    /** Cilk-style task parallel (spawns). */
    bool usesSpawn = false;

    /** Input data keyed by global-array name. */
    std::map<std::string, std::vector<float>> floatInputs;
    std::map<std::string, std::vector<int32_t>> intInputs;
    /** Golden outputs keyed by global-array name. */
    std::map<std::string, std::vector<float>> floatExpected;
    std::map<std::string, std::vector<int32_t>> intExpected;

    /** Write all inputs into a memory image. */
    void bind(ir::MemoryImage &mem) const;

    /**
     * Compare outputs in mem against the golden values.
     * @return empty string on success, else a description of the first
     *         mismatch.
     */
    std::string check(const ir::MemoryImage &mem,
                      double rel_tol = 1e-3) const;
};

/** All workload names, in Table 2 order. */
const std::vector<std::string> &workloadNames();

/** Build one workload by name (fatal on unknown name). */
Workload buildWorkload(const std::string &name);

/** Deterministic pseudo-random float in [lo, hi). */
float prandFloat(uint64_t &state, float lo, float hi);

/** Deterministic pseudo-random int in [lo, hi). */
int32_t prandInt(uint64_t &state, int32_t lo, int32_t hi);

} // namespace muir::workloads
