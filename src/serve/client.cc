#include "serve/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unistd.h>

#include "support/strings.hh"

namespace muir::serve
{

bool
FdChannel::send(const std::string &bytes, std::string *error)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n =
            ::write(writeFd_, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = fmt("write: %s", std::strerror(errno));
            return false;
        }
        off += size_t(n);
    }
    return true;
}

bool
FdChannel::recv(Frame &out, std::string *error)
{
    for (;;) {
        std::string decode_error;
        DecodeStatus status = decoder_.next(out, &decode_error);
        if (status == DecodeStatus::Ready)
            return true;
        if (status != DecodeStatus::NeedMore) {
            if (error)
                *error = decode_error;
            return false;
        }
        char buf[4096];
        ssize_t n = ::read(readFd_, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = fmt("read: %s", std::strerror(errno));
            return false;
        }
        if (n == 0) {
            if (error)
                *error = "connection closed by peer";
            return false;
        }
        decoder_.feed(buf, size_t(n));
    }
}

Client::Client(Channel &channel, ClientOptions options)
    : channel_(channel), options_(std::move(options)),
      rng_(options_.backoff.seed)
{
}

CallOutcome
Client::call(FrameKind kind, const std::string &payload)
{
    CallOutcome outcome;
    unsigned max_attempts =
        options_.backoff.maxAttempts ? options_.backoff.maxAttempts : 1;
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        uint32_t tag = nextTag_++;
        ++outcome.attempts;

        std::string send_error;
        bool sent =
            channel_.send(encodeFrame(kind, tag, payload), &send_error);
        std::string recv_error;
        Frame reply;
        bool received =
            sent && channel_.recv(reply, &recv_error);

        uint64_t delay_floor = 0;
        if (received) {
            outcome.transportOk = true;
            outcome.reply = reply;
            outcome.error.clear();
            if (reply.kindEnum() != FrameKind::Shed)
                return outcome; // OK / ERROR / DEADLINE / etc: final
            // SHED: the daemon asked us to come back later. Honor its
            // retry_after_ms as a floor under the jittered backoff.
            ShedReply shed;
            if (parseShedReply(reply.payload, shed))
                delay_floor = shed.retryAfterMs;
        } else {
            outcome.transportOk = false;
            outcome.error = sent ? recv_error : send_error;
            std::string reset_error;
            if (!channel_.reset(&reset_error))
                return outcome; // dead channel and no way back
        }

        if (attempt + 1 >= max_attempts)
            return outcome; // retries exhausted; last reply stands
        uint64_t delay =
            backoffDelayMs(options_.backoff, attempt, rng_);
        delay = std::max(delay, delay_floor);
        delaysTaken_.push_back(delay);
        if (options_.sleeper)
            options_.sleeper(delay);
        else if (delay)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
    }
    return outcome;
}

CallOutcome
Client::run(const RunRequest &request)
{
    return call(FrameKind::Run, renderRunRequest(request));
}

} // namespace muir::serve
