/**
 * @file
 * Client retry/backoff policy: capped exponential backoff with full
 * SplitMix64 jitter. A pure function of (policy, attempt, rng), so the
 * schedule under a fixed seed is a committed test expectation — the
 * determinism contract the rest of the repo holds its randomness to.
 *
 * What retries: SHED replies (the daemon said "later") and transport
 * errors (the stream died mid-call). What never retries: ERROR and
 * DEADLINE replies — the daemon answered; asking again with the same
 * request cannot change the answer.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hh"

namespace muir::serve
{

/** Retry/backoff configuration. */
struct BackoffPolicy
{
    /** Delay scale for attempt 0. */
    uint64_t baseMs = 10;
    /** Ceiling on the un-jittered delay. */
    uint64_t capMs = 2000;
    /** Total tries (first call + retries). */
    unsigned maxAttempts = 5;
    /** Jitter seed; same seed = same schedule. */
    uint64_t seed = 1;
};

/**
 * Delay before retry number @p attempt (0-based): full jitter over
 * [0, min(capMs, baseMs << attempt)], i.e. AWS-style "full jitter".
 * Draws exactly one value from @p rng.
 */
uint64_t backoffDelayMs(const BackoffPolicy &policy, unsigned attempt,
                        SplitMix64 &rng);

/**
 * The whole schedule (maxAttempts - 1 delays) for @p policy under its
 * own seed. Deterministic: same policy, same vector.
 */
std::vector<uint64_t> backoffSchedule(const BackoffPolicy &policy);

} // namespace muir::serve
