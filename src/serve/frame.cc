#include "serve/frame.hh"

#include "support/strings.hh"

namespace muir::serve
{

const char *
frameKindName(FrameKind kind)
{
    switch (kind) {
      case FrameKind::Run:
        return "RUN";
      case FrameKind::Stats:
        return "STATS_REQ";
      case FrameKind::Ping:
        return "PING";
      case FrameKind::Shutdown:
        return "SHUTDOWN";
      case FrameKind::Trace:
        return "TRACE_REQ";
      case FrameKind::Ok:
        return "OK";
      case FrameKind::Error:
        return "ERROR";
      case FrameKind::Shed:
        return "SHED";
      case FrameKind::Deadline:
        return "DEADLINE";
      case FrameKind::StatsReply:
        return "STATS";
      case FrameKind::Pong:
        return "PONG";
      case FrameKind::Bye:
        return "BYE";
      case FrameKind::TraceReply:
        return "TRACE";
    }
    return "UNKNOWN";
}

bool
frameKindKnown(uint8_t kind)
{
    switch (static_cast<FrameKind>(kind)) {
      case FrameKind::Run:
      case FrameKind::Stats:
      case FrameKind::Ping:
      case FrameKind::Shutdown:
      case FrameKind::Trace:
      case FrameKind::Ok:
      case FrameKind::Error:
      case FrameKind::Shed:
      case FrameKind::Deadline:
      case FrameKind::StatsReply:
      case FrameKind::Pong:
      case FrameKind::Bye:
      case FrameKind::TraceReply:
        return true;
    }
    return false;
}

bool
frameKindFromName(const std::string &name, FrameKind &out)
{
    for (uint8_t k = 0; k < 0xFF; ++k) {
        if (!frameKindKnown(k))
            continue;
        if (name == frameKindName(static_cast<FrameKind>(k))) {
            out = static_cast<FrameKind>(k);
            return true;
        }
    }
    return false;
}

namespace
{

void
putU32(std::string &out, uint32_t v)
{
    out.push_back(char(v & 0xFF));
    out.push_back(char((v >> 8) & 0xFF));
    out.push_back(char((v >> 16) & 0xFF));
    out.push_back(char((v >> 24) & 0xFF));
}

uint32_t
getU32(const char *p)
{
    const unsigned char *u = reinterpret_cast<const unsigned char *>(p);
    return uint32_t(u[0]) | (uint32_t(u[1]) << 8) |
           (uint32_t(u[2]) << 16) | (uint32_t(u[3]) << 24);
}

} // namespace

std::string
encodeFrame(const Frame &frame)
{
    std::string out;
    out.reserve(kFrameHeaderBytes + frame.payload.size());
    out.push_back(char(kFrameMagic));
    out.push_back(char(frame.kind));
    putU32(out, frame.tag);
    putU32(out, uint32_t(frame.payload.size()));
    out += frame.payload;
    return out;
}

std::string
encodeFrame(FrameKind kind, uint32_t tag, const std::string &payload)
{
    Frame f;
    f.kind = static_cast<uint8_t>(kind);
    f.tag = tag;
    f.payload = payload;
    return encodeFrame(f);
}

void
FrameDecoder::feed(const char *data, size_t n)
{
    if (poisoned_)
        return; // the stream is already condemned; drop the bytes
    // Compact the consumed prefix before it grows unbounded on
    // long-lived connections.
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (1u << 16))) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, n);
}

DecodeStatus
FrameDecoder::next(Frame &out, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = poison_error_;
        return poison_status_;
    }
    size_t avail = buf_.size() - pos_;
    if (avail < 1)
        return DecodeStatus::NeedMore;
    unsigned char magic = (unsigned char)buf_[pos_];
    if (magic != kFrameMagic) {
        poisoned_ = true;
        poison_status_ = DecodeStatus::BadMagic;
        poison_error_ = fmt("bad frame magic 0x%02x (want 0x%02x); "
                            "stream desynchronized",
                            magic, kFrameMagic);
        if (error)
            *error = poison_error_;
        return DecodeStatus::BadMagic;
    }
    if (avail < kFrameHeaderBytes)
        return DecodeStatus::NeedMore;
    uint32_t len = getU32(buf_.data() + pos_ + 6);
    if (len > kMaxPayloadBytes) {
        poisoned_ = true;
        poison_status_ = DecodeStatus::TooLarge;
        poison_error_ =
            fmt("declared payload length %u exceeds the %u-byte cap; "
                "stream cannot resynchronize",
                len, kMaxPayloadBytes);
        if (error)
            *error = poison_error_;
        return DecodeStatus::TooLarge;
    }
    if (avail < kFrameHeaderBytes + len)
        return DecodeStatus::NeedMore;
    out.kind = uint8_t(buf_[pos_ + 1]);
    out.tag = getU32(buf_.data() + pos_ + 2);
    out.payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
    pos_ += kFrameHeaderBytes + len;
    return DecodeStatus::Ready;
}

} // namespace muir::serve
