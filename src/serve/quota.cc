#include "serve/quota.hh"

#include <algorithm>
#include <cmath>

namespace muir::serve
{

void
TokenBucket::refill(double now_sec)
{
    if (!primed_) {
        primed_ = true;
        lastSec_ = now_sec;
        return;
    }
    if (now_sec <= lastSec_)
        return; // time never flows backwards for the bucket
    tokens_ = std::min(burst_, tokens_ + (now_sec - lastSec_) * rate_);
    lastSec_ = now_sec;
}

bool
TokenBucket::tryAcquire(double now_sec)
{
    refill(now_sec);
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

double
TokenBucket::secondsUntilAvailable(double now_sec) const
{
    TokenBucket probe = *this;
    probe.refill(now_sec);
    if (probe.tokens_ >= 1.0)
        return 0.0;
    return (1.0 - probe.tokens_) / rate_;
}

bool
QuotaTable::tryAcquire(const std::string &client, double now_sec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(client);
    if (it == buckets_.end())
        it = buckets_.emplace(client, TokenBucket(rate_, burst_)).first;
    return it->second.tryAcquire(now_sec);
}

uint64_t
QuotaTable::retryAfterMs(const std::string &client,
                         double now_sec) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(client);
    double sec = 1.0 / rate_;
    if (it != buckets_.end())
        sec = it->second.secondsUntilAvailable(now_sec);
    uint64_t ms = uint64_t(std::ceil(sec * 1000.0));
    return std::max<uint64_t>(ms, 1);
}

} // namespace muir::serve
