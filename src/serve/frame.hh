/**
 * @file
 * µserve wire framing: a length-prefixed binary frame codec shared by
 * the daemon, the client library, and the chaos/storm harnesses.
 *
 * Frame layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       1     magic (0xB5 — 'µ' in Latin-1)
 *   1       1     kind  (FrameKind; replies have the high bit set)
 *   2       4     tag   (client-chosen; replies echo it)
 *   6       4     payload length
 *   10      len   payload bytes
 *
 * The decoder is written for hostile peers: it never trusts a declared
 * length beyond kMaxPayloadBytes, never reads past the buffered bytes,
 * and classifies every failure so the server can decide between a
 * recoverable structured ERROR reply (unknown kind — the length is
 * still trustworthy, so the stream resynchronizes) and tearing the
 * connection down (bad magic / oversized length — the stream cannot be
 * trusted again). Truncated frames at any byte boundary simply report
 * NeedMore; feeding the remaining bytes completes them.
 */
#pragma once

#include <cstdint>
#include <string>

namespace muir::serve
{

/** First byte of every well-formed frame. */
constexpr uint8_t kFrameMagic = 0xB5;

/** Header bytes before the payload (magic, kind, tag, length). */
constexpr size_t kFrameHeaderBytes = 10;

/**
 * Hard cap on a declared payload length. A frame claiming more is
 * unrecoverable (the declared length cannot be used to resynchronize)
 * and poisons the connection.
 */
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/** Request/reply discriminator. Replies set the high bit. */
enum class FrameKind : uint8_t
{
    // Requests (client -> daemon).
    Run = 0x01,      ///< compile-once + simulate; payload = run spec
    Stats = 0x02,    ///< health/metrics probe
    Ping = 0x03,     ///< liveness probe
    Shutdown = 0x04, ///< request a graceful drain
    Trace = 0x05,    ///< fetch retained request traces (μtrace)

    // Replies (daemon -> client).
    Ok = 0x81,         ///< canonical run result (byte-stable)
    Error = 0x82,      ///< structured, recoverable request error
    Shed = 0x83,       ///< load shed / quota; payload carries retry hint
    Deadline = 0x84,   ///< deadline/cycle-budget cancellation
    StatsReply = 0x85, ///< serve metrics snapshot JSON
    Pong = 0x86,       ///< ping answer
    Bye = 0x87,        ///< shutdown acknowledged; daemon is draining
    TraceReply = 0x88, ///< `muir.trace.v1` JSON document
};

/** Stable uppercase name ("OK", "SHED", ...) for logs and scripts. */
const char *frameKindName(FrameKind kind);

/** @return whether @p kind is a value this protocol version defines. */
bool frameKindKnown(uint8_t kind);

/** Parse a frameKindName back; @return false on unknown names. */
bool frameKindFromName(const std::string &name, FrameKind &out);

/** One decoded frame. kind stays raw so unknown kinds can surface. */
struct Frame
{
    uint8_t kind = 0;
    uint32_t tag = 0;
    std::string payload;

    FrameKind kindEnum() const { return static_cast<FrameKind>(kind); }
};

/** Encode one frame to wire bytes. */
std::string encodeFrame(const Frame &frame);
std::string encodeFrame(FrameKind kind, uint32_t tag,
                        const std::string &payload);

/** Outcome of one FrameDecoder::next() call. */
enum class DecodeStatus
{
    NeedMore, ///< no complete frame buffered yet
    Ready,    ///< a frame was produced (kind may still be unknown)
    BadMagic, ///< stream desynchronized — connection must close
    TooLarge, ///< declared length beyond kMaxPayloadBytes — must close
};

/**
 * Incremental decoder over a byte stream. feed() buffers bytes;
 * next() extracts complete frames. BadMagic/TooLarge poison the
 * decoder: every later next() repeats the error, mirroring the fact
 * that the byte stream itself can no longer be trusted.
 */
class FrameDecoder
{
  public:
    /** Append raw bytes from the peer. */
    void feed(const char *data, size_t n);
    void feed(const std::string &bytes)
    {
        feed(bytes.data(), bytes.size());
    }

    /**
     * Try to extract the next frame. On Ready, @p out holds the frame.
     * On BadMagic/TooLarge, @p error (when non-null) gets a one-line
     * description and the decoder stays poisoned.
     */
    DecodeStatus next(Frame &out, std::string *error = nullptr);

    /** @return whether the decoder hit an unrecoverable stream error. */
    bool poisoned() const { return poisoned_; }

    /** Bytes buffered but not yet consumed by complete frames. */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    size_t pos_ = 0;
    bool poisoned_ = false;
    DecodeStatus poison_status_ = DecodeStatus::NeedMore;
    std::string poison_error_;
};

} // namespace muir::serve
