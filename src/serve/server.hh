/**
 * @file
 * The µserve daemon core: transport-agnostic request processing with
 * admission control, a bounded queue, per-client quotas, deadlines,
 * and graceful drain. Transports (unix socket, --stdio pipe, the
 * in-process storm/test harnesses) only move bytes: they open a
 * Session with a reply sink, feed() received bytes in, and write the
 * bytes the sink hands back. Everything protocol-shaped lives here,
 * which is what lets the tests exercise every robustness path without
 * a network.
 *
 * Robustness contract (guarded by tests/test_serve.cc and the storm):
 *
 *  - Every well-formed RUN request resolves to exactly one of
 *    OK / ERROR / SHED / DEADLINE. Never silence, never a hang.
 *  - A malformed or hostile byte stream poisons only its own
 *    connection: the offender gets one structured ERROR (bad-frame)
 *    and is cut off; other sessions and the daemon keep running.
 *  - OK payloads are byte-identical to a direct in-process run of the
 *    same design (canonicalResult over runOn) at any job count.
 *  - beginDrain()/drain() stop admission (new RUNs shed with reason
 *    "drain"), resolve everything already admitted, and leave the
 *    queue empty — the SIGTERM path of the daemon.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"
#include "serve/quota.hh"
#include "support/metrics.hh"
#include "support/slog.hh"
#include "support/trace.hh"
#include "uir/serialize.hh"

namespace muir::serve
{

/** Daemon tuning knobs (all have safe defaults). */
struct ServerOptions
{
    /** Worker threads (0 = resolveJobs: MUIR_JOBS, else hardware). */
    unsigned jobs = 0;
    /** Admitted-but-not-started requests before load shedding. */
    size_t queueCapacity = 64;
    /** Per-client token-bucket refill rate (requests/sec). */
    double quotaRate = 50.0;
    /** Per-client burst capacity (tokens). */
    double quotaBurst = 20.0;
    /** Cycle budget for runs that do not set max_cycles. */
    uint64_t defaultMaxCycles = 1000000000ull;
    /** retry_after_ms hint on queue-full sheds. */
    uint64_t retryAfterMs = 50;
    /** RUN payload admission cap (bytes). */
    size_t maxRequestBytes = uir::kMaxSerializedBytes;
    /** Honor work_delay_ms (tests/chaos only; never in production). */
    bool allowWorkDelay = false;
    /** Design-cache capacity (compiled designs). */
    size_t cacheCapacity = 64;

    /**
     * @name μtrace (request-scoped tracing)
     * Rate 0 disables tracing for unstamped requests entirely — the
     * test-guarded invariant is that OK replies are then
     * byte-identical to direct runs. Client-stamped requests
     * (`trace=<id>`) are always traced, whatever the rate.
     * @{
     */
    /** Head-sampling probability in [0, 1]. */
    double traceSampleRate = 0.0;
    /** Seed for sampling draws and generated trace ids. */
    uint64_t traceSeed = 1;
    /** Always retain traces slower than this (µs; 0 = rule off). */
    uint64_t traceSlowUs = 0;
    /** Retained-trace ring capacity. */
    size_t traceRingCapacity = 256;
    /** @} */

    /** Structured NDJSON event log (null = logging off). Not owned. */
    slog::Logger *logger = nullptr;
};

/**
 * One client connection. Opaque to transports beyond construction;
 * the Server mutates it only through feed()/reply paths.
 */
class Session
{
  public:
    using Sink = std::function<void(const std::string &bytes)>;

    Session(std::string client_id, Sink sink)
        : clientId_(std::move(client_id)), sink_(std::move(sink))
    {
    }

    const std::string &clientId() const { return clientId_; }
    /** Unrecoverable stream error seen; transport should close. */
    bool dead() const { return dead_.load(std::memory_order_acquire); }

  private:
    friend class Server;

    std::string clientId_;
    Sink sink_;
    FrameDecoder decoder_;
    std::mutex feedMutex_;  ///< serializes feed() per session
    std::mutex writeMutex_; ///< serializes reply frames per session
    std::atomic<bool> dead_{false};
};

/** The daemon core. One instance per process; transports share it. */
class Server
{
  public:
    explicit Server(ServerOptions options = {});
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Open a session; @p sink receives encoded reply frames. */
    std::shared_ptr<Session> openSession(std::string client_id,
                                         Session::Sink sink);

    /**
     * Feed received bytes. Complete frames are dispatched: cheap
     * replies (errors, sheds, pong, stats) go out synchronously on the
     * caller's thread; admitted RUNs resolve later from a worker.
     * @return false when the connection must close (poisoned stream).
     */
    bool feed(const std::shared_ptr<Session> &session, const char *data,
              size_t n);
    bool feed(const std::shared_ptr<Session> &session,
              const std::string &bytes)
    {
        return feed(session, bytes.data(), bytes.size());
    }

    /** Stop admitting RUNs (they shed with reason "drain"). */
    void beginDrain();
    bool draining() const;

    /**
     * Resolve everything already admitted: waits up to @p budget_ms
     * for queue + in-flight to empty, then cancels still-queued jobs
     * as DEADLINE (reason "drain") and waits for in-flight runs (each
     * bounded by its cycle budget). Every admitted request has been
     * replied to when this returns. @return true when all work
     * finished naturally within the budget.
     */
    bool drain(uint64_t budget_ms);

    /** Stop worker threads (drain first for a graceful exit). */
    void stop();

    /** A SHUTDOWN frame arrived; the transport should exit its loop. */
    bool shutdownRequested() const;

    size_t queueDepth() const;
    unsigned inFlight() const;

    /** Deterministic-schema stats JSON (the STATS reply payload). */
    std::string statsJson() const;

    /** The μtrace collector (TRACE replies, storm audits). */
    trace::Tracer &tracer() { return tracer_; }
    const trace::Tracer &tracer() const { return tracer_; }

    /** The serve.* metrics registry (counters/latency histogram).
     *  Installable as the process µmeter sink so the pool and sim
     *  instruments land in the same STATS snapshot. */
    metrics::Registry &registry() { return metrics_; }
    const metrics::Registry &registry() const { return metrics_; }

    const ServerOptions &options() const { return options_; }

  private:
    struct Job
    {
        std::shared_ptr<Session> session;
        uint32_t tag = 0;
        RunRequest request;
        /** Wall deadline (0 = none), on the server's monotonic axis. */
        double deadlineSec = 0.0;
        double admitSec = 0.0;
        /** The request's trace (null = untraced). */
        std::shared_ptr<trace::ActiveTrace> trace;
        /** Admission-stage end boundary (µs on the trace's clock). */
        uint64_t admitUs = 0;
    };

    void workerLoop();
    void runJob(Job &&job);
    void dispatchFrame(const std::shared_ptr<Session> &session,
                       const Frame &frame);
    void handleRun(const std::shared_ptr<Session> &session,
                   const Frame &frame);
    void handleTrace(const std::shared_ptr<Session> &session,
                     const Frame &frame);
    /** Forward to the logger when one is configured. */
    void logEvent(slog::Level level, const char *event,
                  uint64_t trace_id, uint64_t span_id,
                  std::vector<std::pair<std::string, std::string>>
                      attrs = {});
    void send(const std::shared_ptr<Session> &session, FrameKind kind,
              uint32_t tag, const std::string &payload);
    void sendError(const std::shared_ptr<Session> &session,
                   uint32_t tag, const ErrorReply &error);
    /** Seconds since construction (monotonic). */
    double nowSec() const;
    double serviceEstimateMs() const;

    const ServerOptions options_;
    const unsigned jobs_;
    const std::chrono::steady_clock::time_point epoch_;

    DesignCache cache_;
    QuotaTable quota_;
    metrics::Registry metrics_;
    trace::Tracer tracer_;
    slog::Logger *const log_; ///< null = structured logging off

    mutable std::mutex mutex_;
    std::condition_variable workCv_;  ///< workers wait for jobs
    std::condition_variable drainCv_; ///< drain() waits for empty
    std::deque<Job> queue_;
    unsigned inFlight_ = 0;
    bool draining_ = false;
    bool cancelPending_ = false; ///< drain budget expired: fail queued
    bool stopping_ = false;
    double serviceEmaMs_ = 0.0;
    std::atomic<bool> shutdownRequested_{false};

    std::vector<std::thread> workers_;
};

} // namespace muir::serve
