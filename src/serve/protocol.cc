#include "serve/protocol.hh"

#include <utility>
#include <vector>

#include "support/strings.hh"

namespace muir::serve
{

namespace
{

/** Strict decimal u64 parse; rejects empty/junk/overflow. */
bool
parseU64(const std::string &text, uint64_t &out)
{
    if (text.empty() || text.size() > 20)
        return false;
    uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        uint64_t digit = uint64_t(c - '0');
        if (v > (~uint64_t(0) - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

/**
 * Trace-id parse: decimal, or 0x-prefixed hex so ids can be pasted
 * straight out of a waterfall or `muir.trace.v1` document.
 */
bool
parseTraceId(const std::string &text, uint64_t &out)
{
    if (text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X')) {
        if (text.size() > 18)
            return false;
        uint64_t v = 0;
        for (size_t i = 2; i < text.size(); ++i) {
            char c = text[i];
            uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = uint64_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = uint64_t(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = uint64_t(c - 'A') + 10;
            else
                return false;
            v = (v << 4) | digit;
        }
        out = v;
        return true;
    }
    return parseU64(text, out);
}

/** First line of @p payload; @p rest gets everything after the '\n'. */
std::string
firstLine(const std::string &payload, std::string *rest = nullptr)
{
    size_t nl = payload.find('\n');
    if (nl == std::string::npos) {
        if (rest)
            rest->clear();
        return payload;
    }
    if (rest)
        *rest = payload.substr(nl + 1);
    return payload.substr(0, nl);
}

/**
 * Parse a `verb key=value key=value` line. @return false when the verb
 * does not match or a token has no '='.
 */
bool
parseKvLine(const std::string &line, const std::string &verb,
            std::vector<std::pair<std::string, std::string>> &out)
{
    std::vector<std::string> tokens;
    for (const std::string &tok : split(line, ' '))
        if (!tok.empty())
            tokens.push_back(tok);
    if (tokens.empty() || tokens[0] != verb)
        return false;
    for (size_t i = 1; i < tokens.size(); ++i) {
        size_t eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        out.emplace_back(tokens[i].substr(0, eq),
                         tokens[i].substr(eq + 1));
    }
    return true;
}

} // namespace

std::string
renderRunRequest(const RunRequest &req)
{
    std::string line = "run workload=" + req.workload;
    if (!req.passes.empty())
        line += " passes=" + req.passes;
    if (req.maxCycles)
        line += fmt(" max_cycles=%llu",
                    (unsigned long long)req.maxCycles);
    if (req.deadlineMs)
        line += fmt(" deadline_ms=%llu",
                    (unsigned long long)req.deadlineMs);
    if (req.workDelayMs)
        line += fmt(" work_delay_ms=%llu",
                    (unsigned long long)req.workDelayMs);
    if (req.traceId)
        line += fmt(" trace=%llu", (unsigned long long)req.traceId);
    line += "\n";
    return line + req.graph;
}

bool
parseRunRequest(const std::string &payload, RunRequest &out,
                std::string *error)
{
    RunRequest req;
    std::string head = firstLine(payload, &req.graph);
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!parseKvLine(head, "run", kvs)) {
        if (error)
            *error = "first line must be "
                     "'run workload=<name> [key=value ...]'";
        return false;
    }
    for (const auto &[key, value] : kvs) {
        if (key == "workload") {
            req.workload = value;
        } else if (key == "passes") {
            req.passes = value;
        } else if (key == "max_cycles") {
            if (!parseU64(value, req.maxCycles)) {
                if (error)
                    *error = "max_cycles must be a decimal integer";
                return false;
            }
        } else if (key == "deadline_ms") {
            if (!parseU64(value, req.deadlineMs)) {
                if (error)
                    *error = "deadline_ms must be a decimal integer";
                return false;
            }
        } else if (key == "work_delay_ms") {
            if (!parseU64(value, req.workDelayMs)) {
                if (error)
                    *error = "work_delay_ms must be a decimal integer";
                return false;
            }
        } else if (key == "trace") {
            if (!parseTraceId(value, req.traceId) || !req.traceId) {
                if (error)
                    *error = "trace must be a nonzero decimal or "
                             "0x-hex integer";
                return false;
            }
        } else {
            if (error)
                *error = fmt("unknown run key '%s'", key.c_str());
            return false;
        }
    }
    if (req.workload.empty()) {
        if (error)
            *error = "run request is missing workload=<name>";
        return false;
    }
    out = std::move(req);
    return true;
}

std::string
renderTraceRequest(const TraceRequest &req)
{
    std::string line = "trace";
    if (req.id)
        line += fmt(" id=0x%016llx", (unsigned long long)req.id);
    if (req.limit)
        line += fmt(" limit=%llu", (unsigned long long)req.limit);
    return line;
}

bool
parseTraceRequest(const std::string &payload, TraceRequest &out,
                  std::string *error)
{
    TraceRequest req;
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!parseKvLine(firstLine(payload), "trace", kvs)) {
        if (error)
            *error = "first line must be "
                     "'trace [id=<id>] [limit=<n>]'";
        return false;
    }
    for (const auto &[key, value] : kvs) {
        if (key == "id") {
            if (!parseTraceId(value, req.id) || !req.id) {
                if (error)
                    *error = "id must be a nonzero decimal or 0x-hex "
                             "integer";
                return false;
            }
        } else if (key == "limit") {
            if (!parseU64(value, req.limit)) {
                if (error)
                    *error = "limit must be a decimal integer";
                return false;
            }
        } else {
            if (error)
                *error = fmt("unknown trace key '%s'", key.c_str());
            return false;
        }
    }
    out = req;
    return true;
}

std::string
renderErrorReply(const ErrorReply &reply)
{
    return fmt("error code=%s line=%u\n", reply.code.c_str(),
               reply.line) +
           reply.message;
}

bool
parseErrorReply(const std::string &payload, ErrorReply &out)
{
    ErrorReply reply;
    std::string head = firstLine(payload, &reply.message);
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!parseKvLine(head, "error", kvs))
        return false;
    uint64_t line = 0;
    for (const auto &[key, value] : kvs) {
        if (key == "code")
            reply.code = value;
        else if (key == "line" && parseU64(value, line))
            reply.line = unsigned(line);
    }
    out = std::move(reply);
    return true;
}

std::string
renderShedReply(const ShedReply &reply)
{
    return fmt("shed reason=%s retry_after_ms=%llu",
               reply.reason.c_str(),
               (unsigned long long)reply.retryAfterMs);
}

bool
parseShedReply(const std::string &payload, ShedReply &out)
{
    ShedReply reply;
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!parseKvLine(firstLine(payload), "shed", kvs))
        return false;
    for (const auto &[key, value] : kvs) {
        if (key == "reason")
            reply.reason = value;
        else if (key == "retry_after_ms" &&
                 !parseU64(value, reply.retryAfterMs))
            return false;
    }
    out = std::move(reply);
    return true;
}

std::string
renderDeadlineReply(const DeadlineReply &reply)
{
    return fmt("deadline reason=%s\n", reply.reason.c_str()) +
           reply.detail;
}

bool
parseDeadlineReply(const std::string &payload, DeadlineReply &out)
{
    DeadlineReply reply;
    std::string head = firstLine(payload, &reply.detail);
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!parseKvLine(head, "deadline", kvs))
        return false;
    for (const auto &[key, value] : kvs)
        if (key == "reason")
            reply.reason = value;
    out = std::move(reply);
    return true;
}

std::string
canonicalResult(const workloads::RunResult &result)
{
    return fmt("cycles=%llu\nfirings=%llu\ncheck=ok\n",
               (unsigned long long)result.cycles,
               (unsigned long long)result.firings) +
           result.stats.dump();
}

} // namespace muir::serve
