#include "serve/cache.hh"

#include <algorithm>
#include <utility>

#include "uir/lint/lint.hh"
#include "uir/serialize.hh"
#include "uopt/pass.hh"
#include "uopt/pipeline.hh"
#include "workloads/driver.hh"

namespace muir::serve
{

uint64_t
fnv1a64(const std::string &bytes)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

uint64_t
designKey(const RunRequest &req)
{
    // '\0' separators keep ("ab", "c") and ("a", "bc") distinct.
    std::string material;
    material.reserve(req.workload.size() + req.passes.size() +
                     req.graph.size() + 2);
    material += req.workload;
    material += '\0';
    material += req.passes;
    material += '\0';
    material += req.graph;
    return fnv1a64(material);
}

namespace
{

/** Null-safe RAII span over a raw ActiveTrace pointer. */
struct RawSpan
{
    trace::ActiveTrace *t;
    uint64_t id = 0;
    RawSpan(trace::ActiveTrace *t, const char *name, uint64_t parent)
        : t(t)
    {
        if (t)
            id = t->begin(name, parent);
    }
    ~RawSpan()
    {
        if (t)
            t->end(id);
    }
};

} // namespace

std::shared_ptr<const CompiledDesign>
DesignCache::compile(const RunRequest &req, trace::ActiveTrace *t,
                     uint64_t parent) const
{
    auto design = std::make_shared<CompiledDesign>();
    auto fail = [&](const std::string &code, unsigned line,
                    const std::string &message) {
        design->error.code = code;
        design->error.line = line;
        design->error.message = message;
        design->accel.reset();
        return std::shared_ptr<const CompiledDesign>(design);
    };

    // buildWorkload is fatal on unknown names, so gate it here: an
    // unknown workload must be a structured reply, not a daemon exit.
    const auto &names = workloads::workloadNames();
    if (std::find(names.begin(), names.end(), req.workload) ==
        names.end())
        return fail(kErrUnknownWorkload, 0,
                    fmt("unknown workload '%s'", req.workload.c_str()));
    design->workload = workloads::buildWorkload(req.workload);

    if (req.graph.empty()) {
        RawSpan span(t, "compile.lower", parent);
        design->accel = workloads::lowerBaseline(design->workload);
    } else {
        {
            RawSpan span(t, "compile.parse", parent);
            auto parsed = uir::deserializeOrError(
                req.graph, design->workload.module.get());
            if (!parsed.ok()) {
                bool too_large = parsed.error.find("input too large") !=
                                 std::string::npos;
                return fail(too_large ? kErrTooLarge : kErrParse,
                            parsed.line, parsed.error);
            }
            design->accel = std::move(parsed.accel);
        }
        // A hostile graph can parse yet still violate invariants the
        // passes and scheduler assume; the standard lint gate turns
        // that into a structured reply instead of a downstream panic.
        RawSpan span(t, "compile.lint", parent);
        auto diags = uir::lint::Linter::standard().run(*design->accel);
        if (uir::lint::countAtLeast(diags,
                                    uir::lint::Severity::Error) > 0)
            return fail(kErrLint, 0, uir::lint::renderText(diags));
    }

    if (!req.passes.empty()) {
        RawSpan span(t, "compile.optimize", parent);
        uopt::PassManager pm;
        std::string perr;
        if (!uopt::buildPipeline(pm, req.passes, &perr))
            return fail(kErrPipeline, 0, perr);
        pm.run(*design->accel);
    }

    {
        // One reference execution freezes the replay index the cached
        // design hands every replay (sim/compiled_ddg.hh): execution
        // is deterministic over the workload's fixed inputs, so the
        // record is the same one every replay would produce.
        RawSpan span(t, "compile.record", parent);
        ir::MemoryImage mem(*design->workload.module);
        design->workload.bind(mem);
        sim::UirExecutor exec(*design->accel, mem,
                              /*record_ddg=*/true);
        exec.run({});
        design->compiled = std::make_shared<const sim::CompiledDdg>(
            sim::compileDdg(*design->accel,
                            std::make_shared<const sim::Ddg>(
                                exec.takeDdg())));
    }
    return design;
}

std::shared_ptr<const CompiledDesign>
DesignCache::lookup(const RunRequest &req, trace::ActiveTrace *t,
                    uint64_t parent)
{
    uint64_t key = designKey(req);
    std::shared_ptr<Entry> entry;
    bool fresh = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            entry = it->second;
        } else {
            ++misses_;
            fresh = true;
            entry = std::make_shared<Entry>();
            entries_.emplace(key, entry);
            fifo_.push_back(key);
            while (entries_.size() > maxEntries_) {
                entries_.erase(fifo_.front());
                fifo_.pop_front();
            }
        }
    }
    // Compile-once: racing requests for the same key serialize on the
    // entry mutex; the loser finds the design already built. Requests
    // for different keys compile concurrently.
    std::lock_guard<std::mutex> compile_lock(entry->compileMutex);
    // The race loser asked for a compile but found it done: that is a
    // hit from the trace's point of view (no compile work charged).
    if (t)
        t->attr(parent, "cache",
                fresh && !entry->design ? "miss" : "hit");
    if (!entry->design)
        entry->design = compile(req, t, parent);
    return entry->design;
}

uint64_t
DesignCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
DesignCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

size_t
DesignCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace muir::serve
