/**
 * @file
 * Seeded chaos layer for adversarial validation of µserve: byte-level
 * mutations of encoded frames (truncation, corrupted magic/length/
 * payload, oversized declared lengths, raw garbage) that the storm
 * driver and tests aim at the daemon. All draws come from a caller-
 * owned SplitMix64, so a storm with a given seed replays exactly.
 */
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.hh"

namespace muir::serve
{

/** One way to break a wire frame. */
enum class ChaosOp : unsigned
{
    None,          ///< pass through untouched
    TruncateFrame, ///< cut the frame at a random byte boundary
    CorruptMagic,  ///< overwrite the magic byte
    CorruptLength, ///< flip bits in the declared length (stays <= cap)
    OversizeLength,///< declare a length beyond kMaxPayloadBytes
    CorruptPayload,///< flip one payload byte (framing stays intact)
    GarbageBytes,  ///< replace the frame with random bytes
    kCount,
};

/** Stable lowercase name, e.g. "truncate-frame". */
const char *chaosOpName(ChaosOp op);

/**
 * Apply @p op to encoded frame bytes. Deterministic given the rng
 * state; returns the mutated bytes (possibly empty for truncation).
 */
std::string applyChaos(const std::string &frame_bytes, ChaosOp op,
                       SplitMix64 &rng);

/** Draw a chaos op: None with probability (1 - chaos_pct/100). */
ChaosOp pickChaosOp(unsigned chaos_pct, SplitMix64 &rng);

} // namespace muir::serve
