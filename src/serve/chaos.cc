#include "serve/chaos.hh"

#include "serve/frame.hh"

namespace muir::serve
{

const char *
chaosOpName(ChaosOp op)
{
    switch (op) {
      case ChaosOp::None:
        return "none";
      case ChaosOp::TruncateFrame:
        return "truncate-frame";
      case ChaosOp::CorruptMagic:
        return "corrupt-magic";
      case ChaosOp::CorruptLength:
        return "corrupt-length";
      case ChaosOp::OversizeLength:
        return "oversize-length";
      case ChaosOp::CorruptPayload:
        return "corrupt-payload";
      case ChaosOp::GarbageBytes:
        return "garbage-bytes";
      case ChaosOp::kCount:
        break;
    }
    return "unknown";
}

namespace
{

void
writeLen(std::string &bytes, uint32_t len)
{
    bytes[6] = char(len & 0xFF);
    bytes[7] = char((len >> 8) & 0xFF);
    bytes[8] = char((len >> 16) & 0xFF);
    bytes[9] = char((len >> 24) & 0xFF);
}

} // namespace

std::string
applyChaos(const std::string &frame_bytes, ChaosOp op, SplitMix64 &rng)
{
    std::string out = frame_bytes;
    switch (op) {
      case ChaosOp::None:
      case ChaosOp::kCount:
        return out;
      case ChaosOp::TruncateFrame:
        // Any boundary, including 0 (nothing sent at all).
        out.resize(rng.below(out.size()));
        return out;
      case ChaosOp::CorruptMagic:
        if (!out.empty()) {
            char bad = char(rng.next() & 0xFF);
            if (uint8_t(bad) == kFrameMagic)
                bad = char(~kFrameMagic);
            out[0] = bad;
        }
        return out;
      case ChaosOp::CorruptLength:
        if (out.size() >= kFrameHeaderBytes) {
            // A wrong-but-capped length desynchronizes the stream
            // without tripping the TooLarge gate.
            writeLen(out, uint32_t(rng.below(kMaxPayloadBytes)));
        }
        return out;
      case ChaosOp::OversizeLength:
        if (out.size() >= kFrameHeaderBytes) {
            uint32_t over = kMaxPayloadBytes + 1 +
                            uint32_t(rng.below(1u << 20));
            writeLen(out, over);
        }
        return out;
      case ChaosOp::CorruptPayload:
        if (out.size() > kFrameHeaderBytes) {
            size_t idx = kFrameHeaderBytes +
                         rng.below(out.size() - kFrameHeaderBytes);
            out[idx] = char(out[idx] ^ char(1u << rng.below(8)));
        }
        return out;
      case ChaosOp::GarbageBytes: {
        size_t n = 1 + rng.below(64);
        out.assign(n, '\0');
        for (size_t i = 0; i < n; ++i)
            out[i] = char(rng.next() & 0xFF);
        return out;
      }
    }
    return out;
}

ChaosOp
pickChaosOp(unsigned chaos_pct, SplitMix64 &rng)
{
    if (chaos_pct == 0 || rng.below(100) >= chaos_pct)
        return ChaosOp::None;
    // Skip None (0): draw among the real mutations.
    uint64_t n = uint64_t(ChaosOp::kCount) - 1;
    return static_cast<ChaosOp>(1 + rng.below(n));
}

} // namespace muir::serve
