/**
 * @file
 * µserve compile-once design cache. Every RUN request names a
 * (workload, pipeline, graph) triple; the cache compiles/verifies that
 * triple exactly once — even when many clients race on it — and hands
 * every replay the same immutable `const CompiledDesign`. Replays then
 * fan out across the worker pool against the shared accelerator, which
 * the PR-5 const-correctness work made a supported concurrent pattern.
 *
 * Failure is cached too: a graph that does not parse, lint, or accept
 * its pipeline produces a CompiledDesign carrying the structured error,
 * so a client hammering the daemon with the same broken design pays
 * the compile cost once, not per request.
 */
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/protocol.hh"
#include "support/trace.hh"
#include "uir/accelerator.hh"
#include "workloads/workload.hh"

namespace muir::sim
{
struct CompiledDdg; // sim/compiled_ddg.hh
}

namespace muir::serve
{

/** FNV-1a over a byte string (the cache key hash). */
uint64_t fnv1a64(const std::string &bytes);

/** Cache key of one RUN request: what the compiled design depends on. */
uint64_t designKey(const RunRequest &req);

/**
 * One compiled design: the workload (inputs + golden outputs) plus the
 * verified accelerator, or the structured error that stopped it.
 * Immutable after construction; shared across concurrent replays.
 */
struct CompiledDesign
{
    workloads::Workload workload;
    std::unique_ptr<uir::Accelerator> accel;
    /**
     * The design's replay index (sim/compiled_ddg.hh), recorded from
     * one reference execution at compile time. Execution is
     * deterministic, so every replay of this (design, inputs) pair
     * records the same DDG; sharing the compiled freeze lets replays
     * skip both the recording and the CSR rebuild. Immutable, like
     * everything else here — any number of concurrent replays read it.
     */
    std::shared_ptr<const sim::CompiledDdg> compiled;
    /** Set when compilation failed (accel stays null). */
    ErrorReply error;

    bool ok() const { return accel != nullptr; }
};

/** Bounded, thread-safe, compile-once design cache. */
class DesignCache
{
  public:
    explicit DesignCache(size_t max_entries = 64)
        : maxEntries_(max_entries ? max_entries : 1)
    {
    }

    /**
     * Look up (compiling on miss) the design for @p req. Concurrent
     * callers with the same key block on one compilation and share its
     * result. Never throws; compile failures come back as a
     * CompiledDesign with error set.
     *
     * When @p t is non-null, the "compile" span @p parent gets a
     * cache=hit|miss attribute, and an actual compilation records
     * compile.lower / compile.parse / compile.lint /
     * compile.optimize child spans under it. Tracing adds no
     * locking and no work when @p t is null.
     */
    std::shared_ptr<const CompiledDesign>
    lookup(const RunRequest &req, trace::ActiveTrace *t = nullptr,
           uint64_t parent = 0);

    uint64_t hits() const;
    uint64_t misses() const;
    size_t size() const;

  private:
    struct Entry
    {
        std::mutex compileMutex;
        std::shared_ptr<const CompiledDesign> design;
    };

    std::shared_ptr<const CompiledDesign>
    compile(const RunRequest &req, trace::ActiveTrace *t,
            uint64_t parent) const;

    const size_t maxEntries_;
    mutable std::mutex mutex_; ///< guards the map/FIFO/counters
    std::map<uint64_t, std::shared_ptr<Entry>> entries_;
    std::list<uint64_t> fifo_; ///< insertion order, for eviction
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace muir::serve
