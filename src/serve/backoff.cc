#include "serve/backoff.hh"

namespace muir::serve
{

uint64_t
backoffDelayMs(const BackoffPolicy &policy, unsigned attempt,
               SplitMix64 &rng)
{
    // Cap the shift first: base << attempt overflows past 63 bits.
    uint64_t ceiling = policy.capMs;
    if (attempt < 63) {
        uint64_t scaled = policy.baseMs << attempt;
        // Detect shift overflow by shifting back.
        if (policy.baseMs == 0 || (scaled >> attempt) == policy.baseMs)
            ceiling = scaled < policy.capMs ? scaled : policy.capMs;
    }
    // Full jitter: uniform in [0, ceiling]. Always consume one draw so
    // the rng stream position depends only on the attempt count.
    uint64_t draw = rng.below(ceiling + 1);
    return draw;
}

std::vector<uint64_t>
backoffSchedule(const BackoffPolicy &policy)
{
    std::vector<uint64_t> out;
    SplitMix64 rng(policy.seed);
    for (unsigned attempt = 0; attempt + 1 < policy.maxAttempts;
         ++attempt)
        out.push_back(backoffDelayMs(policy, attempt, rng));
    return out;
}

} // namespace muir::serve
