/**
 * @file
 * µserve request/reply payloads: the text that rides inside the binary
 * frames of serve/frame.hh. Payloads stay line-oriented and human-
 * readable so the --stdio scripts in tests/serve/ and the muir_client
 * CLI can be written and inspected by hand.
 *
 * RUN request payload:
 *
 *   run workload=<name> [passes=<spec>] [max_cycles=<n>]
 *       [deadline_ms=<n>] [work_delay_ms=<n>] [trace=<id>]
 *   <serialized µIR graph, optional — empty means "the baseline
 *    lowering of the workload">
 *
 * OK reply payload (the byte-equivalence anchor: identical bytes to a
 * direct in-process run of the same design at any job count):
 *
 *   cycles=<n>
 *   firings=<n>
 *   check=ok
 *   <StatSet::dump() lines>
 *
 * ERROR reply payload:   `error code=<code> line=<n>\n<message>`
 * SHED reply payload:    `shed reason=<reason> retry_after_ms=<n>`
 * DEADLINE reply payload:`deadline reason=<reason>\n<diagnosis>`
 */
#pragma once

#include <cstdint>
#include <string>

#include "workloads/driver.hh"

namespace muir::serve
{

/**
 * @name Error codes
 * The closed vocabulary of ERROR reply codes. A bad client can trigger
 * any of these; none of them may crash or wedge the daemon.
 * @{
 */
inline constexpr const char *kErrBadFrame = "bad-frame";
inline constexpr const char *kErrBadRequest = "bad-request";
inline constexpr const char *kErrUnknownWorkload = "unknown-workload";
inline constexpr const char *kErrParse = "parse";
inline constexpr const char *kErrTooLarge = "input-too-large";
inline constexpr const char *kErrPipeline = "pass-pipeline";
inline constexpr const char *kErrLint = "lint";
inline constexpr const char *kErrCheckFailed = "check-failed";
inline constexpr const char *kErrInternal = "internal";
/** @} */

/** One parsed RUN request. */
struct RunRequest
{
    std::string workload;
    /** µopt pipeline spec ("" = run the baseline as-is). */
    std::string passes;
    /** Per-request cycle budget (0 = server default). */
    uint64_t maxCycles = 0;
    /** Wall-clock deadline in ms (0 = no deadline). */
    uint64_t deadlineMs = 0;
    /**
     * Test/chaos hook: artificial per-run service delay. The server
     * honors it only when ServerOptions::allowWorkDelay is set.
     */
    uint64_t workDelayMs = 0;
    /**
     * Client-stamped μtrace id (`trace=<id>` on the RUN line; 0 =
     * unstamped). A stamped request is always traced and retained,
     * whatever the daemon's sample rate, so `muir-client --trace` can
     * fetch its waterfall afterwards. Rendered only when nonzero —
     * unstamped requests produce byte-identical payloads to before
     * the key existed.
     */
    uint64_t traceId = 0;
    /** Serialized graph ("" = baseline lowering of the workload). */
    std::string graph;
};

/** Render a RUN request to its wire payload. */
std::string renderRunRequest(const RunRequest &req);

/**
 * Parse a RUN request payload. @return false with a one-line
 * diagnostic in @p error on malformed input (unknown keys, non-numeric
 * values, missing workload=...).
 */
bool parseRunRequest(const std::string &payload, RunRequest &out,
                     std::string *error);

/**
 * One parsed TRACE request: fetch retained traces from the daemon's
 * μtrace ring. Payload: `trace [id=<hex-or-decimal>] [limit=<n>]`.
 */
struct TraceRequest
{
    /** Fetch only this trace id (0 = all retained traces). */
    uint64_t id = 0;
    /** Keep only the newest N traces (0 = all). */
    uint64_t limit = 0;
};

std::string renderTraceRequest(const TraceRequest &req);
bool parseTraceRequest(const std::string &payload, TraceRequest &out,
                       std::string *error);

/** A structured, recoverable request error. */
struct ErrorReply
{
    /** One of the kErr* codes above. */
    std::string code = kErrInternal;
    /** 1-based input line for parse errors (0 = not line-scoped). */
    unsigned line = 0;
    std::string message;
};

std::string renderErrorReply(const ErrorReply &reply);
bool parseErrorReply(const std::string &payload, ErrorReply &out);

/** A load-shed refusal with a retry hint. */
struct ShedReply
{
    /** "queue", "quota", or "drain". */
    std::string reason;
    uint64_t retryAfterMs = 0;
};

std::string renderShedReply(const ShedReply &reply);
bool parseShedReply(const std::string &payload, ShedReply &out);

/** A deadline/cycle-budget cancellation. */
struct DeadlineReply
{
    /** "admission", "queue-wait", "cycle-budget", "expired", "drain". */
    std::string reason;
    /** Watchdog root-cause dump or a one-line explanation. */
    std::string detail;
};

std::string renderDeadlineReply(const DeadlineReply &reply);
bool parseDeadlineReply(const std::string &payload, DeadlineReply &out);

/**
 * The canonical OK payload for one run result. This is the byte-
 * equivalence contract: the daemon produces exactly these bytes, and
 * so does a direct workloads::runOn call rendered through the same
 * function — guarded by test at jobs=1 and jobs=8.
 */
std::string canonicalResult(const workloads::RunResult &result);

} // namespace muir::serve
