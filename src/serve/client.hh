/**
 * @file
 * µserve client library: a frame-level call abstraction over any byte
 * channel (unix socket, stdio pipe, in-process loopback) with the
 * retry policy of serve/backoff.hh baked in. The sleeper is injected
 * so tests assert the exact retry schedule without real waiting.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/backoff.hh"
#include "serve/frame.hh"
#include "serve/protocol.hh"

namespace muir::serve
{

/**
 * A bidirectional byte channel. send() writes one encoded frame's
 * bytes; recv() blocks for the next reply frame. reset() tries to
 * re-establish a broken channel (false = cannot — give up).
 */
class Channel
{
  public:
    virtual ~Channel() = default;
    virtual bool send(const std::string &bytes, std::string *error) = 0;
    virtual bool recv(Frame &out, std::string *error) = 0;
    virtual bool reset(std::string *error)
    {
        (void)error;
        return false;
    }
};

/** A Channel over a pair of POSIX file descriptors (pipe / socket). */
class FdChannel : public Channel
{
  public:
    /** Does not take ownership of the fds. */
    FdChannel(int read_fd, int write_fd)
        : readFd_(read_fd), writeFd_(write_fd)
    {
    }

    bool send(const std::string &bytes, std::string *error) override;
    bool recv(Frame &out, std::string *error) override;

  private:
    int readFd_;
    int writeFd_;
    FrameDecoder decoder_;
};

/** Client knobs. */
struct ClientOptions
{
    BackoffPolicy backoff;
    /** Injected delay hook (tests record instead of sleeping). */
    std::function<void(uint64_t ms)> sleeper;
};

/** Outcome of one logical call (after retries). */
struct CallOutcome
{
    /** A reply frame arrived (whatever its kind). */
    bool transportOk = false;
    Frame reply;
    /** Total frames sent (1 = no retries). */
    unsigned attempts = 0;
    /** Transport diagnostic when !transportOk. */
    std::string error;

    bool ok() const
    {
        return transportOk &&
               reply.kindEnum() == FrameKind::Ok;
    }
};

/**
 * The retrying caller. SHED replies and transport failures retry with
 * capped exponential backoff + full jitter (honoring the shed reply's
 * retry_after_ms as a floor); ERROR and DEADLINE replies never retry —
 * the daemon answered, and the same request would get the same answer.
 */
class Client
{
  public:
    Client(Channel &channel, ClientOptions options = {});

    /** One logical request; retries per policy. */
    CallOutcome call(FrameKind kind, const std::string &payload);

    /** Convenience: render + call a RUN request. */
    CallOutcome run(const RunRequest &request);

    /** Delays actually taken (ms), for tests and reporting. */
    const std::vector<uint64_t> &delaysTaken() const
    {
        return delaysTaken_;
    }

  private:
    Channel &channel_;
    ClientOptions options_;
    SplitMix64 rng_;
    uint32_t nextTag_ = 1;
    std::vector<uint64_t> delaysTaken_;
};

} // namespace muir::serve
