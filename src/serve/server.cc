#include "serve/server.hh"

#include <algorithm>
#include <cmath>

#include "support/parallel.hh"
#include "support/strings.hh"
#include "workloads/driver.hh"

namespace muir::serve
{

namespace
{

/** Fixed-schema latency sub-object for statsJson. */
std::string
latencyJson(const metrics::HistogramData *h)
{
    if (!h || h->empty())
        return "{\"count\":0,\"p50_us\":0,\"p95_us\":0,"
               "\"p99_us\":0,\"max_us\":0}";
    return fmt("{\"count\":%llu,\"p50_us\":%llu,\"p95_us\":%llu,"
               "\"p99_us\":%llu,\"max_us\":%llu}",
               (unsigned long long)h->count,
               (unsigned long long)h->percentile(50),
               (unsigned long long)h->percentile(95),
               (unsigned long long)h->percentile(99),
               (unsigned long long)h->maxValue);
}

} // namespace

Server::Server(ServerOptions options)
    : options_(options), jobs_(resolveJobs(options.jobs)),
      epoch_(std::chrono::steady_clock::now()),
      cache_(options.cacheCapacity),
      quota_(options.quotaRate, options.quotaBurst),
      tracer_(trace::TracerOptions{options.traceSampleRate,
                                   options.traceSeed,
                                   options.traceSlowUs,
                                   options.traceRingCapacity}),
      log_(options.logger)
{
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Server::~Server() { stop(); }

double
Server::nowSec() const
{
    std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - epoch_;
    return d.count();
}

double
Server::serviceEstimateMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return serviceEmaMs_;
}

void
Server::logEvent(slog::Level level, const char *event,
                 uint64_t trace_id, uint64_t span_id,
                 std::vector<std::pair<std::string, std::string>> attrs)
{
    if (log_)
        log_->event(level, event, trace_id, span_id,
                    std::move(attrs));
}

std::shared_ptr<Session>
Server::openSession(std::string client_id, Session::Sink sink)
{
    return std::make_shared<Session>(std::move(client_id),
                                     std::move(sink));
}

void
Server::send(const std::shared_ptr<Session> &session, FrameKind kind,
             uint32_t tag, const std::string &payload)
{
    std::string bytes = encodeFrame(kind, tag, payload);
    std::lock_guard<std::mutex> lock(session->writeMutex_);
    if (session->sink_)
        session->sink_(bytes);
}

void
Server::sendError(const std::shared_ptr<Session> &session, uint32_t tag,
                  const ErrorReply &error)
{
    metrics_.add("serve.error");
    send(session, FrameKind::Error, tag, renderErrorReply(error));
}

bool
Server::feed(const std::shared_ptr<Session> &session, const char *data,
             size_t n)
{
    std::lock_guard<std::mutex> lock(session->feedMutex_);
    if (session->dead())
        return false;
    session->decoder_.feed(data, n);
    for (;;) {
        Frame frame;
        std::string decode_error;
        DecodeStatus status =
            session->decoder_.next(frame, &decode_error);
        if (status == DecodeStatus::NeedMore)
            return true;
        if (status == DecodeStatus::Ready) {
            dispatchFrame(session, frame);
            continue;
        }
        // BadMagic / TooLarge: the stream cannot be trusted again.
        // One structured ERROR (tag 0 — the original tag is part of
        // the corrupted bytes), then the connection dies. The daemon
        // and every other session carry on.
        metrics_.add("serve.bad_frames");
        session->dead_.store(true, std::memory_order_release);
        logEvent(slog::Level::Error, "session.poisoned", 0, 0,
                 {{"client", session->clientId()},
                  {"error", decode_error}});
        sendError(session, 0,
                  ErrorReply{kErrBadFrame, 0, decode_error});
        return false;
    }
}

void
Server::dispatchFrame(const std::shared_ptr<Session> &session,
                      const Frame &frame)
{
    if (!frameKindKnown(frame.kind)) {
        // The length was still trustworthy, so the stream stays in
        // sync: reply and keep the connection.
        metrics_.add("serve.bad_frames");
        sendError(session, frame.tag,
                  ErrorReply{kErrBadFrame, 0,
                             fmt("unknown frame kind 0x%02x",
                                 frame.kind)});
        return;
    }
    switch (frame.kindEnum()) {
      case FrameKind::Ping:
        send(session, FrameKind::Pong, frame.tag, frame.payload);
        return;
      case FrameKind::Stats:
        send(session, FrameKind::StatsReply, frame.tag, statsJson());
        return;
      case FrameKind::Shutdown:
        beginDrain();
        shutdownRequested_.store(true, std::memory_order_release);
        logEvent(slog::Level::Info, "shutdown.requested", 0, 0,
                 {{"client", session->clientId()}});
        send(session, FrameKind::Bye, frame.tag, "");
        return;
      case FrameKind::Run:
        handleRun(session, frame);
        return;
      case FrameKind::Trace:
        handleTrace(session, frame);
        return;
      default:
        // A client sent a reply kind. Recoverable nonsense.
        sendError(session, frame.tag,
                  ErrorReply{kErrBadRequest, 0,
                             fmt("%s is a reply kind, not a request",
                                 frameKindName(frame.kindEnum()))});
        return;
    }
}

void
Server::handleRun(const std::shared_ptr<Session> &session,
                  const Frame &frame)
{
    metrics_.add("serve.accepted");
    auto entry = std::chrono::steady_clock::now();

    // Admission control, cheapest checks first. Structural rejects
    // (size, syntax, unknown workload) come before quota/queue so a
    // client's junk never burns its own tokens or a queue slot.
    // Size/syntax rejects stay untraced: a stamp inside an
    // unparseable payload cannot be honored.
    if (frame.payload.size() > options_.maxRequestBytes) {
        sendError(session, frame.tag,
                  ErrorReply{kErrTooLarge, 0,
                             fmt("request payload is %zu bytes; the "
                                 "admission cap is %zu",
                                 frame.payload.size(),
                                 options_.maxRequestBytes)});
        return;
    }
    RunRequest req;
    std::string parse_error;
    if (!parseRunRequest(frame.payload, req, &parse_error)) {
        sendError(session, frame.tag,
                  ErrorReply{kErrBadRequest, 0, parse_error});
        return;
    }

    // One trace per parsed request, anchored at dispatch entry so the
    // size/parse work above lands inside it. Null when tracing is off
    // and the client did not stamp — the no-overhead path.
    std::shared_ptr<trace::ActiveTrace> t = tracer_.begin(
        "run " + req.workload +
            (req.passes.empty() ? std::string()
                                : " passes=" + req.passes),
        req.traceId, entry);
    uint64_t trace_id = t ? t->traceId() : 0;
    uint64_t parse_end = t ? t->nowUs() : 0;
    uint64_t validate_end = 0;
    uint64_t quota_end = 0;

    // Close the trace on an admission reject: the "admission" stage
    // covers the whole request, with the ladder steps as children.
    auto reject = [&](const char *outcome, const char *reason) {
        if (!t)
            return;
        uint64_t now = t->nowUs();
        uint64_t adm = t->add("admission", 0, 0, now);
        t->add("parse", adm, 0, parse_end);
        if (validate_end)
            t->add("validate", adm, parse_end, validate_end);
        if (quota_end)
            t->add("quota", adm, validate_end, quota_end);
        t->attr(adm, "reject", reason);
        tracer_.finish(t, outcome, now);
    };

    const auto &names = workloads::workloadNames();
    if (std::find(names.begin(), names.end(), req.workload) ==
        names.end()) {
        reject(trace::kOutcomeError, kErrUnknownWorkload);
        logEvent(slog::Level::Warn, "request.error", trace_id, 0,
                 {{"code", kErrUnknownWorkload},
                  {"workload", req.workload}});
        sendError(session, frame.tag,
                  ErrorReply{kErrUnknownWorkload, 0,
                             fmt("unknown workload '%s'",
                                 req.workload.c_str())});
        return;
    }
    if (t)
        validate_end = t->nowUs();

    double now = nowSec();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_ || stopping_) {
            metrics_.add("serve.shed");
            metrics_.add("serve.shed.drain");
            reject(trace::kOutcomeShed, "drain");
            logEvent(slog::Level::Warn, "request.shed", trace_id, 0,
                     {{"reason", "drain"},
                      {"workload", req.workload}});
            send(session, FrameKind::Shed, frame.tag,
                 renderShedReply({"drain", 0}));
            return;
        }
    }
    bool quota_ok = quota_.tryAcquire(session->clientId(), now);
    if (t)
        quota_end = t->nowUs();
    if (!quota_ok) {
        metrics_.add("serve.shed");
        metrics_.add("serve.shed.quota");
        reject(trace::kOutcomeShed, "quota");
        logEvent(slog::Level::Warn, "request.shed", trace_id, 0,
                 {{"reason", "quota"},
                  {"client", session->clientId()}});
        send(session, FrameKind::Shed, frame.tag,
             renderShedReply(
                 {"quota",
                  quota_.retryAfterMs(session->clientId(), now)}));
        return;
    }

    Job job;
    job.session = session;
    job.tag = frame.tag;
    job.request = std::move(req);
    job.admitSec = now;
    if (job.request.deadlineMs)
        job.deadlineSec = now + double(job.request.deadlineMs) / 1000.0;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.size() >= options_.queueCapacity) {
            metrics_.add("serve.shed");
            metrics_.add("serve.shed.queue");
            reject(trace::kOutcomeShed, "queue");
            logEvent(slog::Level::Warn, "request.shed", trace_id, 0,
                     {{"reason", "queue"},
                      {"workload", job.request.workload}});
            send(session, FrameKind::Shed, frame.tag,
                 renderShedReply({"queue", options_.retryAfterMs}));
            return;
        }
        // Admission-time feasibility: a deadline shorter than one
        // typical service time can never be met — reject now instead
        // of burning a worker on a run we will throw away.
        if (job.deadlineSec > 0.0 && serviceEmaMs_ > 0.0 &&
            double(job.request.deadlineMs) < serviceEmaMs_) {
            metrics_.add("serve.deadline");
            metrics_.add("serve.deadline.admission");
            reject(trace::kOutcomeDeadline, "admission");
            logEvent(slog::Level::Warn, "request.deadline", trace_id,
                     0,
                     {{"reason", "admission"},
                      {"workload", job.request.workload}});
            send(session, FrameKind::Deadline, frame.tag,
                 renderDeadlineReply(
                     {"admission",
                      fmt("deadline %llums is infeasible: typical "
                          "service time is ~%.1fms",
                          (unsigned long long)job.request.deadlineMs,
                          serviceEmaMs_)}));
            return;
        }
        if (t) {
            // Admitted: seal the admission stage at this boundary so
            // "queue-wait" can start exactly where it ended.
            job.admitUs = t->nowUs();
            uint64_t adm = t->add("admission", 0, 0, job.admitUs);
            t->add("parse", adm, 0, parse_end);
            t->add("validate", adm, parse_end, validate_end);
            t->add("quota", adm, validate_end, quota_end);
            job.trace = t;
        }
        queue_.push_back(std::move(job));
        metrics_.gaugeMax("serve.queue_depth_peak", queue_.size());
    }
    workCv_.notify_one();
}

void
Server::handleTrace(const std::shared_ptr<Session> &session,
                    const Frame &frame)
{
    TraceRequest req;
    std::string parse_error;
    if (!parseTraceRequest(frame.payload, req, &parse_error)) {
        sendError(session, frame.tag,
                  ErrorReply{kErrBadRequest, 0, parse_error});
        return;
    }
    auto traces = tracer_.recent(size_t(req.limit), req.id);
    send(session, FrameKind::TraceReply, frame.tag,
         trace::tracesJson(traces, &tracer_));
}

void
Server::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ with an empty queue: time to exit.
                return;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        runJob(std::move(job));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
        }
        drainCv_.notify_all();
    }
}

void
Server::runJob(Job &&job)
{
    double started = nowSec();
    const std::shared_ptr<trace::ActiveTrace> &t = job.trace;
    uint64_t trace_id = t ? t->traceId() : 0;
    uint64_t claim_us = t ? t->nowUs() : 0;
    if (t)
        t->add("queue-wait", 0, job.admitUs, claim_us);

    // The machine-greppable DEADLINE breakdown: stage durations from
    // the same boundary stamps the stage spans use, so the line and
    // the trace agree to the microsecond and sum to the total.
    auto stageLine = [&](uint64_t compile_end, uint64_t run_end) {
        return fmt("\ntrace id=0x%016llx admission_us=%llu "
                   "queue_us=%llu compile_us=%llu run_us=%llu",
                   (unsigned long long)trace_id,
                   (unsigned long long)job.admitUs,
                   (unsigned long long)(claim_us - job.admitUs),
                   (unsigned long long)(compile_end - claim_us),
                   (unsigned long long)(run_end - compile_end));
    };

    bool cancel_queued;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cancel_queued = cancelPending_;
    }
    if (cancel_queued) {
        // Drain budget expired while this job sat in the queue. It
        // still resolves — as a deadline, never as silence.
        metrics_.add("serve.deadline");
        metrics_.add("serve.deadline.drain");
        std::string detail = "daemon drained before the run started";
        if (t)
            detail += stageLine(claim_us, claim_us);
        tracer_.finish(t, trace::kOutcomeDeadline, claim_us);
        logEvent(slog::Level::Warn, "request.deadline", trace_id, 0,
                 {{"reason", "drain"},
                  {"workload", job.request.workload}});
        send(job.session, FrameKind::Deadline, job.tag,
             renderDeadlineReply({"drain", detail}));
        return;
    }
    if (job.deadlineSec > 0.0 && started >= job.deadlineSec) {
        metrics_.add("serve.deadline");
        metrics_.add("serve.deadline.queue-wait");
        std::string detail =
            fmt("deadline expired after %.1fms in the queue",
                (started - job.admitSec) * 1000.0);
        if (t)
            detail += stageLine(claim_us, claim_us);
        tracer_.finish(t, trace::kOutcomeDeadline, claim_us);
        logEvent(slog::Level::Warn, "request.deadline", trace_id, 0,
                 {{"reason", "queue-wait"},
                  {"workload", job.request.workload}});
        send(job.session, FrameKind::Deadline, job.tag,
             renderDeadlineReply({"queue-wait", detail}));
        return;
    }

    try {
        uint64_t compile_span =
            t ? t->add("compile", 0, claim_us, claim_us) : 0;
        auto design =
            cache_.lookup(job.request, t.get(), compile_span);
        uint64_t compile_us = t ? t->nowUs() : 0;
        if (t)
            t->close(compile_span, compile_us);
        if (!design->ok()) {
            tracer_.finish(t, trace::kOutcomeError, compile_us);
            logEvent(slog::Level::Warn, "request.error", trace_id, 0,
                     {{"code", design->error.code},
                      {"workload", job.request.workload}});
            sendError(job.session, job.tag, design->error);
            return;
        }

        uint64_t run_span =
            t ? t->add("run", 0, compile_us, compile_us) : 0;
        if (options_.allowWorkDelay && job.request.workDelayMs) {
            trace::ScopedSpan delay_span(t, "work-delay", run_span);
            uint64_t delay =
                std::min<uint64_t>(job.request.workDelayMs, 1000);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }

        workloads::RunOptions ro;
        ro.watchdog = true;
        ro.maxCycles =
            job.request.maxCycles
                ? std::min(job.request.maxCycles,
                           options_.defaultMaxCycles)
                : options_.defaultMaxCycles;
        if (design->compiled) {
            // Compile-once replay: the cached design carries its
            // frozen DDG, so this run skips the recording and the CSR
            // rebuild (sim/compiled_ddg.hh reuse contract).
            ro.compiled = design->compiled.get();
            metrics_.add("serve.compiled_ddg.reuse");
        }
        uint64_t sim_span = t ? t->begin("simulate", run_span) : 0;
        workloads::RunResult result =
            workloads::runOn(design->workload, *design->accel, ro);
        if (t) {
            t->end(sim_span);
            t->attr(sim_span, "cycles",
                    fmt("%llu", (unsigned long long)result.cycles));
        }

        double finished = nowSec();
        uint64_t end_us = t ? t->nowUs() : 0;
        if (t)
            t->close(run_span, end_us);
        double service_ms = (finished - started) * 1000.0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            serviceEmaMs_ = serviceEmaMs_ == 0.0
                                ? service_ms
                                : 0.8 * serviceEmaMs_ +
                                      0.2 * service_ms;
        }
        metrics_.observe("serve.latency_us",
                         uint64_t((finished - job.admitSec) * 1e6));

        if (result.verdict.hang.tripped()) {
            // The PR-3 watchdog is the in-flight cancellation path: a
            // run past its cycle budget stops deterministically and
            // reports why, instead of wedging a worker forever.
            metrics_.add("serve.deadline");
            metrics_.add("serve.deadline.cycle-budget");
            std::string detail = result.verdict.hang.render();
            if (t) {
                t->attr(run_span, "watchdog", "tripped");
                detail += stageLine(compile_us, end_us);
            }
            tracer_.finish(t, trace::kOutcomeDeadline, end_us);
            logEvent(slog::Level::Warn, "request.deadline", trace_id,
                     0,
                     {{"reason", "cycle-budget"},
                      {"workload", job.request.workload}});
            send(job.session, FrameKind::Deadline, job.tag,
                 renderDeadlineReply({"cycle-budget", detail}));
            return;
        }
        if (!result.check.empty()) {
            tracer_.finish(t, trace::kOutcomeError, end_us);
            logEvent(slog::Level::Warn, "request.error", trace_id, 0,
                     {{"code", kErrCheckFailed},
                      {"workload", job.request.workload}});
            sendError(job.session, job.tag,
                      ErrorReply{kErrCheckFailed, 0, result.check});
            return;
        }
        if (job.deadlineSec > 0.0 && finished >= job.deadlineSec) {
            metrics_.add("serve.deadline");
            metrics_.add("serve.deadline.expired");
            std::string detail =
                fmt("run finished %.1fms past the deadline",
                    (finished - job.deadlineSec) * 1000.0);
            if (t)
                detail += stageLine(compile_us, end_us);
            tracer_.finish(t, trace::kOutcomeDeadline, end_us);
            logEvent(slog::Level::Warn, "request.deadline", trace_id,
                     0,
                     {{"reason", "expired"},
                      {"workload", job.request.workload}});
            send(job.session, FrameKind::Deadline, job.tag,
                 renderDeadlineReply({"expired", detail}));
            return;
        }
        metrics_.add("serve.ok");
        tracer_.finish(t, trace::kOutcomeOk, end_us);
        logEvent(slog::Level::Info, "request.ok", trace_id, 0,
                 {{"workload", job.request.workload},
                  {"cycles",
                   fmt("%llu", (unsigned long long)result.cycles)}});
        send(job.session, FrameKind::Ok, job.tag,
             canonicalResult(result));
    } catch (const std::exception &e) {
        tracer_.finish(t, trace::kOutcomeError);
        logEvent(slog::Level::Error, "request.error", trace_id, 0,
                 {{"code", kErrInternal}, {"what", e.what()}});
        sendError(job.session, job.tag,
                  ErrorReply{kErrInternal, 0, e.what()});
    } catch (...) {
        tracer_.finish(t, trace::kOutcomeError);
        logEvent(slog::Level::Error, "request.error", trace_id, 0,
                 {{"code", kErrInternal}});
        sendError(job.session, job.tag,
                  ErrorReply{kErrInternal, 0,
                             "unexpected exception during run"});
    }
}

void
Server::beginDrain()
{
    bool was;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        was = draining_;
        draining_ = true;
    }
    if (!was)
        logEvent(slog::Level::Info, "drain.begin", 0, 0);
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

bool
Server::drain(uint64_t budget_ms)
{
    beginDrain();
    std::unique_lock<std::mutex> lock(mutex_);
    bool finished = drainCv_.wait_for(
        lock, std::chrono::milliseconds(budget_ms),
        [&] { return queue_.empty() && inFlight_ == 0; });
    if (!finished) {
        // Budget blown: still-queued jobs resolve as DEADLINE(drain)
        // instead of running; in-flight runs are bounded by their
        // cycle budgets, so this second wait terminates.
        cancelPending_ = true;
        workCv_.notify_all();
        drainCv_.wait(lock,
                      [&] { return queue_.empty() && inFlight_ == 0; });
    }
    lock.unlock();
    logEvent(slog::Level::Info, "drain.end", 0, 0,
             {{"clean", finished ? "true" : "false"}});
    return finished;
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
        draining_ = true;
        cancelPending_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

bool
Server::shutdownRequested() const
{
    return shutdownRequested_.load(std::memory_order_acquire);
}

size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

unsigned
Server::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inFlight_;
}

std::string
Server::statsJson() const
{
    metrics::Snapshot snap = metrics_.snapshot();
    size_t depth;
    unsigned in_flight;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        depth = queue_.size();
        in_flight = inFlight_;
    }
    // Hand-rolled with a fixed key order: values vary run to run, the
    // schema never does (the same discipline as muir.hostperf.v1).
    std::string out = "{\"muir.serve.v1\":{";
    out += fmt("\"workers\":%u,", jobs_);
    out += fmt("\"queue_depth\":%zu,", depth);
    out += fmt("\"in_flight\":%u,", in_flight);
    out += fmt("\"queue_depth_peak\":%llu,",
               (unsigned long long)snap.gauge("serve.queue_depth_peak"));
    const char *counters[] = {
        "serve.accepted",        "serve.ok",
        "serve.error",           "serve.shed",
        "serve.shed.quota",      "serve.shed.queue",
        "serve.shed.drain",      "serve.deadline",
        "serve.deadline.admission", "serve.deadline.queue-wait",
        "serve.deadline.cycle-budget", "serve.deadline.expired",
        "serve.deadline.drain",  "serve.bad_frames",
    };
    for (const char *name : counters)
        out += fmt("\"%s\":%llu,", name,
                   (unsigned long long)snap.counter(name));
    out += fmt("\"cache_hits\":%llu,",
               (unsigned long long)cache_.hits());
    out += fmt("\"cache_misses\":%llu,",
               (unsigned long long)cache_.misses());
    out += fmt("\"compiled_ddg_reuse\":%llu,",
               (unsigned long long)snap.counter(
                   "serve.compiled_ddg.reuse"));
    out += fmt("\"trace\":{\"started\":%llu,\"retained\":%llu,"
               "\"dropped\":%llu,\"evicted\":%llu},",
               (unsigned long long)tracer_.started(),
               (unsigned long long)tracer_.retained(),
               (unsigned long long)tracer_.dropped(),
               (unsigned long long)tracer_.evicted());
    out += "\"latency\":";
    out += latencyJson(snap.histogram("serve.latency_us"));
    out += "}}";
    return out;
}

} // namespace muir::serve
