/**
 * @file
 * Per-client token-bucket quotas for µserve admission control. Time is
 * an explicit parameter (seconds on any monotonic axis) rather than a
 * clock read, so the policy is a pure function of its inputs and the
 * tests exercise refill/burst behavior deterministically.
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace muir::serve
{

/** A classic token bucket: `rate` tokens/sec, capacity `burst`. */
class TokenBucket
{
  public:
    TokenBucket(double rate_per_sec, double burst)
        : rate_(rate_per_sec > 0 ? rate_per_sec : 1.0),
          burst_(burst > 0 ? burst : 1.0), tokens_(burst_)
    {
    }

    /** Take one token at time @p now_sec; false = over quota. */
    bool tryAcquire(double now_sec);

    /**
     * Seconds until one token will be available at @p now_sec (0 when
     * one already is) — the SHED retry-after hint.
     */
    double secondsUntilAvailable(double now_sec) const;

    double tokens() const { return tokens_; }

  private:
    void refill(double now_sec);

    double rate_;
    double burst_;
    double tokens_;
    double lastSec_ = 0.0;
    bool primed_ = false;
};

/** Thread-safe per-client bucket map (buckets created on first use). */
class QuotaTable
{
  public:
    QuotaTable(double rate_per_sec, double burst)
        : rate_(rate_per_sec), burst_(burst)
    {
    }

    /** Take one token for @p client at @p now_sec. */
    bool tryAcquire(const std::string &client, double now_sec);

    /** Retry-after hint for @p client, in milliseconds (>= 1). */
    uint64_t retryAfterMs(const std::string &client,
                          double now_sec) const;

  private:
    const double rate_;
    const double burst_;
    mutable std::mutex mutex_;
    mutable std::map<std::string, TokenBucket> buckets_;
};

} // namespace muir::serve
