#include "rtl/firrtl.hh"

#include "support/strings.hh"

namespace muir::rtl
{

using uir::Node;
using uir::NodeKind;

namespace
{

/** Builder helper maintaining the flattened name space. */
class Elaborator
{
  public:
    explicit Elaborator(FirrtlCircuit &circuit) : c_(circuit) {}

    void
    node(const std::string &name)
    {
        c_.nodes.insert(name);
    }

    void
    edge(const std::string &from, const std::string &to)
    {
        c_.edges.emplace(from, to);
    }

    /** A primitive with the standard handshake: op + output register
     *  + valid/ready gates, chained together. */
    void
    handshaked(const std::string &base)
    {
        node(base + "/op");
        node(base + "/outreg");
        node(base + "/valid");
        node(base + "/ready");
        edge(base + "/op", base + "/outreg");
        edge(base + "/valid", base + "/outreg");
        edge(base + "/ready", base + "/valid");
    }

  private:
    FirrtlCircuit &c_;
};

std::string
nodePath(const uir::Task &task, const Node &n, unsigned tile)
{
    return fmt("%s/t%u/%s", task.name().c_str(), tile,
               n.name().c_str());
}

void
elaborateNode(Elaborator &e, const uir::Task &task, const Node &n,
              unsigned tile)
{
    std::string base = nodePath(task, n, tile);
    switch (n.kind()) {
      case NodeKind::Compute:
        e.handshaked(base);
        // Input join tree: one ready/valid join per operand.
        for (unsigned i = 0; i < n.numInputs(); ++i) {
            e.node(fmt("%s/join%u", base.c_str(), i));
            e.edge(fmt("%s/join%u", base.c_str(), i), base + "/op");
        }
        break;
      case NodeKind::Fused:
        e.handshaked(base);
        for (size_t k = 0; k < n.microOps().size(); ++k) {
            e.node(fmt("%s/uop%zu", base.c_str(), k));
            e.edge(fmt("%s/uop%zu", base.c_str(), k), base + "/op");
        }
        for (unsigned i = 0; i < n.numInputs(); ++i) {
            e.node(fmt("%s/join%u", base.c_str(), i));
            e.edge(fmt("%s/join%u", base.c_str(), i), base + "/op");
        }
        break;
      case NodeKind::Load:
      case NodeKind::Store: {
        // Databox (§3.4): address gen, word splitter, coalescer,
        // shifter/masker, request and response queues.
        e.handshaked(base);
        for (const char *part :
             {"addrgen", "split", "coalesce", "shift", "reqq", "respq"})
            e.node(fmt("%s/%s", base.c_str(), part));
        e.edge(base + "/addrgen", base + "/split");
        e.edge(base + "/split", base + "/reqq");
        e.edge(base + "/respq", base + "/coalesce");
        e.edge(base + "/coalesce", base + "/shift");
        e.edge(base + "/shift", base + "/op");
        // Wide databoxes replicate the word lanes.
        for (unsigned wmax = n.accessWords(), w2 = 1; w2 < wmax; ++w2) {
            e.node(fmt("%s/lane%u", base.c_str(), w2));
            e.edge(fmt("%s/lane%u", base.c_str(), w2),
                   base + "/coalesce");
        }
        break;
      }
      case NodeKind::LoopControl: {
        // Buffer -> phi -> incr -> cmp -> br pipeline (Pass 5) with
        // the re-timed variants folding stages together.
        unsigned stages = n.ctrlStages();
        std::string prev;
        for (unsigned s = 0; s < stages; ++s) {
            std::string st = fmt("%s/stage%u", base.c_str(), s);
            e.node(st);
            if (!prev.empty())
                e.edge(prev, st);
            prev = st;
        }
        e.edge(prev, base + "/backedge");
        e.node(base + "/backedge");
        for (unsigned k = 0; k < n.numCarried(); ++k) {
            e.node(fmt("%s/carried%u", base.c_str(), k));
            e.node(fmt("%s/carriedmux%u", base.c_str(), k));
            e.edge(fmt("%s/carriedmux%u", base.c_str(), k),
                   fmt("%s/carried%u", base.c_str(), k));
        }
        break;
      }
      case NodeKind::ChildCall: {
        e.handshaked(base);
        // Task-queue stages on the <||> interface.
        unsigned depth = n.callee()->queueDepth();
        std::string prev = base + "/op";
        for (unsigned q = 0; q < depth; ++q) {
            std::string st = fmt("%s/queue%u", base.c_str(), q);
            e.node(st);
            e.edge(prev, st);
            prev = st;
        }
        // Dispatch crossbar: one port per callee tile.
        for (unsigned t = 0; t < n.callee()->numTiles(); ++t) {
            e.node(fmt("%s/xbar%u", base.c_str(), t));
            e.edge(prev, fmt("%s/xbar%u", base.c_str(), t));
        }
        break;
      }
      case NodeKind::SyncNode:
        e.handshaked(base);
        e.node(base + "/counter");
        e.edge(base + "/counter", base + "/op");
        break;
      case NodeKind::LiveIn:
      case NodeKind::LiveOut:
        e.handshaked(base);
        break;
      case NodeKind::ConstNode:
      case NodeKind::GlobalAddr:
        e.node(base + "/literal");
        break;
    }
}

std::string
outputPort(const uir::Task &task, const Node &n, unsigned tile)
{
    std::string base = nodePath(task, n, tile);
    if (n.kind() == NodeKind::ConstNode || n.kind() == NodeKind::GlobalAddr)
        return base + "/literal";
    if (n.kind() == NodeKind::LoopControl)
        return base + "/backedge";
    return base + "/outreg";
}

} // namespace

FirrtlCircuit
lowerToFirrtl(const uir::Accelerator &accel)
{
    FirrtlCircuit circuit;
    Elaborator e(circuit);

    for (const auto &task : accel.tasks()) {
        // Execution tiling physically replicates the datapath.
        for (unsigned tile = 0; tile < std::max(1u, task->numTiles());
             ++tile) {
            for (const auto &n : task->nodes())
                elaborateNode(e, *task, *n, tile);
            // Dataflow wires.
            for (const auto &n : task->nodes()) {
                std::string base = nodePath(*task, *n, tile);
                for (unsigned i = 0; i < n->numInputs(); ++i) {
                    e.edge(outputPort(*task, *n->input(i).node, tile),
                           base + (n->kind() == NodeKind::Compute ||
                                           n->kind() == NodeKind::Fused
                                       ? fmt("/join%u", i)
                                       : "/op"));
                }
                if (n->guard().valid())
                    e.edge(outputPort(*task, *n->guard().node, tile),
                           base + "/valid");
            }
            // Junction tree multiplexing the memory ops (§3.4).
            auto mem_ops = task->memOps();
            if (!mem_ops.empty()) {
                std::string junc = fmt("%s/t%u/junction",
                                       task->name().c_str(), tile);
                for (unsigned p = 0; p < task->junctionReadPorts(); ++p)
                    e.node(fmt("%s/r%u", junc.c_str(), p));
                for (unsigned p = 0; p < task->junctionWritePorts(); ++p)
                    e.node(fmt("%s/w%u", junc.c_str(), p));
                for (const Node *op : mem_ops) {
                    std::string base = nodePath(*task, *op, tile);
                    const uir::Structure *s =
                        accel.structureForSpace(op->memSpace());
                    bool is_load = op->kind() == NodeKind::Load;
                    std::string port =
                        fmt("%s/%s0", junc.c_str(), is_load ? "r" : "w");
                    e.edge(base + "/reqq", port);
                    e.edge(port, fmt("structure/%s/arb",
                                     s->name().c_str()));
                }
            }
        }
    }

    // Hardware structures: arbiter + per-bank RAM macros + port muxes.
    for (const auto &s : accel.structures()) {
        std::string base = "structure/" + s->name();
        e.node(base + "/arb");
        for (unsigned b = 0; b < s->banks(); ++b) {
            e.node(fmt("%s/bank%u/ram", base.c_str(), b));
            e.edge(base + "/arb", fmt("%s/bank%u/ram", base.c_str(), b));
            for (unsigned p = 0; p < s->portsPerBank(); ++p) {
                e.node(fmt("%s/bank%u/port%u", base.c_str(), b, p));
                e.edge(fmt("%s/bank%u/port%u", base.c_str(), b, p),
                       fmt("%s/bank%u/ram", base.c_str(), b));
            }
        }
        if (s->kind() == uir::StructureKind::Cache) {
            for (const char *part : {"tags", "mshr", "fill", "evict"})
                e.node(fmt("%s/%s", base.c_str(), part));
            e.edge(base + "/tags", base + "/fill");
            e.edge(base + "/fill", base + "/evict");
        }
        if (s->wideWords() > 1) {
            for (unsigned w = 0; w < s->wideWords(); ++w)
                e.node(fmt("%s/wide%u", base.c_str(), w));
        }
    }
    return circuit;
}

CircuitDelta
diffCircuits(const FirrtlCircuit &before, const FirrtlCircuit &after)
{
    CircuitDelta delta;
    for (const auto &n : before.nodes)
        if (!after.nodes.count(n))
            ++delta.nodesChanged;
    for (const auto &n : after.nodes)
        if (!before.nodes.count(n))
            ++delta.nodesChanged;
    for (const auto &ed : before.edges)
        if (!after.edges.count(ed))
            ++delta.edgesChanged;
    for (const auto &ed : after.edges)
        if (!before.edges.count(ed))
            ++delta.edgesChanged;
    return delta;
}

} // namespace muir::rtl
