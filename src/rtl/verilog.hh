/**
 * @file
 * Structural Verilog backend: the final lowering stage (what Chisel
 * elaboration would hand to Quartus / Design Compiler). Each μIR node
 * becomes an instance of a primitive from the component library
 * (muir_compute, muir_databox, muir_loopctrl, ...), wired through
 * explicit ready/valid/data handshake nets; tasks become modules and
 * the accelerator a top-level that instantiates tasks and memory
 * structures.
 */
#pragma once

#include <string>

#include "uir/accelerator.hh"

namespace muir::rtl
{

/** Emit the whole accelerator as one synthesizable-style .v file. */
std::string emitVerilog(const uir::Accelerator &accel);

/** Emit one task block's module. */
std::string emitVerilogTask(const uir::Task &task);

} // namespace muir::rtl
