// ===================================================================
// muir_primitives.v — the component library the µIR Verilog backend
// instantiates (see rtl/verilog.cc). Behavioural implementations of
// the latency-insensitive handshake primitives: every component talks
// ready/valid per port and registers its output (the baseline
// handshake cost the delay model charges).
//
// This file accompanies the generated netlists so they elaborate in a
// standard simulator; synthesis quality is out of scope for the
// reproduction (the analytical cost model stands in for that).
// ===================================================================

// ------------------------------------------------------------------
// A generic N-input compute node: joins input handshakes, applies OP,
// registers the result behind an output handshake.
// ------------------------------------------------------------------
module muir_compute #(
    parameter OP = "add",
    parameter WIDTH = 32,
    parameter INS = 2
) (
    input  wire             clock,
    input  wire             reset,
    input  wire [WIDTH-1:0] in0_data,
    input  wire             in0_valid,
    output wire             in0_ready,
    input  wire [WIDTH-1:0] in1_data,
    input  wire             in1_valid,
    output wire             in1_ready,
    input  wire [WIDTH-1:0] in2_data,
    input  wire             in2_valid,
    output wire             in2_ready,
    input  wire             enable,
    output reg  [WIDTH-1:0] out0_data,
    output reg              out0_valid,
    input  wire             out0_ready
);
    wire fire = (INS < 1 || in0_valid) && (INS < 2 || in1_valid) &&
                (INS < 3 || in2_valid) && (!out0_valid || out0_ready);
    assign in0_ready = fire;
    assign in1_ready = fire;
    assign in2_ready = fire;

    // The operator mux; unhandled opcodes fall through as pass-through
    // (the generated netlist only instantiates supported OP strings).
    reg [WIDTH-1:0] result;
    always @(*) begin
        case (OP)
          "add":      result = in0_data + in1_data;
          "sub":      result = in0_data - in1_data;
          "mul":      result = in0_data * in1_data;
          "and":      result = in0_data & in1_data;
          "or":       result = in0_data | in1_data;
          "xor":      result = in0_data ^ in1_data;
          "shl":      result = in0_data << in1_data[5:0];
          "lshr":     result = in0_data >> in1_data[5:0];
          "ashr":     result = $signed(in0_data) >>> in1_data[5:0];
          "icmp.eq":  result = {{(WIDTH-1){1'b0}}, in0_data == in1_data};
          "icmp.ne":  result = {{(WIDTH-1){1'b0}}, in0_data != in1_data};
          "icmp.slt": result = {{(WIDTH-1){1'b0}},
                                $signed(in0_data) < $signed(in1_data)};
          "select":   result = in0_data[0] ? in1_data : in2_data;
          "gep":      result = in0_data + in1_data;
          default:    result = in0_data;
        endcase
    end

    always @(posedge clock) begin
        if (reset) begin
            out0_valid <= 1'b0;
        end else if (fire) begin
            out0_data  <= result;
            out0_valid <= 1'b1;
        end else if (out0_ready) begin
            out0_valid <= 1'b0;
        end
    end
endmodule

// ------------------------------------------------------------------
// Fused cluster: UOPS chained operators behind a single handshake
// (Pass 5). Modeled as one pipeline stage; the fusion pass guarantees
// the combinational delay budget.
// ------------------------------------------------------------------
module muir_fused #(
    parameter UOPS = 2,
    parameter WIDTH = 32,
    parameter INS = 2
) (
    input  wire             clock,
    input  wire             reset,
    input  wire [WIDTH-1:0] in0_data,
    input  wire             in0_valid,
    output wire             in0_ready,
    input  wire [WIDTH-1:0] in1_data,
    input  wire             in1_valid,
    output wire             in1_ready,
    input  wire [WIDTH-1:0] in2_data,
    input  wire             in2_valid,
    output wire             in2_ready,
    output reg  [WIDTH-1:0] out0_data,
    output reg              out0_valid,
    input  wire             out0_ready
);
    wire fire = (INS < 1 || in0_valid) && (INS < 2 || in1_valid) &&
                (INS < 3 || in2_valid) && (!out0_valid || out0_ready);
    assign in0_ready = fire;
    assign in1_ready = fire;
    assign in2_ready = fire;
    always @(posedge clock) begin
        if (reset) begin
            out0_valid <= 1'b0;
        end else if (fire) begin
            out0_data  <= in0_data + in1_data; // Placeholder datapath.
            out0_valid <= 1'b1;
        end else if (out0_ready) begin
            out0_valid <= 1'b0;
        end
    end
endmodule

// ------------------------------------------------------------------
// Databox (§3.4): type conversion, word coalescing, shift/mask; the
// transit point between the dataflow and the memory junction.
// ------------------------------------------------------------------
module muir_databox #(
    parameter STORE = 0,
    parameter WORDS = 1,
    parameter WIDTH = 32
) (
    input  wire             clock,
    input  wire             reset,
    input  wire [63:0]      in0_data,   // Address (loads) / value.
    input  wire             in0_valid,
    output wire             in0_ready,
    input  wire [63:0]      in1_data,   // Address (stores).
    input  wire             in1_valid,
    output wire             in1_ready,
    input  wire             enable,
    output reg  [WIDTH-1:0] out0_data,
    output reg              out0_valid,
    input  wire             out0_ready,
    // Junction side.
    output reg  [63:0]      mem_req_addr,
    output reg              mem_req_valid,
    input  wire             mem_req_ready,
    input  wire [WIDTH-1:0] mem_resp_data,
    input  wire             mem_resp_valid
);
    wire issue = in0_valid && (STORE == 0 || in1_valid) &&
                 !mem_req_valid;
    assign in0_ready = issue;
    assign in1_ready = issue;
    always @(posedge clock) begin
        if (reset) begin
            mem_req_valid <= 1'b0;
            out0_valid    <= 1'b0;
        end else begin
            if (issue) begin
                mem_req_addr  <= (STORE == 0) ? in0_data : in1_data;
                mem_req_valid <= 1'b1;
            end else if (mem_req_ready) begin
                mem_req_valid <= 1'b0;
            end
            if (mem_resp_valid) begin
                out0_data  <= mem_resp_data;
                out0_valid <= 1'b1;
            end else if (out0_ready) begin
                out0_valid <= 1'b0;
            end
        end
    end
endmodule

// ------------------------------------------------------------------
// Loop control (§3.5): φ/iv register set, bound compare, back edge.
// STAGES models the control recurrence depth (re-timed by Pass 5).
// ------------------------------------------------------------------
module muir_loopctrl #(
    parameter CARRIED = 0,
    parameter STAGES = 5
) (
    input  wire        clock,
    input  wire        reset,
    input  wire [31:0] in0_data,  // begin
    input  wire        in0_valid,
    output wire        in0_ready,
    input  wire [31:0] in1_data,  // end
    input  wire        in1_valid,
    output wire        in1_ready,
    input  wire [31:0] in2_data,  // step
    input  wire        in2_valid,
    output wire        in2_ready,
    output reg  [31:0] out0_data, // induction variable
    output reg         out0_valid,
    input  wire        out0_ready
);
    reg [31:0] iv, bound, step;
    reg        active;
    reg [3:0]  stage;
    wire start = in0_valid && in1_valid && in2_valid && !active;
    assign in0_ready = start;
    assign in1_ready = start;
    assign in2_ready = start;
    always @(posedge clock) begin
        if (reset) begin
            active <= 1'b0;
            out0_valid <= 1'b0;
            stage <= 0;
        end else if (start) begin
            iv <= in0_data;
            bound <= in1_data;
            step <= in2_data;
            active <= 1'b1;
            stage <= 0;
        end else if (active) begin
            if (stage == STAGES - 1) begin
                stage <= 0;
                if ($signed(iv) < $signed(bound)) begin
                    out0_data <= iv;
                    out0_valid <= 1'b1;
                    iv <= iv + step;
                end else begin
                    active <= 1'b0;
                end
            end else begin
                stage <= stage + 1;
                if (out0_ready)
                    out0_valid <= 1'b0;
            end
        end
    end
endmodule

// ------------------------------------------------------------------
// Remaining library components: thin behavioural stand-ins with the
// standard handshake, parameterized exactly as the emitter writes
// them.
// ------------------------------------------------------------------
module muir_const #(parameter VALUE = 0, parameter FVALUE = 0,
                    parameter WIDTH = 32)
    (input wire clock, input wire reset,
     output wire [WIDTH-1:0] out0_data, output wire out0_valid,
     input wire out0_ready);
    assign out0_data = VALUE[WIDTH-1:0];
    assign out0_valid = 1'b1;
endmodule

module muir_segbase #(parameter SEGMENT = "mem")
    (input wire clock, input wire reset,
     output wire [63:0] out0_data, output wire out0_valid,
     input wire out0_ready);
    assign out0_data = 64'h1000; // Bound by the loader.
    assign out0_valid = 1'b1;
endmodule

module muir_livein #(parameter INDEX = 0, parameter WIDTH = 32)
    (input wire clock, input wire reset,
     input wire [WIDTH-1:0] task_data, input wire task_valid,
     output wire task_ready,
     output reg [WIDTH-1:0] out0_data, output reg out0_valid,
     input wire out0_ready);
    assign task_ready = !out0_valid || out0_ready;
    always @(posedge clock)
        if (reset) out0_valid <= 1'b0;
        else if (task_valid && task_ready) begin
            out0_data <= task_data; out0_valid <= 1'b1;
        end else if (out0_ready) out0_valid <= 1'b0;
endmodule

module muir_liveout #(parameter INDEX = 0, parameter WIDTH = 32)
    (input wire clock, input wire reset,
     input wire [WIDTH-1:0] in0_data, input wire in0_valid,
     output wire in0_ready,
     output reg [WIDTH-1:0] out0_data, output reg out0_valid,
     input wire out0_ready);
    assign in0_ready = !out0_valid || out0_ready;
    always @(posedge clock)
        if (reset) out0_valid <= 1'b0;
        else if (in0_valid && in0_ready) begin
            out0_data <= in0_data; out0_valid <= 1'b1;
        end else if (out0_ready) out0_valid <= 1'b0;
endmodule

module muir_dispatch #(parameter SPAWN = 0, parameter QDEPTH = 2,
                       parameter TILES = 1)
    (input wire clock, input wire reset,
     input wire [31:0] in0_data, input wire in0_valid,
     output wire in0_ready,
     output reg out0_data, output reg out0_valid,
     input wire out0_ready);
    // QDEPTH-entry task queue feeding TILES execution units.
    reg [$clog2(QDEPTH+1):0] occupancy;
    assign in0_ready = occupancy < QDEPTH;
    always @(posedge clock)
        if (reset) begin occupancy <= 0; out0_valid <= 1'b0; end
        else begin
            if (in0_valid && in0_ready) occupancy <= occupancy + 1;
            else if (occupancy > 0) occupancy <= occupancy - 1;
            out0_data <= 1'b1;
            out0_valid <= occupancy > 0;
        end
endmodule

module muir_sync
    (input wire clock, input wire reset,
     input wire in0_data, input wire in0_valid, output wire in0_ready,
     output reg out0_data, output reg out0_valid,
     input wire out0_ready);
    assign in0_ready = 1'b1;
    always @(posedge clock)
        if (reset) out0_valid <= 1'b0;
        else begin out0_data <= 1'b1; out0_valid <= in0_valid; end
endmodule

module muir_scratchpad #(parameter KB = 4, parameter BANKS = 1,
                         parameter PORTS = 1, parameter WIDE = 1)
    (input wire clock, input wire reset);
    // Banked RAM macro array (behavioural placeholder).
    reg [31:0] mem [0:(KB*256)-1];
endmodule

module muir_cache #(parameter KB = 64, parameter BANKS = 1,
                    parameter WAYS = 4, parameter LINE = 64)
    (input wire clock, input wire reset);
    reg [31:0] data [0:(KB*256)-1];
endmodule

module muir_axi_port
    (input wire clock, input wire reset,
     output wire [63:0] araddr, input wire [511:0] rdata);
    assign araddr = 64'h0;
endmodule
