#include "rtl/chisel.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/strings.hh"

namespace muir::rtl
{

using uir::Node;
using uir::NodeKind;
using uir::Task;

namespace
{

std::string
componentFor(const Node &node)
{
    switch (node.kind()) {
      case NodeKind::Compute:
        return fmt("new ComputeNode(opCode = \"%s\")(%s)",
                   ir::opName(node.op()), node.hwType().str().c_str());
      case NodeKind::Fused: {
        std::vector<std::string> ops;
        for (const auto &mop : node.microOps())
            ops.push_back(ir::opName(mop.op));
        return fmt("new FusedComputeNode(opCodes = Seq(\"%s\"))(%s)",
                   join(ops, "\", \"").c_str(),
                   node.hwType().str().c_str());
      }
      case NodeKind::Load:
        return fmt("new Load(%s)", node.hwType().str().c_str());
      case NodeKind::Store:
        return "new Store()";
      case NodeKind::LiveIn:
        return fmt("new LiveIn(%u)(%s)", node.liveIndex(),
                   node.hwType().str().c_str());
      case NodeKind::LiveOut:
        return fmt("new LiveOut(%u)(%s)", node.liveIndex(),
                   node.hwType().str().c_str());
      case NodeKind::ConstNode:
        if (node.constIsFloat())
            return fmt("new ConstNode(%gf)", node.constFp());
        return fmt("new ConstNode(%lld.U)",
                   static_cast<long long>(node.constInt()));
      case NodeKind::GlobalAddr:
        return fmt("new SegmentBase(\"%s\")",
                   node.global()->name().c_str());
      case NodeKind::LoopControl:
        return fmt("new LoopControl(carried = %u, stages = %u)",
                   node.numCarried(), node.ctrlStages());
      case NodeKind::ChildCall:
        return fmt("new TaskDispatch(\"%s\", spawn = %s)",
                   node.callee()->name().c_str(),
                   node.isSpawn() ? "true" : "false");
      case NodeKind::SyncNode:
        return "new SyncJoin()";
    }
    return "new UnknownNode()";
}

std::string
sanitize(std::string name)
{
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

} // namespace

std::string
emitTaskModule(const Task &task)
{
    std::ostringstream os;
    os << "class " << sanitize(task.name())
       << " extends TaskModule(tiles = " << task.numTiles()
       << ", queueDepth = " << task.queueDepth() << ") {\n";
    os << "    /*------- Dataflow specification -------*/\n";
    for (const auto &n : task.nodes()) {
        os << "    val " << sanitize(n->name()) << " = "
           << componentFor(*n) << "\n";
    }
    os << "\n    /*------- Connections (latency-insensitive) -------*/\n";
    for (const auto &n : task.nodes()) {
        for (unsigned i = 0; i < n->numInputs(); ++i) {
            const auto &ref = n->input(i);
            os << "    " << sanitize(n->name()) << ".io.In(" << i
               << ") <> " << sanitize(ref.node->name()) << ".io.Out("
               << ref.out << ")\n";
        }
        if (n->guard().valid()) {
            os << "    " << sanitize(n->name()) << ".io.enable <> "
               << sanitize(n->guard().node->name()) << ".io.Out("
               << n->guard().out << ")\n";
        }
    }
    // Junction multiplexing the task's memory operations (§3.4).
    auto mem_ops = task.memOps();
    if (!mem_ops.empty()) {
        os << "\n    /*------------ Junctions --------------*/\n";
        os << "    val mem_junc = new Junction(R = "
           << task.junctionReadPorts() << ", W = "
           << task.junctionWritePorts() << ")\n";
        unsigned r = 0, w = 0;
        for (const Node *op : mem_ops) {
            if (op->kind() == NodeKind::Load) {
                os << "    mem_junc.io.Read(" << r++ << ") <==> "
                   << sanitize(op->name()) << ".io.Mem\n";
            } else {
                os << "    mem_junc.io.Write(" << w++ << ") <==> "
                   << sanitize(op->name()) << ".io.Mem\n";
            }
        }
    }
    os << "}\n";
    return os.str();
}

std::string
emitChisel(const uir::Accelerator &accel)
{
    std::ostringstream os;
    os << "// Auto-generated from the µIR graph \"" << accel.name()
       << "\" — do not edit.\n";
    os << "package muir.generated\n\nimport muir.lib._\n\n";

    for (const auto &task : accel.tasks())
        os << emitTaskModule(*task) << "\n";

    os << "class Accelerator(val p: Parameters) extends architecture {\n";
    os << "    /*------------ Task Blocks -------------*/\n";
    for (const auto &task : accel.tasks()) {
        os << "    val task_" << sanitize(task->name()) << " = new "
           << sanitize(task->name()) << "()\n";
    }
    os << "\n    /*------------ Structures -------------*/\n";
    for (const auto &s : accel.structures()) {
        switch (s->kind()) {
          case uir::StructureKind::Scratchpad:
            os << "    val hw_" << sanitize(s->name())
               << " = new Scratchpad(sizeKB = " << s->sizeKb()
               << ", banks = " << s->banks() << ", ports = "
               << s->portsPerBank() << ", wide = " << s->wideWords()
               << ")\n";
            break;
          case uir::StructureKind::Cache:
            os << "    val hw_" << sanitize(s->name())
               << " = new Cache(sizeKB = " << s->sizeKb() << ", banks = "
               << s->banks() << ", ways = " << s->ways() << ")\n";
            break;
          case uir::StructureKind::Dram:
            os << "    val hw_" << sanitize(s->name())
               << " = new AxiPort()\n";
            break;
        }
    }
    os << "\n    /*--------- Task <||> connections ---------*/\n";
    for (const auto &task : accel.tasks()) {
        for (const Node *call : task->childCalls()) {
            os << "    task_" << sanitize(call->callee()->name())
               << ".io.task <||> task_" << sanitize(task->name())
               << ".io." << sanitize(call->name()) << "\n";
        }
    }
    os << "\n    /*--------- Memory <==> connections ---------*/\n";
    for (const auto &task : accel.tasks()) {
        if (task->memOps().empty())
            continue;
        // Each referenced structure gets a port from this task.
        std::vector<const uir::Structure *> used;
        for (const Node *op : task->memOps()) {
            const uir::Structure *s =
                accel.structureForSpace(op->memSpace());
            if (std::find(used.begin(), used.end(), s) == used.end())
                used.push_back(s);
        }
        for (const uir::Structure *s : used) {
            os << "    hw_" << sanitize(s->name()) << ".io.Mem <==> task_"
               << sanitize(task->name()) << ".io.Mem\n";
        }
    }
    os << "\n    /*--------- AXI backing ---------*/\n";
    for (const auto &s : accel.structures()) {
        if (s->kind() == uir::StructureKind::Cache)
            os << "    io.Mem.port(0) <==> hw_" << sanitize(s->name())
               << ".io.AXI\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace muir::rtl
