#include "rtl/verilog.hh"

#include <cctype>
#include <sstream>

#include "support/strings.hh"

namespace muir::rtl
{

using uir::Node;
using uir::NodeKind;
using uir::Task;

namespace
{

std::string
ident(std::string name)
{
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0])))
        name = "n" + name;
    return name;
}

unsigned
widthOf(const Node &n)
{
    unsigned bits = n.hwType().flitBits();
    return bits ? bits : 1;
}

/** Declare the handshake net bundle for one node output. */
void
declareNets(std::ostringstream &os, const Node &n)
{
    for (unsigned o = 0; o < n.numOutputs(); ++o) {
        unsigned bits = widthOf(n);
        os << fmt("    wire [%u:0] %s_out%u_data;\n", bits - 1,
                  ident(n.name()).c_str(), o);
        os << fmt("    wire %s_out%u_valid;\n", ident(n.name()).c_str(),
                  o);
        os << fmt("    wire %s_out%u_ready;\n", ident(n.name()).c_str(),
                  o);
    }
}

std::string
primitiveFor(const Node &n)
{
    switch (n.kind()) {
      case NodeKind::Compute:
        return fmt("muir_compute #(.OP(\"%s\"), .WIDTH(%u), .INS(%u))",
                   ir::opName(n.op()), widthOf(n), n.numInputs());
      case NodeKind::Fused:
        return fmt("muir_fused #(.UOPS(%zu), .WIDTH(%u), .INS(%u))",
                   n.microOps().size(), widthOf(n), n.numInputs());
      case NodeKind::Load:
        return fmt("muir_databox #(.STORE(0), .WORDS(%u), .WIDTH(%u))",
                   n.accessWords(), widthOf(n));
      case NodeKind::Store:
        return fmt("muir_databox #(.STORE(1), .WORDS(%u), .WIDTH(32))",
                   n.accessWords());
      case NodeKind::LiveIn:
        return fmt("muir_livein #(.INDEX(%u), .WIDTH(%u))",
                   n.liveIndex(), widthOf(n));
      case NodeKind::LiveOut:
        return fmt("muir_liveout #(.INDEX(%u), .WIDTH(%u))",
                   n.liveIndex(), widthOf(n));
      case NodeKind::ConstNode:
        if (n.constIsFloat())
            return fmt("muir_const #(.FVALUE(%g), .WIDTH(32))",
                       n.constFp());
        return fmt("muir_const #(.VALUE(%lld), .WIDTH(%u))",
                   static_cast<long long>(n.constInt()), widthOf(n));
      case NodeKind::GlobalAddr:
        return fmt("muir_segbase #(.SEGMENT(\"%s\"))",
                   n.global()->name().c_str());
      case NodeKind::LoopControl:
        return fmt("muir_loopctrl #(.CARRIED(%u), .STAGES(%u))",
                   n.numCarried(), n.ctrlStages());
      case NodeKind::ChildCall:
        return fmt("muir_dispatch #(.SPAWN(%u), .QDEPTH(%u), "
                   ".TILES(%u))",
                   n.isSpawn() ? 1 : 0, n.callee()->queueDepth(),
                   n.callee()->numTiles());
      case NodeKind::SyncNode:
        return "muir_sync";
    }
    return "muir_unknown";
}

} // namespace

std::string
emitVerilogTask(const Task &task)
{
    std::ostringstream os;
    std::string mod = "task_" + ident(task.name());
    os << "module " << mod << " (\n";
    os << "    input  wire clock,\n    input  wire reset,\n";
    os << "    // <||> task interface\n";
    os << "    input  wire task_valid,\n    output wire task_ready,\n";
    os << "    output wire done_valid,\n    input  wire done_ready,\n";
    os << "    // <==> memory junction (R=" << task.junctionReadPorts()
       << ", W=" << task.junctionWritePorts() << ")\n";
    os << "    output wire [63:0] mem_req_addr,\n";
    os << "    output wire mem_req_valid,\n";
    os << "    input  wire mem_req_ready,\n";
    os << "    input  wire [511:0] mem_resp_data,\n";
    os << "    input  wire mem_resp_valid\n";
    os << ");\n";

    for (const auto &n : task.nodes())
        declareNets(os, *n);
    os << "\n";

    for (const auto &n : task.nodes()) {
        std::string name = ident(n->name());
        os << "    " << primitiveFor(*n) << " u_" << name << " (\n";
        os << "        .clock(clock), .reset(reset)";
        for (unsigned i = 0; i < n->numInputs(); ++i) {
            const auto &ref = n->input(i);
            std::string src =
                fmt("%s_out%u", ident(ref.node->name()).c_str(), ref.out);
            os << fmt(",\n        .in%u_data(%s_data), "
                      ".in%u_valid(%s_valid), .in%u_ready(%s_ready)",
                      i, src.c_str(), i, src.c_str(), i, src.c_str());
        }
        if (n->guard().valid()) {
            std::string g = fmt("%s_out%u",
                                ident(n->guard().node->name()).c_str(),
                                n->guard().out);
            os << fmt(",\n        .enable(%s_data[0])", g.c_str());
        }
        for (unsigned o = 0; o < n->numOutputs(); ++o) {
            os << fmt(",\n        .out%u_data(%s_out%u_data), "
                      ".out%u_valid(%s_out%u_valid), "
                      ".out%u_ready(%s_out%u_ready)",
                      o, name.c_str(), o, o, name.c_str(), o, o,
                      name.c_str(), o);
        }
        os << "\n    );\n";
    }
    os << "endmodule\n";
    return os.str();
}

std::string
emitVerilog(const uir::Accelerator &accel)
{
    std::ostringstream os;
    os << "// Auto-generated structural Verilog for \"" << accel.name()
       << "\" (µIR backend).\n";
    os << "// Primitive library: rtl/lib/muir_primitives.v\n\n";
    for (const auto &task : accel.tasks())
        os << emitVerilogTask(*task) << "\n";

    os << "module accelerator_top (\n";
    os << "    input  wire clock,\n    input  wire reset,\n";
    os << "    output wire done,\n";
    os << "    // AXI master to DRAM\n";
    os << "    output wire [63:0] axi_araddr,\n";
    os << "    input  wire [511:0] axi_rdata\n";
    os << ");\n";
    for (const auto &s : accel.structures()) {
        std::string name = ident(s->name());
        switch (s->kind()) {
          case uir::StructureKind::Scratchpad:
            os << fmt("    muir_scratchpad #(.KB(%u), .BANKS(%u), "
                      ".PORTS(%u), .WIDE(%u)) u_%s (.clock(clock), "
                      ".reset(reset));\n",
                      s->sizeKb(), s->banks(), s->portsPerBank(),
                      s->wideWords(), name.c_str());
            break;
          case uir::StructureKind::Cache:
            os << fmt("    muir_cache #(.KB(%u), .BANKS(%u), .WAYS(%u), "
                      ".LINE(%u)) u_%s (.clock(clock), "
                      ".reset(reset));\n",
                      s->sizeKb(), s->banks(), s->ways(), s->lineBytes(),
                      name.c_str());
            break;
          case uir::StructureKind::Dram:
            os << fmt("    muir_axi_port u_%s (.clock(clock), "
                      ".reset(reset), .araddr(axi_araddr), "
                      ".rdata(axi_rdata));\n",
                      name.c_str());
            break;
        }
    }
    for (const auto &task : accel.tasks()) {
        for (unsigned tile = 0; tile < std::max(1u, task->numTiles());
             ++tile) {
            os << fmt("    task_%s u_%s_t%u (.clock(clock), "
                      ".reset(reset));\n",
                      ident(task->name()).c_str(),
                      ident(task->name()).c_str(), tile);
        }
    }
    os << "    assign done = 1'b1; // Root sync raises done.\n";
    os << "endmodule\n";
    return os.str();
}

} // namespace muir::rtl
