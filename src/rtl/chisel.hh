/**
 * @file
 * Chisel backend (Stage 3, Figure 3): lowers a μIR graph to modular
 * Chisel RTL text built from the component library — the same shape
 * as the paper's Figure 4 (whole-accelerator) and Figure 6 (task
 * dataflow) listings. The emitted code is a faithful structural
 * mirror of the graph; every node instantiates a library component
 * and every connection uses the <>, <||> (task) or <==> (memory)
 * interface operators.
 */
#pragma once

#include <string>

#include "uir/accelerator.hh"

namespace muir::rtl
{

/** Emit the whole accelerator as one Chisel source file. */
std::string emitChisel(const uir::Accelerator &accel);

/** Emit one task block's TaskModule class (Figure 6). */
std::string emitTaskModule(const uir::Task &task);

} // namespace muir::rtl
