/**
 * @file
 * FIRRTL-level circuit graph (the Table 4 comparator). μIR nodes
 * expand into the primitive circuit elements FIRRTL would hold after
 * Chisel elaboration: operators, pipeline/handshake registers,
 * ready/valid join trees, queue stages, crossbar muxes, RAM macros.
 * Elements carry stable hierarchical names so two elaborations of the
 * same design can be diffed — quantifying how many circuit-level
 * nodes/edges a microarchitecture change touches when expressed at
 * the FIRRTL level instead of on the μIR graph (§7).
 */
#pragma once

#include <set>
#include <string>
#include <utility>

#include "uir/accelerator.hh"

namespace muir::rtl
{

/** A flattened circuit: named elements and named directed wires. */
struct FirrtlCircuit
{
    std::set<std::string> nodes;
    std::set<std::pair<std::string, std::string>> edges;

    unsigned numNodes() const { return nodes.size(); }
    unsigned numEdges() const { return edges.size(); }
};

/** Elaborate the accelerator down to circuit level. */
FirrtlCircuit lowerToFirrtl(const uir::Accelerator &accel);

/** Nodes/edges present in exactly one of the two circuits. */
struct CircuitDelta
{
    unsigned nodesChanged = 0;
    unsigned edgesChanged = 0;
};

/** Symmetric difference between two elaborations. */
CircuitDelta diffCircuits(const FirrtlCircuit &before,
                          const FirrtlCircuit &after);

} // namespace muir::rtl
