/**
 * @file
 * The frozen, replay-optimized form of a dynamic dependence graph.
 *
 * The builder-friendly `Ddg` is what the functional executor grows —
 * one `DynEvent` per firing with its own heap-allocated dependency
 * vectors. Replaying it at speed wants the opposite layout: a
 * `CompiledDdg` is an immutable struct-of-arrays freeze of one Ddg
 * against one Accelerator, with
 *
 *  - both adjacency directions in CSR form (deps *and* dependents),
 *    built once instead of on every replay;
 *  - per-event attributes packed into flat parallel arrays;
 *  - every pointer-keyed lookup the scheduler's hot loop used to do
 *    resolved ahead of time into dense indices: task / node /
 *    structure ids, the round-robin tile, the in-order-initiation
 *    slot, the junction and bank port-file ranges, the bank index
 *    derived from the address, and the static latency / initiation
 *    interval of the fired node.
 *
 * A CompiledDdg is backed by a handful of flat allocations (see
 * bytes()) and is strictly read-only after compileDdg returns, so any
 * number of concurrent replays may share one instance — the same
 * const-correctness contract the shared `uir::Accelerator` follows
 * (sim/run_context.hh). µserve caches one per design and replays it
 * from every worker.
 *
 * Lifetime: the compiled index borrows the Accelerator (node /
 * structure pointers are retained for the trace and profile hooks)
 * and the source Ddg (hang diagnosis and µprof post-processing read
 * it). The shared_ptr overload of compileDdg retains the Ddg; the
 * reference overload requires the caller to keep both alive.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/ddg.hh"

namespace muir::sim
{

/** Sentinel for "no entry" in the 32-bit id arrays. */
inline constexpr uint32_t kNoId32 = ~uint32_t(0);
/** Sentinel for "no entry" in the 16-bit id arrays. */
inline constexpr uint16_t kNoId16 = uint16_t(0xFFFF);

/** CompiledDdg::flags bits. */
enum : uint8_t
{
    kEvLoad = 1u << 0,
    kEvStore = 1u << 1,
    kEvEntry = 1u << 2,
    kEvCompletion = 1u << 3,
    /** Multi-word access straddles a cache line (second tag probe). */
    kEvStraddle = 1u << 4,
};

/** One hardware structure with its scheduling geometry denormalized. */
struct CompiledStruct
{
    /** Live pointer for the µprof hooks (EventCost::structure). */
    const uir::Structure *s = nullptr;
    bool isCache = false;
    unsigned lineBytes = 0;
    unsigned latency = 0;
    unsigned missLatency = 0;
    unsigned portsPerBank = 1;
    unsigned sizeKb = 0;
    unsigned ways = 0;
    /** DRAM refill occupancy per miss: lineBytes / DRAM bytes/cycle. */
    uint64_t missXfer = 0;
    /** First bank-port slot of this structure in the port file. */
    uint32_t portBase = 0;
};

/** One task with its per-run stat prefix prebuilt. */
struct CompiledTask
{
    const uir::Task *task = nullptr;
    /** "task.<name>." — so the replay never rebuilds it per event. */
    std::string statPrefix;
    unsigned tiles = 1;
};

/**
 * The immutable struct-of-arrays replay index. All per-event arrays
 * have numEvents entries; fields that only apply to a subset of
 * events (memory ops, completions) hold sentinels elsewhere.
 */
struct CompiledDdg
{
    /** @name CSR adjacency (both directions) @{ */
    /** deps of event e: deps[depStart[e] .. depStart[e+1]), in the
     *  original recording order. */
    std::vector<uint32_t> depStart;
    std::vector<uint32_t> deps;
    /** dependents of event e: dependents[depdStart[e] ..
     *  depdStart[e+1]), ascending by consumer id. */
    std::vector<uint32_t> depdStart;
    std::vector<uint32_t> dependents;
    /** @} */

    /** @name Packed per-event attributes @{ */
    std::vector<uint64_t> addr;
    /** Dense node id (index into nodes); kNoId32 for completions. */
    std::vector<uint32_t> nodeOf;
    std::vector<uint32_t> invocation;
    /** Queue-backpressure dep (also present in deps); kNoId32 none. */
    std::vector<uint32_t> queueDep;
    /** In-order-initiation slot: index into the per-run node-free
     *  file (node base + tile); kNoId32 for completions. */
    std::vector<uint32_t> initSlot;
    /** Static node latency (memory access cost is added at replay). */
    std::vector<uint32_t> latency;
    std::vector<uint32_t> initInterval;
    /** Round-robin tile: invocation seq mod task tiles. */
    std::vector<uint32_t> tile;
    /** Junction port-file range for this access's direction (read
     *  ports for loads, write ports for stores). */
    std::vector<uint32_t> junctionPortBase;
    std::vector<uint16_t> junctionPorts;
    /** Bank port-file base: structure base + bank index x ports. */
    std::vector<uint32_t> bankPortBase;
    /** Port beats the access occupies (words over the wide width). */
    std::vector<uint32_t> beats;
    std::vector<uint16_t> words;
    /** Dense task id of the fired node; kNoId16 for completions. */
    std::vector<uint16_t> taskOf;
    /** Dense structure id of the access; kNoId16 for non-memory. */
    std::vector<uint16_t> structOf;
    std::vector<uint8_t> flags;
    /** @} */

    /** @name Resolved design tables @{ */
    std::vector<CompiledTask> tasks;
    std::vector<CompiledStruct> structs;
    /** Dense node id -> live node (trace rows, µprof hooks). */
    std::vector<const uir::Node *> nodes;
    /** @} */

    uint32_t numEvents = 0;
    uint32_t numInvocations = 0;
    /** Size of the per-run in-order-initiation free file. */
    uint32_t initSlots = 0;
    /** Size of the per-run port free file (junctions + banks). */
    uint32_t portSlots = 0;

    /** Design this index was compiled against (identity-checked by
     *  the reuse paths). */
    const uir::Accelerator *design = nullptr;
    /** The source record (hang diagnosis, µprof post-processing). */
    const Ddg *source = nullptr;
    /** Set by the shared_ptr overload: keeps the source alive. */
    std::shared_ptr<const Ddg> retained;

    /** Total heap bytes behind the flat arrays (layout accounting). */
    size_t bytes() const;
};

/**
 * Freeze @p ddg into its replay form. Asserts the Ddg invariant that
 * every dependency references an earlier event. The result borrows
 * @p accel and @p ddg: both must outlive it.
 */
CompiledDdg compileDdg(const uir::Accelerator &accel, const Ddg &ddg);

/** As above, but the compiled index retains the source record. */
CompiledDdg compileDdg(const uir::Accelerator &accel,
                       std::shared_ptr<const Ddg> ddg);

/**
 * Heap bytes behind the builder-form record (events, dependency
 * vectors, invocations) — the microbench's bytes/event comparison
 * against CompiledDdg::bytes().
 */
size_t ddgBytes(const Ddg &ddg);

} // namespace muir::sim
