#include "sim/timeline.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace muir::sim
{

uint64_t
Timeline::classTotal(StallClass c) const
{
    uint64_t sum = 0;
    for (const StallBreakdown &sb : stalls)
        sum += sb[c];
    return sum;
}

namespace
{

/** Split [a, b) across the windows it overlaps, adding the overlap. */
template <typename Lane>
void
binSpan(Lane &lane, uint64_t width, uint64_t a, uint64_t b,
        uint64_t mult = 1)
{
    if (b <= a)
        return;
    size_t n = lane.size();
    for (size_t w = static_cast<size_t>(a / width); w < n; ++w) {
        uint64_t ws = w * width;
        uint64_t we = ws + width;
        uint64_t lo = std::max(a, ws);
        uint64_t hi = std::min(b, we);
        if (hi > lo)
            lane[w] += (hi - lo) * mult;
        if (b <= we)
            break;
    }
}

/** Union-sweep of (start, finish) intervals into a per-window lane. */
void
binUnion(std::vector<uint64_t> &lane, uint64_t width,
         std::vector<std::pair<uint64_t, uint64_t>> &intervals)
{
    std::sort(intervals.begin(), intervals.end());
    uint64_t lo = 0, hi = 0;
    bool open = false;
    for (const auto &[s, f] : intervals) {
        if (!open || s > hi) {
            if (open)
                binSpan(lane, width, lo, hi);
            lo = s;
            hi = f;
            open = true;
        } else {
            hi = std::max(hi, f);
        }
    }
    if (open)
        binSpan(lane, width, lo, hi);
}

} // namespace

Timeline
buildTimeline(const uir::Accelerator &accel, const Ddg &ddg,
              const ProfileCollector &collector, uint64_t cycles,
              unsigned windows)
{
    Timeline tl;
    tl.cycles = cycles;
    unsigned target = windows ? windows : kDefaultTimelineWindows;
    tl.windowWidth =
        std::max<uint64_t>(1, (cycles + target - 1) / target);
    size_t n = cycles ? static_cast<size_t>(
                            (cycles + tl.windowWidth - 1) /
                            tl.windowWidth)
                      : 1;
    uint64_t width = tl.windowWidth;

    const auto &events = ddg.events();
    const auto &costs = collector.events;
    muir_assert(costs.size() == events.size(),
                "timeline: %zu cost records for %zu events",
                costs.size(), events.size());

    tl.stalls.assign(n, StallBreakdown{});
    tl.eventStarts.assign(n, 0);
    tl.tileBusyCycles.assign(n, 0);
    tl.dramBusyCycles.assign(n, 0);
    tl.dramBytes.assign(n, 0.0);
    for (const auto &s : accel.structures()) {
        TimelineStructLane &lane = tl.structures[s->name()];
        lane.banks = s->banks();
        lane.portsPerBank = s->portsPerBank();
        lane.busyBeats.assign(n, 0);
    }

    auto stall = [&](StallClass cls, uint64_t a, uint64_t b) {
        if (b <= a)
            return;
        for (size_t w = static_cast<size_t>(a / width); w < n; ++w) {
            uint64_t ws = w * width;
            uint64_t we = ws + width;
            uint64_t lo = std::max(a, ws);
            uint64_t hi = std::min(b, we);
            if (hi > lo)
                tl.stalls[w][cls] += hi - lo;
            if (b <= we)
                break;
        }
    };

    std::map<std::pair<const uir::Task *, uint32_t>,
             std::vector<std::pair<uint64_t, uint64_t>>>
        tileIntervals;
    for (uint64_t id = 0; id < events.size(); ++id) {
        const DynEvent &e = events[id];
        if (e.isCompletion)
            continue; // μprof's raw roll-up skips completions too.
        const EventCost &c = costs[id];

        // Reconstruct each stall's position on the clock from the
        // scheduler's pushback order: operands gather, then the queue
        // slot gates dispatch (both before ready), then the tile II,
        // junction ports, and bank ports push the start back, and the
        // DRAM queue plus the miss service inflate the tail of the
        // latency. Every span has exactly the stall's length, so the
        // window sums partition the aggregate raw totals.
        uint64_t data_ready = c.ready - c.queueWait;
        stall(StallClass::Operand, data_ready - c.operandWait,
              data_ready);
        stall(StallClass::QueueFull, data_ready, c.ready);
        uint64_t t = c.ready;
        stall(StallClass::TileII, t, t + c.iiWait);
        t += c.iiWait;
        stall(StallClass::Junction, t, t + c.junctionWait);
        t += c.junctionWait;
        stall(StallClass::Bank, t, t + c.bankWait);
        stall(StallClass::Dram,
              c.finish - c.missPenalty - c.dramWait,
              c.finish - c.missPenalty);
        stall(StallClass::CacheMiss, c.finish - c.missPenalty,
              c.finish);

        size_t sw = static_cast<size_t>(c.start / width);
        ++tl.eventStarts[std::min(sw, n - 1)];
        if (c.finish > c.start)
            tileIntervals[{e.node->parent(), c.tile}].push_back(
                {c.start, c.finish});
        if (c.structure) {
            auto it = tl.structures.find(c.structure->name());
            if (it != tl.structures.end())
                binSpan(it->second.busyBeats, width, c.start,
                        c.start + c.beats);
        }
        if (c.dramXfer) {
            binSpan(tl.dramBusyCycles, width, c.dramStart,
                    c.dramStart + c.dramXfer);
            // Spread the line's bytes across the transfer window.
            double per_cycle =
                double(c.dramBytes) / double(c.dramXfer);
            uint64_t a = c.dramStart, b = c.dramStart + c.dramXfer;
            for (size_t w = static_cast<size_t>(a / width); w < n;
                 ++w) {
                uint64_t ws = w * width;
                uint64_t we = ws + width;
                uint64_t lo = std::max(a, ws);
                uint64_t hi = std::min(b, we);
                if (hi > lo)
                    tl.dramBytes[w] += per_cycle * double(hi - lo);
                if (b <= we)
                    break;
            }
        }
    }
    for (auto &[key, intervals] : tileIntervals)
        binUnion(tl.tileBusyCycles, width, intervals);

    // Task-queue occupancy: integrate invocations-in-flight per
    // window (enter at the entry event's ready, leave at completion).
    std::vector<uint64_t> completionFinish(ddg.invocations().size(), 0);
    for (uint64_t id = 0; id < events.size(); ++id)
        if (events[id].isCompletion)
            completionFinish[events[id].invocation] = costs[id].finish;
    std::map<const uir::Task *,
             std::vector<std::pair<uint64_t, int>>>
        occupancyDeltas;
    for (uint32_t i = 0; i < ddg.invocations().size(); ++i) {
        const Invocation &inv = ddg.invocations()[i];
        if (inv.entryEvent == kNoEvent)
            continue;
        uint64_t enter = costs[inv.entryEvent].ready;
        uint64_t leave = std::max(completionFinish[i], enter);
        auto &deltas = occupancyDeltas[inv.task];
        deltas.emplace_back(enter, +1);
        deltas.emplace_back(leave, -1);
    }
    for (auto &[task, deltas] : occupancyDeltas) {
        std::sort(deltas.begin(), deltas.end());
        auto &lane = tl.taskOccupancyCycles[task->name()];
        lane.assign(n, 0);
        uint64_t prev = 0;
        int64_t depth = 0;
        for (const auto &[time, delta] : deltas) {
            if (time > prev && depth > 0)
                binSpan(lane, width, prev, time,
                        static_cast<uint64_t>(depth));
            depth += delta;
            prev = time;
        }
    }
    return tl;
}

namespace
{

/** Compress a lane to at most @p cols columns by summing groups. */
std::vector<double>
regroup(const std::vector<double> &lane, size_t cols)
{
    if (lane.size() <= cols)
        return lane;
    size_t group = (lane.size() + cols - 1) / cols;
    std::vector<double> out((lane.size() + group - 1) / group, 0.0);
    for (size_t i = 0; i < lane.size(); ++i)
        out[i / group] += lane[i];
    return out;
}

std::vector<double>
toDoubles(const std::vector<uint64_t> &lane)
{
    return std::vector<double>(lane.begin(), lane.end());
}

/** Eight-level unicode sparkline; blank for exactly-zero windows. */
std::string
sparkline(const std::vector<double> &lane, size_t cols = 64)
{
    static const char *kBlocks[] = {"▁", "▂", "▃",
                                    "▄", "▅", "▆",
                                    "▇", "█"};
    std::vector<double> v = regroup(lane, cols);
    double peak = 0.0;
    for (double x : v)
        peak = std::max(peak, x);
    // Braille blank: renders empty but is 3 UTF-8 bytes like the
    // blocks, so AsciiTable's byte-width padding stays aligned.
    static const char *kZero = "⠀";
    std::string out;
    for (double x : v) {
        if (x <= 0.0 || peak <= 0.0) {
            out += kZero;
            continue;
        }
        int level = static_cast<int>(x / peak * 8.0);
        out += kBlocks[std::clamp(level, 0, 7)];
    }
    return out;
}

/** Ten-level ASCII intensity ramp for the stall heatmap. */
std::string
heatline(const std::vector<double> &lane, double peak,
         size_t cols = 64)
{
    static const char kRamp[] = " .:-=+*#%@";
    std::vector<double> v = regroup(lane, cols);
    std::string out;
    for (double x : v) {
        if (x <= 0.0 || peak <= 0.0) {
            out += ' ';
            continue;
        }
        int level = 1 + static_cast<int>(x / peak * 8.999);
        out += kRamp[std::clamp(level, 1, 9)];
    }
    return out;
}

/** Per-window integer levels → value→count histogram (percentiles). */
std::map<uint64_t, uint64_t>
laneHistogram(const std::vector<uint64_t> &lane)
{
    std::map<uint64_t, uint64_t> hist;
    for (uint64_t v : lane)
        ++hist[v];
    return hist;
}

} // namespace

std::string
renderTimelineText(const Timeline &tl)
{
    std::ostringstream os;
    size_t n = tl.numWindows();
    double width = double(tl.windowWidth);

    // --- Utilization / occupancy lanes with summary percentiles. ---
    AsciiTable lanes({"lane", "activity (time →)", "avg", "peak",
                      "p95"});
    auto addLane = [&](const std::string &name,
                       const std::vector<uint64_t> &lane,
                       double denom) {
        double total = 0.0, peak = 0.0;
        for (uint64_t v : lane) {
            total += double(v);
            peak = std::max(peak, double(v));
        }
        uint64_t p95 = histogramP95(laneHistogram(lane));
        lanes.addRow({name, sparkline(toDoubles(lane)),
                      fmt("%.2f", total / (double(n) * denom)),
                      fmt("%.2f", peak / denom),
                      fmt("%.2f", double(p95) / denom)});
    };
    for (const auto &[name, lane] : tl.structures)
        addLane(fmt("%s util", name.c_str()), lane.busyBeats,
                width * lane.portCapacity());
    addLane("dram port", tl.dramBusyCycles, width);
    {
        double total = 0.0, peak = 0.0;
        for (double v : tl.dramBytes) {
            total += v;
            peak = std::max(peak, v);
        }
        std::map<uint64_t, uint64_t> hist;
        for (double v : tl.dramBytes)
            ++hist[static_cast<uint64_t>(v)];
        lanes.addRow({"dram bytes/cyc", sparkline(tl.dramBytes),
                      fmt("%.2f", total / (double(n) * width)),
                      fmt("%.2f", peak / width),
                      fmt("%.2f", double(histogramP95(hist)) / width)});
    }
    addLane("active tiles", tl.tileBusyCycles, width);
    addLane("issue rate", tl.eventStarts, width);
    for (const auto &[name, lane] : tl.taskOccupancyCycles)
        addLane(fmt("queue %s", name.c_str()), lane, width);
    os << lanes.render(
        fmt("µscope timeline: %llu cycles in %zu windows of %llu "
            "(avg/peak/p95 are per-cycle rates)",
            (unsigned long long)tl.cycles, n,
            (unsigned long long)tl.windowWidth));

    // --- Stall-class heatmap. ---
    AsciiTable heat({"stall class", "heat (time →)", "cycles"});
    for (size_t i = 0; i < kNumStallClasses; ++i) {
        auto cls = static_cast<StallClass>(i);
        std::vector<double> lane(n, 0.0);
        for (size_t w = 0; w < n; ++w)
            lane[w] = double(tl.stalls[w][cls]);
        std::vector<double> grouped = regroup(lane, 64);
        double peak = 0.0;
        for (double v : grouped)
            peak = std::max(peak, v);
        heat.addRow({stallClassName(cls), heatline(lane, peak),
                     fmt("%llu",
                         (unsigned long long)tl.classTotal(cls))});
    }
    os << heat.render("µscope stall mix over time (raw, "
                      "overlap-blind; row-normalized intensity)");
    return os.str();
}

namespace
{

void
writeLane(JsonWriter &w, const std::string &key,
          const std::vector<uint64_t> &lane)
{
    w.beginArray(key);
    for (uint64_t v : lane)
        w.value(v);
    w.end();
}

} // namespace

std::string
timelineJson(const Timeline &tl)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "muir.timeline.v1");
    w.field("cycles", tl.cycles);
    w.field("window_width", tl.windowWidth);
    w.field("windows", uint64_t(tl.numWindows()));
    w.beginObject("stall_cycles");
    for (size_t i = 0; i < kNumStallClasses; ++i) {
        auto cls = static_cast<StallClass>(i);
        w.beginArray(stallClassName(cls));
        for (const StallBreakdown &sb : tl.stalls)
            w.value(sb[cls]);
        w.end();
    }
    w.end();
    writeLane(w, "event_starts", tl.eventStarts);
    writeLane(w, "tile_busy_cycles", tl.tileBusyCycles);
    w.beginObject("dram");
    writeLane(w, "busy_cycles", tl.dramBusyCycles);
    w.beginArray("bytes");
    for (double v : tl.dramBytes)
        w.value(v);
    w.end();
    w.end();
    w.beginObject("structures");
    for (const auto &[name, lane] : tl.structures) {
        w.beginObject(name);
        w.field("banks", lane.banks);
        w.field("ports_per_bank", lane.portsPerBank);
        writeLane(w, "busy_beats", lane.busyBeats);
        w.end();
    }
    w.end();
    w.beginObject("task_occupancy_cycles");
    for (const auto &[name, lane] : tl.taskOccupancyCycles)
        writeLane(w, name, lane);
    w.end();
    w.end();
    return os.str();
}

void
writeTimelineCounterTracks(JsonWriter &w, const Timeline &tl)
{
    size_t n = tl.numWindows();
    double width = double(tl.windowWidth);
    auto counter = [&](const std::string &name, uint64_t ts,
                       const std::function<void()> &args) {
        w.beginObject();
        w.field("name", name);
        w.field("ph", "C");
        w.field("pid", 1);
        w.field("ts", ts);
        w.beginObject("args");
        args();
        w.end();
        w.end();
    };
    for (size_t i = 0; i < n; ++i) {
        uint64_t ts = tl.windowStart(i);
        counter("stall mix", ts, [&] {
            for (size_t c = 0; c < kNumStallClasses; ++c)
                w.field(stallClassName(static_cast<StallClass>(c)),
                        tl.stalls[i].cycles[c]);
        });
        counter("dram bytes/cycle", ts, [&] {
            w.field("value", tl.dramBytes[i] / width);
        });
        counter("active tiles", ts, [&] {
            w.field("value", double(tl.tileBusyCycles[i]) / width);
        });
        counter("issue rate", ts, [&] {
            w.field("value", double(tl.eventStarts[i]) / width);
        });
        for (const auto &[name, lane] : tl.structures) {
            double ports = width * lane.portCapacity();
            counter(fmt("util %s", name.c_str()), ts, [&] {
                w.field("value",
                        double(lane.busyBeats[i]) / ports);
            });
        }
        for (const auto &[name, lane] : tl.taskOccupancyCycles)
            counter(fmt("queue %s", name.c_str()), ts, [&] {
                w.field("value", double(lane[i]) / width);
            });
    }
}

} // namespace muir::sim
