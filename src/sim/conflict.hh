/**
 * @file
 * Dynamic memory-conflict observer: the simulator-side ground truth
 * for μlint's static race check (R001).
 *
 * The executor records every dynamic memory access and every
 * dependence that orders events — data edges, spawn/sync edges, queue
 * backpressure — plus, separately, the RAW/WAW/WAR edges it adds just
 * to keep conflicting accesses in program order (DynEvent::memDeps).
 * Real hardware provides no such ordering for free: two overlapping
 * accesses (at least one a store) whose only ordering is a memory
 * edge are a data race the microarchitecture may resolve either way.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/ddg.hh"

namespace muir::sim
{

/** One observed racy pair of dynamic memory accesses. */
struct MemConflict
{
    /** Event ids, first < second in record order. */
    uint64_t first = 0;
    uint64_t second = 0;
    /** Static nodes behind the two accesses. */
    const uir::Node *firstNode = nullptr;
    const uir::Node *secondNode = nullptr;
    /** First overlapping word address. */
    uint64_t addr = 0;
};

/**
 * Scan a recorded execution for overlapping accesses (>= 1 store)
 * unordered by any non-memory dependence.
 *
 * @param ddg           The execution record (UirExecutor::ddg()).
 * @param max_conflicts Stop after this many findings.
 */
std::vector<MemConflict> findConflicts(const Ddg &ddg,
                                       size_t max_conflicts = 16);

} // namespace muir::sim
