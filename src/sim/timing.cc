#include "sim/timing.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <queue>
#include <unordered_map>

#include "sim/fault.hh"
#include "sim/profile.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "uir/delay_model.hh"

namespace muir::sim
{

namespace
{

/** Set-associative LRU tag array simulated over real addresses. */
class CacheTags
{
  public:
    CacheTags(const uir::Structure &s)
        : lineBytes_(s.lineBytes()), ways_(s.ways())
    {
        unsigned lines = std::max(1u, s.sizeKb() * 1024 / s.lineBytes());
        sets_ = std::max(1u, lines / std::max(1u, s.ways()));
        tags_.assign(sets_, {});
    }

    /** @return true on hit; updates LRU/allocates on miss. */
    bool
    access(uint64_t addr)
    {
        uint64_t line = addr / lineBytes_;
        auto &set = tags_[line % sets_];
        auto it = std::find(set.begin(), set.end(), line);
        if (it != set.end()) {
            set.erase(it);
            set.insert(set.begin(), line);
            return true;
        }
        set.insert(set.begin(), line);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

    unsigned lineBytes() const { return lineBytes_; }

  private:
    unsigned lineBytes_;
    unsigned ways_;
    unsigned sets_;
    std::vector<std::vector<uint64_t>> tags_;
};

/** Per-structure arbitration and tag state. */
struct StructState
{
    const uir::Structure *s = nullptr;
    /** [bank][port] next-free cycle. */
    std::vector<std::vector<uint64_t>> bankPortFree;
    std::unique_ptr<CacheTags> tags;

    explicit StructState(const uir::Structure &structure) : s(&structure)
    {
        bankPortFree.assign(structure.banks(),
                            std::vector<uint64_t>(structure.portsPerBank(),
                                                  0));
        if (structure.kind() == uir::StructureKind::Cache)
            tags = std::make_unique<CacheTags>(structure);
    }
};

/** Junction port state for one (task, tile). */
struct JunctionState
{
    std::vector<uint64_t> readFree;
    std::vector<uint64_t> writeFree;
};


uint64_t
claimPort(std::vector<uint64_t> &ports, uint64_t ready, uint64_t busy)
{
    auto it = std::min_element(ports.begin(), ports.end());
    uint64_t start = std::max(ready, *it);
    *it = start + busy;
    return start;
}

/**
 * μmeter per-run scratch for the scheduler self-profile. Everything
 * accumulates locally and is flushed to the sink once per run, so the
 * hot loop never takes a registry lock. The skip-ahead analysis
 * tracks the *dispatch frontier* — the latest cycle any node fired —
 * and attributes every span the frontier jumps over (cycles a tick
 * scheduler would burn with nothing to dispatch) to what the next
 * firing was waiting on: an outstanding DRAM fill, queue
 * backpressure, its tile's initiation interval, port arbitration, or
 * plain compute latency on the critical path. Firings are processed
 * in ready order while the frontier tracks start times, so a gap can
 * occasionally straddle an out-of-order dispatch; the totals are an
 * estimate (reported as such), not an exact tick census.
 */
struct MeterState
{
    std::chrono::steady_clock::time_point t0;
    /** Last-arriving dependency per event (μprof's critDep, kept
     *  separately so profiling stays optional). */
    std::vector<uint64_t> critDep;
    /** 1 when the event's access went out to DRAM. */
    std::vector<char> dramTouched;
    metrics::HistogramData queueDepth;
    metrics::HistogramData gapRuns[metrics::kNumIdleClasses];
    uint64_t idleCycles[metrics::kNumIdleClasses] = {};
    /** Latest dispatch cycle seen (cycle 0 assumed occupied). */
    uint64_t frontier = 0;
    uint64_t firings = 0;

    void
    recordGap(metrics::IdleClass c, uint64_t run)
    {
        idleCycles[static_cast<unsigned>(c)] += run;
        gapRuns[static_cast<unsigned>(c)].observe(run);
    }
};

} // namespace

TimingResult
scheduleDdg(const uir::Accelerator &accel, const Ddg &ddg,
            RunContext &ctx)
{
    std::vector<TimingTraceRow> *trace = ctx.hooks.trace;
    ProfileCollector *prof = ctx.hooks.profile;
    FaultHarness *fault = ctx.fault;
    TimingResult result;
    const auto &events = ddg.events();
    const auto &invocations = ddg.invocations();
    if (prof)
        prof->events.assign(events.size(), EventCost{});

    // μmeter self-profiling. With no sink installed, mstate stays
    // null, no clock is read, and the schedule is bit-identical to
    // the unmetered one — the same observational-guard contract the
    // trace and profile hooks honor.
    metrics::Registry *meter = metrics::sink();
    std::unique_ptr<MeterState> mstate;
    if (meter) {
        mstate = std::make_unique<MeterState>();
        mstate->t0 = std::chrono::steady_clock::now();
        mstate->critDep.assign(events.size(), kNoEvent);
        mstate->dramTouched.assign(events.size(), 0);
    }

    // Reverse adjacency so finish times propagate to dependents.
    std::vector<uint32_t> pending(events.size(), 0);
    std::vector<uint32_t> edge_start(events.size() + 1, 0);
    for (const auto &e : events)
        for (uint64_t d : e.deps)
            ++edge_start[d + 1];
    for (size_t i = 1; i < edge_start.size(); ++i)
        edge_start[i] += edge_start[i - 1];
    std::vector<uint64_t> dependents(edge_start.back());
    {
        std::vector<uint32_t> cursor(edge_start.begin(),
                                     edge_start.end() - 1);
        for (uint64_t id = 0; id < events.size(); ++id) {
            for (uint64_t d : events[id].deps) {
                muir_assert(d < id, "DDG dep not earlier than event");
                dependents[cursor[d]++] = id;
            }
            pending[id] = events[id].deps.size();
        }
    }

    std::vector<uint64_t> finish(events.size(), 0);
    std::vector<uint64_t> readyAt(events.size(), 0);

    // --- μfit: fault plan decode + watchdog bookkeeping. Everything in
    // this block is dead when fault == nullptr, keeping the no-harness
    // schedule bit-identical (the μprof observational-guard contract).
    const FaultPlan *plan = fault ? fault->plan : nullptr;
    bool drop_edge = false;   // skip one token on the planned edge
    bool stuck_valid = false; // pre-assert the planned edge's token
    bool dup_token = false;   // consumer double-claims an issue slot
    bool edge_skipped = false;
    bool stuck_fired = false;
    uint64_t stuck_start = 0;
    uint64_t miss_ordinal = 0;
    bool budget_tripped = false;
    std::vector<char> done;
    if (fault) {
        done.assign(events.size(), 0);
        if (plan && plan->event != kNoEvent) {
            switch (plan->kind) {
              case FaultKind::TokenDrop:
              case FaultKind::LostSpawn:
              case FaultKind::LostSync:
                drop_edge = true;
                break;
              case FaultKind::StuckValid:
                stuck_valid = true;
                // The consumer sees its token before the producer raised
                // valid: satisfy the edge at time zero and skip the real
                // arrival below.
                --pending[plan->event];
                break;
              case FaultKind::TokenDup:
                dup_token = true;
                break;
              default:
                break;
            }
        }
    }

    // Structural resource state.
    std::unordered_map<const uir::Structure *, StructState> structs;
    for (const auto &s : accel.structures())
        structs.emplace(s.get(), StructState(*s));
    std::unordered_map<const uir::Node *, std::vector<uint64_t>> nodeFree;
    std::map<std::pair<const uir::Task *, unsigned>, JunctionState>
        junctions;
    uint64_t dramFree = 0;
    const uir::Structure *dram = nullptr;
    for (const auto &s : accel.structures())
        if (s->kind() == uir::StructureKind::Dram)
            dram = s.get();

    // Discrete-event processing in (ready-time, id) order: resources
    // arbitrate between requests in the order they become ready, the
    // way hardware round-robin arbitration would.
    using QEntry = std::pair<uint64_t, uint64_t>; // (ready, id)
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>>
        queue;
    for (uint64_t id = 0; id < events.size(); ++id)
        if (pending[id] == 0)
            queue.emplace(0, id);

    // Per-task scoped stat handles so the hot loop doesn't rebuild
    // "task.<name>." prefixes on every event.
    std::unordered_map<const uir::Task *, ScopedStats> taskStats;
    auto statsFor = [&](const uir::Task *task) -> ScopedStats & {
        auto it = taskStats.find(task);
        if (it == taskStats.end())
            it = taskStats
                     .emplace(task,
                              result.stats.scoped("task." +
                                                  task->name() + "."))
                     .first;
        return it->second;
    };

    uint64_t processed = 0;
    while (!queue.empty()) {
        auto [ready, id] = queue.top();
        queue.pop();
        if (fault && fault->watchdog.enabled &&
            fault->watchdog.maxCycles &&
            ready > fault->watchdog.maxCycles) {
            budget_tripped = true;
            break;
        }
        const DynEvent &e = events[id];
        ++processed;
        if (mstate)
            mstate->queueDepth.observe(queue.size() + 1);

        EventCost *cost = prof ? &prof->events[id] : nullptr;
        if (cost) {
            cost->ready = ready;
            // Operand skew and queue gating against the deps' (already
            // final) finish times; the queue-backpressure dep is kept
            // out of the operand statistics.
            uint64_t first = ~uint64_t(0);
            uint64_t data_ready = 0;
            uint64_t data_crit = kNoEvent;
            unsigned data_deps = 0;
            for (uint64_t d : e.deps) {
                if (d == e.queueDep)
                    continue;
                ++data_deps;
                uint64_t f = finish[d];
                first = std::min(first, f);
                if (f > data_ready) {
                    data_ready = f;
                    data_crit = d;
                }
            }
            cost->dataCritDep = data_crit;
            if (data_deps >= 2)
                cost->operandWait = data_ready - first;
            if (e.queueDep != kNoEvent &&
                finish[e.queueDep] > data_ready)
                cost->queueWait = finish[e.queueDep] - data_ready;
        }

        uint64_t end_time;
        uint64_t started = ready;
        if (e.isCompletion) {
            end_time = ready;
        } else {
            const uir::Node *node = e.node;
            const uir::Task *task = node->parent();
            unsigned tiles = std::max(1u, task->numTiles());
            unsigned tile = static_cast<unsigned>(
                invocations[e.invocation].seqInTask % tiles);

            // In-order initiation per static node per tile.
            auto &nf = nodeFree[node];
            if (nf.size() < tiles)
                nf.resize(tiles, 0);
            uint64_t start = std::max(ready, nf[tile]);
            uint64_t ii_start = start;
            if (cost) {
                cost->tile = tile;
                cost->iiWait = start - ready;
            }

            uint64_t latency = uir::nodeLatency(*node);

            if (e.isLoad || e.isStore) {
                // Junction arbitration (task-side R/W ports, §3.4).
                JunctionState &j = junctions[{task, tile}];
                if (j.readFree.empty()) {
                    j.readFree.assign(
                        std::max(1u, task->junctionReadPorts()), 0);
                    j.writeFree.assign(
                        std::max(1u, task->junctionWritePorts()), 0);
                }
                uint64_t pre = start;
                start = claimPort(e.isLoad ? j.readFree : j.writeFree,
                                  start, 1);
                result.stats.inc("junction.wait_cycles", start - pre);
                if (cost)
                    cost->junctionWait = start - pre;

                // Structure access.
                const uir::Structure *s =
                    accel.structureForSpace(node->memSpace());
                StructState &ss = structs.at(s);
                unsigned wide = std::max(1u, s->wideWords());
                unsigned beats =
                    (std::max<unsigned>(1, e.words) + wide - 1) / wide;
                unsigned bank_idx;
                if (s->kind() == uir::StructureKind::Cache)
                    bank_idx = static_cast<unsigned>(
                        (e.addr / s->lineBytes()) % s->banks());
                else
                    bank_idx = static_cast<unsigned>(
                        (e.addr / 4 / wide) % s->banks());
                pre = start;
                start = claimPort(ss.bankPortFree[bank_idx], start,
                                  beats);
                result.stats.inc("bank.wait_cycles", start - pre);
                if (cost) {
                    cost->bankWait = start - pre;
                    cost->structure = s;
                    cost->beats = beats;
                }
                if (prof) {
                    auto &use = prof->structUse[s];
                    ++use.accesses;
                    use.busyBeats += beats;
                    if (start > pre)
                        ++use.conflicts;
                }

                uint64_t access = s->latency() + beats - 1;
                if (ss.tags) {
                    bool hit = ss.tags->access(e.addr);
                    // Multi-word accesses may straddle a line.
                    if (e.words > 1 &&
                        (e.addr / s->lineBytes()) !=
                            ((e.addr + e.words * 4 - 1) /
                             s->lineBytes()))
                        hit &= ss.tags->access(e.addr + e.words * 4 - 1);
                    if (hit) {
                        result.stats.inc("cache.hits");
                    } else {
                        result.stats.inc("cache.misses");
                        if (mstate)
                            mstate->dramTouched[id] = 1;
                        double bpc = dram ? dram->bytesPerCycle()
                                          : s->bytesPerCycle();
                        uint64_t xfer = static_cast<uint64_t>(
                            s->lineBytes() / std::max(1.0, bpc));
                        uint64_t dram_start =
                            std::max(start + access, dramFree);
                        dramFree = dram_start + xfer;
                        if (cost) {
                            cost->dramWait =
                                dram_start - (start + access);
                            cost->missPenalty = s->missLatency();
                            cost->dramStart = dram_start;
                            cost->dramXfer = xfer;
                            cost->dramBytes = s->lineBytes();
                        }
                        access = (dram_start - start) + s->missLatency();
                        if (plan && plan->kind == FaultKind::DramTimeout &&
                            miss_ordinal++ == plan->missOrdinal) {
                            // The DRAM port times out; the controller
                            // retries with exponential backoff.
                            uint64_t window = s->missLatency() + 32;
                            uint64_t backoff = 0;
                            for (unsigned r = 0; r < plan->attempts; ++r)
                                backoff += window << r;
                            access += backoff;
                            result.stats.inc("fault.dram_retries",
                                             plan->attempts);
                            result.stats.inc("fault.dram_retry_cycles",
                                             backoff);
                        }
                    }
                } else {
                    result.stats.inc("scratchpad.accesses");
                }
                latency += access;
            }

            nf[tile] = start + uir::nodeInitiationInterval(*node);
            if (dup_token && id == plan->event) {
                // A duplicated token makes the consumer fire twice: the
                // ghost firing claims a second initiation slot on the
                // same tile.
                nf[tile] += uir::nodeInitiationInterval(*node);
                result.stats.inc("fault.duplicate_token");
            }
            if (stuck_valid && id == plan->event) {
                stuck_fired = true;
                stuck_start = start;
            }
            end_time = start + latency;
            started = start;
            result.stats.inc("events");
            // Per-task stall attribution: time spent waiting on
            // structural resources after operands were ready.
            ScopedStats &ts = statsFor(task);
            if (start > ready)
                ts.inc("stall_cycles", start - ready);
            ts.inc("events");

            // Skip-ahead accounting: dispatch-idle cycles between the
            // frontier and this firing, split at the ready / II /
            // port-claim boundaries. `frontier + 1` because the
            // frontier cycle itself dispatched something.
            if (mstate) {
                ++mstate->firings;
                uint64_t base = mstate->frontier + 1;
                if (ready > base) {
                    metrics::IdleClass cls = metrics::IdleClass::Other;
                    uint64_t dep = mstate->critDep[id];
                    if (dep != kNoEvent) {
                        if (e.queueDep != kNoEvent &&
                            dep == e.queueDep)
                            cls = metrics::IdleClass::QueueDrain;
                        else if (mstate->dramTouched[dep])
                            cls = metrics::IdleClass::DramReturn;
                    }
                    mstate->recordGap(cls, ready - base);
                    base = ready;
                }
                if (start > base) {
                    uint64_t ii_end = std::max(base, ii_start);
                    if (ii_end > base)
                        mstate->recordGap(metrics::IdleClass::TileII,
                                          ii_end - base);
                    if (start > ii_end)
                        mstate->recordGap(metrics::IdleClass::Port,
                                          start - ii_end);
                }
                if (start > mstate->frontier)
                    mstate->frontier = start;
            }
        }

        if (cost) {
            cost->start = started;
            cost->finish = end_time;
        }
        if (trace)
            trace->push_back(
                {id, e.node, e.invocation, ready, started, end_time});
        finish[id] = end_time;
        if (fault)
            done[id] = 1;
        result.cycles = std::max(result.cycles, end_time);
        for (uint32_t k = edge_start[id]; k < edge_start[id + 1]; ++k) {
            uint64_t dep_id = dependents[k];
            if ((drop_edge || stuck_valid) && !edge_skipped &&
                id == plan->producer && dep_id == plan->event) {
                // The token on this ready/valid edge is lost (drop) or
                // was already consumed at time zero (stuck-valid): the
                // producer's notification never arrives.
                edge_skipped = true;
                if (drop_edge)
                    result.stats.inc("fault.dropped_tokens");
                continue;
            }
            if (prof && end_time > readyAt[dep_id])
                prof->events[dep_id].critDep = id;
            if (mstate && end_time > readyAt[dep_id])
                mstate->critDep[dep_id] = id;
            readyAt[dep_id] = std::max(readyAt[dep_id], end_time);
            if (--pending[dep_id] == 0)
                queue.emplace(readyAt[dep_id], dep_id);
        }
    }
    if (fault) {
        // Dynamic watchdog: the queue draining with events still
        // unscheduled is token starvation — the dynamic analogue of the
        // deadlocks μlint's D-checks rule out statically.
        if (budget_tripped) {
            HangDiagnosis &diag = fault->verdict.hang;
            diag.budgetExceeded = true;
            diag.scheduled = processed;
            diag.total = events.size();
            diag.budget = fault->watchdog.maxCycles;
        } else if (processed < events.size()) {
            fault->verdict.hang = diagnoseHang(
                ddg, pending, done, processed,
                (drop_edge || stuck_valid) ? plan->producer : kNoEvent,
                (drop_edge || stuck_valid) ? plan->event : kNoEvent);
        } else if (stuck_valid && stuck_fired &&
                   stuck_start < finish[plan->producer]) {
            // The consumer observed the token before the producer
            // finished raising valid: a causality violation a handshake
            // checker would flag, even though the run completed.
            fault->verdict.detected = true;
            fault->verdict.detector = "handshake-causality";
        } else if (dup_token && plan->event != kNoEvent) {
            fault->verdict.detected = true;
            fault->verdict.detector = "token-conservation";
        }
        if (!fault->verdict.detected && plan &&
            plan->kind == FaultKind::DramTimeout &&
            plan->attempts > kMaxDramRetries &&
            result.stats.get("fault.dram_retries")) {
            fault->verdict.detected = true;
            fault->verdict.detector = "dram-timeout";
        }
    } else {
        muir_assert(processed == events.size(),
                    "timing: %llu of %zu events scheduled",
                    static_cast<unsigned long long>(processed),
                    events.size());
    }
    result.stats.set("invocations", invocations.size());

    // Flush the μmeter scratch: one registry transaction per run.
    if (meter) {
        std::chrono::duration<double, std::milli> wall =
            std::chrono::steady_clock::now() - mstate->t0;
        meter->timerAdd("sim.schedule", wall.count());
        meter->add("sim.runs");
        meter->add("sim.events", processed);
        meter->add("sim.firings", mstate->firings);
        meter->add("sim.cycles", result.cycles);
        meter->add("sim.invocations", invocations.size());
        meter->gaugeMax("sim.ready_queue_peak",
                        mstate->queueDepth.maxValue);
        meter->mergeHistogram("sim.ready_queue_depth",
                              mstate->queueDepth);
        uint64_t idle_total = 0;
        for (unsigned c = 0; c < metrics::kNumIdleClasses; ++c) {
            std::string name = std::string("sim.idle.") +
                               metrics::idleClassName(
                                   static_cast<metrics::IdleClass>(c));
            idle_total += mstate->idleCycles[c];
            if (mstate->idleCycles[c])
                meter->add(name + ".cycles", mstate->idleCycles[c]);
            meter->mergeHistogram(name + ".run_length",
                                  mstate->gapRuns[c]);
        }
        meter->add("sim.idle.total_cycles", idle_total);
    }
    return result;
}

} // namespace muir::sim
