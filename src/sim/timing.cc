#include "sim/timing.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "sim/compiled_ddg.hh"
#include "sim/fault.hh"
#include "sim/profile.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace muir::sim
{

namespace
{

/** Set-associative LRU tag array simulated over real addresses. */
class CacheTags
{
  public:
    CacheTags(const uir::Structure &s)
        : lineBytes_(s.lineBytes()), ways_(s.ways())
    {
        unsigned lines = std::max(1u, s.sizeKb() * 1024 / s.lineBytes());
        sets_ = std::max(1u, lines / std::max(1u, s.ways()));
        tags_.assign(sets_, {});
    }

    /** @return true on hit; updates LRU/allocates on miss. */
    bool
    access(uint64_t addr)
    {
        uint64_t line = addr / lineBytes_;
        auto &set = tags_[line % sets_];
        auto it = std::find(set.begin(), set.end(), line);
        if (it != set.end()) {
            set.erase(it);
            set.insert(set.begin(), line);
            return true;
        }
        set.insert(set.begin(), line);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

  private:
    unsigned lineBytes_;
    unsigned ways_;
    unsigned sets_;
    std::vector<std::vector<uint64_t>> tags_;
};

/**
 * Claim the earliest-free port of a contiguous port-file range.
 * Ties keep the lowest port index (hardware fixed-priority pick among
 * idle ports), matching std::min_element over the old per-resource
 * vectors bit for bit.
 */
uint64_t
claimPort(uint64_t *ports, unsigned count, uint64_t ready, uint64_t busy)
{
    uint64_t *best = ports;
    for (unsigned i = 1; i < count; ++i)
        if (ports[i] < *best)
            best = ports + i;
    uint64_t start = std::max(ready, *best);
    *best = start + busy;
    return start;
}

/**
 * The ready queue: a monotone (radix/calendar) priority queue over
 * (ready-cycle, event-id).
 *
 * Every key pushed is >= the key last popped — a dependent's ready
 * time is the max of finish times of events at or after the current
 * cycle — which is exactly the precondition a radix heap needs.
 * Bucket b > 0 holds entries whose key first differs from the current
 * minimum at bit b-1; bucket membership is an intrusive singly-linked
 * list through a flat per-event `next_` array (an event is enqueued
 * at most once, when its last dependency resolves), so a push is O(1)
 * with no allocation. Entries at the current minimum key live in
 * `now_`, a binary min-heap on event id, which reproduces the
 * (ready, id) lexicographic pop order of the std::priority_queue this
 * replaces — that order is the round-robin arbitration model and is
 * part of the bit-exactness contract.
 *
 * When `now_` drains, advance() finds the lowest nonempty bucket —
 * which provably contains the global minimum — scans it for the new
 * minimum key, and redistributes: equal keys into `now_`, the rest
 * into strictly lower buckets (keys sharing a bucket agree on all
 * bits above it, so their XOR has a lower MSB). Each entry therefore
 * migrates at most 64 times, amortized O(1) per operation.
 */
class ReadyQueue
{
  public:
    ReadyQueue(const uint64_t *keys, uint32_t num_events)
        : keys_(keys), next_(num_events, kNoId32)
    {
        std::fill(std::begin(head_), std::end(head_), kNoId32);
    }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    void
    push(uint32_t id)
    {
        ++size_;
        uint64_t key = keys_[id];
        if (key == min_) {
            now_.push_back(id);
            std::push_heap(now_.begin(), now_.end(),
                           std::greater<uint32_t>());
            return;
        }
        unsigned b = 64 - __builtin_clzll(key ^ min_);
        next_[id] = head_[b];
        head_[b] = id;
    }

    /** Pop the (ready, id)-least entry; precondition: !empty(). */
    uint32_t
    pop()
    {
        if (now_.empty())
            advance();
        std::pop_heap(now_.begin(), now_.end(),
                      std::greater<uint32_t>());
        uint32_t id = now_.back();
        now_.pop_back();
        --size_;
        return id;
    }

  private:
    void
    advance()
    {
        unsigned b = 1;
        while (head_[b] == kNoId32)
            ++b;
        uint64_t new_min = ~uint64_t(0);
        for (uint32_t id = head_[b]; id != kNoId32; id = next_[id])
            new_min = std::min(new_min, keys_[id]);
        min_ = new_min;
        uint32_t id = head_[b];
        head_[b] = kNoId32;
        while (id != kNoId32) {
            uint32_t next = next_[id];
            uint64_t key = keys_[id];
            if (key == new_min) {
                now_.push_back(id);
            } else {
                unsigned nb = 64 - __builtin_clzll(key ^ new_min);
                next_[id] = head_[nb];
                head_[nb] = id;
            }
            id = next;
        }
        std::make_heap(now_.begin(), now_.end(),
                       std::greater<uint32_t>());
    }

    /** Ready times, owned by the scheduler; an entry's key is frozen
     *  by the time it is pushed (all producers have finished). */
    const uint64_t *keys_;
    uint64_t min_ = 0;
    size_t size_ = 0;
    std::vector<uint32_t> next_;
    uint32_t head_[65];
    /** Entries at the current minimum key, min-heap on id. */
    std::vector<uint32_t> now_;
};

/**
 * μmeter per-run scratch for the scheduler self-profile. Everything
 * accumulates locally and is flushed to the sink once per run, so the
 * hot loop never takes a registry lock. The skip-ahead analysis
 * tracks the *dispatch frontier* — the latest cycle any node fired —
 * and attributes every span the frontier jumps over (cycles a tick
 * scheduler would burn with nothing to dispatch) to what the next
 * firing was waiting on: an outstanding DRAM fill, queue
 * backpressure, its tile's initiation interval, port arbitration, or
 * plain compute latency on the critical path. Firings are processed
 * in ready order while the frontier tracks start times, so a gap can
 * occasionally straddle an out-of-order dispatch; the totals are an
 * estimate (reported as such), not an exact tick census.
 */
struct MeterState
{
    std::chrono::steady_clock::time_point t0;
    /** Last-arriving dependency per event (μprof's critDep, kept
     *  separately so profiling stays optional). */
    std::vector<uint64_t> critDep;
    /** 1 when the event's access went out to DRAM. */
    std::vector<char> dramTouched;
    metrics::HistogramData queueDepth;
    metrics::HistogramData gapRuns[metrics::kNumIdleClasses];
    uint64_t idleCycles[metrics::kNumIdleClasses] = {};
    /** Latest dispatch cycle seen (cycle 0 assumed occupied). */
    uint64_t frontier = 0;
    uint64_t firings = 0;

    void
    recordGap(metrics::IdleClass c, uint64_t run)
    {
        idleCycles[static_cast<unsigned>(c)] += run;
        gapRuns[static_cast<unsigned>(c)].observe(run);
    }
};

} // namespace

TimingResult
scheduleDdg(const CompiledDdg &cd, RunContext &ctx)
{
    std::vector<TimingTraceRow> *trace = ctx.hooks.trace;
    ProfileCollector *prof = ctx.hooks.profile;
    FaultHarness *fault = ctx.fault;
    TimingResult result;
    const uint32_t n = cd.numEvents;
    if (prof)
        prof->events.assign(n, EventCost{});

    // μmeter self-profiling. With no sink installed, mstate stays
    // null, no clock is read, and the schedule is bit-identical to
    // the unmetered one — the same observational-guard contract the
    // trace and profile hooks honor.
    metrics::Registry *meter = metrics::sink();
    std::unique_ptr<MeterState> mstate;
    if (meter) {
        mstate = std::make_unique<MeterState>();
        mstate->t0 = std::chrono::steady_clock::now();
        mstate->critDep.assign(n, kNoEvent);
        mstate->dramTouched.assign(n, 0);
    }

    // Per-run mutable state: flat, indexed by the compiled ids.
    std::vector<uint32_t> pending(n, 0);
    for (uint32_t id = 0; id < n; ++id)
        pending[id] = cd.depStart[id + 1] - cd.depStart[id];

    std::vector<uint64_t> finish(n, 0);
    std::vector<uint64_t> readyAt(n, 0);

    // --- μfit: fault plan decode + watchdog bookkeeping. Everything in
    // this block is dead when fault == nullptr, keeping the no-harness
    // schedule bit-identical (the μprof observational-guard contract).
    const FaultPlan *plan = fault ? fault->plan : nullptr;
    bool drop_edge = false;   // skip one token on the planned edge
    bool stuck_valid = false; // pre-assert the planned edge's token
    bool dup_token = false;   // consumer double-claims an issue slot
    bool edge_skipped = false;
    bool stuck_fired = false;
    uint64_t stuck_start = 0;
    uint64_t miss_ordinal = 0;
    bool budget_tripped = false;
    std::vector<char> done;
    if (fault) {
        done.assign(n, 0);
        if (plan && plan->event != kNoEvent) {
            switch (plan->kind) {
              case FaultKind::TokenDrop:
              case FaultKind::LostSpawn:
              case FaultKind::LostSync:
                drop_edge = true;
                break;
              case FaultKind::StuckValid:
                stuck_valid = true;
                // The consumer sees its token before the producer raised
                // valid: satisfy the edge at time zero and skip the real
                // arrival below.
                --pending[plan->event];
                break;
              case FaultKind::TokenDup:
                dup_token = true;
                break;
              default:
                break;
            }
        }
    }

    // Structural resource state: one flat next-free-cycle file for the
    // in-order-initiation slots and one for every junction/bank port,
    // laid out by compileDdg; cache tags per compiled structure.
    std::vector<uint64_t> initFree(cd.initSlots, 0);
    std::vector<uint64_t> portFree(cd.portSlots, 0);
    std::vector<std::unique_ptr<CacheTags>> tags(cd.structs.size());
    for (size_t i = 0; i < cd.structs.size(); ++i)
        if (cd.structs[i].isCache)
            tags[i] = std::make_unique<CacheTags>(*cd.structs[i].s);
    uint64_t dramFree = 0;

    // Discrete-event processing in (ready-time, id) order: resources
    // arbitrate between requests in the order they become ready, the
    // way hardware round-robin arbitration would.
    ReadyQueue queue(readyAt.data(), n);
    for (uint32_t id = 0; id < n; ++id)
        if (pending[id] == 0)
            queue.push(id);

    // Stat accumulation stays in flat locals; the StatSet (a sorted
    // map, so insertion order never shows) is written once per run
    // with the same key-presence semantics the per-event incs had.
    uint64_t firings = 0;
    uint64_t mem_events = 0;
    uint64_t junction_wait = 0;
    uint64_t bank_wait = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t scratch_accesses = 0;
    std::vector<uint64_t> taskEvents(cd.tasks.size(), 0);
    std::vector<uint64_t> taskStall(cd.tasks.size(), 0);
    std::vector<ProfileCollector::StructUse> structUse;
    if (prof)
        structUse.assign(cd.structs.size(),
                         ProfileCollector::StructUse{});

    uint64_t processed = 0;
    while (!queue.empty()) {
        uint32_t id = queue.pop();
        uint64_t ready = readyAt[id];
        if (fault && fault->watchdog.enabled &&
            fault->watchdog.maxCycles &&
            ready > fault->watchdog.maxCycles) {
            budget_tripped = true;
            break;
        }
        ++processed;
        if (mstate)
            mstate->queueDepth.observe(queue.size() + 1);

        const uint8_t fl = cd.flags[id];
        const uint32_t qd = cd.queueDep[id];

        EventCost *cost = prof ? &prof->events[id] : nullptr;
        if (cost) {
            cost->ready = ready;
            // Operand skew and queue gating against the deps' (already
            // final) finish times; the queue-backpressure dep is kept
            // out of the operand statistics.
            uint64_t first = ~uint64_t(0);
            uint64_t data_ready = 0;
            uint64_t data_crit = kNoEvent;
            unsigned data_deps = 0;
            for (uint32_t k = cd.depStart[id]; k < cd.depStart[id + 1];
                 ++k) {
                uint32_t d = cd.deps[k];
                if (d == qd)
                    continue;
                ++data_deps;
                uint64_t f = finish[d];
                first = std::min(first, f);
                if (f > data_ready) {
                    data_ready = f;
                    data_crit = d;
                }
            }
            cost->dataCritDep = data_crit;
            if (data_deps >= 2)
                cost->operandWait = data_ready - first;
            if (qd != kNoId32 && finish[qd] > data_ready)
                cost->queueWait = finish[qd] - data_ready;
        }

        uint64_t end_time;
        uint64_t started = ready;
        if (fl & kEvCompletion) {
            end_time = ready;
        } else {
            // In-order initiation per static node per tile.
            uint64_t &nf = initFree[cd.initSlot[id]];
            uint64_t start = std::max(ready, nf);
            uint64_t ii_start = start;
            if (cost) {
                cost->tile = cd.tile[id];
                cost->iiWait = start - ready;
            }

            uint64_t latency = cd.latency[id];

            if (fl & (kEvLoad | kEvStore)) {
                // Junction arbitration (task-side R/W ports, §3.4).
                uint64_t pre = start;
                start = claimPort(&portFree[cd.junctionPortBase[id]],
                                  cd.junctionPorts[id], start, 1);
                ++mem_events;
                junction_wait += start - pre;
                if (cost)
                    cost->junctionWait = start - pre;

                // Structure access.
                const CompiledStruct &cs = cd.structs[cd.structOf[id]];
                unsigned beats = cd.beats[id];
                pre = start;
                start = claimPort(&portFree[cd.bankPortBase[id]],
                                  cs.portsPerBank, start, beats);
                bank_wait += start - pre;
                if (cost) {
                    cost->bankWait = start - pre;
                    cost->structure = cs.s;
                    cost->beats = beats;
                }
                if (prof) {
                    auto &use = structUse[cd.structOf[id]];
                    ++use.accesses;
                    use.busyBeats += beats;
                    if (start > pre)
                        ++use.conflicts;
                }

                uint64_t access = cs.latency + beats - 1;
                CacheTags *tag = tags[cd.structOf[id]].get();
                if (tag) {
                    bool hit = tag->access(cd.addr[id]);
                    // Multi-word accesses may straddle a line.
                    if (fl & kEvStraddle)
                        hit &= tag->access(cd.addr[id] +
                                           cd.words[id] * 4 - 1);
                    if (hit) {
                        ++cache_hits;
                    } else {
                        ++cache_misses;
                        if (mstate)
                            mstate->dramTouched[id] = 1;
                        uint64_t xfer = cs.missXfer;
                        uint64_t dram_start =
                            std::max(start + access, dramFree);
                        dramFree = dram_start + xfer;
                        if (cost) {
                            cost->dramWait =
                                dram_start - (start + access);
                            cost->missPenalty = cs.missLatency;
                            cost->dramStart = dram_start;
                            cost->dramXfer = xfer;
                            cost->dramBytes = cs.lineBytes;
                        }
                        access = (dram_start - start) + cs.missLatency;
                        if (plan && plan->kind == FaultKind::DramTimeout &&
                            miss_ordinal++ == plan->missOrdinal) {
                            // The DRAM port times out; the controller
                            // retries with exponential backoff.
                            uint64_t window = cs.missLatency + 32;
                            uint64_t backoff = 0;
                            for (unsigned r = 0; r < plan->attempts; ++r)
                                backoff += window << r;
                            access += backoff;
                            result.stats.inc("fault.dram_retries",
                                             plan->attempts);
                            result.stats.inc("fault.dram_retry_cycles",
                                             backoff);
                        }
                    }
                } else {
                    ++scratch_accesses;
                }
                latency += access;
            }

            nf = start + cd.initInterval[id];
            if (dup_token && id == plan->event) {
                // A duplicated token makes the consumer fire twice: the
                // ghost firing claims a second initiation slot on the
                // same tile.
                nf += cd.initInterval[id];
                result.stats.inc("fault.duplicate_token");
            }
            if (stuck_valid && id == plan->event) {
                stuck_fired = true;
                stuck_start = start;
            }
            end_time = start + latency;
            started = start;
            ++firings;
            // Per-task stall attribution: time spent waiting on
            // structural resources after operands were ready.
            ++taskEvents[cd.taskOf[id]];
            if (start > ready)
                taskStall[cd.taskOf[id]] += start - ready;

            // Skip-ahead accounting: dispatch-idle cycles between the
            // frontier and this firing, split at the ready / II /
            // port-claim boundaries. `frontier + 1` because the
            // frontier cycle itself dispatched something.
            if (mstate) {
                ++mstate->firings;
                uint64_t base = mstate->frontier + 1;
                if (ready > base) {
                    metrics::IdleClass cls = metrics::IdleClass::Other;
                    uint64_t dep = mstate->critDep[id];
                    if (dep != kNoEvent) {
                        if (qd != kNoId32 && dep == qd)
                            cls = metrics::IdleClass::QueueDrain;
                        else if (mstate->dramTouched[dep])
                            cls = metrics::IdleClass::DramReturn;
                    }
                    mstate->recordGap(cls, ready - base);
                    base = ready;
                }
                if (start > base) {
                    uint64_t ii_end = std::max(base, ii_start);
                    if (ii_end > base)
                        mstate->recordGap(metrics::IdleClass::TileII,
                                          ii_end - base);
                    if (start > ii_end)
                        mstate->recordGap(metrics::IdleClass::Port,
                                          start - ii_end);
                }
                if (start > mstate->frontier)
                    mstate->frontier = start;
            }
        }

        if (cost) {
            cost->start = started;
            cost->finish = end_time;
        }
        if (trace)
            trace->push_back({id,
                              cd.nodeOf[id] == kNoId32
                                  ? nullptr
                                  : cd.nodes[cd.nodeOf[id]],
                              cd.invocation[id], ready, started,
                              end_time});
        finish[id] = end_time;
        if (fault)
            done[id] = 1;
        result.cycles = std::max(result.cycles, end_time);
        for (uint32_t k = cd.depdStart[id]; k < cd.depdStart[id + 1];
             ++k) {
            uint32_t dep_id = cd.dependents[k];
            if ((drop_edge || stuck_valid) && !edge_skipped &&
                id == plan->producer && dep_id == plan->event) {
                // The token on this ready/valid edge is lost (drop) or
                // was already consumed at time zero (stuck-valid): the
                // producer's notification never arrives.
                edge_skipped = true;
                if (drop_edge)
                    result.stats.inc("fault.dropped_tokens");
                continue;
            }
            if (prof && end_time > readyAt[dep_id])
                prof->events[dep_id].critDep = id;
            if (mstate && end_time > readyAt[dep_id])
                mstate->critDep[dep_id] = id;
            readyAt[dep_id] = std::max(readyAt[dep_id], end_time);
            if (--pending[dep_id] == 0)
                queue.push(dep_id);
        }
    }

    // Flush the per-run accumulators with the exact key-presence
    // semantics of the per-event incs they replace: a key exists iff
    // the event class occurred at least once (wait totals may be 0).
    if (firings)
        result.stats.inc("events", firings);
    if (mem_events) {
        result.stats.inc("junction.wait_cycles", junction_wait);
        result.stats.inc("bank.wait_cycles", bank_wait);
    }
    if (cache_hits)
        result.stats.inc("cache.hits", cache_hits);
    if (cache_misses)
        result.stats.inc("cache.misses", cache_misses);
    if (scratch_accesses)
        result.stats.inc("scratchpad.accesses", scratch_accesses);
    for (size_t t = 0; t < cd.tasks.size(); ++t) {
        if (taskStall[t])
            result.stats.inc(cd.tasks[t].statPrefix + "stall_cycles",
                             taskStall[t]);
        if (taskEvents[t])
            result.stats.inc(cd.tasks[t].statPrefix + "events",
                             taskEvents[t]);
    }
    if (prof)
        for (size_t i = 0; i < structUse.size(); ++i)
            if (structUse[i].accesses)
                prof->structUse[cd.structs[i].s] = structUse[i];

    if (fault) {
        // Dynamic watchdog: the queue draining with events still
        // unscheduled is token starvation — the dynamic analogue of the
        // deadlocks μlint's D-checks rule out statically.
        if (budget_tripped) {
            HangDiagnosis &diag = fault->verdict.hang;
            diag.budgetExceeded = true;
            diag.scheduled = processed;
            diag.total = n;
            diag.budget = fault->watchdog.maxCycles;
        } else if (processed < n) {
            muir_assert(cd.source,
                        "timing: hang diagnosis needs the source Ddg");
            fault->verdict.hang = diagnoseHang(
                *cd.source, pending, done, processed,
                (drop_edge || stuck_valid) ? plan->producer : kNoEvent,
                (drop_edge || stuck_valid) ? plan->event : kNoEvent);
        } else if (stuck_valid && stuck_fired &&
                   stuck_start < finish[plan->producer]) {
            // The consumer observed the token before the producer
            // finished raising valid: a causality violation a handshake
            // checker would flag, even though the run completed.
            fault->verdict.detected = true;
            fault->verdict.detector = "handshake-causality";
        } else if (dup_token && plan->event != kNoEvent) {
            fault->verdict.detected = true;
            fault->verdict.detector = "token-conservation";
        }
        if (!fault->verdict.detected && plan &&
            plan->kind == FaultKind::DramTimeout &&
            plan->attempts > kMaxDramRetries &&
            result.stats.get("fault.dram_retries")) {
            fault->verdict.detected = true;
            fault->verdict.detector = "dram-timeout";
        }
    } else {
        muir_assert(processed == n,
                    "timing: %llu of %lu events scheduled",
                    static_cast<unsigned long long>(processed),
                    static_cast<unsigned long>(n));
    }
    result.stats.set("invocations", cd.numInvocations);

    // Flush the μmeter scratch: one registry transaction per run.
    if (meter) {
        std::chrono::duration<double, std::milli> wall =
            std::chrono::steady_clock::now() - mstate->t0;
        meter->timerAdd("sim.schedule", wall.count());
        meter->add("sim.runs");
        meter->add("sim.events", processed);
        meter->add("sim.firings", mstate->firings);
        meter->add("sim.cycles", result.cycles);
        meter->add("sim.invocations", cd.numInvocations);
        meter->gaugeMax("sim.ready_queue_peak",
                        mstate->queueDepth.maxValue);
        meter->mergeHistogram("sim.ready_queue_depth",
                              mstate->queueDepth);
        uint64_t idle_total = 0;
        for (unsigned c = 0; c < metrics::kNumIdleClasses; ++c) {
            std::string name = std::string("sim.idle.") +
                               metrics::idleClassName(
                                   static_cast<metrics::IdleClass>(c));
            idle_total += mstate->idleCycles[c];
            if (mstate->idleCycles[c])
                meter->add(name + ".cycles", mstate->idleCycles[c]);
            meter->mergeHistogram(name + ".run_length",
                                  mstate->gapRuns[c]);
        }
        meter->add("sim.idle.total_cycles", idle_total);
    }
    return result;
}

TimingResult
scheduleDdg(const uir::Accelerator &accel, const Ddg &ddg,
            RunContext &ctx)
{
    CompiledDdg cd = compileDdg(accel, ddg);
    return scheduleDdg(cd, ctx);
}

} // namespace muir::sim
