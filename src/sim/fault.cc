#include "sim/fault.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "sim/simulator.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/strings.hh"
#include "uir/accelerator.hh"

namespace muir::sim
{

using ir::RuntimeValue;

// ------------------------------------------------------------- taxonomy

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TokenDrop: return "tokendrop";
      case FaultKind::TokenDup: return "tokendup";
      case FaultKind::StuckValid: return "stuckvalid";
      case FaultKind::DataFlip: return "dataflip";
      case FaultKind::MemFlip: return "memflip";
      case FaultKind::DramTimeout: return "dramtimeout";
      case FaultKind::LostSpawn: return "lostspawn";
      case FaultKind::LostSync: return "lostsync";
      case FaultKind::Mix: return "mix";
      case FaultKind::kCount: break;
    }
    return "?";
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "masked";
      case Outcome::SDC: return "sdc";
      case Outcome::Detected: return "detected";
      case Outcome::Hang: return "hang";
      case Outcome::kCount: break;
    }
    return "?";
}

namespace
{

/** Strict decimal uint64 parse (rejects junk, signs, overflow). */
bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        if (v > (~uint64_t(0) - (c - '0')) / 10)
            return false;
        v = v * 10 + (c - '0');
    }
    out = v;
    return true;
}

std::string
validKindNames()
{
    std::string out;
    for (unsigned k = 0; k < unsigned(FaultKind::kCount); ++k) {
        if (k)
            out += ", ";
        out += faultKindName(static_cast<FaultKind>(k));
    }
    return out;
}

} // namespace

bool
parseFaultSpec(const std::string &text, FaultSpec &out, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    FaultSpec spec;
    auto segs = split(text, ':');
    if (segs.empty() || segs[0].empty())
        return fail("empty fault spec");

    std::string head = segs[0];
    auto at = head.find('@');
    std::string kind_s = head.substr(0, at);
    bool found = false;
    for (unsigned k = 0; k < unsigned(FaultKind::kCount); ++k) {
        if (kind_s == faultKindName(static_cast<FaultKind>(k))) {
            spec.kind = static_cast<FaultKind>(k);
            found = true;
            break;
        }
    }
    if (!found)
        return fail("unknown fault kind '" + kind_s +
                    "' (valid: " + validKindNames() + ")");
    if (at != std::string::npos &&
        !parseU64(head.substr(at + 1), spec.site))
        return fail("bad site '" + head.substr(at + 1) +
                    "' (want a decimal number)");

    for (size_t i = 1; i < segs.size(); ++i) {
        auto eq = segs[i].find('=');
        if (eq == std::string::npos)
            return fail("bad option '" + segs[i] + "' (want key=value)");
        std::string key = segs[i].substr(0, eq);
        uint64_t v = 0;
        if (!parseU64(segs[i].substr(eq + 1), v) || v > ~0u)
            return fail("bad value in '" + segs[i] + "'");
        if (key == "bit")
            spec.bit = static_cast<unsigned>(v);
        else if (key == "edge")
            spec.edge = static_cast<unsigned>(v);
        else if (key == "attempts")
            spec.attempts = static_cast<unsigned>(v);
        else
            return fail("unknown option '" + key +
                        "' (valid: bit, edge, attempts)");
    }
    out = spec;
    return true;
}

std::string
renderFaultSpec(const FaultSpec &spec)
{
    std::string out = faultKindName(spec.kind);
    if (spec.site != FaultSpec::kAutoSite)
        out += "@" + std::to_string(spec.site);
    if (spec.bit != FaultSpec::kAuto)
        out += ":bit=" + std::to_string(spec.bit);
    if (spec.edge != FaultSpec::kAuto)
        out += ":edge=" + std::to_string(spec.edge);
    if (spec.attempts != FaultSpec::kAuto)
        out += ":attempts=" + std::to_string(spec.attempts);
    return out;
}

// ----------------------------------------------- functional-layer hooks

void
flipBit(RuntimeValue &value, unsigned bit)
{
    using Kind = RuntimeValue::Kind;
    switch (value.kind) {
      case Kind::Int:
        value.i ^= int64_t(1) << (bit % 32);
        break;
      case Kind::Float: {
        // Flip in the 32-bit float representation the datapath carries.
        float f = static_cast<float>(value.f);
        uint32_t u;
        std::memcpy(&u, &f, 4);
        u ^= 1u << (bit % 32);
        std::memcpy(&f, &u, 4);
        value.f = f;
        break;
      }
      case Kind::Ptr:
        // Low address bits only: wild upper-bit flips would make every
        // pointer fault trivially detectable by the bus guard.
        value.ptr ^= uint64_t(1) << (bit % 20);
        break;
      case Kind::Tensor: {
        if (!value.tensor || value.tensor->empty())
            return;
        // Copy-on-write: the shared buffer may feed other consumers of
        // the same golden value in an aliasing-free world.
        auto copy =
            std::make_shared<std::vector<float>>(*value.tensor);
        size_t elem = (bit >> 5) % copy->size();
        uint32_t u;
        std::memcpy(&u, &(*copy)[elem], 4);
        u ^= 1u << (bit % 32);
        std::memcpy(&(*copy)[elem], &u, 4);
        value.tensor = std::move(copy);
        break;
      }
    }
}

void
FaultInjector::checkAccess(uint64_t addr, unsigned bytes,
                           const ir::MemoryImage &mem) const
{
    if (!mem.inRange(addr, bytes))
        throw FaultAbort{Outcome::Detected,
                         fmt("bus error: %u-byte access at 0x%llx outside"
                             " the %llu-byte data image",
                             bytes, static_cast<unsigned long long>(addr),
                             static_cast<unsigned long long>(
                                 mem.sizeBytes()))};
}

void
FaultInjector::checkDivisor(int64_t divisor) const
{
    if (divisor == 0)
        throw FaultAbort{Outcome::Detected, "divide trap: zero divisor"};
}

void
FaultInjector::checkFirings(uint64_t firings) const
{
    if (maxFirings_ && firings > maxFirings_)
        throw FaultAbort{
            Outcome::Hang,
            fmt("runaway execution: %llu firings exceed the %llu budget",
                static_cast<unsigned long long>(firings),
                static_cast<unsigned long long>(maxFirings_))};
}

void
FaultInjector::checkDepth(unsigned depth) const
{
    // Below the executor's own hard limit of 256, so injected runs
    // abort recoverably instead of tripping the assert.
    if (depth >= 200)
        throw FaultAbort{Outcome::Hang,
                         "runaway recursion: invocation depth reached "
                         "200"};
}

void
FaultInjector::checkLoopStep(int64_t step, const std::string &task) const
{
    if (step <= 0)
        throw FaultAbort{Outcome::Detected,
                         fmt("corrupted loop step %lld in task %s",
                             static_cast<long long>(step), task.c_str())};
}

// -------------------------------------------------------------- watchdog

HangDiagnosis
diagnoseHang(const Ddg &ddg, const std::vector<uint32_t> &pending,
             const std::vector<char> &done, uint64_t processed,
             uint64_t dropped_producer, uint64_t dropped_consumer)
{
    HangDiagnosis diag;
    diag.hung = true;
    diag.scheduled = processed;
    diag.total = ddg.numEvents();
    const auto &events = ddg.events();
    const auto &invs = ddg.invocations();

    auto taskOf = [&](uint64_t id) {
        return invs[events[id].invocation].task->name();
    };
    auto nodeOf = [&](uint64_t id) -> std::string {
        const DynEvent &e = events[id];
        if (e.node)
            return e.node->name();
        return e.isCompletion ? "<completion>" : "<latch>";
    };
    auto edgeKind = [&](const DynEvent &e, uint64_t d) -> std::string {
        if (d == e.queueDep)
            return "queue";
        if (std::find(e.memDeps.begin(), e.memDeps.end(), d) !=
            e.memDeps.end())
            return "memory";
        if (e.isEntry)
            return "spawn";
        return "data";
    };
    auto blockedOn = [&](uint64_t id, uint64_t dep,
                         bool starved) -> HangDiagnosis::BlockedEdge {
        HangDiagnosis::BlockedEdge be;
        be.event = id;
        be.task = taskOf(id);
        be.node = nodeOf(id);
        be.waitingOn = dep;
        be.tokenLost = starved;
        if (dep != kNoEvent) {
            be.depTask = taskOf(dep);
            be.depNode = nodeOf(dep);
            be.kind = edgeKind(events[id], dep);
        }
        return be;
    };

    constexpr size_t kMaxReported = 8;
    // Starved events first: every dependency completed, yet a token is
    // still missing — the signature of a lost token, and the root cause
    // everything else transitively waits on.
    for (uint64_t id = 0; id < events.size() &&
                          diag.blocked.size() < kMaxReported;
         ++id) {
        if (done[id] || pending[id] == 0)
            continue;
        const DynEvent &e = events[id];
        bool starved = true;
        for (uint64_t d : e.deps)
            if (!done[d]) {
                starved = false;
                break;
            }
        if (!starved)
            continue;
        uint64_t culprit = kNoEvent;
        if (id == dropped_consumer)
            culprit = dropped_producer;
        else if (!e.deps.empty())
            culprit = e.deps[0];
        diag.blocked.push_back(blockedOn(id, culprit, true));
    }
    // Then a sample of transitively blocked waiters.
    for (uint64_t id = 0; id < events.size() &&
                          diag.blocked.size() < kMaxReported;
         ++id) {
        if (done[id] || pending[id] == 0)
            continue;
        const DynEvent &e = events[id];
        uint64_t culprit = kNoEvent;
        for (uint64_t d : e.deps)
            if (!done[d]) {
                culprit = d;
                break;
            }
        if (culprit == kNoEvent)
            continue; // Starved: already reported above.
        diag.blocked.push_back(blockedOn(id, culprit, false));
    }

    // Wait chain: from the latest blocked event down to the root cause.
    // The DDG is a DAG (deps always reference earlier events), so the
    // walk terminates at a starved event — deadlock here is always
    // starvation, never a circular wait.
    uint64_t cur = kNoEvent;
    for (uint64_t id = events.size(); id-- > 0;) {
        if (!done[id] && pending[id] > 0) {
            cur = id;
            break;
        }
    }
    while (cur != kNoEvent) {
        if (std::find(diag.waitChain.begin(), diag.waitChain.end(),
                      cur) != diag.waitChain.end()) {
            diag.waitChainIsCycle = true;
            break;
        }
        diag.waitChain.push_back(cur);
        uint64_t next = kNoEvent;
        for (uint64_t d : events[cur].deps)
            if (!done[d]) {
                next = d;
                break;
            }
        cur = next;
    }
    return diag;
}

std::string
HangDiagnosis::render() const
{
    std::ostringstream os;
    if (budgetExceeded)
        os << "watchdog: cycle budget exceeded (budget " << budget
           << "): " << scheduled << " of " << total
           << " events scheduled\n";
    else
        os << "watchdog: deadlock: ready queue drained with " << scheduled
           << " of " << total << " events scheduled\n";
    for (const auto &b : blocked) {
        os << "  " << (b.tokenLost ? "starved" : "blocked") << ": task '"
           << b.task << "' node '" << b.node << "' (event " << b.event
           << ")";
        if (b.waitingOn != kNoEvent) {
            os << " waiting on " << b.kind << " edge from task '"
               << b.depTask << "' node '" << b.depNode << "' (event "
               << b.waitingOn << ")";
            if (b.tokenLost)
                os << " -- producer finished but the token never "
                      "arrived";
        }
        os << "\n";
    }
    if (!waitChain.empty()) {
        os << (waitChainIsCycle ? "  wait-for cycle: " : "  wait chain: ");
        for (size_t i = 0; i < waitChain.size(); ++i) {
            if (i)
                os << " -> ";
            os << "e" << waitChain[i];
        }
        os << "\n";
    }
    return os.str();
}

// -------------------------------------------------------------- campaign

namespace
{

/** Deterministic enumeration of injectable sites in the golden run. */
struct SiteCatalog
{
    /** Any event with at least one input edge (TokenDrop). */
    std::vector<uint64_t> edgeEvents;
    /** Non-synthetic events with edges (TokenDup/StuckValid need a
     *  tile). */
    std::vector<uint64_t> nodeEdgeEvents;
    /** Value-producing events (DataFlip). */
    std::vector<uint64_t> valueEvents;
    /** (entry event, edge ordinal of its dispatch dep) (LostSpawn). */
    std::vector<std::pair<uint64_t, unsigned>> spawnEdges;
    /** Sync events with edges (LostSync). */
    std::vector<uint64_t> syncEvents;
    uint64_t memBase = 0;
    uint64_t memWords = 0;
    /** DRAM misses in the golden run (DramTimeout ordinals). */
    uint64_t dramMisses = 0;
};

SiteCatalog
buildCatalog(const Ddg &ddg, const ir::MemoryImage &mem,
             const StatSet &golden_stats)
{
    SiteCatalog sites;
    const auto &events = ddg.events();
    for (uint64_t id = 0; id < events.size(); ++id) {
        const DynEvent &e = events[id];
        if (e.deps.empty())
            continue;
        sites.edgeEvents.push_back(id);
        if (e.node)
            sites.nodeEdgeEvents.push_back(id);
        if (e.node) {
            switch (e.node->kind()) {
              case uir::NodeKind::Compute:
              case uir::NodeKind::Fused:
              case uir::NodeKind::Load:
                sites.valueEvents.push_back(id);
                break;
              case uir::NodeKind::SyncNode:
                sites.syncEvents.push_back(id);
                break;
              default:
                break;
            }
        }
        if (e.isEntry) {
            for (unsigned k = 0; k < e.deps.size(); ++k) {
                const DynEvent &p = events[e.deps[k]];
                if (p.node &&
                    p.node->kind() == uir::NodeKind::ChildCall) {
                    sites.spawnEdges.emplace_back(id, k);
                    break;
                }
            }
        }
    }
    sites.memBase = ir::kHeapBase;
    sites.memWords = (mem.sizeBytes() - ir::kHeapBase) / 4;
    sites.dramMisses = golden_stats.get("cache.misses");
    return sites;
}

bool
resolvePlan(const FaultSpec &spec, const SiteCatalog &sites,
            const Ddg &ddg, SplitMix64 &rng, FaultPlan &plan,
            std::string &error)
{
    const auto &events = ddg.events();
    FaultKind kind = spec.kind;
    if (kind == FaultKind::Mix) {
        std::vector<FaultKind> avail;
        if (!sites.edgeEvents.empty())
            avail.push_back(FaultKind::TokenDrop);
        if (!sites.nodeEdgeEvents.empty()) {
            avail.push_back(FaultKind::TokenDup);
            avail.push_back(FaultKind::StuckValid);
        }
        if (!sites.valueEvents.empty())
            avail.push_back(FaultKind::DataFlip);
        if (sites.memWords)
            avail.push_back(FaultKind::MemFlip);
        if (sites.dramMisses)
            avail.push_back(FaultKind::DramTimeout);
        if (!sites.spawnEdges.empty())
            avail.push_back(FaultKind::LostSpawn);
        if (!sites.syncEvents.empty())
            avail.push_back(FaultKind::LostSync);
        if (avail.empty()) {
            error = "design exposes no injectable sites";
            return false;
        }
        kind = avail[rng.below(avail.size())];
    }

    plan = FaultPlan{};
    plan.kind = kind;
    auto pickEvent = [&](const std::vector<uint64_t> &pool,
                         const char *what) {
        if (spec.site != FaultSpec::kAutoSite) {
            if (spec.site >= events.size()) {
                error = fmt("site %llu out of range (%zu events)",
                            static_cast<unsigned long long>(spec.site),
                            events.size());
                return false;
            }
            plan.event = spec.site;
            return true;
        }
        if (pool.empty()) {
            error = std::string("design has no ") + what + " sites";
            return false;
        }
        plan.event = pool[rng.below(pool.size())];
        return true;
    };
    auto pickEdge = [&]() {
        const auto &deps = events[plan.event].deps;
        if (deps.empty()) {
            error = "target event has no input edges";
            return false;
        }
        plan.edge = spec.edge != FaultSpec::kAuto
                        ? spec.edge
                        : static_cast<unsigned>(rng.below(deps.size()));
        if (plan.edge >= deps.size()) {
            error = fmt("edge %u out of range (%zu edges)", plan.edge,
                        deps.size());
            return false;
        }
        plan.producer = deps[plan.edge];
        return true;
    };

    switch (kind) {
      case FaultKind::TokenDrop:
        return pickEvent(sites.edgeEvents, "handshake-edge") &&
               pickEdge();
      case FaultKind::TokenDup:
      case FaultKind::StuckValid:
        return pickEvent(sites.nodeEdgeEvents, "handshake-edge") &&
               pickEdge();
      case FaultKind::DataFlip:
        if (!pickEvent(sites.valueEvents, "datapath-value"))
            return false;
        plan.bit = spec.bit != FaultSpec::kAuto
                       ? spec.bit
                       : static_cast<unsigned>(rng.below(256));
        return true;
      case FaultKind::MemFlip: {
        if (!sites.memWords) {
            error = "memory image has no data words";
            return false;
        }
        uint64_t word = spec.site != FaultSpec::kAutoSite
                            ? spec.site
                            : rng.below(sites.memWords);
        if (word >= sites.memWords) {
            error = fmt("word %llu out of range (%llu words)",
                        static_cast<unsigned long long>(word),
                        static_cast<unsigned long long>(sites.memWords));
            return false;
        }
        plan.addr = sites.memBase + word * 4;
        plan.bit = spec.bit != FaultSpec::kAuto
                       ? spec.bit % 32
                       : static_cast<unsigned>(rng.below(32));
        return true;
      }
      case FaultKind::DramTimeout:
        if (!sites.dramMisses) {
            error = "design has no DRAM misses to time out";
            return false;
        }
        plan.missOrdinal = spec.site != FaultSpec::kAutoSite
                               ? spec.site
                               : rng.below(sites.dramMisses);
        plan.attempts = spec.attempts != FaultSpec::kAuto
                            ? spec.attempts
                            : static_cast<unsigned>(1 + rng.below(6));
        return true;
      case FaultKind::LostSpawn: {
        if (spec.site != FaultSpec::kAutoSite)
            return pickEvent({}, "spawn-dispatch") && pickEdge();
        if (sites.spawnEdges.empty()) {
            error = "design has no spawn edges (no child tasks)";
            return false;
        }
        auto [ev, k] = sites.spawnEdges[rng.below(
            sites.spawnEdges.size())];
        plan.event = ev;
        plan.edge = k;
        plan.producer = events[ev].deps[k];
        return true;
      }
      case FaultKind::LostSync: {
        if (!pickEvent(sites.syncEvents, "sync"))
            return false;
        const auto &deps = events[plan.event].deps;
        if (deps.empty()) {
            error = "target sync has no input edges";
            return false;
        }
        if (spec.edge != FaultSpec::kAuto) {
            plan.edge = spec.edge;
        } else {
            // Prefer completion-token edges: those are the spawn
            // completions the sync exists to collect.
            std::vector<unsigned> cands;
            for (unsigned k = 0; k < deps.size(); ++k)
                if (events[deps[k]].isCompletion)
                    cands.push_back(k);
            plan.edge = cands.empty()
                            ? static_cast<unsigned>(
                                  rng.below(deps.size()))
                            : cands[rng.below(cands.size())];
        }
        if (plan.edge >= deps.size()) {
            error = fmt("edge %u out of range (%zu edges)", plan.edge,
                        deps.size());
            return false;
        }
        plan.producer = deps[plan.edge];
        return true;
      }
      case FaultKind::Mix:
      case FaultKind::kCount:
        break;
    }
    error = "unresolvable fault kind";
    return false;
}

bool
sameValue(const RuntimeValue &a, const RuntimeValue &b)
{
    using Kind = RuntimeValue::Kind;
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Kind::Int:
        return a.i == b.i;
      case Kind::Float:
        return std::memcmp(&a.f, &b.f, sizeof a.f) == 0;
      case Kind::Ptr:
        return a.ptr == b.ptr;
      case Kind::Tensor:
        if (!a.tensor || !b.tensor)
            return a.tensor == b.tensor;
        if (a.tensor->size() != b.tensor->size())
            return false;
        return std::memcmp(a.tensor->data(), b.tensor->data(),
                           a.tensor->size() * sizeof(float)) == 0;
    }
    return false;
}

/** Byte-exact compare, ignoring [skip_addr, skip_addr + skip_len). */
bool
sameMemory(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b,
           uint64_t skip_addr, unsigned skip_len)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == b[i])
            continue;
        if (i >= skip_addr && i < skip_addr + skip_len)
            continue;
        return false;
    }
    return true;
}

} // namespace

std::string
CampaignResult::toJson(const std::string &label,
                       const std::string &spec_text, unsigned runs,
                       uint64_t seed) const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "muir.resilience.campaign.v1");
    w.field("workload", label);
    w.field("spec", spec_text);
    w.field("runs", static_cast<uint64_t>(runs));
    w.field("seed", seed);
    w.beginObject("golden");
    w.field("cycles", goldenCycles);
    w.field("firings", goldenFirings);
    w.end();
    w.beginObject("watchdog");
    w.field("max_cycles", maxCycles);
    w.end();
    w.beginObject("histogram");
    for (size_t o = 0; o < kNumOutcomes; ++o)
        w.field(outcomeName(static_cast<Outcome>(o)), histogram[o]);
    w.end();
    w.beginArray("by_kind");
    for (size_t k = 0; k < static_cast<size_t>(FaultKind::kCount); ++k) {
        uint64_t total = 0;
        for (uint64_t n : byKind[k])
            total += n;
        if (!total)
            continue;
        w.beginObject();
        w.field("kind", faultKindName(static_cast<FaultKind>(k)));
        for (size_t o = 0; o < kNumOutcomes; ++o)
            w.field(outcomeName(static_cast<Outcome>(o)), byKind[k][o]);
        w.end();
    }
    w.end();
    w.beginArray("injections");
    for (size_t i = 0; i < records.size(); ++i) {
        const InjectionRecord &r = records[i];
        w.beginObject();
        w.field("run", static_cast<uint64_t>(i));
        w.field("kind", faultKindName(r.plan.kind));
        if (r.plan.event != kNoEvent) {
            w.field("event", r.plan.event);
            w.field("edge", static_cast<uint64_t>(r.plan.edge));
        }
        if (r.plan.kind == FaultKind::MemFlip)
            w.field("addr", r.plan.addr);
        if (r.plan.kind == FaultKind::DataFlip ||
            r.plan.kind == FaultKind::MemFlip)
            w.field("bit", static_cast<uint64_t>(r.plan.bit));
        if (r.plan.kind == FaultKind::DramTimeout) {
            w.field("miss", r.plan.missOrdinal);
            w.field("attempts", static_cast<uint64_t>(r.plan.attempts));
        }
        w.field("outcome", outcomeName(r.outcome));
        w.field("cycles", r.cycles);
        if (!r.detail.empty())
            w.field("detail", r.detail);
        w.end();
    }
    w.end();
    w.end();
    os << "\n";
    return os.str();
}

CampaignResult
runCampaign(const uir::Accelerator &accel, const ir::Module &module,
            const std::function<void(ir::MemoryImage &)> &bind,
            const CampaignSpec &spec,
            const std::vector<ir::RuntimeValue> &args)
{
    CampaignResult out;

    // ---- Fault-free golden run, watchdog armed: a lint-clean graph
    // must never hang without a fault (cross-validation of μlint's
    // static D-checks). ----
    ir::MemoryImage golden_mem(module);
    if (bind)
        bind(golden_mem);
    UirExecutor exec(accel, golden_mem, /*record_ddg=*/true);
    std::vector<RuntimeValue> golden_outs = exec.run(args);
    FaultHarness golden_harness;
    golden_harness.watchdog.enabled = true;
    golden_harness.watchdog.maxCycles = spec.maxCycles;
    RunContext golden_ctx;
    golden_ctx.fault = &golden_harness;
    TimingResult golden = scheduleDdg(accel, exec.ddg(), golden_ctx);
    if (golden_harness.verdict.hang.tripped()) {
        out.error = "golden (fault-free) run tripped the watchdog:\n" +
                    golden_harness.verdict.hang.render();
        return out;
    }
    out.goldenCycles = golden.cycles;
    out.goldenFirings = exec.firings();
    out.maxCycles =
        spec.maxCycles ? spec.maxCycles : golden.cycles * 8 + 4096;
    uint64_t max_firings = exec.firings() * 8 + 65536;
    SiteCatalog sites = buildCatalog(exec.ddg(), golden_mem,
                                     golden.stats);

    const std::string spec_text = renderFaultSpec(spec.fault);

    // Resolve every run's plan serially up front. Resolution is cheap
    // (a few rng draws over the catalog) and keeping it out of the
    // pool means the fan-out below touches only per-run state: runs
    // behind a failed resolution never simulate, exactly as when the
    // loop was serial, so output is identical at any job count.
    std::vector<FaultPlan> plans;
    unsigned resolved = spec.runs;
    for (unsigned i = 0; i < spec.runs; ++i) {
        // Per-run deterministic stream: (seed, i) fully decides the
        // site, so re-running a campaign reproduces every injection.
        SplitMix64 rng(spec.seed * 0x9E3779B97F4A7C15ull +
                       uint64_t(i) * 2654435761ull + 1);
        FaultPlan plan;
        std::string site_error;
        if (!resolvePlan(spec.fault, sites, exec.ddg(), rng, plan,
                         site_error)) {
            out.error =
                "cannot inject '" + spec_text + "': " + site_error;
            resolved = i;
            break;
        }
        plans.push_back(plan);
    }

    // Fan the injected runs across the pool. Everything shared here —
    // accel, module, golden outputs/memory, the plans — is read-only;
    // each run owns its MemoryImage, executor, and record slot, which
    // is the whole re-entrancy contract of sim/run_context.hh.
    std::vector<InjectionRecord> records(resolved);
    parallelFor(resolved, spec.jobs, [&](size_t i) {
        const FaultPlan &plan = plans[i];
        ir::MemoryImage mem(module);
        if (bind)
            bind(mem);
        if (plan.kind == FaultKind::MemFlip) {
            int64_t word = mem.loadInt(plan.addr, 4);
            mem.storeInt(plan.addr, 4,
                         word ^ (int64_t(1) << plan.bit));
        }

        SimOptions sopts;
        sopts.fault = &plan;
        sopts.watchdog = true;
        sopts.maxCycles = out.maxCycles;
        sopts.maxFirings = max_firings;
        SimResult r = simulate(accel, mem, args, sopts);

        InjectionRecord &rec = records[i];
        rec.plan = plan;
        rec.cycles = r.cycles;
        if (r.aborted) {
            rec.outcome = r.abortOutcome;
            rec.detail = r.abortDetail;
        } else if (r.verdict.hang.tripped()) {
            rec.outcome = Outcome::Hang;
            rec.detail = r.verdict.hang.render();
        } else if (r.verdict.detected) {
            rec.outcome = Outcome::Detected;
            rec.detail = r.verdict.detector;
        } else {
            bool outs_ok = r.outputs.size() == golden_outs.size();
            for (size_t k = 0; outs_ok && k < golden_outs.size(); ++k)
                outs_ok = sameValue(r.outputs[k], golden_outs[k]);
            // The injected word itself is excluded for MemFlip: only
            // propagation beyond the flipped cell is corruption.
            unsigned skip = plan.kind == FaultKind::MemFlip ? 4 : 0;
            bool mem_ok = sameMemory(golden_mem.bytes(), mem.bytes(),
                                     plan.addr, skip);
            if (outs_ok && mem_ok) {
                rec.outcome = Outcome::Masked;
            } else {
                rec.outcome = Outcome::SDC;
                rec.detail = outs_ok
                                 ? "final memory differs from golden"
                                 : "live-out values differ from golden";
            }
        }
    });

    // Aggregate in index order — histograms are sums, but keeping the
    // record order canonical keeps the JSON canonical.
    out.records = std::move(records);
    for (const InjectionRecord &rec : out.records) {
        ++out.histogram[static_cast<size_t>(rec.outcome)];
        ++out.byKind[static_cast<size_t>(rec.plan.kind)]
                    [static_cast<size_t>(rec.outcome)];
    }
    if (resolved < spec.runs)
        return out;
    out.ok = true;
    return out;
}

} // namespace muir::sim
