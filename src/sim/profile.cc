#include "sim/profile.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "sim/timeline.hh"

#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace muir::sim
{

const char *
stallClassName(StallClass c)
{
    switch (c) {
      case StallClass::Operand: return "operand";
      case StallClass::QueueFull: return "queue_full";
      case StallClass::TileII: return "tile_ii";
      case StallClass::Junction: return "junction";
      case StallClass::Bank: return "bank";
      case StallClass::CacheMiss: return "cache_miss";
      case StallClass::Dram: return "dram";
      default: return "?";
    }
}

uint64_t
StallBreakdown::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : cycles)
        sum += c;
    return sum;
}

void
StallBreakdown::add(const StallBreakdown &other)
{
    for (size_t i = 0; i < kNumStallClasses; ++i)
        cycles[i] += other.cycles[i];
}

StallClass
StallBreakdown::dominant() const
{
    size_t best = 0;
    for (size_t i = 1; i < kNumStallClasses; ++i)
        if (cycles[i] > cycles[best])
            best = i;
    return static_cast<StallClass>(best);
}

namespace
{

/** The per-event stall vector in raw (overlap-blind) form. */
StallBreakdown
rawStalls(const EventCost &c)
{
    StallBreakdown sb;
    sb[StallClass::Operand] = c.operandWait;
    sb[StallClass::QueueFull] = c.queueWait;
    sb[StallClass::TileII] = c.iiWait;
    sb[StallClass::Junction] = c.junctionWait;
    sb[StallClass::Bank] = c.bankWait;
    sb[StallClass::CacheMiss] = c.missPenalty;
    sb[StallClass::Dram] = c.dramWait;
    return sb;
}

/** Total busy time of a union of (possibly overlapping) intervals. */
uint64_t
unionLength(std::vector<std::pair<uint64_t, uint64_t>> &intervals)
{
    std::sort(intervals.begin(), intervals.end());
    uint64_t busy = 0, lo = 0, hi = 0;
    bool open = false;
    for (const auto &[s, f] : intervals) {
        if (!open || s > hi) {
            if (open)
                busy += hi - lo;
            lo = s;
            hi = f;
            open = true;
        } else {
            hi = std::max(hi, f);
        }
    }
    if (open)
        busy += hi - lo;
    return busy;
}

} // namespace

ProfileResult
buildProfile(const uir::Accelerator &accel, const Ddg &ddg,
             const ProfileCollector &collector, uint64_t cycles)
{
    ProfileResult r;
    r.cycles = cycles;
    const auto &events = ddg.events();
    const auto &costs = collector.events;
    muir_assert(costs.size() == events.size(),
                "profile: %zu cost records for %zu events", costs.size(),
                events.size());

    auto taskProf = [&r](const uir::Task *t) -> TaskProfile & {
        TaskProfile &tp = r.tasks[t->name()];
        tp.task = t;
        return tp;
    };

    // --- Raw roll-up, tile service intervals, edge slack. ---
    std::map<std::pair<const uir::Task *, uint32_t>,
             std::vector<std::pair<uint64_t, uint64_t>>>
        tileIntervals;
    for (uint64_t id = 0; id < events.size(); ++id) {
        const DynEvent &e = events[id];
        const EventCost &c = costs[id];
        for (uint64_t d : e.deps) {
            uint64_t slack = c.ready - costs[d].finish;
            unsigned bucket =
                slack == 0 ? 0u
                           : static_cast<unsigned>(std::bit_width(slack));
            ++r.slackHistogram[bucket];
        }
        if (e.isCompletion)
            continue;
        const uir::Task *task = e.node->parent();
        TaskProfile &tp = taskProf(task);
        ++tp.events;
        StallBreakdown sb = rawStalls(c);
        tp.raw.add(sb);
        r.raw.add(sb);
        if (c.finish > c.start)
            tileIntervals[{task, c.tile}].push_back({c.start, c.finish});
    }
    for (auto &[key, intervals] : tileIntervals)
        taskProf(key.first).tileBusy[key.second] =
            unionLength(intervals);

    // --- Queue occupancy: invocations in flight over time. ---
    std::vector<uint64_t> completionFinish(ddg.invocations().size(), 0);
    for (uint64_t id = 0; id < events.size(); ++id)
        if (events[id].isCompletion)
            completionFinish[events[id].invocation] = costs[id].finish;
    std::map<const uir::Task *,
             std::vector<std::pair<uint64_t, int>>>
        occupancyDeltas;
    for (uint32_t i = 0; i < ddg.invocations().size(); ++i) {
        const Invocation &inv = ddg.invocations()[i];
        TaskProfile &tp = taskProf(inv.task);
        ++tp.invocations;
        if (inv.entryEvent == kNoEvent)
            continue;
        uint64_t enter = costs[inv.entryEvent].ready;
        uint64_t leave = std::max(completionFinish[i], enter);
        auto &deltas = occupancyDeltas[inv.task];
        deltas.emplace_back(enter, +1);
        deltas.emplace_back(leave, -1);
    }
    for (auto &[task, deltas] : occupancyDeltas) {
        std::sort(deltas.begin(), deltas.end());
        TaskProfile &tp = taskProf(task);
        uint64_t prev = 0;
        int64_t depth = 0;
        for (const auto &[time, delta] : deltas) {
            if (time > prev && depth > 0)
                tp.queueDepthCycles[static_cast<uint64_t>(depth)] +=
                    time - prev;
            depth += delta;
            prev = time;
        }
    }

    // --- Structure utilization. ---
    for (const auto &[s, use] : collector.structUse) {
        StructProfile sp;
        sp.structure = s;
        sp.accesses = use.accesses;
        sp.conflicts = use.conflicts;
        sp.busyBeats = use.busyBeats;
        uint64_t capacity = cycles * std::max(1u, s->banks()) *
                            std::max(1u, s->portsPerBank());
        sp.utilization =
            capacity ? double(use.busyBeats) / double(capacity) : 0.0;
        r.structures[s->name()] = sp;
    }

    // --- Critical-path walk. ---
    // From the last-finishing event, follow the dependency that set
    // each ready time. Each visited event accounts for [ready, finish]
    // exactly once (its predecessor finishes at ready), so the walk
    // partitions [0, cycles] into execute + stall segments.
    if (!events.empty()) {
        uint64_t cur = 0;
        for (uint64_t id = 1; id < events.size(); ++id)
            if (costs[id].finish > costs[cur].finish)
                cur = id;
        std::map<const uir::Node *, CritPathEntry> perNode;
        while (cur != kNoEvent) {
            const DynEvent &e = events[cur];
            const EventCost &c = costs[cur];
            uint64_t next = c.critDep;
            if (!e.isCompletion) {
                TaskProfile &tp = taskProf(e.node->parent());
                CritPathEntry &pe = perNode[e.node];
                pe.node = e.node;
                ++pe.events;
                uint64_t execute =
                    (c.finish - c.start) - c.missPenalty - c.dramWait;
                pe.executeCycles += execute;
                tp.criticalExecute += execute;
                r.criticalExecute += execute;
                auto put = [&](StallClass cls, uint64_t n) {
                    if (!n)
                        return;
                    pe.stalls[cls] += n;
                    tp.critical[cls] += n;
                    r.critical[cls] += n;
                };
                put(StallClass::TileII, c.iiWait);
                put(StallClass::Junction, c.junctionWait);
                put(StallClass::Bank, c.bankWait);
                put(StallClass::CacheMiss, c.missPenalty);
                put(StallClass::Dram, c.dramWait);
                uint64_t covered = c.finish - c.ready;
                if (c.queueWait > 0 && e.queueDep != kNoEvent &&
                    c.critDep == e.queueDep) {
                    // The queue slot, not the operands, gated dispatch:
                    // charge the gap to QueueFull and resume the walk
                    // at the operand chain.
                    put(StallClass::QueueFull, c.queueWait);
                    covered += c.queueWait;
                    next = c.dataCritDep;
                }
                pe.cycles += covered;
                r.criticalLength += covered;
            }
            cur = next;
        }
        r.criticalPath.reserve(perNode.size());
        for (auto &[node, pe] : perNode) {
            pe.dominantClass = pe.stalls.total() ? pe.stalls.dominant()
                                                 : StallClass::Operand;
            r.criticalPath.push_back(pe);
        }
        std::sort(r.criticalPath.begin(), r.criticalPath.end(),
                  [](const CritPathEntry &a, const CritPathEntry &b) {
                      if (a.cycles != b.cycles)
                          return a.cycles > b.cycles;
                      if (a.node->parent()->id() !=
                          b.node->parent()->id())
                          return a.node->parent()->id() <
                                 b.node->parent()->id();
                      return a.node->id() < b.node->id();
                  });
    }
    (void)accel;
    return r;
}

std::string
renderProfileText(const ProfileResult &profile, size_t top_n)
{
    std::ostringstream os;
    double total = std::max<uint64_t>(1, profile.cycles);

    AsciiTable stalls({"cycle class", "critical", "%", "raw"});
    stalls.addRow({"execute",
                   fmt("%llu",
                       (unsigned long long)profile.criticalExecute),
                   fmt("%.1f", 100.0 * profile.criticalExecute / total),
                   "-"});
    for (size_t i = 0; i < kNumStallClasses; ++i) {
        auto cls = static_cast<StallClass>(i);
        stalls.addRow(
            {stallClassName(cls),
             fmt("%llu", (unsigned long long)profile.critical[cls]),
             fmt("%.1f", 100.0 * profile.critical[cls] / total),
             fmt("%llu", (unsigned long long)profile.raw[cls])});
    }
    stalls.addRow({"total",
                   fmt("%llu",
                       (unsigned long long)profile.criticalLength),
                   fmt("%.1f", 100.0 * profile.criticalLength / total),
                   fmt("%llu", (unsigned long long)profile.raw.total())});
    os << stalls.render(
        fmt("µprof: cycle attribution (%llu cycles; critical = "
            "non-overlapped, raw = contention volume)",
            (unsigned long long)profile.cycles));

    AsciiTable path({"#", "node", "task", "cycles", "%", "execute",
                     "dominant stall"});
    size_t rank = 0;
    for (const CritPathEntry &pe : profile.criticalPath) {
        if (rank >= top_n)
            break;
        ++rank;
        path.addRow(
            {fmt("%zu", rank), pe.node->name(),
             pe.node->parent()->name(),
             fmt("%llu", (unsigned long long)pe.cycles),
             fmt("%.1f", 100.0 * pe.cycles / total),
             fmt("%llu", (unsigned long long)pe.executeCycles),
             pe.stalls.total() ? stallClassName(pe.dominantClass)
                               : "none"});
    }
    os << path.render("µprof: critical path, ranked by contribution");
    return os.str();
}

namespace
{

void
writeStalls(JsonWriter &w, const std::string &key,
            const StallBreakdown &sb)
{
    w.beginObject(key);
    for (size_t i = 0; i < kNumStallClasses; ++i)
        w.field(stallClassName(static_cast<StallClass>(i)),
                sb.cycles[i]);
    w.end();
}

} // namespace

std::string
profileJson(const ProfileResult &profile)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("cycles", profile.cycles);
    w.field("critical_execute", profile.criticalExecute);
    w.field("critical_length", profile.criticalLength);
    writeStalls(w, "critical_stalls", profile.critical);
    writeStalls(w, "raw_stalls", profile.raw);

    w.beginArray("critical_path");
    for (const CritPathEntry &pe : profile.criticalPath) {
        w.beginObject();
        w.field("node", pe.node->name());
        w.field("task", pe.node->parent()->name());
        w.field("cycles", pe.cycles);
        w.field("execute", pe.executeCycles);
        w.field("events", pe.events);
        w.field("dominant",
                pe.stalls.total() ? stallClassName(pe.dominantClass)
                                  : "none");
        writeStalls(w, "stalls", pe.stalls);
        w.end();
    }
    w.end();

    w.beginObject("tasks");
    for (const auto &[name, tp] : profile.tasks) {
        w.beginObject(name);
        w.field("events", tp.events);
        w.field("invocations", tp.invocations);
        w.field("critical_execute", tp.criticalExecute);
        writeStalls(w, "critical_stalls", tp.critical);
        writeStalls(w, "raw_stalls", tp.raw);
        w.beginObject("tile_busy_cycles");
        for (const auto &[tile, busy] : tp.tileBusy)
            w.field(fmt("%u", tile), busy);
        w.end();
        w.beginObject("queue_depth_cycles");
        for (const auto &[depth, cyc] : tp.queueDepthCycles)
            w.field(fmt("%llu", (unsigned long long)depth), cyc);
        w.end();
        w.end();
    }
    w.end();

    w.beginObject("structures");
    for (const auto &[name, sp] : profile.structures) {
        w.beginObject(name);
        w.field("kind", uir::structureKindName(sp.structure->kind()));
        w.field("banks", sp.structure->banks());
        w.field("ports_per_bank", sp.structure->portsPerBank());
        w.field("accesses", sp.accesses);
        w.field("conflicts", sp.conflicts);
        w.field("busy_beats", sp.busyBeats);
        w.field("utilization", sp.utilization);
        w.end();
    }
    w.end();

    w.beginObject("edge_slack_histogram");
    for (const auto &[bucket, count] : profile.slackHistogram)
        w.field(fmt("%u", bucket), count);
    w.end();

    w.end();
    return os.str();
}

std::string
chromeTraceJson(const std::vector<TimingTraceRow> &rows,
                const ProfileCollector &collector,
                const Timeline *timeline)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.beginArray("traceEvents");

    // Process-name metadata track.
    w.beginObject();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.beginObject("args");
    w.field("name", "muir-sim");
    w.end();
    w.end();

    // Assign track ids by (task name, tile) — never by pointer or by
    // first appearance — and emit every thread-name record before any
    // slice, so the byte stream is identical run to run.
    std::map<std::pair<std::string, uint32_t>, int> tids;
    for (const TimingTraceRow &row : rows) {
        if (!row.node)
            continue; // synthetic completion marker
        const EventCost &c = collector.events.at(row.event);
        tids.emplace(
            std::make_pair(row.node->parent()->name(), c.tile), 0);
    }
    int next_tid = 0;
    for (auto &[key, tid] : tids) {
        tid = ++next_tid;
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", 1);
        w.field("tid", tid);
        w.beginObject("args");
        w.field("name",
                fmt("%s/tile%u", key.first.c_str(), key.second));
        w.end();
        w.end();
    }

    for (const TimingTraceRow &row : rows) {
        if (!row.node)
            continue; // synthetic completion marker
        const EventCost &c = collector.events.at(row.event);
        const uir::Task *task = row.node->parent();
        int tid = tids.at({task->name(), c.tile});
        w.beginObject();
        w.field("name", row.node->name());
        w.field("cat", uir::nodeKindName(row.node->kind()));
        w.field("ph", "X");
        w.field("pid", 1);
        w.field("tid", tid);
        w.field("ts", row.start);
        w.field("dur", row.finish - row.start);
        w.beginObject("args");
        w.field("event", row.event);
        w.field("invocation",
                static_cast<uint64_t>(row.invocation));
        w.field("ready", row.ready);
        auto stall = [&](StallClass cls, uint64_t n) {
            if (n)
                w.field(stallClassName(cls), n);
        };
        stall(StallClass::Operand, c.operandWait);
        stall(StallClass::QueueFull, c.queueWait);
        stall(StallClass::TileII, c.iiWait);
        stall(StallClass::Junction, c.junctionWait);
        stall(StallClass::Bank, c.bankWait);
        stall(StallClass::CacheMiss, c.missPenalty);
        stall(StallClass::Dram, c.dramWait);
        w.end();
        w.end();
    }
    if (timeline)
        writeTimelineCounterTracks(w, *timeline);
    w.end();
    w.end();
    return os.str();
}

} // namespace muir::sim
