/**
 * @file
 * The per-run bundle threaded through the timing replay — the single
 * carrier for everything one simulation run observes or feeds back,
 * replacing the accreted (trace, profile, fault) pointer tail that
 * scheduleDdg used to take.
 *
 * ## Concurrency contract
 *
 * The simulation stack is re-entrant: any number of runs may execute
 * concurrently on different threads provided each run has its own
 * RunContext, its own MemoryImage/UirExecutor, and its own result
 * objects. The shared inputs — `uir::Accelerator`, `ir::Module`, and
 * a recorded `Ddg` — are read-only during replay (scheduleDdg and
 * UirExecutor take them by const reference and the const API
 * genuinely is const: no hidden caches, no lazy mutation), so sharing
 * one design across N concurrent runs needs no locking.
 *
 * What is NOT shared-safe, by design:
 *  - a RunContext (and the hooks it points to) belongs to exactly one
 *    run — ProfileCollector, FaultHarness, and the trace vector are
 *    written without synchronization;
 *  - anything a run mutates (MemoryImage, StatSet, TimingResult) is
 *    per-run state.
 *
 * Global knobs (`setVerbose`, MUIR_JOBS) must be settled before
 * fan-out; they are process-wide configuration, not per-run state.
 */
#pragma once

#include <vector>

namespace muir::sim
{

struct ProfileCollector; // sim/profile.hh
struct FaultHarness;     // sim/fault.hh
struct TimingTraceRow;   // sim/timing.hh

/**
 * Optional per-run observer hooks. All default to null = off; every
 * hook is strictly observational — with all hooks null the scheduler
 * takes bit-identical paths and produces bit-identical cycles, stats,
 * and memory (a committed test invariant on all baselines).
 */
struct SimHooks
{
    /** Filled with one row per scheduled event, in processing order
     *  (by start time), for timeline inspection / CSV export. */
    std::vector<TimingTraceRow> *trace = nullptr;
    /** μprof collector (sim/profile.hh): records one EventCost per
     *  event — stall attribution, critical deps, structure activity.
     *  Never changes the schedule. */
    ProfileCollector *profile = nullptr;
};

/**
 * Everything one timing replay reads and writes beyond the shared,
 * immutable (Accelerator, Ddg) pair: observer hooks plus the μfit
 * harness. The harness is the one hook that may legitimately change
 * the schedule — it carries the fault plan to enact and the watchdog
 * budget in, and the verdict out. A default-constructed RunContext
 * is a plain, bit-identical baseline run.
 *
 * One RunContext per concurrent run; contexts are cheap to construct
 * and hold no state of their own.
 */
struct RunContext
{
    SimHooks hooks;
    /** μfit harness (sim/fault.hh): plan + watchdog in, verdict out.
     *  Null keeps the schedule bit-identical (the same observational
     *  guard contract as the hooks). */
    FaultHarness *fault = nullptr;
};

} // namespace muir::sim
