/**
 * @file
 * μfit — deterministic fault injection, dynamic hang watchdog, and
 * resilience classification for μIR accelerators.
 *
 * The fault models target the paper's own abstraction levels:
 *
 *  - handshake faults on a ready/valid edge of the dynamic dependence
 *    graph: a token that never arrives (TokenDrop), a token delivered
 *    twice (TokenDup), and a valid line stuck high so the consumer
 *    fires without waiting (StuckValid);
 *  - datapath faults: a single bit flip in the value a function unit
 *    produces (DataFlip);
 *  - memory faults: a bit flip in a scratchpad/cache word (MemFlip)
 *    and a DRAM port timeout serviced with retry + exponential
 *    backoff (DramTimeout);
 *  - control faults: a lost spawn dispatch (LostSpawn) and a lost
 *    sync completion token (LostSync).
 *
 * Every injected run is compared against the fault-free golden run of
 * the same (accelerator, inputs) pair and classified into exactly one
 * Outcome: Masked (no visible difference), SDC (outputs silently
 * differ), Detected (a watchdog/checker caught it), or Hang (the
 * dynamic deadlock watchdog tripped).
 *
 * Injection sites are resolved deterministically from (seed, run
 * index) over the golden run's site catalog, so a campaign with the
 * same (workload, spec, seed) always yields the same histogram.
 *
 * The whole layer follows the μprof guard pattern: with no FaultPlan
 * and the watchdog off, the executor and scheduler take bit-identical
 * paths and produce bit-identical cycles, stats, and outputs.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/interp.hh"
#include "sim/ddg.hh"
#include "sim/timing.hh"
#include "support/rng.hh"

namespace muir::uir
{
class Accelerator;
}

namespace muir::sim
{

// ------------------------------------------------------------- taxonomy

/** What gets broken (docs/resilience.md catalog). */
enum class FaultKind : unsigned
{
    /** Handshake: a token on one dependence edge never arrives. */
    TokenDrop,
    /** Handshake: one edge delivers a duplicate token. */
    TokenDup,
    /** Handshake: valid stuck high — consumer won't wait for the edge. */
    StuckValid,
    /** Datapath: single bit flip in a node's produced value. */
    DataFlip,
    /** Memory: single bit flip in a scratchpad/cache word. */
    MemFlip,
    /** Memory: DRAM port timeout with modeled retry/backoff. */
    DramTimeout,
    /** Control: a spawn dispatch token is lost. */
    LostSpawn,
    /** Control: a completion token a sync waits on is lost. */
    LostSync,
    /** Campaign-only: pick a random injectable kind per run. */
    Mix,
    kCount,
};

/** @return short machine name, e.g. "tokendrop". */
const char *faultKindName(FaultKind kind);

/** DRAM port retries before the timeout checker raises an error. */
inline constexpr unsigned kMaxDramRetries = 4;

/**
 * A user-facing fault request: the kind plus optional pinned site
 * parameters. Anything left at its kAuto value is resolved from the
 * campaign seed over the golden run's site catalog.
 */
struct FaultSpec
{
    static constexpr uint64_t kAutoSite = ~uint64_t(0);
    static constexpr unsigned kAuto = ~0u;

    FaultKind kind = FaultKind::Mix;
    /** Target site: event id (edge/value faults), word index (MemFlip),
     *  or miss ordinal (DramTimeout). */
    uint64_t site = kAutoSite;
    /** Bit to flip (DataFlip/MemFlip). */
    unsigned bit = kAuto;
    /** Input-edge ordinal within the target event (handshake faults). */
    unsigned edge = kAuto;
    /** Failing attempts before the port recovers (DramTimeout). */
    unsigned attempts = kAuto;
};

/**
 * Parse "kind[@site][:bit=N][:edge=N][:attempts=N]" (kinds as in
 * faultKindName, plus "mix"). @return false with *error set on junk.
 */
bool parseFaultSpec(const std::string &text, FaultSpec &out,
                    std::string *error);

/** Render a spec back to its textual form (campaign JSON/reports). */
std::string renderFaultSpec(const FaultSpec &spec);

/**
 * A fully resolved injection: concrete event/edge/address/bit targets
 * derived from a FaultSpec plus the golden run. Field meaning depends
 * on kind; unused fields stay at their defaults.
 */
struct FaultPlan
{
    FaultKind kind = FaultKind::DataFlip;
    /** Target (consumer) event id. */
    uint64_t event = kNoEvent;
    /** Producer event of the faulted edge (handshake/control kinds). */
    uint64_t producer = kNoEvent;
    /** Input-edge ordinal of (producer -> event), for reporting. */
    unsigned edge = 0;
    /** MemFlip: byte address of the corrupted word. */
    uint64_t addr = 0;
    /** DataFlip/MemFlip: bit selector (see flipBit). */
    unsigned bit = 0;
    /** DramTimeout: which DRAM miss (in golden order) times out. */
    uint64_t missOrdinal = 0;
    /** DramTimeout: failing attempts before the port answers. */
    unsigned attempts = 0;
};

// -------------------------------------------------------- classification

/** Resilience outcome of one injected run (mutually exclusive). */
enum class Outcome : unsigned
{
    /** No architecturally visible difference from the golden run. */
    Masked,
    /** Silent data corruption: outputs/memory differ, nothing fired. */
    SDC,
    /** A watchdog or checker caught the fault. */
    Detected,
    /** The dynamic deadlock/livelock watchdog tripped. */
    Hang,
    kCount,
};

inline constexpr size_t kNumOutcomes =
    static_cast<size_t>(Outcome::kCount);

/** @return short machine name, e.g. "sdc". */
const char *outcomeName(Outcome outcome);

// -------------------------------------------------------------- watchdog

/** Dynamic hang-watchdog configuration for the timing scheduler. */
struct WatchdogOptions
{
    bool enabled = false;
    /** Cycle budget; 0 = unbounded (no-progress detection stays on). */
    uint64_t maxCycles = 0;
};

/**
 * What the watchdog saw when it tripped: which tasks were blocked, on
 * which dependence edge, whether the root cause is a starved event (a
 * token that finished upstream but was never delivered), and the
 * wait-for cycle when one exists.
 */
struct HangDiagnosis
{
    /** Queue drained with events still unscheduled (deadlock). */
    bool hung = false;
    /** Cycle budget exceeded (livelock / runaway latency). */
    bool budgetExceeded = false;
    uint64_t scheduled = 0;
    uint64_t total = 0;
    uint64_t budget = 0;

    /** One blocked wait: event -> the dependence it never received. */
    struct BlockedEdge
    {
        uint64_t event = kNoEvent;
        std::string task;
        std::string node;
        uint64_t waitingOn = kNoEvent;
        std::string depTask;
        std::string depNode;
        /** The dep finished but its token was never delivered. */
        bool tokenLost = false;
        /** Edge class: data / memory / spawn / queue. */
        std::string kind;
    };
    /** Starved (root-cause) edges first, then a sample of the rest. */
    std::vector<BlockedEdge> blocked;
    /** Wait-for cycle (event ids) when one exists; else the chain from
     *  a blocked event to the root cause. */
    std::vector<uint64_t> waitChain;
    bool waitChainIsCycle = false;

    bool tripped() const { return hung || budgetExceeded; }

    /** Multi-line human-readable diagnosis. */
    std::string render() const;
};

/** Detector + watchdog state produced by one scheduled run. */
struct FaultVerdict
{
    /** A checker fired (token conservation, causality, DRAM timeout,
     *  bus error, trap). */
    bool detected = false;
    /** Which checker, e.g. "token-conservation". */
    std::string detector;
    HangDiagnosis hang;
};

/**
 * Bundle threaded through scheduleDdg when μfit is active: the plan
 * to inject (null = watchdog only) plus watchdog config in, verdict
 * out. Passing no harness at all keeps the scheduler bit-identical.
 */
struct FaultHarness
{
    const FaultPlan *plan = nullptr;
    WatchdogOptions watchdog;
    FaultVerdict verdict;
};

/**
 * Build the hang diagnosis from scheduler state: which events are
 * still pending, which completed, and who waits on whom. When the
 * scheduler dropped a token (injection), the (producer, consumer)
 * pair pins the root-cause edge exactly.
 */
HangDiagnosis diagnoseHang(const Ddg &ddg,
                           const std::vector<uint32_t> &pending,
                           const std::vector<char> &done,
                           uint64_t processed,
                           uint64_t dropped_producer = kNoEvent,
                           uint64_t dropped_consumer = kNoEvent);

// ----------------------------------------------- functional-layer hooks

/**
 * Thrown by the functional executor when a fault makes forward
 * progress impossible or a hardware checker would trap: runaway
 * execution (Hang), bus error / divide-by-zero (Detected).
 * Only ever raised when a FaultInjector is installed.
 */
struct FaultAbort
{
    Outcome outcome = Outcome::Detected;
    std::string detail;
};

/** Flip one bit of a runtime value (kind-preserving). */
void flipBit(ir::RuntimeValue &value, unsigned bit);

/**
 * The executor-side injector: corrupts the value of the planned
 * event (DataFlip) and models the hardware checkers that exist on
 * any real accelerator bus — address range, divide traps — plus a
 * firing budget that converts runaway control flow into a Hang.
 * Every hook is a no-op for plans that don't concern it.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, uint64_t max_firings)
        : plan_(plan), maxFirings_(max_firings)
    {
    }

    const FaultPlan &plan() const { return plan_; }

    /** DataFlip: corrupt slot 0 of the event's produced value. */
    void
    corruptValue(uint64_t event_id, std::vector<ir::RuntimeValue> &slots)
    {
        if (plan_.kind != FaultKind::DataFlip || fired_ ||
            event_id != plan_.event || slots.empty())
            return;
        fired_ = true;
        flipBit(slots[0], plan_.bit);
    }

    /** Bus guard: out-of-range accesses become a Detected abort. */
    void checkAccess(uint64_t addr, unsigned bytes,
                     const ir::MemoryImage &mem) const;

    /** Divide trap: zero divisors become a Detected abort. */
    void checkDivisor(int64_t divisor) const;

    /** Firing budget: runaway execution becomes a Hang abort. */
    void checkFirings(uint64_t firings) const;

    /** Recursion guard below the executor's own hard limit. */
    void checkDepth(unsigned depth) const;

    /** Corrupted loop step (would never terminate): Detected abort. */
    void checkLoopStep(int64_t step, const std::string &task) const;

  private:
    FaultPlan plan_;
    uint64_t maxFirings_ = 0;
    bool fired_ = false;
};

// -------------------------------------------------------------- campaign

// Site resolution draws from muir::SplitMix64 (support/rng.hh) — one
// generator per run, seeded from (campaign seed, run index), which is
// what makes the fan-out below safe to parallelize.

/** One campaign: N seeded injections of a spec against one design. */
struct CampaignSpec
{
    FaultSpec fault;
    unsigned runs = 100;
    uint64_t seed = 1;
    /** Watchdog cycle budget; 0 = auto (8x golden + 4096). */
    uint64_t maxCycles = 0;
    /**
     * Concurrent simulations to fan the runs across; 0 (default) =
     * resolveJobs (MUIR_JOBS, else hardware concurrency). Per-run
     * seeding makes the histogram/records/JSON byte-identical at any
     * job count.
     */
    unsigned jobs = 0;
};

/** One injected run's record. */
struct InjectionRecord
{
    FaultPlan plan;
    Outcome outcome = Outcome::Masked;
    uint64_t cycles = 0;
    /** Detector name, hang diagnosis, or divergence note. */
    std::string detail;
};

/** Aggregated campaign results. */
struct CampaignResult
{
    bool ok = false;
    std::string error;
    uint64_t goldenCycles = 0;
    uint64_t goldenFirings = 0;
    uint64_t maxCycles = 0;
    /** Indexed by Outcome. */
    std::array<uint64_t, kNumOutcomes> histogram{};
    /** histogram split per fault kind (kind-major). */
    std::array<std::array<uint64_t, kNumOutcomes>,
               static_cast<size_t>(FaultKind::kCount)>
        byKind{};
    std::vector<InjectionRecord> records;

    /** Campaign JSON (docs/resilience.md schema). @p label names the
     *  design (workload) and @p spec_text echoes the request. */
    std::string toJson(const std::string &label,
                       const std::string &spec_text, unsigned runs,
                       uint64_t seed) const;
};

/**
 * Run a fault campaign: one fault-free golden run (watchdog armed —
 * a lint-clean graph must never hang fault-free), then spec.runs
 * seeded injections, each classified against the golden outputs and
 * final memory. @p bind writes the workload inputs into a fresh
 * memory image before every run; it runs concurrently from up to
 * spec.jobs threads and must therefore be re-entrant (the standard
 * workload binders only read shared input data, which qualifies).
 *
 * The injected runs fan out across a worker pool (support/parallel.hh)
 * but every plan is resolved serially up front from (seed, index), so
 * the result — histogram, per-run records, JSON — is byte-identical
 * at any job count, including jobs == 1.
 */
CampaignResult
runCampaign(const uir::Accelerator &accel, const ir::Module &module,
            const std::function<void(ir::MemoryImage &)> &bind,
            const CampaignSpec &spec,
            const std::vector<ir::RuntimeValue> &args = {});

} // namespace muir::sim
