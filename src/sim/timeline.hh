/**
 * @file
 * μscope — time-resolved telemetry over the timing replay. μprof
 * (sim/profile.hh) answers "where did the cycles go" for the whole
 * run; μscope answers "and *when*": the run is cut into fixed-width
 * windows (auto width ≈ cycles/256) and every window gets the raw
 * stall-class mix, per-structure port utilization, DRAM port
 * occupancy and bytes moved, cycle-weighted active execution tiles,
 * task-queue occupancy, and the issue rate.
 *
 * The timeline is derived entirely post-hoc from the μprof
 * ProfileCollector — the scheduler records a handful of extra fields
 * inside its existing `if (profiling)` guards and is otherwise
 * untouched, so the μprof observational contract carries over: with
 * the sampler off, cycles and stats are bit-identical.
 *
 * Exactness invariant (guarded by test on every baseline): each
 * event's stall span is split across the windows it overlaps, so the
 * per-window per-class sums equal μprof's aggregate raw totals
 * exactly — the timeline is a partition of the profile, not a
 * resampling of it.
 *
 * Exports: ASCII sparkline/heatmap tables (support/table), a
 * `muir.timeline.v1` JSON section for `--report-json`, and Perfetto
 * counter tracks appended to the `--emit-trace-json` timeline.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/profile.hh"

namespace muir
{
class JsonWriter; // support/json.hh
}

namespace muir::sim
{

/** Auto window count: width is ceil(cycles / this). */
inline constexpr unsigned kDefaultTimelineWindows = 256;

/**
 * One structure's per-window port activity. Capacities are copied by
 * value so the Timeline stays valid after its accelerator is freed
 * (RunResult can outlive the design).
 */
struct TimelineStructLane
{
    unsigned banks = 1;
    unsigned portsPerBank = 1;
    /** Bank-port beats consumed per window. */
    std::vector<uint64_t> busyBeats;

    /** Port-cycles available per cycle (the utilization denominator). */
    double portCapacity() const
    {
        return double(banks < 1u ? 1u : banks) *
               double(portsPerBank < 1u ? 1u : portsPerBank);
    }
};

/** The windowed run telemetry. All lanes have numWindows() entries. */
struct Timeline
{
    uint64_t cycles = 0;
    uint64_t windowWidth = 1;

    /** Raw (overlap-blind) stall cycles per window, split by span. */
    std::vector<StallBreakdown> stalls;
    /** Events that began execution in each window. */
    std::vector<uint64_t> eventStarts;
    /** Busy execution-tile cycles per window (summed over tiles). */
    std::vector<uint64_t> tileBusyCycles;
    /** Cycles the DRAM port spent transferring lines. */
    std::vector<uint64_t> dramBusyCycles;
    /** Bytes DRAM moved per window (refills split proportionally). */
    std::vector<double> dramBytes;
    /** Keyed by structure name (deterministic iteration). */
    std::map<std::string, TimelineStructLane> structures;
    /** Per task: invocations-in-flight · cycles, per window. */
    std::map<std::string, std::vector<uint64_t>> taskOccupancyCycles;

    size_t numWindows() const { return stalls.size(); }
    uint64_t windowStart(size_t w) const { return w * windowWidth; }

    /** Sum of a stall class across all windows (invariant probe). */
    uint64_t classTotal(StallClass c) const;
};

/**
 * Derive the windowed timeline from one profiled run.
 * @param windows Window-count target; 0 = kDefaultTimelineWindows.
 */
Timeline buildTimeline(const uir::Accelerator &accel, const Ddg &ddg,
                       const ProfileCollector &collector,
                       uint64_t cycles, unsigned windows = 0);

/**
 * Human-readable report (muirc --timeline): a sparkline table of the
 * utilization/occupancy lanes with avg/peak/p95 summary columns, and
 * a stall-class heatmap over time.
 */
std::string renderTimelineText(const Timeline &tl);

/** Serialize as one `muir.timeline.v1` JSON object. */
std::string timelineJson(const Timeline &tl);

/**
 * Append Perfetto counter tracks ("ph":"C", one sample per window)
 * to an open trace-event array: the stall mix, DRAM bandwidth,
 * active tiles, issue rate, per-structure utilization, and per-task
 * queue occupancy, alongside the slice tracks chromeTraceJson emits.
 */
void writeTimelineCounterTracks(JsonWriter &w, const Timeline &tl);

} // namespace muir::sim
