/**
 * @file
 * Functional execution of a μIR accelerator graph.
 *
 * Executes the graph with serial-elision semantics, computing real
 * values against a MemoryImage (validating that μopt transformations
 * preserve behaviour) while recording the dynamic dependence graph the
 * timing scheduler replays: data edges, loop-carried edges, spawn and
 * sync edges, and per-word memory RAW/WAW/WAR edges.
 */
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/interp.hh"
#include "sim/ddg.hh"

namespace muir::sim
{

class FaultInjector; // sim/fault.hh

/** Executes one accelerator over one memory image. */
class UirExecutor
{
  public:
    /**
     * @param accel The (possibly transformed) accelerator graph.
     * @param mem   The memory image holding global arrays; mutated.
     * @param record_ddg Disable to run function-only (faster).
     */
    UirExecutor(const uir::Accelerator &accel, ir::MemoryImage &mem,
                bool record_ddg = true);

    /** Run the root task to completion; returns its live-out values. */
    std::vector<ir::RuntimeValue>
    run(const std::vector<ir::RuntimeValue> &args = {});

    const Ddg &ddg() const { return ddg_; }

    /** Move the recorded DDG out (for retention past the executor's
     *  lifetime, e.g. behind a shared CompiledDdg). The executor's
     *  record is empty afterwards. */
    Ddg takeDdg() { return std::move(ddg_); }

    /** Dynamic node firings executed. */
    uint64_t firings() const { return firings_; }

    /**
     * Attach a μfit injector (sim/fault.hh). With nullptr (default)
     * execution is bit-identical to today; with an injector attached,
     * datapath values may be corrupted and runaway/trap guards become
     * recoverable FaultAbort exceptions instead of process aborts.
     */
    void setInjector(FaultInjector *inj) { inj_ = inj; }

  private:
    struct InvocationResult
    {
        std::vector<ir::RuntimeValue> liveOutValues;
        std::vector<uint64_t> liveOutEvents;
        /** Synthetic completion event (covers the whole subtree). */
        uint64_t completionEvent = kNoEvent;
        /** Spawn completions awaiting a sync in the parent. */
        std::vector<uint64_t> outstanding;
    };

    /** Per-invocation evaluation state. */
    struct Ctx
    {
        const uir::Task *task = nullptr;
        uint32_t inv = 0;
        /** Values per node id per output port. */
        std::vector<std::vector<ir::RuntimeValue>> vals;
        /** Event per node id (kNoEvent until fired). */
        std::vector<uint64_t> evs;
        /** Events a completion must wait for (stores, children, ...). */
        std::vector<uint64_t> tail;
        std::vector<uint64_t> outstanding;
        /**
         * Per-iteration carried-value latch events (one per carried
         * value of the loop control). Kept separate from the control
         * event so consumers of the induction variable do not
         * serialize behind the carried-value recurrence — only the
         * true acc -> acc chain does (§3.5 loop-carried buffering).
         */
        std::vector<uint64_t> lcCarried;
    };

    InvocationResult invoke(const uir::Task &task,
                            const std::vector<ir::RuntimeValue> &args,
                            uint64_t dispatch_event);

    void evalNode(Ctx &ctx, const uir::Node &node);
    void evalBody(Ctx &ctx, const std::vector<uir::Node *> &order);

    ir::RuntimeValue valueOf(Ctx &ctx, const uir::Node::PortRef &ref);
    uint64_t eventOf(Ctx &ctx, const uir::Node::PortRef &ref);
    bool guardOn(Ctx &ctx, const uir::Node &node);
    uint64_t emit(Ctx &ctx, const uir::Node *node,
                  std::vector<uint64_t> deps);

    /** Cached topological orders per task. */
    const std::vector<uir::Node *> &orderOf(const uir::Task &task);

    static ir::RuntimeValue zeroOf(const ir::Type &type);

    const uir::Accelerator &accel_;
    ir::MemoryImage &mem_;
    FaultInjector *inj_ = nullptr;
    bool record_;
    Ddg ddg_;
    uint64_t firings_ = 0;
    unsigned depth_ = 0;
    std::unordered_map<const uir::Task *, std::vector<uir::Node *>>
        orders_;
    /** Completion events per task, indexed by invocation seq — used to
     *  add task-queue backpressure edges on dispatch. */
    std::unordered_map<const uir::Task *, std::vector<uint64_t>>
        completions_;
    /** Final LoopControl event per loop-task invocation seq — used to
     *  add per-tile loop-control occupancy edges. */
    std::unordered_map<const uir::Task *, std::vector<uint64_t>>
        loopExits_;
    /** Per-word (4-byte) memory dependence state. */
    std::unordered_map<uint64_t, uint64_t> lastStore_;
    std::unordered_map<uint64_t, std::vector<uint64_t>> readersSince_;
};

} // namespace muir::sim
