#include "sim/compiled_ddg.hh"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "uir/delay_model.hh"

namespace muir::sim
{

namespace
{

CompiledDdg
compileImpl(const uir::Accelerator &accel, const Ddg &ddg)
{
    CompiledDdg cd;
    cd.design = &accel;
    cd.source = &ddg;
    const auto &events = ddg.events();
    const auto &invocations = ddg.invocations();
    muir_assert(events.size() < kNoId32,
                "compileDdg: %zu events exceed the 32-bit id space",
                events.size());
    const uint32_t n = static_cast<uint32_t>(events.size());
    cd.numEvents = n;
    cd.numInvocations = static_cast<uint32_t>(invocations.size());

    // ---- design tables: dense task / node / structure ids ----------
    std::unordered_map<const uir::Task *, uint16_t> taskIds;
    std::vector<uint32_t> taskJunctionBase;
    std::vector<uint16_t> taskReadPorts, taskWritePorts;
    uint32_t port_cursor = 0;
    for (const auto &task : accel.tasks()) {
        muir_assert(cd.tasks.size() < kNoId16,
                    "compileDdg: task id space exhausted");
        taskIds.emplace(task.get(),
                        static_cast<uint16_t>(cd.tasks.size()));
        CompiledTask ct;
        ct.task = task.get();
        ct.statPrefix = "task." + task->name() + ".";
        ct.tiles = std::max(1u, task->numTiles());
        unsigned r = std::max(1u, task->junctionReadPorts());
        unsigned w = std::max(1u, task->junctionWritePorts());
        taskJunctionBase.push_back(port_cursor);
        taskReadPorts.push_back(static_cast<uint16_t>(r));
        taskWritePorts.push_back(static_cast<uint16_t>(w));
        port_cursor += ct.tiles * (r + w);
        cd.tasks.push_back(std::move(ct));
    }

    std::unordered_map<const uir::Node *, uint32_t> nodeIds;
    std::vector<uint32_t> nodeSlotBase;
    std::vector<uint32_t> nodeLat, nodeIi;
    std::vector<uint16_t> nodeTask;
    uint32_t slot_cursor = 0;
    for (const auto &task : accel.tasks()) {
        uint16_t tid = taskIds.at(task.get());
        unsigned tiles = cd.tasks[tid].tiles;
        for (const auto &node : task->nodes()) {
            nodeIds.emplace(node.get(),
                            static_cast<uint32_t>(cd.nodes.size()));
            cd.nodes.push_back(node.get());
            nodeSlotBase.push_back(slot_cursor);
            nodeLat.push_back(uir::nodeLatency(*node));
            nodeIi.push_back(uir::nodeInitiationInterval(*node));
            nodeTask.push_back(tid);
            slot_cursor += tiles;
        }
    }
    cd.initSlots = slot_cursor;

    const uir::Structure *dram = nullptr;
    for (const auto &s : accel.structures())
        if (s->kind() == uir::StructureKind::Dram)
            dram = s.get();
    std::unordered_map<const uir::Structure *, uint16_t> structIds;
    for (const auto &s : accel.structures()) {
        muir_assert(cd.structs.size() < kNoId16,
                    "compileDdg: structure id space exhausted");
        structIds.emplace(s.get(),
                          static_cast<uint16_t>(cd.structs.size()));
        CompiledStruct cs;
        cs.s = s.get();
        cs.isCache = s->kind() == uir::StructureKind::Cache;
        cs.lineBytes = s->lineBytes();
        cs.latency = s->latency();
        cs.missLatency = s->missLatency();
        cs.portsPerBank = s->portsPerBank();
        cs.sizeKb = s->sizeKb();
        cs.ways = s->ways();
        double bpc = dram ? dram->bytesPerCycle() : s->bytesPerCycle();
        cs.missXfer = static_cast<uint64_t>(s->lineBytes() /
                                            std::max(1.0, bpc));
        cs.portBase = port_cursor;
        port_cursor += s->banks() * s->portsPerBank();
        cd.structs.push_back(cs);
    }
    cd.portSlots = port_cursor;

    // Memory-space resolution memo (structureForSpace walks the
    // structure list; spaces repeat across thousands of events).
    std::unordered_map<unsigned, uint16_t> spaceIds;
    auto structForSpace = [&](unsigned space) -> uint16_t {
        auto it = spaceIds.find(space);
        if (it == spaceIds.end())
            it = spaceIds
                     .emplace(space, structIds.at(
                                         accel.structureForSpace(space)))
                     .first;
        return it->second;
    };

    // ---- per-event packed attributes + deps CSR --------------------
    cd.depStart.assign(n + 1, 0);
    uint64_t total_deps = 0;
    for (const auto &e : events)
        total_deps += e.deps.size();
    muir_assert(total_deps < kNoId32,
                "compileDdg: %llu deps exceed the 32-bit CSR space",
                static_cast<unsigned long long>(total_deps));
    cd.deps.resize(total_deps);
    cd.addr.resize(n);
    cd.nodeOf.resize(n);
    cd.invocation.resize(n);
    cd.queueDep.resize(n);
    cd.initSlot.resize(n);
    cd.latency.resize(n);
    cd.initInterval.resize(n);
    cd.tile.resize(n);
    cd.junctionPortBase.resize(n);
    cd.junctionPorts.resize(n);
    cd.bankPortBase.resize(n);
    cd.beats.resize(n);
    cd.words.resize(n);
    cd.taskOf.resize(n);
    cd.structOf.resize(n);
    cd.flags.resize(n);

    uint32_t dep_cursor = 0;
    for (uint32_t id = 0; id < n; ++id) {
        const DynEvent &e = events[id];
        cd.depStart[id] = dep_cursor;
        for (uint64_t d : e.deps) {
            muir_assert(d < id, "DDG dep not earlier than event");
            cd.deps[dep_cursor++] = static_cast<uint32_t>(d);
        }
        cd.addr[id] = e.addr;
        cd.words[id] = e.words;
        cd.invocation[id] = e.invocation;
        cd.queueDep[id] = e.queueDep == kNoEvent
                              ? kNoId32
                              : static_cast<uint32_t>(e.queueDep);
        uint8_t fl = 0;
        if (e.isLoad)
            fl |= kEvLoad;
        if (e.isStore)
            fl |= kEvStore;
        if (e.isEntry)
            fl |= kEvEntry;
        if (e.isCompletion)
            fl |= kEvCompletion;

        if (e.isCompletion) {
            cd.nodeOf[id] = kNoId32;
            cd.initSlot[id] = kNoId32;
            cd.taskOf[id] = kNoId16;
            cd.structOf[id] = kNoId16;
            cd.flags[id] = fl;
            continue;
        }

        uint32_t nid = nodeIds.at(e.node);
        uint16_t tid = nodeTask[nid];
        unsigned tiles = cd.tasks[tid].tiles;
        uint32_t tile = static_cast<uint32_t>(
            invocations[e.invocation].seqInTask % tiles);
        cd.nodeOf[id] = nid;
        cd.taskOf[id] = tid;
        cd.tile[id] = tile;
        cd.initSlot[id] = nodeSlotBase[nid] + tile;
        cd.latency[id] = nodeLat[nid];
        cd.initInterval[id] = nodeIi[nid];

        if (e.isLoad || e.isStore) {
            unsigned r = taskReadPorts[tid];
            unsigned w = taskWritePorts[tid];
            uint32_t jbase =
                taskJunctionBase[tid] + tile * (r + w);
            cd.junctionPortBase[id] = e.isLoad ? jbase : jbase + r;
            cd.junctionPorts[id] =
                e.isLoad ? taskReadPorts[tid] : taskWritePorts[tid];

            uint16_t sid = structForSpace(e.node->memSpace());
            const CompiledStruct &cs = cd.structs[sid];
            const uir::Structure *s = cs.s;
            unsigned wide = std::max(1u, s->wideWords());
            unsigned beats =
                (std::max<unsigned>(1, e.words) + wide - 1) / wide;
            unsigned bank_idx;
            if (cs.isCache)
                bank_idx = static_cast<unsigned>(
                    (e.addr / cs.lineBytes) % s->banks());
            else
                bank_idx = static_cast<unsigned>(
                    (e.addr / 4 / wide) % s->banks());
            cd.structOf[id] = sid;
            cd.beats[id] = beats;
            cd.bankPortBase[id] =
                cs.portBase + bank_idx * cs.portsPerBank;
            if (cs.isCache && e.words > 1 &&
                (e.addr / cs.lineBytes) !=
                    ((e.addr + e.words * 4 - 1) / cs.lineBytes))
                fl |= kEvStraddle;
        } else {
            cd.structOf[id] = kNoId16;
        }
        cd.flags[id] = fl;
    }
    cd.depStart[n] = dep_cursor;

    // ---- dependents CSR (consumer ids ascending per producer) ------
    cd.depdStart.assign(n + 1, 0);
    for (uint32_t k = 0; k < dep_cursor; ++k)
        ++cd.depdStart[cd.deps[k] + 1];
    for (uint32_t i = 1; i <= n; ++i)
        cd.depdStart[i] += cd.depdStart[i - 1];
    cd.dependents.resize(dep_cursor);
    {
        std::vector<uint32_t> cursor(cd.depdStart.begin(),
                                     cd.depdStart.end() - 1);
        for (uint32_t id = 0; id < n; ++id)
            for (uint32_t k = cd.depStart[id]; k < cd.depStart[id + 1];
                 ++k)
                cd.dependents[cursor[cd.deps[k]]++] = id;
    }
    return cd;
}

template <typename T>
size_t
vecBytes(const std::vector<T> &v)
{
    return v.capacity() * sizeof(T);
}

} // namespace

CompiledDdg
compileDdg(const uir::Accelerator &accel, const Ddg &ddg)
{
    // Self-metered like scheduleDdg: no sink installed means no clock
    // reads and zero registry traffic.
    metrics::Registry *meter = metrics::sink();
    if (!meter)
        return compileImpl(accel, ddg);
    auto t0 = std::chrono::steady_clock::now();
    CompiledDdg cd = compileImpl(accel, ddg);
    std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - t0;
    meter->timerAdd("sim.compile_ddg", wall.count());
    return cd;
}

CompiledDdg
compileDdg(const uir::Accelerator &accel,
           std::shared_ptr<const Ddg> ddg)
{
    muir_assert(ddg != nullptr, "compileDdg: null Ddg");
    CompiledDdg cd = compileDdg(accel, *ddg);
    cd.retained = std::move(ddg);
    return cd;
}

size_t
CompiledDdg::bytes() const
{
    size_t total = vecBytes(depStart) + vecBytes(deps) +
                   vecBytes(depdStart) + vecBytes(dependents) +
                   vecBytes(addr) + vecBytes(nodeOf) +
                   vecBytes(invocation) + vecBytes(queueDep) +
                   vecBytes(initSlot) + vecBytes(latency) +
                   vecBytes(initInterval) + vecBytes(tile) +
                   vecBytes(junctionPortBase) +
                   vecBytes(junctionPorts) + vecBytes(bankPortBase) +
                   vecBytes(beats) + vecBytes(words) +
                   vecBytes(taskOf) + vecBytes(structOf) +
                   vecBytes(flags) + vecBytes(structs) +
                   vecBytes(nodes);
    total += tasks.capacity() * sizeof(CompiledTask);
    for (const auto &t : tasks)
        total += t.statPrefix.capacity();
    return total;
}

size_t
ddgBytes(const Ddg &ddg)
{
    size_t total = ddg.events().capacity() * sizeof(DynEvent) +
                   ddg.invocations().capacity() * sizeof(Invocation);
    for (const auto &e : ddg.events())
        total += e.deps.capacity() * sizeof(uint64_t) +
                 e.memDeps.capacity() * sizeof(uint64_t);
    return total;
}

} // namespace muir::sim
