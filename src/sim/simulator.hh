/**
 * @file
 * Simulation façade: functional execution + cycle-level timing in one
 * call. This is the measurement harness standing in for the paper's
 * FPGA runs — cycle counts preserve μIR's execution model (§3.1), and
 * time = cycles / achieved clock from the cost model.
 */
#pragma once

#include <memory>

#include "sim/compiled_ddg.hh"
#include "sim/exec.hh"
#include "sim/fault.hh"
#include "sim/profile.hh"
#include "sim/timeline.hh"
#include "sim/timing.hh"

namespace muir::sim
{

/** What to collect beyond cycles/stats (all off by default). */
struct SimOptions
{
    /** Build a full μprof ProfileResult (and keep the collector). */
    bool profile = false;
    /** Keep the per-event timeline (needed for trace export). */
    bool trace = false;
    /** Build the μscope windowed timeline (implies a collector). */
    bool timeline = false;
    /** Timeline window-count target (0 = auto ≈ 256). */
    unsigned timelineWindows = 0;
    /** μfit fault plan to inject (nullptr = bit-identical baseline). */
    const FaultPlan *fault = nullptr;
    /** Arm the dynamic hang watchdog (cycle budget + drain detection). */
    bool watchdog = false;
    /** Watchdog cycle budget (0 = drain detection only). */
    uint64_t maxCycles = 0;
    /** Functional firing budget for runaway detection (0 = none). */
    uint64_t maxFirings = 0;
    /**
     * Replay this precompiled index instead of recording a fresh DDG
     * (sim/compiled_ddg.hh). Execution is deterministic, so replaying
     * the same (design, inputs) pair records an identical DDG every
     * time; handing the compiled one back skips both the recording
     * and the compile. The functional run still happens (outputs /
     * golden checks), just without the record. Must have been
     * compiled from this accelerator with the source retained;
     * incompatible with `fault` (an injected run changes the DDG).
     */
    const CompiledDdg *compiled = nullptr;
    /** Compile the recorded DDG and return it in SimResult::compiled
     *  for reuse by later runs. Ignored when `compiled` is set. */
    bool keepCompiled = false;
};

/** Combined functional + timing result. */
struct SimResult
{
    /** Live-out values of the root task. */
    std::vector<ir::RuntimeValue> outputs;
    /** Total execution cycles. */
    uint64_t cycles = 0;
    /** Dynamic node firings (functional activity, for power). */
    uint64_t firings = 0;
    /** Dynamic events + contention counters. */
    StatSet stats;
    /** μprof attribution (set when SimOptions::profile). */
    std::shared_ptr<ProfileResult> profile;
    /** Raw per-event costs (set when profile or timeline). */
    std::shared_ptr<ProfileCollector> profileData;
    /** μscope windowed telemetry (set when SimOptions::timeline). */
    std::shared_ptr<Timeline> timeline;
    /** Per-event timeline (set when SimOptions::trace). */
    std::vector<TimingTraceRow> trace;
    /** μfit verdict (watchdog diagnosis, detector hits). */
    FaultVerdict verdict;
    /** Functional execution aborted via a μfit guard (FaultAbort). */
    bool aborted = false;
    /** Pre-classified outcome of the abort (Detected or Hang). */
    Outcome abortOutcome = Outcome::Detected;
    /** Human-readable abort reason. */
    std::string abortDetail;
    /** The replay index (set when SimOptions::keepCompiled): pass as
     *  SimOptions::compiled to later runs of the same design+inputs.
     *  Shared and immutable — safe across concurrent replays. */
    std::shared_ptr<const CompiledDdg> compiled;
};

/**
 * Execute the accelerator on a memory image (mutated in place) and
 * schedule the resulting DDG.
 */
SimResult simulate(const uir::Accelerator &accel, ir::MemoryImage &mem,
                   const std::vector<ir::RuntimeValue> &args = {},
                   const SimOptions &options = {});

/** Functional-only run (no DDG, no timing) — for fast golden checks. */
std::vector<ir::RuntimeValue>
execFunctional(const uir::Accelerator &accel, ir::MemoryImage &mem,
               const std::vector<ir::RuntimeValue> &args = {});

} // namespace muir::sim
