/**
 * @file
 * Simulation façade: functional execution + cycle-level timing in one
 * call. This is the measurement harness standing in for the paper's
 * FPGA runs — cycle counts preserve μIR's execution model (§3.1), and
 * time = cycles / achieved clock from the cost model.
 */
#pragma once

#include "sim/exec.hh"
#include "sim/timing.hh"

namespace muir::sim
{

/** Combined functional + timing result. */
struct SimResult
{
    /** Live-out values of the root task. */
    std::vector<ir::RuntimeValue> outputs;
    /** Total execution cycles. */
    uint64_t cycles = 0;
    /** Dynamic node firings (functional activity, for power). */
    uint64_t firings = 0;
    /** Dynamic events + contention counters. */
    StatSet stats;
};

/**
 * Execute the accelerator on a memory image (mutated in place) and
 * schedule the resulting DDG.
 */
SimResult simulate(const uir::Accelerator &accel, ir::MemoryImage &mem,
                   const std::vector<ir::RuntimeValue> &args = {});

/** Functional-only run (no DDG, no timing) — for fast golden checks. */
std::vector<ir::RuntimeValue>
execFunctional(const uir::Accelerator &accel, ir::MemoryImage &mem,
               const std::vector<ir::RuntimeValue> &args = {});

} // namespace muir::sim
