/**
 * @file
 * Simulation façade: functional execution + cycle-level timing in one
 * call. This is the measurement harness standing in for the paper's
 * FPGA runs — cycle counts preserve μIR's execution model (§3.1), and
 * time = cycles / achieved clock from the cost model.
 */
#pragma once

#include <memory>

#include "sim/exec.hh"
#include "sim/profile.hh"
#include "sim/timing.hh"

namespace muir::sim
{

/** What to collect beyond cycles/stats (all off by default). */
struct SimOptions
{
    /** Build a full μprof ProfileResult (and keep the collector). */
    bool profile = false;
    /** Keep the per-event timeline (needed for trace export). */
    bool trace = false;
};

/** Combined functional + timing result. */
struct SimResult
{
    /** Live-out values of the root task. */
    std::vector<ir::RuntimeValue> outputs;
    /** Total execution cycles. */
    uint64_t cycles = 0;
    /** Dynamic node firings (functional activity, for power). */
    uint64_t firings = 0;
    /** Dynamic events + contention counters. */
    StatSet stats;
    /** μprof attribution (set when SimOptions::profile). */
    std::shared_ptr<ProfileResult> profile;
    /** Raw per-event costs (set when SimOptions::profile). */
    std::shared_ptr<ProfileCollector> profileData;
    /** Per-event timeline (set when SimOptions::trace). */
    std::vector<TimingTraceRow> trace;
};

/**
 * Execute the accelerator on a memory image (mutated in place) and
 * schedule the resulting DDG.
 */
SimResult simulate(const uir::Accelerator &accel, ir::MemoryImage &mem,
                   const std::vector<ir::RuntimeValue> &args = {},
                   const SimOptions &options = {});

/** Functional-only run (no DDG, no timing) — for fast golden checks. */
std::vector<ir::RuntimeValue>
execFunctional(const uir::Accelerator &accel, ir::MemoryImage &mem,
               const std::vector<ir::RuntimeValue> &args = {});

} // namespace muir::sim
