/**
 * @file
 * μprof — cycle attribution and critical-path analysis over the timing
 * replay (the observability layer the μopt loop steers by).
 *
 * The timing scheduler, when handed a ProfileCollector, records one
 * EventCost per DDG event: where the event's start was pushed back
 * (operand skew, full task queue, tile initiation interval, junction
 * port, bank port) and where its latency was inflated (cache miss,
 * DRAM bandwidth queue). buildProfile() then derives:
 *
 *  - raw stall roll-ups per class / task / structure (overlap-blind:
 *    concurrent stalls all count, so sums may exceed total cycles —
 *    use them for "how much contention exists");
 *  - a critical-path walk: starting from the last-finishing event,
 *    follow the dependency that determined each ready time. Every
 *    cycle in [0, total] is attributed to exactly one (node, class)
 *    segment, so per-class critical cycles are mutually exclusive and
 *    sum exactly to the total — use them for "what to fix next";
 *  - utilization/occupancy: per-tile busy cycles (interval union),
 *    per-task queue-depth distributions, per-structure port activity,
 *    and a dependence-edge slack histogram;
 *  - Chrome trace-event JSON of the event timeline (one track per
 *    task/tile), loadable in ui.perfetto.dev.
 *
 * Profiling is strictly observational: with a null collector the
 * scheduler does no extra work and produces bit-identical results.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/timing.hh"

namespace muir::sim
{

/** Why a cycle was lost. Classes are mutually exclusive per cycle. */
enum class StallClass : unsigned
{
    /** Waiting for the last operand after the first arrived. */
    Operand,
    /** Dispatch blocked: callee task queue at queueDepth·tiles. */
    QueueFull,
    /** Function unit busy: per-(node, tile) initiation interval. */
    TileII,
    /** Junction read/write port contention (§3.4). */
    Junction,
    /** Scratchpad/cache bank port conflict. */
    Bank,
    /** Cache miss latency. */
    CacheMiss,
    /** DRAM bandwidth queueing. */
    Dram,
    kCount,
};

inline constexpr size_t kNumStallClasses =
    static_cast<size_t>(StallClass::kCount);

/** @return short machine name, e.g. "queue_full". */
const char *stallClassName(StallClass c);

/** Cycles lost per stall class. */
struct StallBreakdown
{
    uint64_t cycles[kNumStallClasses] = {};

    uint64_t &operator[](StallClass c)
    {
        return cycles[static_cast<size_t>(c)];
    }
    uint64_t operator[](StallClass c) const
    {
        return cycles[static_cast<size_t>(c)];
    }

    uint64_t total() const;
    void add(const StallBreakdown &other);
    /** Class with the most cycles; Operand when all-zero. */
    StallClass dominant() const;
};

/** Per-event cost record, parallel to Ddg::events(). */
struct EventCost
{
    uint64_t ready = 0;
    uint64_t start = 0;
    uint64_t finish = 0;
    /** Start pushback: in-order initiation on the assigned tile. */
    uint64_t iiWait = 0;
    /** Start pushback: junction read/write port arbitration. */
    uint64_t junctionWait = 0;
    /** Start pushback: bank port arbitration. */
    uint64_t bankWait = 0;
    /** Latency inflation: cache miss service time. */
    uint64_t missPenalty = 0;
    /** Latency inflation: waiting in the DRAM bandwidth queue. */
    uint64_t dramWait = 0;
    /** Ready pushback: dispatch held by a full task queue. */
    uint64_t queueWait = 0;
    /** Operand skew: last-arriving minus first-arriving input. */
    uint64_t operandWait = 0;
    /** Dep whose finish time set ready (kNoEvent for sources). */
    uint64_t critDep = kNoEvent;
    /** Same, ignoring the queue-backpressure dep. */
    uint64_t dataCritDep = kNoEvent;
    /** Execution tile the event issued on. */
    uint32_t tile = 0;

    /**
     * @name Time-resolved memory activity (μscope)
     * Loads/stores additionally record where their structure/DRAM
     * occupancy landed on the clock, so the timeline sampler can bin
     * port beats and DRAM bytes per window without re-simulating.
     * @{
     */
    /** Structure the access hit (nullptr for pure compute events). */
    const uir::Structure *structure = nullptr;
    /** Bank-port beats the access occupied, starting at start. */
    uint32_t beats = 0;
    /** Cycle the DRAM line refill began (cache misses only). */
    uint64_t dramStart = 0;
    /** Cycles the refill occupied the DRAM port (0 = no refill). */
    uint64_t dramXfer = 0;
    /** Bytes the refill moved (the structure's line size). */
    uint32_t dramBytes = 0;
    /** @} */
};

/**
 * Raw per-run measurement buffer filled by scheduleDdg. Pass one to
 * scheduleDdg to turn profiling on; everything else derives from it.
 */
struct ProfileCollector
{
    std::vector<EventCost> events;

    /** Per-structure port activity. */
    struct StructUse
    {
        uint64_t accesses = 0;
        /** Accesses that found all ports of their bank busy. */
        uint64_t conflicts = 0;
        /** Port-cycles consumed (beats). */
        uint64_t busyBeats = 0;
    };
    std::map<const uir::Structure *, StructUse> structUse;
};

/** One node's contribution to the critical path. */
struct CritPathEntry
{
    const uir::Node *node = nullptr;
    /** Total cycles of the chain spent at this node. */
    uint64_t cycles = 0;
    /** Portion doing useful work (latency minus penalties). */
    uint64_t executeCycles = 0;
    /** Chain events at this node. */
    uint64_t events = 0;
    StallBreakdown stalls;
    /** Largest stall class (Operand when the node never stalled). */
    StallClass dominantClass = StallClass::Operand;
};

/** Per-task attribution and occupancy. */
struct TaskProfile
{
    const uir::Task *task = nullptr;
    uint64_t events = 0;
    uint64_t invocations = 0;
    /** Overlap-blind stall totals over every event of the task. */
    StallBreakdown raw;
    /** Non-overlapped stall cycles on the critical path. */
    StallBreakdown critical;
    /** Non-overlapped execute cycles on the critical path. */
    uint64_t criticalExecute = 0;
    /** Cycles spent with N invocations in flight (queue occupancy). */
    std::map<uint64_t, uint64_t> queueDepthCycles;
    /** Per-tile busy cycles (union of event service intervals). */
    std::map<uint32_t, uint64_t> tileBusy;
};

/** Per-structure utilization. */
struct StructProfile
{
    const uir::Structure *structure = nullptr;
    uint64_t accesses = 0;
    uint64_t conflicts = 0;
    uint64_t busyBeats = 0;
    /** busyBeats / (cycles · banks · portsPerBank). */
    double utilization = 0.0;
};

/** Everything μprof derives from one run. */
struct ProfileResult
{
    uint64_t cycles = 0;
    /** Overlap-blind whole-run stall totals. */
    StallBreakdown raw;
    /** Critical-path classification: sums to cycles with execute. */
    StallBreakdown critical;
    uint64_t criticalExecute = 0;
    /** Cycles the walk covered — equals cycles by construction. */
    uint64_t criticalLength = 0;
    /** Ranked (descending cycles) per-node critical contributions. */
    std::vector<CritPathEntry> criticalPath;
    /** Keyed by task name (deterministic iteration). */
    std::map<std::string, TaskProfile> tasks;
    /** Keyed by structure name. */
    std::map<std::string, StructProfile> structures;
    /**
     * Dependence-edge slack (ready − dep finish) distribution,
     * log2-bucketed: bucket 0 = slack 0 (critical edges), bucket k =
     * slack in [2^(k−1), 2^k).
     */
    std::map<unsigned, uint64_t> slackHistogram;
};

/** Derive the full profile from one collected run. */
ProfileResult buildProfile(const uir::Accelerator &accel, const Ddg &ddg,
                           const ProfileCollector &collector,
                           uint64_t cycles);

/**
 * Human-readable report: stall summary plus the top-N critical-path
 * nodes with their dominant stall class (muirc --critical-path).
 */
std::string renderProfileText(const ProfileResult &profile,
                              size_t top_n = 12);

/** Serialize the profile as one JSON object. */
std::string profileJson(const ProfileResult &profile);

struct Timeline; // sim/timeline.hh

/**
 * Chrome trace-event JSON ("traceEvents" array format): one complete
 * "X" event per scheduled node firing on a (task, tile) track, with
 * thread-name metadata. ts/dur are in cycles (load into
 * ui.perfetto.dev; 1 cycle displays as 1 µs). Output is byte-stable
 * across runs: tracks are assigned and emitted in (task-name, tile)
 * order, all metadata ahead of the slice events, so two traces of the
 * same design diff cleanly. With @p timeline set, the μscope counter
 * tracks (stall mix, DRAM bandwidth, utilization, occupancy) are
 * appended after the slices.
 */
std::string chromeTraceJson(const std::vector<TimingTraceRow> &rows,
                            const ProfileCollector &collector,
                            const Timeline *timeline = nullptr);

} // namespace muir::sim
