/**
 * @file
 * Cycle-level timing replay of a dynamic dependence graph under the
 * accelerator's structural constraints: per-node latency/II with
 * in-order initiation per execution tile, round-robin tile assignment,
 * bounded task queues (backpressure on dispatch), junction port
 * arbitration (§3.4), banked scratchpads, a real set-associative cache
 * with LRU tags simulated over actual addresses, and DRAM
 * latency/bandwidth behind the cache.
 */
#pragma once

#include "sim/ddg.hh"
#include "sim/run_context.hh"
#include "support/stats.hh"

namespace muir::sim
{

struct CompiledDdg; // sim/compiled_ddg.hh

/** Timing results and activity counters. */
struct TimingResult
{
    /** Total execution cycles (finish time of the last event). */
    uint64_t cycles = 0;
    /** Activity and contention counters (global and per task). */
    StatSet stats;
};

/** One scheduled event, for timeline dumps / waveform-style views. */
struct TimingTraceRow
{
    uint64_t event = 0;
    const uir::Node *node = nullptr; // nullptr = completion marker.
    uint32_t invocation = 0;
    uint64_t ready = 0;
    uint64_t start = 0;
    uint64_t finish = 0;
};

/**
 * Schedule every event of the DDG; returns total cycles + stats.
 *
 * Re-entrant and thread-safe under the RunContext contract
 * (sim/run_context.hh): @p accel and @p ddg are read-only here and
 * may be shared across any number of concurrent calls; @p ctx (and
 * every hook it points to) must be private to this call. All local
 * scheduling state — resource free-lists, cache tags, ready queue —
 * lives on this call's stack.
 *
 * A default RunContext is a plain run; see RunContext for the hook
 * semantics and the bit-identical observational guarantee.
 */
TimingResult scheduleDdg(const uir::Accelerator &accel, const Ddg &ddg,
                         RunContext &ctx);

/** Plain run: no hooks, no fault harness. */
inline TimingResult
scheduleDdg(const uir::Accelerator &accel, const Ddg &ddg)
{
    RunContext ctx;
    return scheduleDdg(accel, ddg, ctx);
}

/**
 * The scheduler core: replay a precompiled DDG (sim/compiled_ddg.hh).
 * The (accel, ddg) overloads above are thin wrappers that compile and
 * immediately replay; callers that replay the same record repeatedly
 * (µserve, the perf gate, campaigns) compile once and come here.
 *
 * @p compiled is read-only: one instance may be shared by any number
 * of concurrent calls (each with its own RunContext), the same
 * contract as the shared Accelerator.
 */
TimingResult scheduleDdg(const CompiledDdg &compiled, RunContext &ctx);

/** Plain compiled replay: no hooks, no fault harness. */
inline TimingResult
scheduleDdg(const CompiledDdg &compiled)
{
    RunContext ctx;
    return scheduleDdg(compiled, ctx);
}

} // namespace muir::sim
