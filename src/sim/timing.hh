/**
 * @file
 * Cycle-level timing replay of a dynamic dependence graph under the
 * accelerator's structural constraints: per-node latency/II with
 * in-order initiation per execution tile, round-robin tile assignment,
 * bounded task queues (backpressure on dispatch), junction port
 * arbitration (§3.4), banked scratchpads, a real set-associative cache
 * with LRU tags simulated over actual addresses, and DRAM
 * latency/bandwidth behind the cache.
 */
#pragma once

#include "sim/ddg.hh"
#include "support/stats.hh"

namespace muir::sim
{

struct ProfileCollector; // sim/profile.hh
struct FaultHarness;     // sim/fault.hh

/** Timing results and activity counters. */
struct TimingResult
{
    /** Total execution cycles (finish time of the last event). */
    uint64_t cycles = 0;
    /** Activity and contention counters (global and per task). */
    StatSet stats;
};

/** One scheduled event, for timeline dumps / waveform-style views. */
struct TimingTraceRow
{
    uint64_t event = 0;
    const uir::Node *node = nullptr; // nullptr = completion marker.
    uint32_t invocation = 0;
    uint64_t ready = 0;
    uint64_t start = 0;
    uint64_t finish = 0;
};

/**
 * Schedule every event of the DDG; returns total cycles + stats.
 * @param trace Optional: filled with one row per scheduled event, in
 *        processing order (by start time), for timeline inspection.
 * @param profile Optional μprof collector (sim/profile.hh): when set,
 *        the scheduler additionally records one EventCost per event
 *        (stall attribution, critical deps, structure activity).
 *        Profiling is observational only — it never changes the
 *        schedule, so cycles/stats are bit-identical either way.
 * @param fault Optional μfit harness (sim/fault.hh): carries the fault
 *        plan to enact on handshake/memory timing and the watchdog
 *        options; on a trip or a token-starvation drain the verdict is
 *        written back into the harness. With fault == nullptr the
 *        schedule is bit-identical to today (same observational-guard
 *        contract as μprof).
 */
TimingResult scheduleDdg(const uir::Accelerator &accel, const Ddg &ddg,
                         std::vector<TimingTraceRow> *trace = nullptr,
                         ProfileCollector *profile = nullptr,
                         FaultHarness *fault = nullptr);

} // namespace muir::sim
