#include "sim/conflict.hh"

#include <algorithm>
#include <map>
#include <set>

namespace muir::sim
{

namespace
{

/**
 * Is `from` reachable backward to `to` over non-memory dependence
 * edges? Every dep references an earlier id, so the search only
 * visits ids in (to, from], pruning anything below the target.
 */
bool
happensBefore(const std::vector<DynEvent> &events, uint64_t to,
              uint64_t from)
{
    std::vector<uint64_t> stack{from};
    std::set<uint64_t> seen;
    while (!stack.empty()) {
        uint64_t id = stack.back();
        stack.pop_back();
        if (id == to)
            return true;
        if (id < to || !seen.insert(id).second)
            continue;
        const DynEvent &e = events[id];
        for (uint64_t d : e.deps) {
            if (std::find(e.memDeps.begin(), e.memDeps.end(), d) !=
                e.memDeps.end())
                continue; // Ordered only by the memory system.
            stack.push_back(d);
        }
    }
    return false;
}

} // namespace

std::vector<MemConflict>
findConflicts(const Ddg &ddg, size_t max_conflicts)
{
    std::vector<MemConflict> conflicts;
    const auto &events = ddg.events();

    // Accesses per 4-byte word, in record order.
    std::map<uint64_t, std::vector<uint64_t>> by_word;
    for (uint64_t id = 0; id < events.size(); ++id) {
        const DynEvent &e = events[id];
        if (!e.isLoad && !e.isStore)
            continue;
        for (unsigned w = 0; w < std::max<unsigned>(1, e.words); ++w)
            by_word[(e.addr & ~uint64_t(3)) + w * 4].push_back(id);
    }

    std::set<std::pair<uint64_t, uint64_t>> reported;
    for (const auto &[word, ids] : by_word) {
        for (size_t i = 0;
             i < ids.size() && conflicts.size() < max_conflicts; ++i) {
            for (size_t j = i + 1;
                 j < ids.size() && conflicts.size() < max_conflicts;
                 ++j) {
                uint64_t a = ids[i], b = ids[j];
                if (!events[a].isStore && !events[b].isStore)
                    continue;
                if (!reported.emplace(a, b).second)
                    continue;
                if (happensBefore(events, a, b))
                    continue;
                MemConflict c;
                c.first = a;
                c.second = b;
                c.firstNode = events[a].node;
                c.secondNode = events[b].node;
                c.addr = word;
                conflicts.push_back(c);
            }
        }
    }
    return conflicts;
}

} // namespace muir::sim
