#include "sim/simulator.hh"

namespace muir::sim
{

SimResult
simulate(const uir::Accelerator &accel, ir::MemoryImage &mem,
         const std::vector<ir::RuntimeValue> &args)
{
    UirExecutor exec(accel, mem, /*record_ddg=*/true);
    SimResult result;
    result.outputs = exec.run(args);
    result.firings = exec.firings();
    TimingResult timing = scheduleDdg(accel, exec.ddg());
    result.cycles = timing.cycles;
    result.stats = std::move(timing.stats);
    return result;
}

std::vector<ir::RuntimeValue>
execFunctional(const uir::Accelerator &accel, ir::MemoryImage &mem,
               const std::vector<ir::RuntimeValue> &args)
{
    UirExecutor exec(accel, mem, /*record_ddg=*/false);
    return exec.run(args);
}

} // namespace muir::sim
