#include "sim/simulator.hh"

#include "support/logging.hh"

namespace muir::sim
{

SimResult
simulate(const uir::Accelerator &accel, ir::MemoryImage &mem,
         const std::vector<ir::RuntimeValue> &args,
         const SimOptions &options)
{
    // A precompiled index replaces the recording; an injected fault
    // changes what would be recorded, so the two cannot combine.
    muir_assert(!(options.compiled && options.fault),
                "simulate: a fault run cannot reuse a compiled DDG");
    if (options.compiled) {
        muir_assert(options.compiled->design == &accel,
                    "simulate: compiled DDG belongs to another design");
        muir_assert(options.compiled->source,
                    "simulate: compiled DDG lost its source record");
    }
    const bool record = options.compiled == nullptr;
    UirExecutor exec(accel, mem, /*record_ddg=*/record);
    SimResult result;
    std::unique_ptr<FaultInjector> inj;
    if (options.fault) {
        inj = std::make_unique<FaultInjector>(*options.fault,
                                              options.maxFirings);
        exec.setInjector(inj.get());
    }
    try {
        result.outputs = exec.run(args);
    } catch (const FaultAbort &abort) {
        // Only μfit guards throw, and only with an injector attached:
        // the fault-free path cannot take this branch.
        result.aborted = true;
        result.abortOutcome = abort.outcome;
        result.abortDetail = abort.detail;
        result.firings = exec.firings();
        return result;
    }
    result.firings = exec.firings();
    if (options.profile || options.timeline)
        result.profileData = std::make_shared<ProfileCollector>();
    FaultHarness harness;
    bool use_harness = options.fault || options.watchdog;
    if (use_harness) {
        harness.plan = options.fault;
        harness.watchdog.enabled = options.watchdog;
        harness.watchdog.maxCycles = options.maxCycles;
    }
    RunContext ctx;
    ctx.hooks.trace = options.trace ? &result.trace : nullptr;
    ctx.hooks.profile = result.profileData.get();
    ctx.fault = use_harness ? &harness : nullptr;
    TimingResult timing;
    const Ddg *ddg = nullptr;
    if (options.compiled) {
        timing = scheduleDdg(*options.compiled, ctx);
        ddg = options.compiled->source;
    } else if (options.keepCompiled) {
        // Freeze the record behind a shared index the caller can hand
        // to later runs of the same (design, inputs) pair.
        auto shared_ddg = std::make_shared<const Ddg>(exec.takeDdg());
        result.compiled = std::make_shared<const CompiledDdg>(
            compileDdg(accel, shared_ddg));
        timing = scheduleDdg(*result.compiled, ctx);
        ddg = shared_ddg.get();
    } else {
        timing = scheduleDdg(accel, exec.ddg(), ctx);
        ddg = &exec.ddg();
    }
    result.verdict = std::move(harness.verdict);
    result.cycles = timing.cycles;
    result.stats = std::move(timing.stats);
    if (options.profile)
        result.profile = std::make_shared<ProfileResult>(buildProfile(
            accel, *ddg, *result.profileData, result.cycles));
    if (options.timeline)
        result.timeline = std::make_shared<Timeline>(buildTimeline(
            accel, *ddg, *result.profileData, result.cycles,
            options.timelineWindows));
    return result;
}

std::vector<ir::RuntimeValue>
execFunctional(const uir::Accelerator &accel, ir::MemoryImage &mem,
               const std::vector<ir::RuntimeValue> &args)
{
    UirExecutor exec(accel, mem, /*record_ddg=*/false);
    return exec.run(args);
}

} // namespace muir::sim
