#include "sim/simulator.hh"

namespace muir::sim
{

SimResult
simulate(const uir::Accelerator &accel, ir::MemoryImage &mem,
         const std::vector<ir::RuntimeValue> &args,
         const SimOptions &options)
{
    UirExecutor exec(accel, mem, /*record_ddg=*/true);
    SimResult result;
    result.outputs = exec.run(args);
    result.firings = exec.firings();
    if (options.profile)
        result.profileData = std::make_shared<ProfileCollector>();
    TimingResult timing =
        scheduleDdg(accel, exec.ddg(),
                    options.trace ? &result.trace : nullptr,
                    result.profileData.get());
    result.cycles = timing.cycles;
    result.stats = std::move(timing.stats);
    if (options.profile)
        result.profile = std::make_shared<ProfileResult>(buildProfile(
            accel, exec.ddg(), *result.profileData, result.cycles));
    return result;
}

std::vector<ir::RuntimeValue>
execFunctional(const uir::Accelerator &accel, ir::MemoryImage &mem,
               const std::vector<ir::RuntimeValue> &args)
{
    UirExecutor exec(accel, mem, /*record_ddg=*/false);
    return exec.run(args);
}

} // namespace muir::sim
