/**
 * @file
 * Dynamic dependence graph: the record of one functional execution of
 * a μIR accelerator. One event per dynamic node firing, with data,
 * loop-carried, spawn/sync, and memory (RAW/WAW/WAR) dependencies.
 * The timing scheduler replays it under structural constraints.
 *
 * Invariant: every dependency references an earlier event id, so a
 * single linear pass in id order is a valid topological schedule.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "uir/accelerator.hh"

namespace muir::sim
{

/** Sentinel for "no event". */
inline constexpr uint64_t kNoEvent = ~uint64_t(0);

/** One dynamic task invocation. */
struct Invocation
{
    const uir::Task *task = nullptr;
    /** Invocation sequence number within the task (for tile RR). */
    uint64_t seqInTask = 0;
    /** First event of the invocation (gated by queue backpressure). */
    uint64_t entryEvent = kNoEvent;
};

/** One dynamic node firing. */
struct DynEvent
{
    /** Static node; nullptr for synthetic completion events. */
    const uir::Node *node = nullptr;
    /** Index into Ddg::invocations. */
    uint32_t invocation = 0;
    /** Memory access descriptor (isLoad/isStore only). */
    uint64_t addr = 0;
    uint16_t words = 0;
    bool isLoad = false;
    bool isStore = false;
    /** True for the first event of its invocation. */
    bool isEntry = false;
    /** Synthetic invocation-completion marker. */
    bool isCompletion = false;
    /** For ChildCall dispatch events: the created invocation. */
    uint32_t calleeInv = ~uint32_t(0);
    /**
     * When dispatch stalled on a full task queue, the dep (also
     * present in deps) that frees the queue slot — the completion of
     * invocation seq - queueDepth·tiles. μprof uses it to attribute
     * "queue full" wait cycles separately from operand waits.
     */
    uint64_t queueDep = kNoEvent;
    /** Dependencies: earlier event ids. */
    std::vector<uint64_t> deps;
    /**
     * The subset of deps that exist only to order conflicting memory
     * accesses (RAW/WAW/WAR). The conflict observer computes
     * happens-before over deps minus memDeps: two overlapping
     * accesses ordered by nothing but a memory edge are a dynamic
     * race — the hardware provides no such ordering for free.
     */
    std::vector<uint64_t> memDeps;
};

/** The whole execution record. */
class Ddg
{
  public:
    /** Begin a new invocation of a task; returns its index. */
    uint32_t beginInvocation(const uir::Task *task);

    /** Append an event; returns its id. */
    uint64_t addEvent(DynEvent event);

    const std::vector<DynEvent> &events() const { return events_; }
    const std::vector<Invocation> &invocations() const
    {
        return invocations_;
    }
    uint64_t numEvents() const { return events_.size(); }

  private:
    std::vector<DynEvent> events_;
    std::vector<Invocation> invocations_;
    /** Unordered: only ever point-queried, never iterated. */
    std::unordered_map<const uir::Task *, uint64_t> seqCounters_;
};

} // namespace muir::sim
