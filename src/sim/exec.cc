#include "sim/exec.hh"

#include <algorithm>

#include "ir/op_eval.hh"
#include "sim/fault.hh"
#include "support/logging.hh"

namespace muir::sim
{

using ir::RuntimeValue;
using uir::Node;
using uir::NodeKind;
using uir::Task;

uint32_t
Ddg::beginInvocation(const uir::Task *task)
{
    Invocation inv;
    inv.task = task;
    inv.seqInTask = seqCounters_[task]++;
    invocations_.push_back(inv);
    return static_cast<uint32_t>(invocations_.size() - 1);
}

uint64_t
Ddg::addEvent(DynEvent event)
{
    uint64_t id = events_.size();
    Invocation &inv = invocations_.at(event.invocation);
    if (inv.entryEvent == kNoEvent && !event.isCompletion) {
        inv.entryEvent = id;
        event.isEntry = true;
    }
    events_.push_back(std::move(event));
    return id;
}

UirExecutor::UirExecutor(const uir::Accelerator &accel,
                         ir::MemoryImage &mem, bool record_ddg)
    : accel_(accel), mem_(mem), record_(record_ddg)
{
}

const std::vector<Node *> &
UirExecutor::orderOf(const Task &task)
{
    auto it = orders_.find(&task);
    if (it == orders_.end())
        it = orders_.emplace(&task, task.executionOrder()).first;
    return it->second;
}

RuntimeValue
UirExecutor::zeroOf(const ir::Type &type)
{
    switch (type.kind()) {
      case ir::Type::Kind::Float:
        return RuntimeValue::makeFloat(0.0);
      case ir::Type::Kind::Ptr:
        return RuntimeValue::makePtr(0);
      case ir::Type::Kind::Tensor:
        return RuntimeValue::makeTensor(
            type.rows(), type.cols(),
            std::vector<float>(type.tensorElems(), 0.0f));
      default:
        return RuntimeValue::makeInt(0);
    }
}

RuntimeValue
UirExecutor::valueOf(Ctx &ctx, const Node::PortRef &ref)
{
    const auto &slots = ctx.vals.at(ref.node->id());
    muir_assert(ref.out < slots.size(),
                "value of %s output %u not computed",
                ref.node->name().c_str(), ref.out);
    return slots[ref.out];
}

uint64_t
UirExecutor::eventOf(Ctx &ctx, const Node::PortRef &ref)
{
    // Carried outputs of the loop control have their own per-iteration
    // latch events (see invoke()'s loop driver).
    if (ref.node->kind() == NodeKind::LoopControl && ref.out > 0 &&
        ref.out - 1 < ctx.lcCarried.size())
        return ctx.lcCarried[ref.out - 1];
    return ctx.evs.at(ref.node->id());
}

bool
UirExecutor::guardOn(Ctx &ctx, const Node &node)
{
    if (!node.guard().valid())
        return true;
    return valueOf(ctx, node.guard()).asInt() != 0;
}

uint64_t
UirExecutor::emit(Ctx &ctx, const Node *node, std::vector<uint64_t> deps)
{
    if (!record_)
        return kNoEvent;
    DynEvent ev;
    ev.node = node;
    ev.invocation = ctx.inv;
    // Drop missing deps and duplicates (cheap linear dedupe: deps are
    // tiny).
    for (uint64_t d : deps) {
        if (d == kNoEvent)
            continue;
        if (std::find(ev.deps.begin(), ev.deps.end(), d) != ev.deps.end())
            continue;
        ev.deps.push_back(d);
    }
    return ddg_.addEvent(std::move(ev));
}

std::vector<RuntimeValue>
UirExecutor::run(const std::vector<RuntimeValue> &args)
{
    InvocationResult result = invoke(*accel_.root(), args, kNoEvent);
    return result.liveOutValues;
}

UirExecutor::InvocationResult
UirExecutor::invoke(const Task &task, const std::vector<RuntimeValue> &args,
                    uint64_t dispatch_event)
{
    if (inj_)
        inj_->checkDepth(depth_);
    muir_assert(++depth_ < 256, "task invocation depth exceeded");
    muir_assert(args.size() == task.liveIns().size(),
                "task %s: %zu args for %zu live-ins", task.name().c_str(),
                args.size(), task.liveIns().size());

    Ctx ctx;
    ctx.task = &task;
    ctx.inv = record_ ? ddg_.beginInvocation(&task) : 0;
    uint64_t my_seq =
        record_ ? ddg_.invocations()[ctx.inv].seqInTask : 0;
    unsigned max_id = 0;
    for (const auto &n : task.nodes())
        max_id = std::max(max_id, n->id());
    ctx.vals.assign(max_id + 1, {});
    ctx.evs.assign(max_id + 1, kNoEvent);

    const auto &order = orderOf(task);

    // Interface and constant nodes evaluate once per invocation.
    for (const Node *n : order) {
        switch (n->kind()) {
          case NodeKind::LiveIn:
            ctx.vals[n->id()] = {args[n->liveIndex()]};
            ctx.evs[n->id()] = emit(ctx, n, {dispatch_event});
            ++firings_;
            break;
          case NodeKind::ConstNode:
            ctx.vals[n->id()] = {n->constIsFloat()
                                     ? RuntimeValue::makeFloat(n->constFp())
                                     : RuntimeValue::makeInt(n->constInt())};
            break;
          case NodeKind::GlobalAddr:
            ctx.vals[n->id()] = {
                RuntimeValue::makePtr(mem_.baseOf(n->global()))};
            break;
          default:
            break;
        }
    }
    if (Node *lc = task.loopControl()) {
        // ---- Loop task: run iterations (§3.5). ----
        unsigned carried = lc->numCarried();
        int64_t iv = valueOf(ctx, lc->input(0)).asInt();
        int64_t end = valueOf(ctx, lc->input(1)).asInt();
        int64_t step = valueOf(ctx, lc->input(2)).asInt();
        if (inj_)
            inj_->checkLoopStep(step, task.name());
        muir_assert(step > 0, "loop %s: non-positive step",
                    task.name().c_str());

        std::vector<RuntimeValue> carried_vals;
        // Events producing the carried value consumed next iteration:
        // the init producers initially, then the body's next-values.
        std::vector<uint64_t> carried_srcs;
        std::vector<uint64_t> seed_deps{dispatch_event,
                                        eventOf(ctx, lc->input(0)),
                                        eventOf(ctx, lc->input(1)),
                                        eventOf(ctx, lc->input(2))};
        for (unsigned k = 0; k < carried; ++k) {
            carried_vals.push_back(valueOf(ctx, lc->input(3 + k)));
            carried_srcs.push_back(eventOf(ctx, lc->input(3 + k)));
        }

        // Per-tile loop-control occupancy: the tile's φ/iv register set
        // holds one loop instance, so invocation s must wait for
        // invocation s - numTiles to hand off its loop control (at its
        // last iteration issue).
        uint64_t prev_lc_event = kNoEvent;
        if (record_) {
            unsigned tiles = std::max(1u, task.numTiles());
            auto &exits = loopExits_[&task];
            if (my_seq >= tiles)
                seed_deps.push_back(exits.at(my_seq - tiles));
        }
        uint64_t last_iter_lc = kNoEvent;
        while (iv < end) {
            // LoopControl fires: iv advances along the control-only
            // recurrence (prev control event), NOT the carried chain.
            std::vector<uint64_t> lc_deps = seed_deps;
            lc_deps.push_back(prev_lc_event);
            uint64_t lc_event = emit(ctx, lc, std::move(lc_deps));
            ++firings_;
            if (inj_)
                inj_->checkFirings(firings_);
            seed_deps.clear();

            // Carried-value latches: value k becomes available when
            // the control fires AND its previous producer finished.
            ctx.lcCarried.assign(carried, kNoEvent);
            for (unsigned k = 0; k < carried; ++k) {
                if (!record_)
                    continue;
                DynEvent latch;
                latch.invocation = ctx.inv;
                latch.isCompletion = true; // Pure register: 0 latency.
                if (lc_event != kNoEvent)
                    latch.deps.push_back(lc_event);
                if (carried_srcs[k] != kNoEvent &&
                    carried_srcs[k] != lc_event)
                    latch.deps.push_back(carried_srcs[k]);
                ctx.lcCarried[k] = ddg_.addEvent(std::move(latch));
            }

            std::vector<RuntimeValue> lc_outs;
            lc_outs.push_back(RuntimeValue::makeInt(iv));
            for (unsigned k = 0; k < carried; ++k)
                lc_outs.push_back(carried_vals[k]);
            ctx.vals[lc->id()] = std::move(lc_outs);
            ctx.evs[lc->id()] = lc_event;

            evalBody(ctx, order);

            // Read back the carried next values for the next iteration.
            for (unsigned k = 0; k < carried; ++k) {
                const Node::PortRef &next = lc->input(3 + carried + k);
                carried_vals[k] = valueOf(ctx, next);
                carried_srcs[k] = eventOf(ctx, next);
            }
            last_iter_lc = lc_event;
            prev_lc_event = lc_event;
            iv += step;
        }

        // Final (failing) bound check: makes exit values available.
        std::vector<uint64_t> exit_deps = seed_deps;
        exit_deps.push_back(prev_lc_event);
        for (uint64_t e : carried_srcs)
            exit_deps.push_back(e);
        uint64_t exit_event = emit(ctx, lc, std::move(exit_deps));
        ++firings_;
        ctx.tail.push_back(exit_event);
        if (record_) {
            auto &exits = loopExits_[&task];
            muir_assert(exits.size() == my_seq,
                        "loop invocation order violated");
            // Hand-off point for the next invocation on this tile: the
            // last iteration's control issue (the failing check shares
            // the drain with the successor).
            exits.push_back(last_iter_lc != kNoEvent ? last_iter_lc
                                                     : exit_event);
        }
        ctx.lcCarried.clear();
        std::vector<RuntimeValue> final_outs;
        final_outs.push_back(RuntimeValue::makeInt(iv));
        for (unsigned k = 0; k < carried; ++k)
            final_outs.push_back(carried_vals[k]);
        ctx.vals[lc->id()] = std::move(final_outs);
        ctx.evs[lc->id()] = exit_event;

        // Live-outs (escaping carried values / iv).
        for (const Node *n : order) {
            if (n->kind() == NodeKind::LiveOut)
                evalNode(ctx, *n);
        }
    } else {
        // ---- Plain task: single pass over the dataflow. ----
        evalBody(ctx, order);
        for (const Node *n : order)
            if (n->kind() == NodeKind::LiveOut)
                evalNode(ctx, *n);
    }

    InvocationResult result;
    for (Node *out : task.liveOuts()) {
        result.liveOutValues.push_back(valueOf(ctx, {out, 0}));
        result.liveOutEvents.push_back(ctx.evs[out->id()]);
        ctx.tail.push_back(ctx.evs[out->id()]);
    }
    // Synthetic completion event covering the whole invocation subtree.
    if (record_) {
        DynEvent done;
        done.invocation = ctx.inv;
        done.isCompletion = true;
        std::sort(ctx.tail.begin(), ctx.tail.end());
        ctx.tail.erase(std::unique(ctx.tail.begin(), ctx.tail.end()),
                       ctx.tail.end());
        for (uint64_t e : ctx.tail)
            if (e != kNoEvent)
                done.deps.push_back(e);
        if (done.deps.empty() && dispatch_event != kNoEvent)
            done.deps.push_back(dispatch_event);
        result.completionEvent = ddg_.addEvent(std::move(done));
        completions_[&task].push_back(result.completionEvent);
    }
    result.outstanding = std::move(ctx.outstanding);
    --depth_;
    return result;
}

void
UirExecutor::evalBody(Ctx &ctx, const std::vector<Node *> &order)
{
    for (const Node *n : order) {
        switch (n->kind()) {
          case NodeKind::LiveIn:
          case NodeKind::LiveOut:
          case NodeKind::ConstNode:
          case NodeKind::GlobalAddr:
          case NodeKind::LoopControl:
            continue; // Handled by invoke().
          default:
            evalNode(ctx, *n);
        }
    }
}

void
UirExecutor::evalNode(Ctx &ctx, const Node &node)
{
    ++firings_;
    if (inj_)
        inj_->checkFirings(firings_);
    std::vector<uint64_t> deps;
    deps.reserve(node.numInputs() + 1);
    for (const auto &ref : node.inputs())
        deps.push_back(eventOf(ctx, ref));
    if (node.guard().valid())
        deps.push_back(eventOf(ctx, node.guard()));

    switch (node.kind()) {
      case NodeKind::Compute: {
        RuntimeValue result;
        if (node.op() == ir::Op::GEP) {
            uint64_t base = valueOf(ctx, node.input(0)).asPtr();
            int64_t index = valueOf(ctx, node.input(1)).asInt();
            unsigned elem = node.irType().pointee().sizeBytes();
            result = RuntimeValue::makePtr(
                base + static_cast<uint64_t>(index) * elem);
        } else {
            std::vector<RuntimeValue> operands;
            operands.reserve(node.numInputs());
            for (const auto &ref : node.inputs())
                operands.push_back(valueOf(ctx, ref));
            if (inj_ &&
                (node.op() == ir::Op::SDiv ||
                 node.op() == ir::Op::SRem) &&
                operands.size() > 1 &&
                operands[1].kind == RuntimeValue::Kind::Int)
                inj_->checkDivisor(operands[1].i);
            result = ir::applyPureOp(node.op(), operands, node.irType());
        }
        ctx.vals[node.id()] = {std::move(result)};
        uint64_t id = emit(ctx, &node, std::move(deps));
        ctx.evs[node.id()] = id;
        if (inj_)
            inj_->corruptValue(id, ctx.vals[node.id()]);
        return;
      }
      case NodeKind::Fused: {
        std::vector<RuntimeValue> ext;
        ext.reserve(node.numInputs());
        for (const auto &ref : node.inputs())
            ext.push_back(valueOf(ctx, ref));
        std::vector<RuntimeValue> internal;
        internal.reserve(node.microOps().size());
        for (const auto &mop : node.microOps()) {
            std::vector<RuntimeValue> operands;
            operands.reserve(mop.srcs.size());
            for (int src : mop.srcs) {
                if (src < 0)
                    operands.push_back(ext.at(-src - 1));
                else
                    operands.push_back(internal.at(src));
            }
            if (mop.op == ir::Op::GEP) {
                uint64_t base = operands.at(0).asPtr();
                int64_t index = operands.at(1).asInt();
                unsigned elem = mop.type.pointee().sizeBytes();
                internal.push_back(RuntimeValue::makePtr(
                    base + static_cast<uint64_t>(index) * elem));
            } else {
                if (inj_ &&
                    (mop.op == ir::Op::SDiv ||
                     mop.op == ir::Op::SRem) &&
                    operands.size() > 1 &&
                    operands[1].kind == RuntimeValue::Kind::Int)
                    inj_->checkDivisor(operands[1].i);
                internal.push_back(
                    ir::applyPureOp(mop.op, operands, mop.type));
            }
        }
        ctx.vals[node.id()] = {internal.back()};
        uint64_t id = emit(ctx, &node, std::move(deps));
        ctx.evs[node.id()] = id;
        if (inj_)
            inj_->corruptValue(id, ctx.vals[node.id()]);
        return;
      }
      case NodeKind::Load: {
        if (!guardOn(ctx, node)) {
            // Predicated off: fire for flow control, poison the output.
            ctx.vals[node.id()] = {zeroOf(node.irType())};
            uint64_t id = emit(ctx, &node, std::move(deps));
            ctx.evs[node.id()] = id;
            if (inj_)
                inj_->corruptValue(id, ctx.vals[node.id()]);
            return;
        }
        uint64_t addr = valueOf(ctx, node.input(0)).asPtr();
        unsigned words = node.accessWords();
        // Memory-ordering (RAW) edges are recorded separately from the
        // data deps already in deps: the conflict observer needs to
        // know which orderings only exist because of the memory
        // system. An id that is already a data dep stays a data dep.
        std::vector<uint64_t> mem_deps;
        if (record_) {
            for (unsigned w = 0; w < words; ++w) {
                auto it = lastStore_.find((addr & ~uint64_t(3)) + w * 4);
                if (it != lastStore_.end() &&
                    std::find(deps.begin(), deps.end(), it->second) ==
                        deps.end())
                    mem_deps.push_back(it->second);
            }
            deps.insert(deps.end(), mem_deps.begin(), mem_deps.end());
        }
        RuntimeValue v;
        const ir::Type &t = node.irType();
        if (inj_) {
            unsigned span = t.isTensor() ? t.tensorElems() * 4
                            : t.isFloat() ? 4
                                          : t.sizeBytes();
            inj_->checkAccess(addr, span, mem_);
        }
        if (t.isTensor()) {
            std::vector<float> data(t.tensorElems());
            for (unsigned k = 0; k < t.tensorElems(); ++k)
                data[k] = mem_.loadFloat(addr + k * 4);
            v = RuntimeValue::makeTensor(t.rows(), t.cols(),
                                         std::move(data));
        } else if (t.isFloat()) {
            v = RuntimeValue::makeFloat(mem_.loadFloat(addr));
        } else {
            v = RuntimeValue::makeInt(mem_.loadInt(addr, t.sizeBytes()));
        }
        ctx.vals[node.id()] = {std::move(v)};
        if (record_) {
            DynEvent ev;
            ev.node = &node;
            ev.invocation = ctx.inv;
            ev.addr = addr;
            ev.words = static_cast<uint16_t>(words);
            ev.isLoad = true;
            for (uint64_t d : deps)
                if (d != kNoEvent)
                    ev.deps.push_back(d);
            ev.memDeps = std::move(mem_deps);
            uint64_t id = ddg_.addEvent(std::move(ev));
            ctx.evs[node.id()] = id;
            if (inj_)
                inj_->corruptValue(id, ctx.vals[node.id()]);
            for (unsigned w = 0; w < words; ++w)
                readersSince_[(addr & ~uint64_t(3)) + w * 4].push_back(id);
        }
        return;
      }
      case NodeKind::Store: {
        if (!guardOn(ctx, node)) {
            ctx.evs[node.id()] = emit(ctx, &node, std::move(deps));
            ctx.vals[node.id()] = {RuntimeValue::makeInt(0)};
            return;
        }
        RuntimeValue value = valueOf(ctx, node.input(0));
        uint64_t addr = valueOf(ctx, node.input(1)).asPtr();
        unsigned words = node.accessWords();
        std::vector<uint64_t> mem_deps;
        if (record_) {
            auto note = [&](uint64_t d) {
                if (std::find(deps.begin(), deps.end(), d) ==
                        deps.end() &&
                    std::find(mem_deps.begin(), mem_deps.end(), d) ==
                        mem_deps.end())
                    mem_deps.push_back(d);
            };
            for (unsigned w = 0; w < words; ++w) {
                uint64_t word = (addr & ~uint64_t(3)) + w * 4;
                auto sit = lastStore_.find(word);
                if (sit != lastStore_.end())
                    note(sit->second); // WAW
                auto rit = readersSince_.find(word);
                if (rit != readersSince_.end()) {
                    for (uint64_t r : rit->second)
                        note(r); // WAR
                }
            }
            deps.insert(deps.end(), mem_deps.begin(), mem_deps.end());
        }
        const ir::Type &t = node.input(0).node->outputType(
            node.input(0).out);
        if (inj_) {
            unsigned span =
                value.kind == RuntimeValue::Kind::Tensor
                    ? static_cast<unsigned>(value.tensor->size() * 4)
                : value.kind == RuntimeValue::Kind::Float ? 4
                                                          : t.sizeBytes();
            inj_->checkAccess(addr, span, mem_);
        }
        if (value.kind == RuntimeValue::Kind::Tensor) {
            for (size_t k = 0; k < value.tensor->size(); ++k)
                mem_.storeFloat(addr + k * 4, (*value.tensor)[k]);
        } else if (value.kind == RuntimeValue::Kind::Float) {
            mem_.storeFloat(addr, static_cast<float>(value.f));
        } else {
            mem_.storeInt(addr, t.sizeBytes(), value.i);
        }
        if (record_) {
            DynEvent ev;
            ev.node = &node;
            ev.invocation = ctx.inv;
            ev.addr = addr;
            ev.words = static_cast<uint16_t>(words);
            ev.isStore = true;
            for (uint64_t d : deps)
                if (d != kNoEvent &&
                    std::find(ev.deps.begin(), ev.deps.end(), d) ==
                        ev.deps.end())
                    ev.deps.push_back(d);
            ev.memDeps = std::move(mem_deps);
            uint64_t id = ddg_.addEvent(std::move(ev));
            ctx.evs[node.id()] = id;
            ctx.tail.push_back(id);
            for (unsigned w = 0; w < words; ++w) {
                uint64_t word = (addr & ~uint64_t(3)) + w * 4;
                lastStore_[word] = id;
                readersSince_[word].clear();
            }
        }
        ctx.vals[node.id()] = {RuntimeValue::makeInt(0)};
        return;
      }
      case NodeKind::ChildCall: {
        unsigned outs = node.numOutputs();
        if (!guardOn(ctx, node)) {
            std::vector<RuntimeValue> zeros;
            for (unsigned k = 0; k < outs; ++k)
                zeros.push_back(zeroOf(node.outputType(k)));
            ctx.vals[node.id()] = std::move(zeros);
            ctx.evs[node.id()] = emit(ctx, &node, std::move(deps));
            return;
        }
        // Dispatch event first so the child's entry can depend on it.
        uint64_t dispatch = kNoEvent;
        if (record_) {
            DynEvent ev;
            ev.node = &node;
            ev.invocation = ctx.inv;
            // Task-queue backpressure (§4 Pass 1/2): at most
            // queueDepth x tiles invocations of the callee in flight;
            // dispatch stalls on the completion of the invocation that
            // frees a queue slot.
            const uir::Task *callee = node.callee();
            auto &done = completions_[callee];
            uint64_t window =
                uint64_t(std::max(1u, callee->queueDepth())) *
                std::max(1u, callee->numTiles());
            uint64_t child_seq = done.size();
            if (child_seq >= window) {
                deps.push_back(done[child_seq - window]);
                ev.queueDep = done[child_seq - window];
            }
            for (uint64_t d : deps)
                if (d != kNoEvent &&
                    std::find(ev.deps.begin(), ev.deps.end(), d) ==
                        ev.deps.end())
                    ev.deps.push_back(d);
            ev.calleeInv =
                static_cast<uint32_t>(ddg_.invocations().size());
            dispatch = ddg_.addEvent(std::move(ev));
        }
        std::vector<RuntimeValue> args;
        args.reserve(node.numInputs());
        for (const auto &ref : node.inputs())
            args.push_back(valueOf(ctx, ref));
        InvocationResult child = invoke(*node.callee(), args, dispatch);

        if (node.isSpawn()) {
            ctx.vals[node.id()] = {RuntimeValue::makeInt(1)};
            ctx.evs[node.id()] = dispatch;
            ctx.outstanding.push_back(child.completionEvent);
            for (uint64_t e : child.outstanding)
                ctx.outstanding.push_back(e);
        } else {
            std::vector<RuntimeValue> outs_vals;
            if (node.callee()->liveOuts().empty()) {
                outs_vals.push_back(RuntimeValue::makeInt(1));
                ctx.evs[node.id()] = child.completionEvent;
            } else {
                outs_vals = child.liveOutValues;
                // Consumers key off the call node's single event slot;
                // use the completion so all outputs are ready. (Finer
                // per-output events cost little accuracy here because
                // live-outs complete together at loop exit.)
                ctx.evs[node.id()] = child.completionEvent;
            }
            ctx.vals[node.id()] = std::move(outs_vals);
            ctx.tail.push_back(child.completionEvent);
            for (uint64_t e : child.outstanding)
                ctx.outstanding.push_back(e);
        }
        return;
      }
      case NodeKind::SyncNode: {
        for (uint64_t e : ctx.outstanding)
            deps.push_back(e);
        ctx.outstanding.clear();
        ctx.vals[node.id()] = {RuntimeValue::makeInt(1)};
        uint64_t id = emit(ctx, &node, std::move(deps));
        ctx.evs[node.id()] = id;
        ctx.tail.push_back(id);
        return;
      }
      case NodeKind::LiveOut: {
        ctx.vals[node.id()] = {valueOf(ctx, node.input(0))};
        ctx.evs[node.id()] = emit(ctx, &node, std::move(deps));
        return;
      }
      default:
        muir_panic("evalNode: unexpected kind %s on %s",
                   nodeKindName(node.kind()), node.name().c_str());
    }
}

} // namespace muir::sim
