/**
 * @file
 * The μIR front end (§3.6, Algorithm 1): translate a compiler-IR
 * program into a hierarchical μIR accelerator graph.
 *
 * Stage 1 partitions the program-dependence graph into task regions:
 * the root, every natural loop (loops are self-scheduling asynchronous
 * tasks, §3.5), every Tapir detach region (Cilk spawn), and every
 * called function. Stage 2 lowers each region's basic blocks into a
 * hyperblock: forward control flow becomes dataflow predication,
 * canonical loop headers become LoopControl nodes, and memory ops are
 * connected to the global memory (the baseline shared L1).
 *
 * Canonical-form requirements (the IRBuilder's ForLoop guarantees
 * them; LLVM's loop canonicalization provides the same guarantees in
 * the paper's flow): counted loops with a single latch containing only
 * the induction increment, loop values escaping only through header
 * phis, and a single ret per function.
 */
#pragma once

#include <memory>
#include <string>

#include "ir/module.hh"
#include "uir/accelerator.hh"

namespace muir::frontend
{

/** Options controlling baseline accelerator construction. */
struct LowerOptions
{
    /** Name for the generated accelerator (defaults to kernel name). */
    std::string name;
    /** Baseline L1 size in KB (paper: 64 KB, §6.4). */
    unsigned cacheSizeKb = 64;
    /** Baseline DRAM/AXI latency in cycles. */
    unsigned dramLatency = 80;
    /**
     * Give local arrays a single *shared* scratchpad at baseline
     * instead of routing them through the L1 — the paper's baseline
     * for Cilk accelerators ("a shared scratchpad for local accesses
     * and an L1 cache for all global accesses", §6.4). Pass 3 later
     * splits it per space.
     */
    bool sharedScratchpad = false;
    /** Arrays above this size stay behind the cache even when
     *  sharedScratchpad is set. */
    unsigned scratchpadMaxKb = 32;
};

/**
 * Lower kernel (a function of module) and everything it reaches into a
 * μIR accelerator. The returned graph holds a pointer to module, which
 * must outlive it.
 */
std::unique_ptr<uir::Accelerator> lowerToUir(const ir::Module &module,
                                             const std::string &kernel,
                                             const LowerOptions &opts = {});

} // namespace muir::frontend
