#include "frontend/lower.hh"

#include <algorithm>
#include <map>
#include <set>

#include "ir/analysis/cfg.hh"
#include "ir/analysis/dominators.hh"
#include "ir/analysis/loop_info.hh"
#include "ir/analysis/memory_objects.hh"
#include "ir/printer.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::frontend
{

using ir::BasicBlock;
using ir::Instruction;
using ir::Op;
using uir::Node;
using uir::NodeKind;
using uir::Task;
using uir::TaskKind;

namespace
{

/** A Stage-1 task region (Algorithm 1, µIR_TaskGNodes entry). */
struct Region
{
    TaskKind kind;
    const ir::Function *fn = nullptr;
    /** For Loop regions. */
    ir::Loop *loop = nullptr;
    BasicBlock *exitBlock = nullptr;
    BasicBlock *bodyEntry = nullptr;
    BasicBlock *latch = nullptr;
    /** For Spawn regions: the detach terminator. */
    const Instruction *detach = nullptr;
    /** Full block set (for containment tests). */
    std::set<BasicBlock *> allBlocks;
    /** Blocks lowered by this region (allBlocks minus descendants). */
    std::vector<BasicBlock *> ownBlocks;
    Region *parent = nullptr;
    std::vector<Region *> children;
    std::string name;

    /** Filled during Stage 2. */
    Task *task = nullptr;
    std::vector<const ir::Value *> liveInValues;
    /** Escaping header phis, for Loop regions, in live-out order. */
    std::vector<const Instruction *> escapingPhis;
    /** The single ret value, for Root/Func regions. */
    const ir::Value *retValue = nullptr;
};

/** An optionally-"always" predicate value. */
struct Pred
{
    bool always = true;
    Node::PortRef ref;
};

/** Per-region lowering state. */
struct RegionCtx
{
    Region *region = nullptr;
    std::map<const ir::Value *, Node::PortRef> valueMap;
    std::map<const BasicBlock *, Pred> blockPred;
    std::map<const BasicBlock *, bool> blockReached;
    std::map<int64_t, Node *> intConsts;
    std::map<double, Node *> fpConsts;
    std::map<const ir::GlobalArray *, Node *> globalAddrs;
    /** Instructions absorbed into LoopControl (not lowered). */
    std::set<const Instruction *> absorbed;
    /** Carried next-values to wire up after the body is lowered. */
    std::vector<const ir::Value *> carriedNextValues;
    /** Most recent child call (connects SyncNode into the DAG). */
    Node *lastCall = nullptr;
    /** Shared i1 constant 1 for predicate negation. */
    Node *boolOne = nullptr;
};

/** Whole-lowering driver. */
class Lowering
{
  public:
    Lowering(const ir::Module &module, const LowerOptions &opts)
        : module_(module), opts_(opts)
    {
    }

    std::unique_ptr<uir::Accelerator> run(const std::string &kernel);

  private:
    /** Stage 1: build the region tree for one function. */
    Region *buildRegions(const ir::Function &fn, TaskKind root_kind);

    /** Stage 2: lower one region (children first). */
    void lowerRegion(Region &region);

    void matchLoopControl(Region &region, RegionCtx &ctx);
    void finalizeLoopControl(Region &region, RegionCtx &ctx);
    void lowerBlock(Region &region, RegionCtx &ctx, BasicBlock *bb);
    void lowerInst(Region &region, RegionCtx &ctx, const Instruction &inst,
                   const Pred &pred);
    Node *makeChildCall(Region &parent, RegionCtx &ctx, Region &child,
                        bool spawn, const Pred &pred);

    Node::PortRef mapValue(Region &region, RegionCtx &ctx,
                           const ir::Value *v);
    Pred predAnd(RegionCtx &ctx, const Pred &a, const Pred &b);
    Pred predOr(RegionCtx &ctx, const Pred &a, const Pred &b);
    Pred predNot(RegionCtx &ctx, const Pred &a);
    void mergeIntoBlock(RegionCtx &ctx, BasicBlock *target,
                        const Pred &contribution);
    Pred edgePred(RegionCtx &ctx, const Pred &src_pred, const Pred &cond,
                  bool negate);

    const ir::Module &module_;
    LowerOptions opts_;
    std::unique_ptr<uir::Accelerator> accel_;
    std::vector<std::unique_ptr<Region>> regions_;
    /** header block -> loop region (for ChildCall creation). */
    std::map<const BasicBlock *, Region *> loopEntry_;
    /** detach inst -> spawn region. */
    std::map<const Instruction *, Region *> detachRegion_;
    /** function -> func region root. */
    std::map<const ir::Function *, Region *> funcRegion_;
    std::map<const ir::Function *, std::unique_ptr<ir::MemoryObjects>>
        memObjectsByFn_;
    /** Keeps Loop* pointers referenced by regions alive. */
    struct FnAnalysis
    {
        ir::Cfg cfg;
        ir::DominatorTree dt;
        ir::LoopInfo li;
        explicit FnAnalysis(const ir::Function &fn)
            : cfg(fn), dt(cfg), li(cfg, dt)
        {
        }
    };
    std::map<const ir::Function *, std::unique_ptr<FnAnalysis>> analyses_;
};

std::unique_ptr<uir::Accelerator>
Lowering::run(const std::string &kernel)
{
    const ir::Function *fn = module_.function(kernel);
    if (fn == nullptr)
        muir_fatal("kernel function %s not found", kernel.c_str());

    std::string accel_name = opts_.name.empty() ? kernel : opts_.name;
    accel_ = std::make_unique<uir::Accelerator>(accel_name, &module_);

    // Baseline memory system: a shared L1 cache in front of DRAM. The
    // cache serves space 0 (and, as the default, every space no
    // scratchpad claims yet).
    uir::Structure *dram =
        accel_->addStructure(uir::StructureKind::Dram, "dram");
    dram->setLatency(opts_.dramLatency);
    uir::Structure *l1 =
        accel_->addStructure(uir::StructureKind::Cache, "l1");
    l1->setSizeKb(opts_.cacheSizeKb);
    l1->setMissLatency(opts_.dramLatency);
    l1->addSpace(0);

    if (opts_.sharedScratchpad) {
        uir::Structure *spad = accel_->addStructure(
            uir::StructureKind::Scratchpad, "spad_shared");
        spad->setLatency(1);
        spad->setBanks(2);
        spad->setPortsPerBank(2);
        unsigned total_kb = 0;
        for (const auto &g : module_.globals()) {
            unsigned kb = static_cast<unsigned>(
                (g->sizeBytes() + 1023) / 1024);
            if (kb > opts_.scratchpadMaxKb)
                continue;
            spad->addSpace(g->spaceId());
            total_kb += std::max(1u, kb);
        }
        spad->setSizeKb(std::max(1u, total_kb));
    }

    Region *root = buildRegions(*fn, TaskKind::Root);
    lowerRegion(*root);
    accel_->setRoot(root->task);
    return std::move(accel_);
}

Region *
Lowering::buildRegions(const ir::Function &fn, TaskKind root_kind)
{
    analyses_[&fn] = std::make_unique<FnAnalysis>(fn);
    const ir::Cfg &cfg = analyses_[&fn]->cfg;
    const ir::LoopInfo &li = analyses_[&fn]->li;
    memObjectsByFn_[&fn] = std::make_unique<ir::MemoryObjects>(fn);

    auto *root = regions_.emplace_back(std::make_unique<Region>()).get();
    root->kind = root_kind;
    root->fn = &fn;
    root->name = fn.name();
    for (BasicBlock *bb : cfg.rpo())
        root->allBlocks.insert(bb);

    // Loop regions.
    std::map<ir::Loop *, Region *> loop_region;
    for (ir::Loop *loop : li.allLoops()) {
        auto *r = regions_.emplace_back(std::make_unique<Region>()).get();
        r->kind = TaskKind::Loop;
        r->fn = &fn;
        r->loop = loop;
        r->name = fmt("%s.%s", fn.name().c_str(),
                      loop->header->name().c_str());
        r->allBlocks = loop->blocks;
        muir_assert(loop->latches.size() == 1,
                    "loop %s: multiple latches unsupported",
                    loop->header->name().c_str());
        r->latch = loop->latches[0];
        const Instruction *hterm = loop->header->terminator();
        muir_assert(hterm && hterm->op() == Op::CondBr,
                    "loop %s: non-canonical header terminator",
                    loop->header->name().c_str());
        r->bodyEntry = hterm->successor(0);
        r->exitBlock = hterm->successor(1);
        loop_region[loop] = r;
        loopEntry_[loop->header] = r;
    }

    // Spawn regions (one per detach).
    std::vector<Region *> spawn_regions;
    for (BasicBlock *bb : cfg.rpo()) {
        const Instruction *term = bb->terminator();
        if (!term || term->op() != Op::Detach)
            continue;
        auto *r = regions_.emplace_back(std::make_unique<Region>()).get();
        r->kind = TaskKind::Spawn;
        r->fn = &fn;
        r->detach = term;
        r->bodyEntry = term->successor(0);
        r->name = fmt("%s.%s.task", fn.name().c_str(),
                      term->successor(0)->name().c_str());
        for (BasicBlock *rb : ir::detachRegion(*term))
            r->allBlocks.insert(rb);
        detachRegion_[term] = r;
        spawn_regions.push_back(r);
    }

    // Parenting: each non-root region's parent is the smallest other
    // region strictly containing its entry block. Regions are properly
    // nested so "smallest containing" is well defined.
    std::vector<Region *> fn_regions;
    for (auto &[loop, r] : loop_region)
        fn_regions.push_back(r);
    for (Region *r : spawn_regions)
        fn_regions.push_back(r);

    auto entry_of = [](Region *r) -> BasicBlock * {
        if (r->kind == TaskKind::Loop)
            return r->loop->header;
        return r->detach->parent(); // Block issuing the detach.
    };
    for (Region *r : fn_regions) {
        BasicBlock *probe = entry_of(r);
        Region *best = root;
        for (Region *other : fn_regions) {
            if (other == r || !other->allBlocks.count(probe))
                continue;
            // A loop contains its own header; skip self-containment
            // artifacts: for loops, the header probe sits inside the
            // loop itself, so exclude regions whose block set is the
            // probe's own region superset check below handles it since
            // other != r.
            if (other->kind == TaskKind::Loop &&
                other->loop->header == probe)
                continue;
            if (best == root ||
                other->allBlocks.size() < best->allBlocks.size())
                best = other;
        }
        r->parent = best;
        best->children.push_back(r);
    }

    // Own blocks: each block belongs to the smallest region holding it.
    for (BasicBlock *bb : cfg.rpo()) {
        Region *owner = root;
        for (Region *r : fn_regions) {
            if (!r->allBlocks.count(bb))
                continue;
            if (owner == root ||
                r->allBlocks.size() < owner->allBlocks.size())
                owner = r;
        }
        owner->ownBlocks.push_back(bb);
    }
    return root;
}

void
Lowering::lowerRegion(Region &region)
{
    for (Region *child : region.children)
        lowerRegion(*child);

    // Children are lowered first (their live-in lists must be final
    // before this region's ChildCalls are built), so the parent link
    // is patched here once this region's task exists.
    region.task = accel_->addTask(region.kind, region.name, nullptr);
    for (Region *child : region.children)
        child->task->setParentTask(region.task);
    RegionCtx ctx;
    ctx.region = &region;

    if (region.kind == TaskKind::Loop)
        matchLoopControl(region, ctx);

    // Seed entry predicate.
    BasicBlock *entry = nullptr;
    switch (region.kind) {
      case TaskKind::Loop:
        entry = region.bodyEntry;
        break;
      case TaskKind::Spawn:
        entry = region.bodyEntry;
        break;
      case TaskKind::Root:
      case TaskKind::Func:
        entry = region.fn->entry();
        break;
    }
    ctx.blockPred[entry] = Pred{};
    ctx.blockReached[entry] = true;

    // Lower own blocks in function RPO order (forward CFG).
    const ir::Cfg &cfg = analyses_.at(region.fn)->cfg;
    for (BasicBlock *bb : cfg.rpo()) {
        if (std::find(region.ownBlocks.begin(), region.ownBlocks.end(),
                      bb) == region.ownBlocks.end())
            continue;
        if (region.kind == TaskKind::Loop &&
            (bb == region.loop->header || bb == region.latch))
            continue; // Absorbed into LoopControl.
        if (!ctx.blockReached.count(bb))
            continue; // Dead within this region.
        lowerBlock(region, ctx, bb);
    }

    if (region.kind == TaskKind::Loop)
        finalizeLoopControl(region, ctx);

    // Root/Func ret value becomes live-out 0.
    if (region.retValue != nullptr &&
        !region.retValue->type().isVoid()) {
        Node *out = region.task->addLiveOut(region.retValue->type(),
                                            "ret");
        Node::PortRef ref = mapValue(region, ctx, region.retValue);
        out->addInput(ref.node, ref.out);
    }
}

void
Lowering::matchLoopControl(Region &region, RegionCtx &ctx)
{
    ir::Loop *loop = region.loop;
    BasicBlock *header = loop->header;
    BasicBlock *latch = region.latch;

    // Identify the preheader (the unique non-latch predecessor).
    BasicBlock *preheader = nullptr;
    for (BasicBlock *pred : header->predecessors()) {
        if (pred == latch)
            continue;
        muir_assert(preheader == nullptr,
                    "loop %s: multiple preheaders", header->name().c_str());
        preheader = pred;
    }
    muir_assert(preheader != nullptr, "loop %s: no preheader",
                header->name().c_str());

    // The header terminator: condbr(icmp slt iv end, body, exit).
    const Instruction *term = header->terminator();
    auto *cmp = dynamic_cast<const Instruction *>(term->operand(0));
    muir_assert(cmp && cmp->op() == Op::ICmpSlt,
                "loop %s: non-canonical exit condition",
                header->name().c_str());

    // Find the induction phi and carried phis.
    const Instruction *iv_phi = nullptr;
    std::vector<const Instruction *> carried;
    for (const auto &inst : header->insts()) {
        if (inst->op() != Op::Phi)
            break;
        if (cmp->operand(0) == inst.get())
            iv_phi = inst.get();
        else
            carried.push_back(inst.get());
    }
    muir_assert(iv_phi != nullptr, "loop %s: induction phi not found",
                header->name().c_str());

    auto incomingFrom = [](const Instruction *phi, const BasicBlock *bb) {
        for (unsigned i = 0; i < phi->numIncoming(); ++i)
            if (phi->incomingBlock(i) == bb)
                return phi->incomingValue(i);
        muir_panic("phi %%%s: no incoming from %s", phi->name().c_str(),
                   bb->name().c_str());
    };

    // iv.next must be add(iv, step) in the latch.
    auto *iv_next =
        dynamic_cast<const Instruction *>(incomingFrom(iv_phi, latch));
    muir_assert(iv_next && iv_next->op() == Op::Add &&
                    (iv_next->operand(0) == iv_phi ||
                     iv_next->operand(1) == iv_phi),
                "loop %s: non-canonical induction update",
                header->name().c_str());
    const ir::Value *step = iv_next->operand(0) == iv_phi
                                ? iv_next->operand(1)
                                : iv_next->operand(0);
    const ir::Value *begin = incomingFrom(iv_phi, preheader);
    const ir::Value *end = cmp->operand(1);

    // Latch may only hold the induction update and the back edge.
    for (const auto &inst : latch->insts()) {
        muir_assert(inst.get() == iv_next || inst->isTerminator(),
                    "loop %s: latch computes %s (non-canonical)",
                    header->name().c_str(),
                    ir::printInst(*inst).c_str());
        ctx.absorbed.insert(inst.get());
    }
    ctx.absorbed.insert(cmp);
    ctx.absorbed.insert(term);

    Node *lc = region.task->addNode(NodeKind::LoopControl, "loop");
    lc->setIrType(iv_phi->type());
    lc->setNumCarried(carried.size());
    lc->addInput(mapValue(region, ctx, begin).node,
                 mapValue(region, ctx, begin).out);
    lc->addInput(mapValue(region, ctx, end).node,
                 mapValue(region, ctx, end).out);
    lc->addInput(mapValue(region, ctx, step).node,
                 mapValue(region, ctx, step).out);
    for (const Instruction *phi : carried) {
        Node::PortRef init =
            mapValue(region, ctx, incomingFrom(phi, preheader));
        lc->addInput(init.node, init.out);
    }
    // Next-value slots are wired in finalizeLoopControl; remember what
    // they should resolve to.
    for (const Instruction *phi : carried)
        ctx.carriedNextValues.push_back(incomingFrom(phi, latch));

    // Map the phis to LoopControl outputs.
    ctx.valueMap[iv_phi] = {lc, 0};
    for (unsigned k = 0; k < carried.size(); ++k)
        ctx.valueMap[carried[k]] = {lc, k + 1};

    // Record which carried phis escape the loop (live-outs).
    for (const Instruction *phi : carried) {
        bool escapes = false;
        for (const Instruction *user : phi->users())
            if (!region.allBlocks.count(user->parent()))
                escapes = true;
        if (escapes)
            region.escapingPhis.push_back(phi);
    }
    // The induction variable may escape too (e.g. counting loops).
    {
        bool escapes = false;
        for (const Instruction *user : iv_phi->users()) {
            if (ctx.absorbed.count(user))
                continue;
            if (!region.allBlocks.count(user->parent()))
                escapes = true;
        }
        if (escapes)
            region.escapingPhis.push_back(iv_phi);
    }
}

void
Lowering::finalizeLoopControl(Region &region, RegionCtx &ctx)
{
    Node *lc = region.task->loopControl();
    for (const ir::Value *next : ctx.carriedNextValues) {
        Node::PortRef ref = mapValue(region, ctx, next);
        lc->addInput(ref.node, ref.out);
    }
    // Live-outs for escaping phis: the final carried value.
    for (const Instruction *phi : region.escapingPhis) {
        Node *out = region.task->addLiveOut(phi->type(),
                                            phi->name() + ".out");
        Node::PortRef ref = ctx.valueMap.at(phi);
        out->addInput(ref.node, ref.out);
    }
}

Node::PortRef
Lowering::mapValue(Region &region, RegionCtx &ctx, const ir::Value *v)
{
    auto it = ctx.valueMap.find(v);
    if (it != ctx.valueMap.end())
        return it->second;

    Node *node = nullptr;
    if (auto *c = dynamic_cast<const ir::Constant *>(v)) {
        if (c->isFloatConstant()) {
            auto [cit, inserted] = ctx.fpConsts.emplace(c->fpValue(),
                                                        nullptr);
            if (inserted)
                cit->second = region.task->addConstFp(c->fpValue());
            node = cit->second;
        } else {
            auto [cit, inserted] = ctx.intConsts.emplace(c->intValue(),
                                                         nullptr);
            if (inserted)
                cit->second = region.task->addConstInt(c->type(),
                                                       c->intValue());
            node = cit->second;
        }
    } else if (auto *g = dynamic_cast<const ir::GlobalArray *>(v)) {
        auto [git, inserted] = ctx.globalAddrs.emplace(g, nullptr);
        if (inserted)
            git->second = region.task->addGlobalAddr(g);
        node = git->second;
    } else {
        // Defined outside this region: becomes a live-in. (Arguments
        // always take this path.)
        node = region.task->addLiveIn(v->type(), v->name());
        region.liveInValues.push_back(v);
    }
    Node::PortRef ref{node, 0};
    ctx.valueMap[v] = ref;
    return ref;
}

Pred
Lowering::predAnd(RegionCtx &ctx, const Pred &a, const Pred &b)
{
    if (a.always)
        return b;
    if (b.always)
        return a;
    Node *n = ctx.region->task->addCompute(Op::And, ir::Type::i1(), "p.and");
    n->addInput(a.ref.node, a.ref.out);
    n->addInput(b.ref.node, b.ref.out);
    return Pred{false, {n, 0}};
}

Pred
Lowering::predOr(RegionCtx &ctx, const Pred &a, const Pred &b)
{
    if (a.always || b.always)
        return Pred{};
    Node *n = ctx.region->task->addCompute(Op::Or, ir::Type::i1(), "p.or");
    n->addInput(a.ref.node, a.ref.out);
    n->addInput(b.ref.node, b.ref.out);
    return Pred{false, {n, 0}};
}

Pred
Lowering::predNot(RegionCtx &ctx, const Pred &a)
{
    muir_assert(!a.always, "NOT of always-predicate");
    if (ctx.boolOne == nullptr)
        ctx.boolOne = ctx.region->task->addConstInt(ir::Type::i1(), 1);
    Node *n = ctx.region->task->addCompute(Op::Xor, ir::Type::i1(),
                                           "p.not");
    n->addInput(a.ref.node, a.ref.out);
    n->addInput(ctx.boolOne, 0);
    return Pred{false, {n, 0}};
}

void
Lowering::mergeIntoBlock(RegionCtx &ctx, BasicBlock *target,
                         const Pred &contribution)
{
    auto it = ctx.blockPred.find(target);
    if (it == ctx.blockPred.end()) {
        ctx.blockPred[target] = contribution;
    } else if (ctx.blockReached[target]) {
        it->second = predOr(ctx, it->second, contribution);
    } else {
        it->second = contribution;
    }
    ctx.blockReached[target] = true;
}

Pred
Lowering::edgePred(RegionCtx &ctx, const Pred &src_pred, const Pred &cond,
                   bool negate)
{
    Pred c = negate ? predNot(ctx, cond) : cond;
    return predAnd(ctx, src_pred, c);
}

Node *
Lowering::makeChildCall(Region &parent, RegionCtx &ctx, Region &child,
                        bool spawn, const Pred &pred)
{
    Node *call = parent.task->addChildCall(
        child.task, spawn, "call_" + child.task->name());
    for (const ir::Value *v : child.liveInValues) {
        Node::PortRef ref = mapValue(parent, ctx, v);
        call->addInput(ref.node, ref.out);
    }
    if (!pred.always)
        call->setGuard(pred.ref.node, pred.ref.out);
    ctx.lastCall = call;

    // Loop live-outs (escaping phis) become visible in the parent as
    // the call's output ports.
    for (unsigned k = 0; k < child.escapingPhis.size(); ++k)
        ctx.valueMap[child.escapingPhis[k]] = {call, k};
    return call;
}

void
Lowering::lowerBlock(Region &region, RegionCtx &ctx, BasicBlock *bb)
{
    Pred pred = ctx.blockPred.at(bb);

    // Join phis: fold incoming values with edge-predicate selects.
    // (Header phis of loop regions were absorbed by matchLoopControl.)
    for (const auto &inst : bb->insts()) {
        if (inst->op() != Op::Phi)
            break;
        muir_assert(inst->numIncoming() >= 1, "empty phi");
        Node::PortRef acc;
        bool first = true;
        for (unsigned i = 0; i < inst->numIncoming(); ++i) {
            BasicBlock *in_bb = inst->incomingBlock(i);
            muir_assert(std::find(region.ownBlocks.begin(),
                                  region.ownBlocks.end(), in_bb) !=
                            region.ownBlocks.end(),
                        "phi %%%s: incoming across region boundary",
                        inst->name().c_str());
            Node::PortRef val =
                mapValue(region, ctx, inst->incomingValue(i));
            if (first) {
                acc = val;
                first = false;
                continue;
            }
            // Edge-active predicate for this incoming edge.
            const Instruction *in_term = in_bb->terminator();
            Pred src = ctx.blockPred.count(in_bb) ? ctx.blockPred[in_bb]
                                                  : Pred{};
            Pred edge = src;
            if (in_term->op() == Op::CondBr) {
                Pred cond{false,
                          mapValue(region, ctx, in_term->operand(0))};
                bool taken_true = in_term->successor(0) == bb;
                edge = edgePred(ctx, src, cond, !taken_true);
            }
            if (edge.always) {
                // Unconditional later edge dominates: just take it.
                acc = val;
                continue;
            }
            Node *sel = region.task->addCompute(Op::Select, inst->type(),
                                                inst->name() + ".mux");
            sel->addInput(edge.ref.node, edge.ref.out);
            sel->addInput(val.node, val.out);
            sel->addInput(acc.node, acc.out);
            acc = {sel, 0};
        }
        ctx.valueMap[inst.get()] = acc;
    }

    for (const auto &inst : bb->insts()) {
        if (inst->op() == Op::Phi || ctx.absorbed.count(inst.get()))
            continue;
        lowerInst(region, ctx, *inst, pred);
    }
}

void
Lowering::lowerInst(Region &region, RegionCtx &ctx,
                    const Instruction &inst, const Pred &pred)
{
    Task *task = region.task;
    auto mapIn = [&](unsigned i) {
        return mapValue(region, ctx, inst.operand(i));
    };
    auto guardIf = [&](Node *n) {
        if (!pred.always)
            n->setGuard(pred.ref.node, pred.ref.out);
    };

    switch (inst.op()) {
      case Op::Load:
      case Op::TLoad: {
        unsigned space =
            memObjectsByFn_.at(region.fn)->spaceForAccess(inst);
        Node *n = task->addLoad(inst.type(), space, inst.name());
        Node::PortRef addr = mapIn(0);
        n->addInput(addr.node, addr.out);
        guardIf(n);
        ctx.valueMap[&inst] = {n, 0};
        return;
      }
      case Op::Store:
      case Op::TStore: {
        unsigned space =
            memObjectsByFn_.at(region.fn)->spaceForAccess(inst);
        Node *n = task->addStore(space, fmt("st%u", task->numNodes()));
        Node::PortRef val = mapIn(0);
        Node::PortRef addr = mapIn(1);
        n->addInput(val.node, val.out);
        n->addInput(addr.node, addr.out);
        guardIf(n);
        return;
      }
      case Op::Br: {
        BasicBlock *target = inst.successor(0);
        auto lit = loopEntry_.find(target);
        if (lit != loopEntry_.end()) {
            Region *loop_region = lit->second;
            makeChildCall(region, ctx, *loop_region, /*spawn=*/false,
                          pred);
            // Control continues at the loop's exit block.
            mergeIntoBlock(ctx, loop_region->exitBlock, pred);
        } else {
            mergeIntoBlock(ctx, target, pred);
        }
        return;
      }
      case Op::CondBr: {
        Pred cond{false, mapValue(region, ctx, inst.operand(0))};
        for (unsigned s = 0; s < 2; ++s) {
            BasicBlock *target = inst.successor(s);
            Pred edge = edgePred(ctx, pred, cond, s == 1);
            auto lit = loopEntry_.find(target);
            if (lit != loopEntry_.end()) {
                Region *loop_region = lit->second;
                makeChildCall(region, ctx, *loop_region, false, edge);
                mergeIntoBlock(ctx, loop_region->exitBlock, edge);
            } else {
                mergeIntoBlock(ctx, target, edge);
            }
        }
        return;
      }
      case Op::Detach: {
        Region *spawn_region = detachRegion_.at(&inst);
        makeChildCall(region, ctx, *spawn_region, /*spawn=*/true, pred);
        mergeIntoBlock(ctx, inst.successor(1), pred);
        return;
      }
      case Op::Reattach:
        return; // End of a spawn region's dataflow.
      case Op::Sync: {
        Node *n = task->addNode(NodeKind::SyncNode,
                                fmt("sync%u", task->numNodes()));
        n->setIrType(ir::Type::i1());
        if (ctx.lastCall != nullptr)
            n->addInput(ctx.lastCall, 0);
        guardIf(n);
        ctx.lastCall = n;
        mergeIntoBlock(ctx, inst.successor(0), pred);
        return;
      }
      case Op::Ret:
        muir_assert(region.retValue == nullptr,
                    "multiple value-returning rets in %s (non-canonical)",
                    region.fn->name().c_str());
        region.retValue =
            inst.numOperands() ? inst.operand(0) : nullptr;
        return;
      case Op::Call: {
        const ir::Function *callee = inst.callee();
        auto fit = funcRegion_.find(callee);
        if (fit == funcRegion_.end()) {
            Region *fr = buildRegions(*callee, TaskKind::Func);
            funcRegion_[callee] = fr;
            lowerRegion(*fr);
            fit = funcRegion_.find(callee);
        }
        Region *fr = fit->second;
        // Func live-ins start with out-of-region values which include
        // the callee's arguments; map arguments to the call operands.
        Node *call = task->addChildCall(fr->task, /*spawn=*/false,
                                        "call_" + callee->name());
        for (const ir::Value *v : fr->liveInValues) {
            const ir::Value *actual = v;
            if (auto *arg = dynamic_cast<const ir::Argument *>(v)) {
                muir_assert(arg->index() < inst.numOperands(),
                            "call arg mapping out of range");
                actual = inst.operand(arg->index());
            }
            Node::PortRef ref = mapValue(region, ctx, actual);
            call->addInput(ref.node, ref.out);
        }
        if (!pred.always)
            call->setGuard(pred.ref.node, pred.ref.out);
        ctx.lastCall = call;
        if (!inst.type().isVoid())
            ctx.valueMap[&inst] = {call, 0};
        return;
      }
      default: {
        muir_assert(ir::isComputeOp(inst.op()),
                    "lowerInst: unexpected op %s", ir::opName(inst.op()));
        Node *n = task->addCompute(inst.op(), inst.type(), inst.name());
        for (unsigned i = 0; i < inst.numOperands(); ++i) {
            Node::PortRef ref = mapIn(i);
            n->addInput(ref.node, ref.out);
        }
        ctx.valueMap[&inst] = {n, 0};
        return;
      }
    }
}

} // namespace

std::unique_ptr<uir::Accelerator>
lowerToUir(const ir::Module &module, const std::string &kernel,
           const LowerOptions &opts)
{
    Lowering lowering(module, opts);
    return lowering.run(kernel);
}

} // namespace muir::frontend
