/**
 * @file
 * μscope bench gate — the perf-regression observatory's CI tripwire.
 * Replays every built-in workload under two deterministic configs
 * (the untransformed baseline and the suite's standard μopt pipeline)
 * and compares achieved cycle counts exactly against a committed
 * goldens file, so any scheduler / pass / cost-model change that moves
 * performance shows up as a named, quantified delta instead of
 * silently drifting. The simulator is deterministic, so exact compare
 * is the right contract: every mismatch is a real behavior change.
 *
 * The library form exists so tests can drive the gate in-process
 * (including injecting a deliberate latency regression and asserting
 * the gate names the offending workloads); tools/muir_bench_gate.cc
 * is the thin CLI used by CI.
 */
#pragma once

#include <string>
#include <vector>

namespace muir::uir
{
class Accelerator;
}

namespace muir::gate
{

/** One (workload, pipeline) cell of the gate matrix. */
struct GateConfig
{
    std::string workload;
    /** Config label: "baseline" or "standard". */
    std::string config;
    /** μopt pipeline spec (uopt::buildPipeline syntax; "" = none). */
    std::string passes;
};

/**
 * The full gate matrix: for each built-in workload, the baseline plus
 * the suite-appropriate standard pipeline (Cilk programs tile their
 * spawned tasks, tensor workloads widen their datapaths, everything
 * else localizes + banks).
 */
std::vector<GateConfig> standardConfigs();

/**
 * Deliberate latency regression, for proving the gate trips. Two
 * forms: a pinned (structure, extra-latency) pair, or a seeded random
 * draw — SplitMix64 over (seed, cell key) picks one structure of each
 * design and an extra latency in [1, 8], so "the gate must trip"
 * tests don't have to hard-code structure names that vary per suite.
 */
struct Perturbation
{
    /** Structure name to slow down ("" = pick by seed). */
    std::string structure;
    /** Extra cycles added to its access latency (0 = pick by seed). */
    unsigned extraLatency = 0;
    /** Nonzero enables the seeded form (used where not pinned). */
    uint64_t seed = 0;

    bool active() const { return !structure.empty() || seed != 0; }
};

/**
 * Apply @p perturb to one design exactly as a gate cell would —
 * pinned or seeded by (seed, cell_key). Exposed so property tests can
 * derive the same deterministic design variants the gate measures.
 */
void perturbDesign(uir::Accelerator &accel, const Perturbation &perturb,
                   const std::string &cell_key);

/** Optional knobs for one gate run. */
struct GateOptions
{
    /** Restrict to one workload ("" = all). */
    std::string only;
    Perturbation perturb;
    /**
     * Concurrent cell measurements; 0 = resolveJobs (MUIR_JOBS, else
     * hardware concurrency). Rows come back in matrix order, so the
     * cycle result — table, goldens, JSON — is byte-identical at any
     * job count (wall-clock fields vary, of course).
     */
    unsigned jobs = 0;
    /**
     * μmeter wall-clock regression band, as a percentage over the
     * committed hostperf golden (e.g. 50 = tolerate up to +50%).
     * Negative disables the check; cells still record wall_ms and
     * sim_cycles_per_sec either way. Generous bands are the point:
     * wall time is machine-dependent, so this is a trend tripwire,
     * not an exact gate.
     */
    double wallBudgetPct = -1.0;
    /** bench/goldens/hostperf.json text (when wallBudgetPct >= 0). */
    std::string hostperfGoldens;
    /**
     * Wall-clock samples per cell (median is reported); clamped to
     * [1, 9]. The CLI uses 3 for --wall-budget / --update-hostperf
     * runs and 1 otherwise.
     */
    unsigned wallSamples = 1;
};

/** One measured cell, with its golden expectation when present. */
struct GateRow
{
    GateConfig config;
    uint64_t expected = 0;
    uint64_t actual = 0;
    /** False when the goldens file has no entry for this cell. */
    bool haveGolden = false;

    /** @name μmeter host-side measurements (vary run to run) @{ */
    /** Median wall-clock for the full cell (build + passes + sim). */
    double wallMs = 0.0;
    /** Simulated cycles per wall second, from the median sim time. */
    double simCyclesPerSec = 0.0;
    /** Sample stddev across the wall samples (0 for one sample). */
    double wallStddevMs = 0.0;
    /** Wall golden and verdict, when a wall-budget check ran. */
    double wallGoldenMs = 0.0;
    bool haveWallGolden = false;
    bool wallPass = true;
    /** @} */

    bool pass() const { return haveGolden && expected == actual; }
};

/** Outcome of one gate run. */
struct GateResult
{
    /** True when every cell matched and no goldens went stale. */
    bool ok = false;
    /** Non-empty on input errors (unreadable/invalid goldens). */
    std::string error;
    std::vector<GateRow> rows;
    /** Golden keys that no measured cell exercised (stale entries). */
    std::vector<std::string> stale;
    /** True when a --wall-budget check ran (and its band). */
    bool wallChecked = false;
    double wallBudgetPct = 0.0;

    /** Mismatch rows as a readable delta table plus a verdict line. */
    std::string renderTable() const;
    /**
     * Machine-readable form of the same result. Host-side fields
     * (wall_ms, sim_cycles_per_sec, ...) vary run to run; tests that
     * byte-compare two runs pass includeHost = false.
     */
    std::string toJson(bool includeHost = true) const;
};

/**
 * Measure the gate matrix and compare against @p goldens_json (the
 * committed bench/goldens/cycles.json text). Never throws: input
 * problems come back in GateResult::error.
 */
GateResult runGate(const std::string &goldens_json,
                   const GateOptions &opts = {});

/** Measure the matrix without comparing (the --update path). */
std::vector<GateRow> measureGate(const GateOptions &opts = {});

/** Serialize measured rows as a goldens file (schema v1). */
std::string goldensJson(const std::vector<GateRow> &rows);

/**
 * Serialize measured rows as a wall-clock goldens file (schema
 * muir.hostperf.gate.v1, the committed bench/goldens/hostperf.json).
 * Kept separate from the cycle goldens: cycles are exact and
 * machine-independent, wall time is neither.
 */
std::string hostperfGoldensJson(const std::vector<GateRow> &rows);

} // namespace muir::gate
