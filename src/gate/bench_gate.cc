#include "gate/bench_gate.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "support/json.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "uopt/pipeline.hh"
#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace muir::gate
{

namespace
{

constexpr const char *kSchema = "muir.bench_gate.v1";
constexpr const char *kHostperfSchema = "muir.hostperf.gate.v1";

std::string
cellKey(const std::string &workload, const std::string &config)
{
    return workload + "/" + config;
}

std::string
cellKey(const GateConfig &config)
{
    return cellKey(config.workload, config.config);
}

/** The standard pipeline Figure 17's stacked results use per suite. */
std::string
standardPasses(const workloads::Workload &w)
{
    if (w.suite == workloads::Suite::Cilk)
        return "queue,tile:4,bank:4,fusion";
    if (w.usesTensor)
        return "queue,localize,fusion,tensor";
    return "queue,localize,bank:4,fusion";
}

/** Stable 64-bit key hash (FNV-1a) so seeded perturbation picks the
 *  same site per cell on every platform. */
uint64_t
cellHash(const std::string &key)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (char c : key)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ull;
    return h;
}

/** Apply a perturbation to one design (pinned or seeded form). */
void
applyPerturbation(uir::Accelerator &accel, const Perturbation &perturb,
                  const std::string &cell_key)
{
    if (!perturb.structure.empty()) {
        // Pinned form. Absent structures are fine: the perturbation
        // names one structure but scratchpad/cache splits vary per
        // suite, so it lands on the designs that actually have it.
        if (uir::Structure *s =
                accel.structureByName(perturb.structure))
            s->setLatency(s->latency() + perturb.extraLatency);
        return;
    }
    // Seeded form: SplitMix64 over (seed, cell) picks one non-DRAM
    // structure and an extra latency in [1, 8] — deterministic per
    // cell, independent of measurement order and job count.
    SplitMix64 rng(perturb.seed ^ cellHash(cell_key));
    std::vector<uir::Structure *> candidates;
    for (const auto &s : accel.structures())
        if (s->kind() != uir::StructureKind::Dram)
            candidates.push_back(s.get());
    if (candidates.empty())
        return;
    uir::Structure *s = candidates[rng.below(candidates.size())];
    unsigned extra = perturb.extraLatency
                         ? perturb.extraLatency
                         : static_cast<unsigned>(1 + rng.below(8));
    s->setLatency(s->latency() + extra);
}

/**
 * Build, transform, and perturb one cell's design once, then sample
 * the simulate phase @p samples times. The first sample records the
 * DDG and keeps the compiled replay index; later samples hand it back
 * (the compiled path µserve replays take), so resampling measures the
 * steady-state replay rather than re-recording the same graph. Cycles
 * are identical either way — the compiled replay is bit-exact — and
 * the first (recording) sample keeps the medians honest about the
 * cold path. On a pipeline or functional-check failure the row's
 * cycles stay 0, which any golden comparison reports as a mismatch.
 */
void
measureCellInto(const GateConfig &config, const Perturbation &perturb,
                unsigned samples, GateRow *row)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point t0 = Clock::now();
    auto w = workloads::buildWorkload(config.workload);
    auto accel = workloads::lowerBaseline(w);
    if (!config.passes.empty()) {
        uopt::PassManager pm;
        std::string pipe_error;
        if (!uopt::buildPipeline(pm, config.passes, &pipe_error))
            return;
        pm.run(*accel);
    }
    if (perturb.active())
        applyPerturbation(*accel, perturb, cellKey(config));
    double build_ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count();

    // Cycles are deterministic, so resampling only serves the
    // wall-clock columns: report the median wall (robust to one
    // descheduled sample) and the spread across samples.
    std::vector<double> walls, sims;
    Welford spread;
    std::shared_ptr<const sim::CompiledDdg> compiled;
    for (unsigned s = 0; s < samples; ++s) {
        workloads::RunOptions ro;
        if (compiled)
            ro.compiled = compiled.get();
        else
            ro.keepCompiled = true;
        Clock::time_point sim0 = Clock::now();
        auto run = workloads::runOn(w, *accel, ro);
        double sim_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - sim0)
                            .count();
        if (!run.check.empty())
            return;
        if (!compiled)
            compiled = run.compiled;
        row->actual = run.cycles;
        walls.push_back(build_ms + sim_ms);
        sims.push_back(sim_ms);
        spread.add(build_ms + sim_ms);
    }
    std::sort(walls.begin(), walls.end());
    std::sort(sims.begin(), sims.end());
    row->wallMs = walls[walls.size() / 2];
    row->wallStddevMs = spread.stddev();
    double sim_ms = sims[sims.size() / 2];
    if (sim_ms > 0.0)
        row->simCyclesPerSec =
            static_cast<double>(row->actual) / (sim_ms / 1000.0);
}

} // namespace

void
perturbDesign(uir::Accelerator &accel, const Perturbation &perturb,
              const std::string &cell_key)
{
    applyPerturbation(accel, perturb, cell_key);
}

std::vector<GateConfig>
standardConfigs()
{
    std::vector<GateConfig> configs;
    for (const auto &name : workloads::workloadNames()) {
        auto w = workloads::buildWorkload(name);
        configs.push_back({name, "baseline", ""});
        configs.push_back({name, "standard", standardPasses(w)});
    }
    return configs;
}

std::vector<GateRow>
measureGate(const GateOptions &opts)
{
    std::vector<GateConfig> configs;
    for (const auto &config : standardConfigs()) {
        if (!opts.only.empty() && config.workload != opts.only)
            continue;
        configs.push_back(config);
    }
    unsigned samples = std::min(9u, std::max(1u, opts.wallSamples));
    // Each cell builds its own workload, design, and memory image, so
    // cells are independent; rows land in matrix order regardless of
    // completion order.
    return parallelMap<GateRow>(
        configs.size(), opts.jobs, [&](size_t i) {
            GateRow row;
            row.config = configs[i];
            measureCellInto(configs[i], opts.perturb, samples, &row);
            return row;
        });
}

std::string
goldensJson(const std::vector<GateRow> &rows)
{
    std::ostringstream os;
    JsonWriter jw(os);
    jw.beginObject();
    jw.field("schema", kSchema);
    jw.beginArray("entries");
    for (const auto &row : rows) {
        jw.beginObject();
        jw.field("workload", row.config.workload);
        jw.field("config", row.config.config);
        jw.field("passes", row.config.passes);
        jw.field("cycles", row.actual);
        jw.end();
    }
    jw.end();
    jw.end();
    os << "\n";
    return os.str();
}

std::string
hostperfGoldensJson(const std::vector<GateRow> &rows)
{
    std::ostringstream os;
    JsonWriter jw(os);
    jw.beginObject();
    jw.field("schema", kHostperfSchema);
    jw.beginArray("entries");
    for (const auto &row : rows) {
        jw.beginObject();
        jw.field("workload", row.config.workload);
        jw.field("config", row.config.config);
        jw.field("wall_ms", row.wallMs);
        jw.field("sim_cycles_per_sec", row.simCyclesPerSec);
        jw.end();
    }
    jw.end();
    jw.end();
    os << "\n";
    return os.str();
}

GateResult
runGate(const std::string &goldens_json, const GateOptions &opts)
{
    GateResult result;
    JsonValue goldens;
    std::string parse_error;
    if (!jsonParse(goldens_json, &goldens, &parse_error)) {
        result.error = "goldens: " + parse_error;
        return result;
    }
    const JsonValue *schema = goldens.get("schema");
    if (schema == nullptr || schema->asString() != kSchema) {
        result.error = std::string("goldens: expected schema ") +
                       kSchema;
        return result;
    }
    const JsonValue *entries = goldens.get("entries");
    if (entries == nullptr || !entries->isArray()) {
        result.error = "goldens: missing entries array";
        return result;
    }
    std::map<std::string, uint64_t> expected;
    for (const auto &e : entries->items) {
        const JsonValue *wl = e.get("workload");
        const JsonValue *config = e.get("config");
        const JsonValue *cycles = e.get("cycles");
        if (wl == nullptr || config == nullptr || cycles == nullptr) {
            result.error = "goldens: entry missing "
                           "workload/config/cycles";
            return result;
        }
        expected[cellKey(wl->asString(), config->asString())] =
            cycles->asU64();
    }

    // Optional μmeter wall-budget check: parse the committed hostperf
    // goldens up front so a malformed file fails before measuring.
    std::map<std::string, double> wall_goldens;
    bool wall_check = opts.wallBudgetPct >= 0.0;
    if (wall_check) {
        JsonValue hostperf;
        if (!jsonParse(opts.hostperfGoldens, &hostperf,
                       &parse_error)) {
            result.error = "hostperf goldens: " + parse_error;
            return result;
        }
        const JsonValue *hp_schema = hostperf.get("schema");
        if (hp_schema == nullptr ||
            hp_schema->asString() != kHostperfSchema) {
            result.error =
                std::string("hostperf goldens: expected schema ") +
                kHostperfSchema;
            return result;
        }
        const JsonValue *hp_entries = hostperf.get("entries");
        if (hp_entries == nullptr || !hp_entries->isArray()) {
            result.error = "hostperf goldens: missing entries array";
            return result;
        }
        for (const auto &e : hp_entries->items) {
            const JsonValue *wl = e.get("workload");
            const JsonValue *config = e.get("config");
            const JsonValue *wall = e.get("wall_ms");
            if (wl == nullptr || config == nullptr || wall == nullptr) {
                result.error = "hostperf goldens: entry missing "
                               "workload/config/wall_ms";
                return result;
            }
            wall_goldens[cellKey(wl->asString(), config->asString())] =
                wall->asDouble();
        }
    }

    result.rows = measureGate(opts);
    std::map<std::string, bool> visited;
    bool all_pass = true;
    for (auto &row : result.rows) {
        std::string key =
            cellKey(row.config.workload, row.config.config);
        auto it = expected.find(key);
        if (it != expected.end()) {
            row.haveGolden = true;
            row.expected = it->second;
            visited[key] = true;
        }
        if (wall_check) {
            auto wt = wall_goldens.find(key);
            if (wt != wall_goldens.end()) {
                row.haveWallGolden = true;
                row.wallGoldenMs = wt->second;
                // A cell without a wall golden is not a failure (the
                // matrix can grow before the goldens do); only a
                // measured median beyond golden * (1 + band) plus an
                // absolute grace trips. The grace exists for the
                // sub-millisecond cells, whose medians jitter by whole
                // scheduler quanta — a pure percentage band flakes on
                // them, while any regression worth gating dwarfs 1 ms
                // on the multi-millisecond cells.
                constexpr double kWallGraceMs = 1.0;
                row.wallPass =
                    row.wallMs <=
                    row.wallGoldenMs *
                            (1.0 + opts.wallBudgetPct / 100.0) +
                        kWallGraceMs;
            }
        }
        all_pass = all_pass && row.pass() && row.wallPass;
    }
    // A full run must also exercise every golden: an entry nothing
    // measures means the matrix and the goldens have drifted apart.
    if (opts.only.empty())
        for (const auto &[key, cycles] : expected)
            if (!visited.count(key))
                result.stale.push_back(key);
    result.wallChecked = wall_check;
    result.wallBudgetPct = wall_check ? opts.wallBudgetPct : 0.0;
    result.ok = all_pass && result.stale.empty();
    return result;
}

std::string
GateResult::renderTable() const
{
    std::ostringstream os;
    if (!error.empty()) {
        os << "bench gate: " << error << "\n";
        return os.str();
    }
    AsciiTable t({"workload", "config", "golden", "actual", "delta"});
    size_t failures = 0;
    for (const auto &row : rows) {
        if (row.pass())
            continue;
        ++failures;
        t.addRow({row.config.workload, row.config.config,
                  row.haveGolden
                      ? fmt("%llu", (unsigned long long)row.expected)
                      : "(missing)",
                  fmt("%llu", (unsigned long long)row.actual),
                  row.haveGolden
                      ? fmt("%+lld", (long long)row.actual -
                                         (long long)row.expected)
                      : "n/a"});
    }
    if (failures > 0)
        os << t.render("bench gate: cycle regressions vs goldens");
    for (const auto &key : stale)
        os << "bench gate: stale golden entry " << key
           << " (no measured cell)\n";
    size_t wall_failures = 0;
    if (wallChecked) {
        AsciiTable wt({"workload", "config", "golden ms", "median ms",
                       "stddev", "delta"});
        for (const auto &row : rows) {
            if (row.wallPass)
                continue;
            ++wall_failures;
            wt.addRow({row.config.workload, row.config.config,
                       fmt("%.2f", row.wallGoldenMs),
                       fmt("%.2f", row.wallMs),
                       fmt("%.2f", row.wallStddevMs),
                       fmt("%+.1f%%",
                           row.wallGoldenMs > 0.0
                               ? 100.0 * (row.wallMs -
                                          row.wallGoldenMs) /
                                     row.wallGoldenMs
                               : 0.0)});
        }
        if (wall_failures > 0)
            os << wt.render(
                fmt("bench gate: wall-clock over budget (+%.0f%%)",
                    wallBudgetPct));
        os << fmt("bench gate: wall budget +%.0f%%: %zu cell(s) over\n",
                  wallBudgetPct, wall_failures);
    }
    os << fmt("bench gate: %zu config(s), %zu mismatch(es), %zu stale "
              "golden(s) -- %s\n",
              rows.size(), failures, stale.size(),
              ok ? "PASS" : "FAIL");
    return os.str();
}

std::string
GateResult::toJson(bool includeHost) const
{
    std::ostringstream os;
    JsonWriter jw(os);
    jw.beginObject();
    jw.field("ok", ok);
    if (!error.empty())
        jw.field("error", error);
    if (includeHost) {
        jw.field("wall_checked", wallChecked);
        jw.field("wall_budget_pct", wallBudgetPct);
    }
    jw.beginArray("rows");
    for (const auto &row : rows) {
        jw.beginObject();
        jw.field("workload", row.config.workload);
        jw.field("config", row.config.config);
        jw.field("passes", row.config.passes);
        jw.field("golden_present", row.haveGolden);
        jw.field("golden", row.expected);
        jw.field("actual", row.actual);
        jw.field("pass", row.pass());
        if (includeHost) {
            jw.field("wall_ms", row.wallMs);
            jw.field("sim_cycles_per_sec", row.simCyclesPerSec);
            jw.field("wall_stddev_ms", row.wallStddevMs);
            if (wallChecked) {
                jw.field("wall_golden_present", row.haveWallGolden);
                jw.field("wall_golden_ms", row.wallGoldenMs);
                jw.field("wall_pass", row.wallPass);
            }
        }
        jw.end();
    }
    jw.end();
    jw.beginArray("stale");
    for (const auto &key : stale)
        jw.value(key);
    jw.end();
    jw.end();
    os << "\n";
    return os.str();
}

} // namespace muir::gate
