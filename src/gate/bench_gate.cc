#include "gate/bench_gate.hh"

#include <map>
#include <sstream>

#include "support/json.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "uopt/pipeline.hh"
#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace muir::gate
{

namespace
{

constexpr const char *kSchema = "muir.bench_gate.v1";

std::string
cellKey(const std::string &workload, const std::string &config)
{
    return workload + "/" + config;
}

std::string
cellKey(const GateConfig &config)
{
    return cellKey(config.workload, config.config);
}

/** The standard pipeline Figure 17's stacked results use per suite. */
std::string
standardPasses(const workloads::Workload &w)
{
    if (w.suite == workloads::Suite::Cilk)
        return "queue,tile:4,bank:4,fusion";
    if (w.usesTensor)
        return "queue,localize,fusion,tensor";
    return "queue,localize,bank:4,fusion";
}

/** Stable 64-bit key hash (FNV-1a) so seeded perturbation picks the
 *  same site per cell on every platform. */
uint64_t
cellHash(const std::string &key)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (char c : key)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ull;
    return h;
}

/** Apply a perturbation to one design (pinned or seeded form). */
void
applyPerturbation(uir::Accelerator &accel, const Perturbation &perturb,
                  const std::string &cell_key)
{
    if (!perturb.structure.empty()) {
        // Pinned form. Absent structures are fine: the perturbation
        // names one structure but scratchpad/cache splits vary per
        // suite, so it lands on the designs that actually have it.
        if (uir::Structure *s =
                accel.structureByName(perturb.structure))
            s->setLatency(s->latency() + perturb.extraLatency);
        return;
    }
    // Seeded form: SplitMix64 over (seed, cell) picks one non-DRAM
    // structure and an extra latency in [1, 8] — deterministic per
    // cell, independent of measurement order and job count.
    SplitMix64 rng(perturb.seed ^ cellHash(cell_key));
    std::vector<uir::Structure *> candidates;
    for (const auto &s : accel.structures())
        if (s->kind() != uir::StructureKind::Dram)
            candidates.push_back(s.get());
    if (candidates.empty())
        return;
    uir::Structure *s = candidates[rng.below(candidates.size())];
    unsigned extra = perturb.extraLatency
                         ? perturb.extraLatency
                         : static_cast<unsigned>(1 + rng.below(8));
    s->setLatency(s->latency() + extra);
}

/** Build, transform, perturb, and simulate one cell. */
uint64_t
measureCell(const GateConfig &config, const Perturbation &perturb,
            std::string *error)
{
    auto w = workloads::buildWorkload(config.workload);
    auto accel = workloads::lowerBaseline(w);
    if (!config.passes.empty()) {
        uopt::PassManager pm;
        std::string pipe_error;
        if (!uopt::buildPipeline(pm, config.passes, &pipe_error)) {
            *error = config.workload + ": " + pipe_error;
            return 0;
        }
        pm.run(*accel);
    }
    if (perturb.active())
        applyPerturbation(*accel, perturb, cellKey(config));
    auto run = workloads::runOn(w, *accel);
    if (!run.check.empty()) {
        *error = config.workload + " (" + config.config +
                 "): functional check failed: " + run.check;
        return 0;
    }
    return run.cycles;
}

} // namespace

void
perturbDesign(uir::Accelerator &accel, const Perturbation &perturb,
              const std::string &cell_key)
{
    applyPerturbation(accel, perturb, cell_key);
}

std::vector<GateConfig>
standardConfigs()
{
    std::vector<GateConfig> configs;
    for (const auto &name : workloads::workloadNames()) {
        auto w = workloads::buildWorkload(name);
        configs.push_back({name, "baseline", ""});
        configs.push_back({name, "standard", standardPasses(w)});
    }
    return configs;
}

std::vector<GateRow>
measureGate(const GateOptions &opts)
{
    std::vector<GateConfig> configs;
    for (const auto &config : standardConfigs()) {
        if (!opts.only.empty() && config.workload != opts.only)
            continue;
        configs.push_back(config);
    }
    // Each cell builds its own workload, design, and memory image, so
    // cells are independent; rows land in matrix order regardless of
    // completion order.
    return parallelMap<GateRow>(
        configs.size(), opts.jobs, [&](size_t i) {
            GateRow row;
            row.config = configs[i];
            std::string error;
            row.actual = measureCell(configs[i], opts.perturb, &error);
            return row;
        });
}

std::string
goldensJson(const std::vector<GateRow> &rows)
{
    std::ostringstream os;
    JsonWriter jw(os);
    jw.beginObject();
    jw.field("schema", kSchema);
    jw.beginArray("entries");
    for (const auto &row : rows) {
        jw.beginObject();
        jw.field("workload", row.config.workload);
        jw.field("config", row.config.config);
        jw.field("passes", row.config.passes);
        jw.field("cycles", row.actual);
        jw.end();
    }
    jw.end();
    jw.end();
    os << "\n";
    return os.str();
}

GateResult
runGate(const std::string &goldens_json, const GateOptions &opts)
{
    GateResult result;
    JsonValue goldens;
    std::string parse_error;
    if (!jsonParse(goldens_json, &goldens, &parse_error)) {
        result.error = "goldens: " + parse_error;
        return result;
    }
    const JsonValue *schema = goldens.get("schema");
    if (schema == nullptr || schema->asString() != kSchema) {
        result.error = std::string("goldens: expected schema ") +
                       kSchema;
        return result;
    }
    const JsonValue *entries = goldens.get("entries");
    if (entries == nullptr || !entries->isArray()) {
        result.error = "goldens: missing entries array";
        return result;
    }
    std::map<std::string, uint64_t> expected;
    for (const auto &e : entries->items) {
        const JsonValue *wl = e.get("workload");
        const JsonValue *config = e.get("config");
        const JsonValue *cycles = e.get("cycles");
        if (wl == nullptr || config == nullptr || cycles == nullptr) {
            result.error = "goldens: entry missing "
                           "workload/config/cycles";
            return result;
        }
        expected[cellKey(wl->asString(), config->asString())] =
            cycles->asU64();
    }

    result.rows = measureGate(opts);
    std::map<std::string, bool> visited;
    bool all_pass = true;
    for (auto &row : result.rows) {
        std::string key =
            cellKey(row.config.workload, row.config.config);
        auto it = expected.find(key);
        if (it != expected.end()) {
            row.haveGolden = true;
            row.expected = it->second;
            visited[key] = true;
        }
        all_pass = all_pass && row.pass();
    }
    // A full run must also exercise every golden: an entry nothing
    // measures means the matrix and the goldens have drifted apart.
    if (opts.only.empty())
        for (const auto &[key, cycles] : expected)
            if (!visited.count(key))
                result.stale.push_back(key);
    result.ok = all_pass && result.stale.empty();
    return result;
}

std::string
GateResult::renderTable() const
{
    std::ostringstream os;
    if (!error.empty()) {
        os << "bench gate: " << error << "\n";
        return os.str();
    }
    AsciiTable t({"workload", "config", "golden", "actual", "delta"});
    size_t failures = 0;
    for (const auto &row : rows) {
        if (row.pass())
            continue;
        ++failures;
        t.addRow({row.config.workload, row.config.config,
                  row.haveGolden
                      ? fmt("%llu", (unsigned long long)row.expected)
                      : "(missing)",
                  fmt("%llu", (unsigned long long)row.actual),
                  row.haveGolden
                      ? fmt("%+lld", (long long)row.actual -
                                         (long long)row.expected)
                      : "n/a"});
    }
    if (failures > 0)
        os << t.render("bench gate: cycle regressions vs goldens");
    for (const auto &key : stale)
        os << "bench gate: stale golden entry " << key
           << " (no measured cell)\n";
    os << fmt("bench gate: %zu config(s), %zu mismatch(es), %zu stale "
              "golden(s) -- %s\n",
              rows.size(), failures, stale.size(),
              ok ? "PASS" : "FAIL");
    return os.str();
}

std::string
GateResult::toJson() const
{
    std::ostringstream os;
    JsonWriter jw(os);
    jw.beginObject();
    jw.field("ok", ok);
    if (!error.empty())
        jw.field("error", error);
    jw.beginArray("rows");
    for (const auto &row : rows) {
        jw.beginObject();
        jw.field("workload", row.config.workload);
        jw.field("config", row.config.config);
        jw.field("passes", row.config.passes);
        jw.field("golden_present", row.haveGolden);
        jw.field("golden", row.expected);
        jw.field("actual", row.actual);
        jw.field("pass", row.pass());
        jw.end();
    }
    jw.end();
    jw.beginArray("stale");
    for (const auto &key : stale)
        jw.value(key);
    jw.end();
    jw.end();
    os << "\n";
    return os.str();
}

} // namespace muir::gate
