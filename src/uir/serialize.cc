#include "uir/serialize.hh"

#include <map>
#include <sstream>
#include <vector>

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::uir
{

namespace
{

// ---------------------------------------------------------------- types

std::string
typeStr(const ir::Type &t)
{
    switch (t.kind()) {
      case ir::Type::Kind::Void:
        return "void";
      case ir::Type::Kind::Int:
        return fmt("i%u", t.bits());
      case ir::Type::Kind::Float:
        return "f32";
      case ir::Type::Kind::Ptr:
        return "ptr:" + typeStr(t.pointee());
      case ir::Type::Kind::Tensor:
        return fmt("t:%ux%ux%c", t.rows(), t.cols(),
                   t.tensorElemFloat() ? 'f' : 'i');
    }
    return "void";
}

ir::Type
parseType(const std::string &s)
{
    if (s == "void")
        return ir::Type::voidTy();
    if (s == "f32")
        return ir::Type::f32();
    if (s[0] == 'i')
        return ir::Type::intTy(std::atoi(s.c_str() + 1));
    if (startsWith(s, "ptr:"))
        return ir::Type::ptrTo(parseType(s.substr(4)));
    if (startsWith(s, "t:")) {
        unsigned r = 0, c = 0;
        char f = 'f';
        if (std::sscanf(s.c_str(), "t:%ux%ux%c", &r, &c, &f) != 3)
            muir_fatal("bad tensor type '%s'", s.c_str());
        return ir::Type::tensor(r, c, f == 'f');
    }
    muir_fatal("bad type '%s'", s.c_str());
}

// ------------------------------------------------------- key=value lines

/** Split "key=value" tokens of one line (values cannot hold spaces). */
std::map<std::string, std::string>
fields(const std::vector<std::string> &tokens, size_t from)
{
    std::map<std::string, std::string> out;
    for (size_t i = from; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string::npos)
            continue;
        out[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    return out;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        tokens.push_back(tok);
    return tokens;
}

const std::string &
need(const std::map<std::string, std::string> &kv, const char *key,
     const std::string &line)
{
    auto it = kv.find(key);
    if (it == kv.end())
        muir_fatal("serialize: missing '%s' in: %s", key, line.c_str());
    return it->second;
}

// -------------------------------------------------------------- emitters

void
emitStructure(std::ostringstream &os, const Structure &s)
{
    os << "structure " << s.name() << " kind="
       << structureKindName(s.kind()) << " banks=" << s.banks()
       << " ports=" << s.portsPerBank() << " wide=" << s.wideWords()
       << " lat=" << s.latency() << " size=" << s.sizeKb() << " ways="
       << s.ways() << " line=" << s.lineBytes() << " miss="
       << s.missLatency() << " bpc=" << s.bytesPerCycle();
    if (!s.spaces().empty())
        os << " spaces=" << join(s.spaces(), ",");
    os << "\n";
}

void
emitNode(std::ostringstream &os, const Node &n,
         const std::map<const Node *, unsigned> &seq)
{
    os << "  node " << seq.at(&n) << " name=" << n.name() << " kind="
       << nodeKindName(n.kind()) << " type=" << typeStr(n.irType());
    switch (n.kind()) {
      case NodeKind::Compute:
        os << " op=" << ir::opName(n.op());
        break;
      case NodeKind::Fused: {
        std::vector<std::string> uops;
        for (const auto &mop : n.microOps()) {
            uops.push_back(fmt("%s~%s~%s", ir::opName(mop.op),
                               typeStr(mop.type).c_str(),
                               join(mop.srcs, ".").c_str()));
        }
        os << " uops=" << join(uops, "|");
        break;
      }
      case NodeKind::ConstNode:
        if (n.constIsFloat())
            os << " fval=" << fmt("%.17g", n.constFp());
        else
            os << " ival=" << n.constInt();
        break;
      case NodeKind::GlobalAddr:
        os << " global=" << n.global()->name();
        break;
      case NodeKind::Load:
      case NodeKind::Store:
        os << " space=" << n.memSpace();
        break;
      case NodeKind::LoopControl:
        os << " carried=" << n.numCarried() << " stages="
           << n.ctrlStages();
        break;
      case NodeKind::ChildCall:
        os << " callee=" << n.callee()->name() << " spawn="
           << (n.isSpawn() ? 1 : 0);
        break;
      default:
        break;
    }
    if (!n.inputs().empty()) {
        std::vector<std::string> ins;
        for (const auto &ref : n.inputs())
            ins.push_back(fmt("%u:%u", seq.at(ref.node), ref.out));
        os << " in=" << join(ins, ",");
    }
    if (n.guard().valid())
        os << " guard=" << seq.at(n.guard().node) << ":"
           << n.guard().out;
    os << "\n";
}

} // namespace

std::string
serialize(const Accelerator &accel)
{
    std::ostringstream os;
    os << "# µIR graph (textual checkpoint)\n";
    os << "accelerator " << accel.name() << "\n";
    for (const auto &s : accel.structures())
        emitStructure(os, *s);
    // Declare all tasks before node bodies so callee references always
    // resolve.
    for (const auto &t : accel.tasks()) {
        os << "task " << t->name() << " kind=" << taskKindName(t->kind())
           << " tiles=" << t->numTiles() << " queue=" << t->queueDepth()
           << " decoupled=" << (t->decoupled() ? 1 : 0) << " jr="
           << t->junctionReadPorts() << " jw="
           << t->junctionWritePorts();
        if (t->parentTask())
            os << " parent=" << t->parentTask()->name();
        os << "\n";
    }
    for (const auto &t : accel.tasks()) {
        os << "body " << t->name() << "\n";
        // Normalized sequential ids (raw ids may have gaps after
        // passes delete nodes), so a reload re-serializes identically.
        std::map<const Node *, unsigned> seq;
        for (const auto &n : t->nodes())
            seq.emplace(n.get(), unsigned(seq.size()));
        for (const auto &n : t->nodes())
            emitNode(os, *n, seq);
        os << "end\n";
    }
    os << "root " << accel.root()->name() << "\n";
    return os.str();
}

std::unique_ptr<Accelerator>
deserialize(const std::string &text, const ir::Module *source)
{
    std::unique_ptr<Accelerator> accel;
    Task *body_task = nullptr;
    std::map<const Task *, std::map<unsigned, Node *>> node_by_id;
    // Deferred edges: (task, consumer, slot-or-guard, producer id, out).
    struct Edge
    {
        Task *task;
        Node *consumer;
        bool is_guard;
        unsigned producer_id;
        unsigned out;
    };
    std::vector<Edge> edges;
    // Parent tasks may be declared after their children (the front end
    // creates children first); resolve at the end.
    std::vector<std::pair<Task *, std::string>> parent_fixups;

    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &head = tokens[0];

        if (head == "accelerator") {
            muir_assert(tokens.size() >= 2, "bad accelerator line");
            accel = std::make_unique<Accelerator>(tokens[1], source);
        } else if (head == "structure") {
            muir_assert(accel && tokens.size() >= 2, "structure before "
                        "accelerator");
            auto kv = fields(tokens, 2);
            const std::string &kind_s = need(kv, "kind", line);
            StructureKind kind = StructureKind::Scratchpad;
            if (kind_s == "cache")
                kind = StructureKind::Cache;
            else if (kind_s == "dram")
                kind = StructureKind::Dram;
            Structure *s = accel->addStructure(kind, tokens[1]);
            s->setBanks(std::atoi(need(kv, "banks", line).c_str()));
            s->setPortsPerBank(
                std::atoi(need(kv, "ports", line).c_str()));
            s->setWideWords(std::atoi(need(kv, "wide", line).c_str()));
            s->setLatency(std::atoi(need(kv, "lat", line).c_str()));
            s->setSizeKb(std::atoi(need(kv, "size", line).c_str()));
            s->setWays(std::atoi(need(kv, "ways", line).c_str()));
            s->setLineBytes(std::atoi(need(kv, "line", line).c_str()));
            s->setMissLatency(std::atoi(need(kv, "miss", line).c_str()));
            s->setBytesPerCycle(std::atof(need(kv, "bpc", line).c_str()));
            if (kv.count("spaces"))
                for (const auto &sp : split(kv["spaces"], ','))
                    s->addSpace(std::atoi(sp.c_str()));
        } else if (head == "task") {
            muir_assert(accel && tokens.size() >= 2, "task before "
                        "accelerator");
            auto kv = fields(tokens, 2);
            const std::string &kind_s = need(kv, "kind", line);
            TaskKind kind = TaskKind::Root;
            if (kind_s == "loop")
                kind = TaskKind::Loop;
            else if (kind_s == "spawn")
                kind = TaskKind::Spawn;
            else if (kind_s == "func")
                kind = TaskKind::Func;
            Task *t = accel->addTask(kind, tokens[1], nullptr);
            if (kv.count("parent"))
                parent_fixups.emplace_back(t, kv["parent"]);
            t->setNumTiles(std::atoi(need(kv, "tiles", line).c_str()));
            t->setQueueDepth(std::atoi(need(kv, "queue", line).c_str()));
            t->setDecoupled(need(kv, "decoupled", line) == "1");
            t->setJunctionPorts(std::atoi(need(kv, "jr", line).c_str()),
                                std::atoi(need(kv, "jw", line).c_str()));
        } else if (head == "body") {
            muir_assert(accel && tokens.size() >= 2, "bad body line");
            body_task = accel->taskByName(tokens[1]);
            muir_assert(body_task != nullptr, "body for unknown task %s",
                        tokens[1].c_str());
        } else if (head == "node") {
            muir_assert(body_task != nullptr, "node outside body");
            muir_assert(tokens.size() >= 2, "bad node line");
            unsigned orig_id = std::atoi(tokens[1].c_str());
            auto kv = fields(tokens, 2);
            const std::string &kind_s = need(kv, "kind", line);
            const std::string &name = need(kv, "name", line);
            ir::Type type = parseType(need(kv, "type", line));

            Node *n = nullptr;
            if (kind_s == "compute") {
                // Resolve the opcode by name.
                ir::Op op = ir::Op::Add;
                bool found = false;
                for (int o = 0; o <= int(ir::Op::TRelu); ++o) {
                    if (need(kv, "op", line) ==
                        ir::opName(static_cast<ir::Op>(o))) {
                        op = static_cast<ir::Op>(o);
                        found = true;
                        break;
                    }
                }
                muir_assert(found, "unknown op '%s'",
                            need(kv, "op", line).c_str());
                n = body_task->addCompute(op, type, name);
            } else if (kind_s == "fused") {
                n = body_task->addNode(NodeKind::Fused, name);
                n->setIrType(type);
                for (const auto &uop_s :
                     split(need(kv, "uops", line), '|')) {
                    auto parts = split(uop_s, '~');
                    muir_assert(parts.size() == 3, "bad uop '%s'",
                                uop_s.c_str());
                    Node::MicroOp mop;
                    bool found = false;
                    for (int o = 0; o <= int(ir::Op::TRelu); ++o) {
                        if (parts[0] ==
                            ir::opName(static_cast<ir::Op>(o))) {
                            mop.op = static_cast<ir::Op>(o);
                            found = true;
                            break;
                        }
                    }
                    muir_assert(found, "unknown uop '%s'",
                                parts[0].c_str());
                    mop.type = parseType(parts[1]);
                    if (!parts[2].empty())
                        for (const auto &src : split(parts[2], '.'))
                            mop.srcs.push_back(std::atoi(src.c_str()));
                    n->microOps().push_back(std::move(mop));
                }
            } else if (kind_s == "const") {
                if (kv.count("fval"))
                    n = body_task->addConstFp(std::atof(
                        kv["fval"].c_str()));
                else
                    n = body_task->addConstInt(
                        type, std::atoll(need(kv, "ival", line).c_str()));
                n->setName(name);
            } else if (kind_s == "globaladdr") {
                muir_assert(source != nullptr,
                            "globaladdr needs a source module");
                const ir::GlobalArray *g =
                    source->global(need(kv, "global", line));
                muir_assert(g != nullptr, "unknown global '%s'",
                            need(kv, "global", line).c_str());
                n = body_task->addGlobalAddr(g);
                n->setName(name);
            } else if (kind_s == "load") {
                n = body_task->addLoad(
                    type, std::atoi(need(kv, "space", line).c_str()),
                    name);
            } else if (kind_s == "store") {
                n = body_task->addStore(
                    std::atoi(need(kv, "space", line).c_str()), name);
            } else if (kind_s == "livein") {
                n = body_task->addLiveIn(type, name);
            } else if (kind_s == "liveout") {
                n = body_task->addLiveOut(type, name);
            } else if (kind_s == "loopctrl") {
                n = body_task->addNode(NodeKind::LoopControl, name);
                n->setIrType(type);
                n->setNumCarried(
                    std::atoi(need(kv, "carried", line).c_str()));
                n->setCtrlStages(
                    std::atoi(need(kv, "stages", line).c_str()));
            } else if (kind_s == "childcall") {
                Task *callee =
                    accel->taskByName(need(kv, "callee", line));
                muir_assert(callee != nullptr, "unknown callee '%s'",
                            need(kv, "callee", line).c_str());
                n = body_task->addChildCall(
                    callee, need(kv, "spawn", line) == "1", name);
            } else if (kind_s == "sync") {
                n = body_task->addNode(NodeKind::SyncNode, name);
                n->setIrType(type);
            } else {
                muir_fatal("unknown node kind '%s'", kind_s.c_str());
            }
            node_by_id[body_task][orig_id] = n;

            if (kv.count("in")) {
                for (const auto &ref_s : split(kv["in"], ',')) {
                    auto rc = split(ref_s, ':');
                    muir_assert(rc.size() == 2, "bad input ref '%s'",
                                ref_s.c_str());
                    edges.push_back({body_task, n, false,
                                     unsigned(std::atoi(rc[0].c_str())),
                                     unsigned(std::atoi(rc[1].c_str()))});
                }
            }
            if (kv.count("guard")) {
                auto rc = split(kv["guard"], ':');
                muir_assert(rc.size() == 2, "bad guard ref");
                edges.push_back({body_task, n, true,
                                 unsigned(std::atoi(rc[0].c_str())),
                                 unsigned(std::atoi(rc[1].c_str()))});
            }
        } else if (head == "end") {
            body_task = nullptr;
        } else if (head == "root") {
            muir_assert(accel && tokens.size() >= 2, "bad root line");
            Task *root = accel->taskByName(tokens[1]);
            muir_assert(root != nullptr, "unknown root '%s'",
                        tokens[1].c_str());
            accel->setRoot(root);
        } else {
            muir_fatal("serialize: unknown directive '%s'", head.c_str());
        }
    }
    muir_assert(accel != nullptr, "no accelerator in input");

    for (auto &[task, parent_name] : parent_fixups) {
        Task *parent = accel->taskByName(parent_name);
        muir_assert(parent != nullptr, "unknown parent task '%s'",
                    parent_name.c_str());
        task->setParentTask(parent);
    }

    // Wire deferred edges (producers may appear after consumers only
    // for loop back edges, which is why edges are deferred wholesale).
    for (const Edge &e : edges) {
        auto &ids = node_by_id[e.task];
        auto it = ids.find(e.producer_id);
        muir_assert(it != ids.end(), "dangling node ref %u in task %s",
                    e.producer_id, e.task->name().c_str());
        if (e.is_guard)
            e.consumer->setGuard(it->second, e.out);
        else
            e.consumer->addInput(it->second, e.out);
    }
    return accel;
}

} // namespace muir::uir
