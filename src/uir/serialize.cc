#include "uir/serialize.hh"

#include <cstdlib>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::uir
{

namespace
{

// ---------------------------------------------------------------- types

std::string
typeStr(const ir::Type &t)
{
    switch (t.kind()) {
      case ir::Type::Kind::Void:
        return "void";
      case ir::Type::Kind::Int:
        return fmt("i%u", t.bits());
      case ir::Type::Kind::Float:
        return "f32";
      case ir::Type::Kind::Ptr:
        return "ptr:" + typeStr(t.pointee());
      case ir::Type::Kind::Tensor:
        return fmt("t:%ux%ux%c", t.rows(), t.cols(),
                   t.tensorElemFloat() ? 'f' : 'i');
    }
    return "void";
}

/** Recoverable parse problem; caught by deserializeOrError. */
struct ParseError
{
    unsigned line;
    std::string msg;
};

/** Strict decimal signed parse — atoi-with-junk is a silent zero. */
int64_t
parseInt(const std::string &s, const char *what, unsigned lineno)
{
    if (s.empty())
        throw ParseError{lineno, fmt("empty %s", what)};
    size_t i = s[0] == '-' ? 1 : 0;
    if (i == s.size())
        throw ParseError{lineno, fmt("bad %s '%s'", what, s.c_str())};
    int64_t v = 0;
    for (; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9')
            throw ParseError{lineno,
                             fmt("bad %s '%s'", what, s.c_str())};
        v = v * 10 + (s[i] - '0');
        if (v < 0)
            throw ParseError{lineno,
                             fmt("%s '%s' overflows", what, s.c_str())};
    }
    return s[0] == '-' ? -v : v;
}

unsigned
parseUnsigned(const std::string &s, const char *what, unsigned lineno)
{
    int64_t v = parseInt(s, what, lineno);
    if (v < 0 || v > int64_t(~0u))
        throw ParseError{lineno,
                         fmt("%s '%s' out of range", what, s.c_str())};
    return static_cast<unsigned>(v);
}

double
parseDouble(const std::string &s, const char *what, unsigned lineno)
{
    if (s.empty())
        throw ParseError{lineno, fmt("empty %s", what)};
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        throw ParseError{lineno, fmt("bad %s '%s'", what, s.c_str())};
    return v;
}

ir::Type
parseType(const std::string &s, unsigned lineno)
{
    if (s == "void")
        return ir::Type::voidTy();
    if (s == "f32")
        return ir::Type::f32();
    if (!s.empty() && s[0] == 'i')
        return ir::Type::intTy(
            parseUnsigned(s.substr(1), "int width", lineno));
    if (startsWith(s, "ptr:"))
        return ir::Type::ptrTo(parseType(s.substr(4), lineno));
    if (startsWith(s, "t:")) {
        unsigned r = 0, c = 0;
        char f = 'f';
        if (std::sscanf(s.c_str(), "t:%ux%ux%c", &r, &c, &f) != 3 ||
            (f != 'f' && f != 'i') || !r || !c)
            throw ParseError{lineno,
                             fmt("bad tensor type '%s'", s.c_str())};
        return ir::Type::tensor(r, c, f == 'f');
    }
    throw ParseError{lineno, fmt("bad type '%s'", s.c_str())};
}

// ------------------------------------------------------- key=value lines

/** Split "key=value" tokens of one line (values cannot hold spaces). */
std::map<std::string, std::string>
fields(const std::vector<std::string> &tokens, size_t from,
       unsigned lineno)
{
    std::map<std::string, std::string> out;
    for (size_t i = from; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0)
            throw ParseError{lineno, fmt("bad token '%s' (want "
                                         "key=value)",
                                         tokens[i].c_str())};
        if (!out.emplace(tokens[i].substr(0, eq),
                         tokens[i].substr(eq + 1))
                 .second)
            throw ParseError{lineno,
                             fmt("duplicate key '%s'",
                                 tokens[i].substr(0, eq).c_str())};
    }
    return out;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        tokens.push_back(tok);
    return tokens;
}

const std::string &
need(const std::map<std::string, std::string> &kv, const char *key,
     unsigned lineno)
{
    auto it = kv.find(key);
    if (it == kv.end())
        throw ParseError{lineno, fmt("missing required key '%s'", key)};
    return it->second;
}

// -------------------------------------------------------------- emitters

void
emitStructure(std::ostringstream &os, const Structure &s)
{
    os << "structure " << s.name() << " kind="
       << structureKindName(s.kind()) << " banks=" << s.banks()
       << " ports=" << s.portsPerBank() << " wide=" << s.wideWords()
       << " lat=" << s.latency() << " size=" << s.sizeKb() << " ways="
       << s.ways() << " line=" << s.lineBytes() << " miss="
       << s.missLatency() << " bpc=" << s.bytesPerCycle();
    if (!s.spaces().empty())
        os << " spaces=" << join(s.spaces(), ",");
    os << "\n";
}

void
emitNode(std::ostringstream &os, const Node &n,
         const std::map<const Node *, unsigned> &seq)
{
    os << "  node " << seq.at(&n) << " name=" << n.name() << " kind="
       << nodeKindName(n.kind()) << " type=" << typeStr(n.irType());
    switch (n.kind()) {
      case NodeKind::Compute:
        os << " op=" << ir::opName(n.op());
        break;
      case NodeKind::Fused: {
        std::vector<std::string> uops;
        for (const auto &mop : n.microOps()) {
            uops.push_back(fmt("%s~%s~%s", ir::opName(mop.op),
                               typeStr(mop.type).c_str(),
                               join(mop.srcs, ".").c_str()));
        }
        os << " uops=" << join(uops, "|");
        break;
      }
      case NodeKind::ConstNode:
        if (n.constIsFloat())
            os << " fval=" << fmt("%.17g", n.constFp());
        else
            os << " ival=" << n.constInt();
        break;
      case NodeKind::GlobalAddr:
        os << " global=" << n.global()->name();
        break;
      case NodeKind::Load:
      case NodeKind::Store:
        os << " space=" << n.memSpace();
        break;
      case NodeKind::LoopControl:
        os << " carried=" << n.numCarried() << " stages="
           << n.ctrlStages();
        break;
      case NodeKind::ChildCall:
        os << " callee=" << n.callee()->name() << " spawn="
           << (n.isSpawn() ? 1 : 0);
        break;
      default:
        break;
    }
    if (!n.inputs().empty()) {
        std::vector<std::string> ins;
        for (const auto &ref : n.inputs())
            ins.push_back(fmt("%u:%u", seq.at(ref.node), ref.out));
        os << " in=" << join(ins, ",");
    }
    if (n.guard().valid())
        os << " guard=" << seq.at(n.guard().node) << ":"
           << n.guard().out;
    os << "\n";
}

} // namespace

std::string
serialize(const Accelerator &accel)
{
    std::ostringstream os;
    os << "# µIR graph (textual checkpoint)\n";
    os << "accelerator " << accel.name() << "\n";
    for (const auto &s : accel.structures())
        emitStructure(os, *s);
    // Declare all tasks before node bodies so callee references always
    // resolve.
    for (const auto &t : accel.tasks()) {
        os << "task " << t->name() << " kind=" << taskKindName(t->kind())
           << " tiles=" << t->numTiles() << " queue=" << t->queueDepth()
           << " decoupled=" << (t->decoupled() ? 1 : 0) << " jr="
           << t->junctionReadPorts() << " jw="
           << t->junctionWritePorts();
        if (t->parentTask())
            os << " parent=" << t->parentTask()->name();
        os << "\n";
    }
    for (const auto &t : accel.tasks()) {
        os << "body " << t->name() << "\n";
        // Normalized sequential ids (raw ids may have gaps after
        // passes delete nodes), so a reload re-serializes identically.
        std::map<const Node *, unsigned> seq;
        for (const auto &n : t->nodes())
            seq.emplace(n.get(), unsigned(seq.size()));
        for (const auto &n : t->nodes())
            emitNode(os, *n, seq);
        os << "end\n";
    }
    os << "root " << accel.root()->name() << "\n";
    return os.str();
}

namespace
{

/** The parser proper; throws ParseError on malformed input. */
std::unique_ptr<Accelerator>
parseGraph(const std::string &text, const ir::Module *source)
{
    if (text.size() > kMaxSerializedBytes)
        throw ParseError{0, fmt("input too large: %zu bytes "
                                "(cap %zu)",
                                text.size(), kMaxSerializedBytes)};
    std::unique_ptr<Accelerator> accel;
    Task *body_task = nullptr;
    unsigned lineno = 0;
    bool root_set = false;
    unsigned total_nodes = 0;
    std::map<const Task *, std::map<unsigned, Node *>> node_by_id;
    // Deferred edges: (task, consumer, slot-or-guard, producer id, out).
    struct Edge
    {
        Task *task;
        Node *consumer;
        bool is_guard;
        unsigned producer_id;
        unsigned out;
        unsigned lineno;
    };
    std::vector<Edge> edges;
    // Parent tasks may be declared after their children (the front end
    // creates children first); resolve at the end.
    std::vector<std::tuple<Task *, std::string, unsigned>> parent_fixups;

    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.size() > kMaxSerializedLineBytes)
            throw ParseError{lineno,
                             fmt("input too large: line is %zu bytes "
                                 "(cap %zu)",
                                 line.size(), kMaxSerializedLineBytes)};
        if (line.empty() || line[0] == '#')
            continue;
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &head = tokens[0];

        if (head == "accelerator") {
            if (tokens.size() < 2)
                throw ParseError{lineno, "accelerator needs a name"};
            if (accel)
                throw ParseError{lineno, "duplicate accelerator line"};
            accel = std::make_unique<Accelerator>(tokens[1], source);
        } else if (head == "structure") {
            if (!accel)
                throw ParseError{lineno, "structure before accelerator"};
            if (tokens.size() < 2)
                throw ParseError{lineno, "structure needs a name"};
            if (accel->structureByName(tokens[1]))
                throw ParseError{lineno, fmt("duplicate structure '%s'",
                                             tokens[1].c_str())};
            if (accel->structures().size() >= kMaxSerializedStructures)
                throw ParseError{lineno,
                                 fmt("input too large: more than %u "
                                     "structures",
                                     kMaxSerializedStructures)};
            auto kv = fields(tokens, 2, lineno);
            const std::string &kind_s = need(kv, "kind", lineno);
            StructureKind kind;
            if (kind_s == "scratchpad")
                kind = StructureKind::Scratchpad;
            else if (kind_s == "cache")
                kind = StructureKind::Cache;
            else if (kind_s == "dram")
                kind = StructureKind::Dram;
            else
                throw ParseError{lineno,
                                 fmt("unknown structure kind '%s'",
                                     kind_s.c_str())};
            Structure *s = accel->addStructure(kind, tokens[1]);
            unsigned banks =
                parseUnsigned(need(kv, "banks", lineno), "banks", lineno);
            unsigned ports =
                parseUnsigned(need(kv, "ports", lineno), "ports", lineno);
            unsigned wide =
                parseUnsigned(need(kv, "wide", lineno), "wide", lineno);
            if (!banks || !ports || !wide)
                throw ParseError{lineno, "banks/ports/wide must be >= 1"};
            s->setBanks(banks);
            s->setPortsPerBank(ports);
            s->setWideWords(wide);
            s->setLatency(
                parseUnsigned(need(kv, "lat", lineno), "lat", lineno));
            s->setSizeKb(
                parseUnsigned(need(kv, "size", lineno), "size", lineno));
            s->setWays(
                parseUnsigned(need(kv, "ways", lineno), "ways", lineno));
            s->setLineBytes(
                parseUnsigned(need(kv, "line", lineno), "line", lineno));
            s->setMissLatency(
                parseUnsigned(need(kv, "miss", lineno), "miss", lineno));
            s->setBytesPerCycle(
                parseDouble(need(kv, "bpc", lineno), "bpc", lineno));
            if (kv.count("spaces"))
                for (const auto &sp : split(kv["spaces"], ','))
                    s->addSpace(parseUnsigned(sp, "space id", lineno));
        } else if (head == "task") {
            if (!accel)
                throw ParseError{lineno, "task before accelerator"};
            if (tokens.size() < 2)
                throw ParseError{lineno, "task needs a name"};
            if (accel->taskByName(tokens[1]))
                throw ParseError{lineno, fmt("duplicate task '%s'",
                                             tokens[1].c_str())};
            if (accel->tasks().size() >= kMaxSerializedTasks)
                throw ParseError{lineno,
                                 fmt("input too large: more than %u "
                                     "tasks",
                                     kMaxSerializedTasks)};
            auto kv = fields(tokens, 2, lineno);
            const std::string &kind_s = need(kv, "kind", lineno);
            TaskKind kind;
            if (kind_s == "root")
                kind = TaskKind::Root;
            else if (kind_s == "loop")
                kind = TaskKind::Loop;
            else if (kind_s == "spawn")
                kind = TaskKind::Spawn;
            else if (kind_s == "func")
                kind = TaskKind::Func;
            else
                throw ParseError{lineno, fmt("unknown task kind '%s'",
                                             kind_s.c_str())};
            Task *t = accel->addTask(kind, tokens[1], nullptr);
            if (kv.count("parent"))
                parent_fixups.emplace_back(t, kv["parent"], lineno);
            t->setNumTiles(parseUnsigned(need(kv, "tiles", lineno),
                                         "tiles", lineno));
            t->setQueueDepth(parseUnsigned(need(kv, "queue", lineno),
                                           "queue", lineno));
            t->setDecoupled(need(kv, "decoupled", lineno) == "1");
            t->setJunctionPorts(
                parseUnsigned(need(kv, "jr", lineno), "jr", lineno),
                parseUnsigned(need(kv, "jw", lineno), "jw", lineno));
        } else if (head == "body") {
            if (!accel || tokens.size() < 2)
                throw ParseError{lineno, "bad body line"};
            if (body_task)
                throw ParseError{lineno, "body inside another body "
                                         "(missing 'end')"};
            body_task = accel->taskByName(tokens[1]);
            if (!body_task)
                throw ParseError{lineno, fmt("body for unknown task "
                                             "'%s'",
                                             tokens[1].c_str())};
        } else if (head == "node") {
            if (!body_task)
                throw ParseError{lineno, "node outside body"};
            if (tokens.size() < 2)
                throw ParseError{lineno, "node needs an id"};
            if (++total_nodes > kMaxSerializedNodes)
                throw ParseError{lineno,
                                 fmt("input too large: more than %u "
                                     "nodes",
                                     kMaxSerializedNodes)};
            unsigned orig_id =
                parseUnsigned(tokens[1], "node id", lineno);
            if (node_by_id[body_task].count(orig_id))
                throw ParseError{lineno,
                                 fmt("duplicate node id %u in task %s",
                                     orig_id,
                                     body_task->name().c_str())};
            auto kv = fields(tokens, 2, lineno);
            const std::string &kind_s = need(kv, "kind", lineno);
            const std::string &name = need(kv, "name", lineno);
            ir::Type type = parseType(need(kv, "type", lineno), lineno);

            // An op name resolver shared by compute and fused nodes.
            auto parseOp = [&](const std::string &op_s) {
                for (int o = 0; o <= int(ir::Op::TRelu); ++o)
                    if (op_s == ir::opName(static_cast<ir::Op>(o)))
                        return static_cast<ir::Op>(o);
                throw ParseError{lineno,
                                 fmt("unknown op '%s'", op_s.c_str())};
            };

            Node *n = nullptr;
            if (kind_s == "compute") {
                n = body_task->addCompute(parseOp(need(kv, "op", lineno)),
                                          type, name);
            } else if (kind_s == "fused") {
                n = body_task->addNode(NodeKind::Fused, name);
                n->setIrType(type);
                for (const auto &uop_s :
                     split(need(kv, "uops", lineno), '|')) {
                    auto parts = split(uop_s, '~');
                    if (parts.size() != 3)
                        throw ParseError{lineno, fmt("bad uop '%s'",
                                                     uop_s.c_str())};
                    Node::MicroOp mop;
                    mop.op = parseOp(parts[0]);
                    mop.type = parseType(parts[1], lineno);
                    if (!parts[2].empty())
                        for (const auto &src : split(parts[2], '.'))
                            mop.srcs.push_back(static_cast<int>(
                                parseInt(src, "uop src", lineno)));
                    n->microOps().push_back(std::move(mop));
                }
            } else if (kind_s == "const") {
                if (kv.count("fval"))
                    n = body_task->addConstFp(parseDouble(
                        kv["fval"], "fval", lineno));
                else
                    n = body_task->addConstInt(
                        type,
                        parseInt(need(kv, "ival", lineno), "ival",
                                 lineno));
                n->setName(name);
            } else if (kind_s == "globaladdr") {
                if (!source)
                    throw ParseError{lineno,
                                     "globaladdr needs a source module"};
                const std::string &g_name = need(kv, "global", lineno);
                const ir::GlobalArray *g = source->global(g_name);
                if (!g)
                    throw ParseError{lineno, fmt("unknown global '%s'",
                                                 g_name.c_str())};
                n = body_task->addGlobalAddr(g);
                n->setName(name);
            } else if (kind_s == "load") {
                n = body_task->addLoad(
                    type,
                    parseUnsigned(need(kv, "space", lineno), "space",
                                  lineno),
                    name);
            } else if (kind_s == "store") {
                n = body_task->addStore(
                    parseUnsigned(need(kv, "space", lineno), "space",
                                  lineno),
                    name);
            } else if (kind_s == "livein") {
                n = body_task->addLiveIn(type, name);
            } else if (kind_s == "liveout") {
                n = body_task->addLiveOut(type, name);
            } else if (kind_s == "loopctrl") {
                n = body_task->addNode(NodeKind::LoopControl, name);
                n->setIrType(type);
                n->setNumCarried(parseUnsigned(
                    need(kv, "carried", lineno), "carried", lineno));
                n->setCtrlStages(parseUnsigned(
                    need(kv, "stages", lineno), "stages", lineno));
            } else if (kind_s == "childcall") {
                const std::string &callee_name =
                    need(kv, "callee", lineno);
                Task *callee = accel->taskByName(callee_name);
                if (!callee)
                    throw ParseError{lineno, fmt("unknown callee '%s'",
                                                 callee_name.c_str())};
                n = body_task->addChildCall(
                    callee, need(kv, "spawn", lineno) == "1", name);
            } else if (kind_s == "sync") {
                n = body_task->addNode(NodeKind::SyncNode, name);
                n->setIrType(type);
            } else {
                throw ParseError{lineno, fmt("unknown node kind '%s'",
                                             kind_s.c_str())};
            }
            node_by_id[body_task][orig_id] = n;

            auto parseRef = [&](const std::string &ref_s, bool guard) {
                auto rc = split(ref_s, ':');
                if (rc.size() != 2)
                    throw ParseError{lineno,
                                     fmt("bad %s ref '%s' (want "
                                         "id:out)",
                                         guard ? "guard" : "input",
                                         ref_s.c_str())};
                if (edges.size() >= kMaxSerializedEdges)
                    throw ParseError{lineno,
                                     fmt("input too large: more than "
                                         "%u edges",
                                         kMaxSerializedEdges)};
                edges.push_back(
                    {body_task, n, guard,
                     parseUnsigned(rc[0], "node ref", lineno),
                     parseUnsigned(rc[1], "output index", lineno),
                     lineno});
            };
            if (kv.count("in"))
                for (const auto &ref_s : split(kv["in"], ','))
                    parseRef(ref_s, false);
            if (kv.count("guard"))
                parseRef(kv["guard"], true);
        } else if (head == "end") {
            if (!body_task)
                throw ParseError{lineno, "'end' outside a body"};
            body_task = nullptr;
        } else if (head == "root") {
            if (!accel || tokens.size() < 2)
                throw ParseError{lineno, "bad root line"};
            Task *root = accel->taskByName(tokens[1]);
            if (!root)
                throw ParseError{lineno, fmt("unknown root '%s'",
                                             tokens[1].c_str())};
            accel->setRoot(root);
            root_set = true;
        } else {
            throw ParseError{lineno, fmt("unknown directive '%s'",
                                         head.c_str())};
        }
    }
    if (!accel)
        throw ParseError{0, "no accelerator in input"};
    if (body_task)
        throw ParseError{lineno, fmt("body of task '%s' never ended",
                                     body_task->name().c_str())};
    if (!root_set)
        throw ParseError{0, "no root directive"};

    for (auto &[task, parent_name, fix_line] : parent_fixups) {
        Task *parent = accel->taskByName(parent_name);
        if (!parent)
            throw ParseError{fix_line, fmt("unknown parent task '%s'",
                                           parent_name.c_str())};
        task->setParentTask(parent);
    }

    // Wire deferred edges (producers may appear after consumers only
    // for loop back edges, which is why edges are deferred wholesale).
    for (const Edge &e : edges) {
        auto &ids = node_by_id[e.task];
        auto it = ids.find(e.producer_id);
        if (it == ids.end())
            throw ParseError{e.lineno,
                             fmt("dangling node ref %u in task %s",
                                 e.producer_id, e.task->name().c_str())};
        if (e.is_guard)
            e.consumer->setGuard(it->second, e.out);
        else
            e.consumer->addInput(it->second, e.out);
    }
    return accel;
}

} // namespace

DeserializeResult
deserializeOrError(const std::string &text, const ir::Module *source)
{
    DeserializeResult result;
    try {
        result.accel = parseGraph(text, source);
    } catch (const ParseError &pe) {
        result.error = pe.msg;
        result.line = pe.line;
    }
    return result;
}

std::unique_ptr<Accelerator>
deserialize(const std::string &text, const ir::Module *source)
{
    DeserializeResult result = deserializeOrError(text, source);
    if (!result.ok())
        muir_fatal("deserialize: line %u: %s", result.line,
                   result.error.c_str());
    return std::move(result.accel);
}

} // namespace muir::uir
