/**
 * @file
 * Task blocks (§3.2): asynchronous execution blocks analogous to
 * closures — they take arguments (live-ins), run a pipelined
 * latency-insensitive dataflow, and produce live-outs. Each task has a
 * hardware task queue feeding one or more execution tiles; parents
 * spawn children over the <||> interface and children return values at
 * sync.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "uir/node.hh"

namespace muir::uir
{

class Accelerator;

/** Why a task block exists. */
enum class TaskKind
{
    /** The whole-accelerator entry task. */
    Root,
    /** A natural loop extracted into a self-scheduling task (§3.5). */
    Loop,
    /** A Cilk detach region (spawned worker). */
    Spawn,
    /** A called function body. */
    Func,
};

/** @return printable kind name. */
const char *taskKindName(TaskKind kind);

/** A μIR task block: dataflow DAG + hardware configuration. */
class Task
{
  public:
    Task(unsigned id, TaskKind kind, std::string name, Accelerator *accel)
        : id_(id), kind_(kind), name_(std::move(name)), accel_(accel)
    {
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    unsigned id() const { return id_; }
    TaskKind kind() const { return kind_; }
    const std::string &name() const { return name_; }
    Accelerator *accelerator() const { return accel_; }

    Task *parentTask() const { return parentTask_; }
    void setParentTask(Task *t) { parentTask_ = t; }

    /** @name Node construction @{ */
    Node *addNode(NodeKind kind, std::string name);
    Node *addCompute(ir::Op op, ir::Type type, std::string name);
    Node *addConstInt(ir::Type type, int64_t value);
    Node *addConstFp(double value);
    Node *addGlobalAddr(const ir::GlobalArray *g);
    Node *addLoad(ir::Type type, unsigned space, std::string name);
    Node *addStore(unsigned space, std::string name);
    Node *addLiveIn(ir::Type type, std::string name);
    Node *addLiveOut(ir::Type type, std::string name);
    Node *addChildCall(Task *callee, bool spawn, std::string name);
    /** @} */

    /** Remove a node (must have no users); erases its input edges. */
    void removeNode(Node *node);

    const std::vector<std::unique_ptr<Node>> &nodes() const
    {
        return nodes_;
    }
    unsigned numNodes() const { return nodes_.size(); }

    /** Directed dataflow edge count (inputs + guards). */
    unsigned numEdges() const;

    /** @name Interface ports @{ */
    const std::vector<Node *> &liveIns() const { return liveIns_; }
    const std::vector<Node *> &liveOuts() const { return liveOuts_; }
    /** @} */

    /** @name Loop structure @{ */
    Node *loopControl() const { return loopControl_; }
    void setLoopControl(Node *n) { loopControl_ = n; }
    bool isLoop() const { return loopControl_ != nullptr; }
    /** @} */

    /** Child tasks invoked from this dataflow, in node order. */
    std::vector<Task *> childTasks() const;

    /** All ChildCall nodes, in node order. */
    std::vector<Node *> childCalls() const;

    /** All Load/Store nodes, in node order. */
    std::vector<Node *> memOps() const;

    /** Nodes in a topological order (inputs before users). Loop-carried
     *  back edges (into LoopControl next-slots) are ignored. Panics if
     *  the forward dataflow has a cycle. */
    std::vector<Node *> topoOrder() const;

    /**
     * Non-panicking variant for diagnostics: appends the topological
     * order to @p order and returns false (leaving the unorderable
     * remainder out) when the forward dataflow has a cycle.
     */
    bool topoOrderInto(std::vector<Node *> &order) const;

    /**
     * A topological order in which side-effecting nodes (loads,
     * stores, child calls, syncs) additionally appear in node-id order
     * relative to each other. Node ids record program order at
     * lowering time and passes never renumber memory/call nodes, so
     * this is the order the functional executor must use: two
     * dispatches that communicate only through memory stay in program
     * order even after passes insert higher-id pure nodes.
     */
    std::vector<Node *> executionOrder() const;

    /** @name Hardware configuration tuned by μopt @{ */
    /** Parallel execution tiles processing this task's queue (Pass 2). */
    unsigned numTiles() const { return numTiles_; }
    void setNumTiles(unsigned t) { numTiles_ = t; }
    /** Task-queue entries on the <||> interface (Pass 1). */
    unsigned queueDepth() const { return queueDepth_; }
    void setQueueDepth(unsigned d) { queueDepth_ = d; }
    /** Whether the <||> interface is decoupled by a FIFO (Pass 1). */
    bool decoupled() const { return decoupled_; }
    void setDecoupled(bool d) { decoupled_ = d; }
    /** Junction ports multiplexing this task's memory ops (§3.4). */
    unsigned junctionReadPorts() const { return junctionReadPorts_; }
    unsigned junctionWritePorts() const { return junctionWritePorts_; }
    void setJunctionPorts(unsigned r, unsigned w)
    {
        junctionReadPorts_ = r;
        junctionWritePorts_ = w;
    }
    /** @} */

  private:
    unsigned id_;
    TaskKind kind_;
    std::string name_;
    Accelerator *accel_;
    Task *parentTask_ = nullptr;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<Node *> liveIns_;
    std::vector<Node *> liveOuts_;
    Node *loopControl_ = nullptr;
    unsigned nextNodeId_ = 0;
    unsigned numTiles_ = 1;
    unsigned queueDepth_ = 2;
    bool decoupled_ = false;
    unsigned junctionReadPorts_ = 2;
    unsigned junctionWritePorts_ = 1;
};

} // namespace muir::uir
