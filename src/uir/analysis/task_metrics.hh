/**
 * @file
 * Per-task heuristic metrics over μIR task dataflows, used by μopt
 * passes to make quantitative decisions: pipeline depth (critical
 * path in cycles, using the shared delay model) and iteration-
 * interval estimates from loop recurrences. §4 Pass 1 motivates
 * this: "the tensor block has higher latency and we require more
 * decoupling". TaskMetricsAnalysis caches both per task under the
 * μbound AnalysisManager so passes and lint checks stop recomputing
 * them (these two helpers were the framework's first clients).
 */
#pragma once

#include <map>
#include <memory>

#include "uir/analysis/manager.hh"
#include "uir/task.hh"

namespace muir::uir
{

/**
 * Critical-path latency of one invocation through the task's forward
 * dataflow, in cycles (node latencies from the delay model; memory
 * nodes counted at their transit latency plus a nominal access).
 */
unsigned pipelineDepthCycles(const Task &task);

/**
 * Lower bound on the task's iteration initiation interval: the loop
 * control recurrence and the longest carried-value chain (for loop
 * tasks); 1 for plain tasks.
 */
unsigned recurrenceIiCycles(const Task &task);

namespace analysis
{

/** Cached pipeline-depth / recurrence-II metrics for every task. */
class TaskMetricsAnalysis : public AnalysisResult
{
  public:
    static constexpr const char *kId = "task-metrics";

    struct Metrics
    {
        unsigned pipelineDepth = 1;
        unsigned recurrenceIi = 1;
    };

    static std::unique_ptr<TaskMetricsAnalysis>
    run(const Accelerator &accel, AnalysisManager &am);

    const Metrics &of(const Task &task) const;

  private:
    std::map<const Task *, Metrics> perTask_;
};

} // namespace analysis

} // namespace muir::uir
