#include "uir/analysis/manager.hh"

#include <algorithm>

namespace muir::uir::analysis
{

void
AnalysisManager::invalidateAll()
{
    for (auto &[id, e] : entries_)
        e.result.reset();
}

void
AnalysisManager::preserveOnly(const std::vector<std::string> &preserved)
{
    if (std::find(preserved.begin(), preserved.end(), kPreserveAll) !=
        preserved.end())
        return;
    for (auto &[id, e] : entries_)
        if (std::find(preserved.begin(), preserved.end(), id) ==
            preserved.end())
            e.result.reset();
}

uint64_t
AnalysisManager::computeCount(const std::string &id) const
{
    auto it = entries_.find(id);
    return it == entries_.end() ? 0 : it->second.computes;
}

} // namespace muir::uir::analysis
