#include "uir/analysis/footprint.hh"

#include <algorithm>

namespace muir::uir::analysis
{

namespace
{

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    uint64_t out;
    return __builtin_add_overflow(a, b, &out) ? UINT64_MAX : out;
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    uint64_t out;
    return __builtin_mul_overflow(a, b, &out) ? UINT64_MAX : out;
}

/**
 * Distinct lines touched by one invocation's affine access set
 * {off + stride*k : k in [0, trip)}, minimized over all possible
 * base alignments (the runtime base address is unknown).
 */
uint64_t
singleInvocationLines(const MemFact &f, unsigned line_bytes)
{
    if (!f.affine || f.trip == 0 || line_bytes == 0)
        return 0;
    uint64_t stride =
        f.stride < 0 ? uint64_t(-(f.stride + 1)) + 1 : uint64_t(f.stride);
    if (stride == 0)
        return 1;
    if (stride >= line_bytes)
        return f.trip; // Every step lands in a fresh line.
    // Line index is monotone with steps of at most one; worst-case
    // alignment still crosses floor(span / lineBytes) boundaries.
    uint64_t span = satMul(stride, f.trip - 1);
    return span / line_bytes + 1;
}

} // namespace

std::unique_ptr<FootprintAnalysis>
FootprintAnalysis::run(const Accelerator &accel, AnalysisManager &am)
{
    const ValueRangeAnalysis &vr = am.get<ValueRangeAnalysis>();
    auto result = std::make_unique<FootprintAnalysis>();

    for (const auto &task : accel.tasks()) {
        const TaskRangeFacts &tf = vr.of(*task);
        for (const Node *n : task->memOps()) {
            MemFact f;
            f.node = n;
            f.guarded = n->guard().valid();
            f.words = std::max(1u, n->accessWords());
            f.structure = accel.findStructureForSpace(n->memSpace());
            if (f.structure != nullptr) {
                unsigned wide = std::max(1u, f.structure->wideWords());
                f.beats = (f.words + wide - 1) / wide;
            }
            // Address operand: loads take (addr), stores (value, addr).
            unsigned addr_slot =
                n->kind() == NodeKind::Store ? 1 : 0;
            if (addr_slot < n->numInputs()) {
                const ValueRange &a = vr.of(*n->input(addr_slot).node,
                                            n->input(addr_slot).out);
                if (a.known && a.base != nullptr) {
                    f.base = a.base;
                    f.offsetKnown = true;
                    f.lo = a.lo;
                    f.hi = a.hi;
                }
                f.accessesLb = vr.memAccessesLb(*n);
                if (a.affine && a.base != nullptr && task->isLoop() &&
                    tf.tripExact && tf.trip > 0 &&
                    tf.invocationsLb > 0 && !f.guarded) {
                    f.affine = true;
                    f.stride = a.stride;
                    f.off = a.off;
                    f.trip = tf.trip;
                }
            }
            result->byNode_[n] = result->facts_.size();
            result->facts_.push_back(f);
        }
    }

    // ---- Per-structure aggregation. ----
    // Distinct-line bounds: per base array take the strongest single-
    // invocation bound; arrays are disjoint byte ranges, so when every
    // counted array spans at least one line, any cache line overlaps
    // at most two of them and summing over-counts by at most one line
    // per additional array. Otherwise keep the per-array maximum.
    std::map<const Structure *,
             std::map<const ir::GlobalArray *, uint64_t>>
        lines_by_array;
    for (const MemFact &f : result->facts_) {
        if (f.structure == nullptr)
            continue;
        StructureFootprint &sf = result->perStructure_[f.structure];
        sf.beatsLb =
            satAdd(sf.beatsLb, satMul(f.accessesLb, f.beats));
        if (!f.guarded && f.node->parent() != nullptr) {
            uint64_t &ib = result->iterBeats_[{f.node->parent(),
                                               f.structure}];
            ib = satAdd(ib, f.beats);
        }
        if (f.structure->kind() == StructureKind::Cache && f.affine &&
            f.base != nullptr) {
            uint64_t lines =
                singleInvocationLines(f, f.structure->lineBytes());
            uint64_t &best = lines_by_array[f.structure][f.base];
            best = std::max(best, lines);
        }
    }
    for (const auto &[s, by_array] : lines_by_array) {
        uint64_t sum = 0;
        uint64_t best = 0;
        bool all_span_line = true;
        uint64_t counted = 0;
        for (const auto &[array, lines] : by_array) {
            if (lines == 0)
                continue;
            ++counted;
            sum = satAdd(sum, lines);
            best = std::max(best, lines);
            if (array->sizeBytes() < s->lineBytes())
                all_span_line = false;
        }
        uint64_t lb = best;
        if (all_span_line && counted > 1 && sum > counted - 1)
            lb = std::max(lb, sum - (counted - 1));
        result->perStructure_[s].linesLb = lb;
    }

    return result;
}

const MemFact *
FootprintAnalysis::factOf(const Node &node) const
{
    auto it = byNode_.find(&node);
    return it == byNode_.end() ? nullptr : &facts_[it->second];
}

const StructureFootprint &
FootprintAnalysis::of(const Structure &s) const
{
    static const StructureFootprint kNone;
    auto it = perStructure_.find(&s);
    return it == perStructure_.end() ? kNone : it->second;
}

uint64_t
FootprintAnalysis::iterationBeats(const Task &task,
                                  const Structure &s) const
{
    auto it = iterBeats_.find({&task, &s});
    return it == iterBeats_.end() ? 0 : it->second;
}

} // namespace muir::uir::analysis
