/**
 * @file
 * μbound per-task throughput bounds, provably sound against the
 * discrete-event simulator (sim/timing.cc):
 *
 *   - iiLb: a lower bound on the steady-state initiation interval of
 *     a loop task, measured per invocation as
 *         span / (iterations - 1)        (iterations >= 2)
 *     where span is the event span (max finish - min start) of the
 *     invocation. It combines the loop-control recurrence
 *     (ctrlStages), the longest carried-value chain (latch-to-next-
 *     producer path), per-node initiation intervals, junction port
 *     contention (loads/readPorts, stores/writePorts per iteration),
 *     bank-port pressure (beats per iteration / bank ports), and —
 *     when the trip count is exact and the callee has a single
 *     caller — child-queue backpressure (callee span / queue window).
 *
 *   - spanLb: a lower bound on completion - dispatch of any
 *     invocation; pathLb additionally holds from cycle 0, so
 *     pathLb(root) <= total simulated cycles.
 *
 * Soundness contract (docs/analysis.md): every component is derived
 * from a scheduling invariant of the simulator — event chains are
 * additive (start >= max dep finish), per-static-node firings are
 * initiation-limited per tile, junction and bank ports serve one
 * beat per cycle, and predicated-off memory/call firings keep their
 * transit latency but skip the access. Unknown quantities always
 * degrade toward 0/1, never upward.
 */
#pragma once

#include <map>
#include <memory>
#include <string>

#include "uir/analysis/manager.hh"
#include "uir/task.hh"

namespace muir::uir::analysis
{

/** Static throughput facts for one task. */
struct TaskBound
{
    /** Sound II lower bound (loop tasks; 1 otherwise). */
    uint64_t iiLb = 1;
    /** Which component binds iiLb. */
    std::string iiBinding = "trivial";
    /** Individual II components (0 = not applicable). */
    uint64_t iiControl = 0;
    uint64_t iiRecurrence = 0;
    uint64_t iiNode = 0;
    uint64_t iiJunction = 0;
    uint64_t iiBank = 0;
    uint64_t iiQueue = 0;
    /** Lower bound on completion - dispatch of one invocation. */
    uint64_t spanLb = 0;
    /** Lower bound on the latest event finish, counted from cycle 0
     *  (== a whole-run cycle bound when applied to the root task). */
    uint64_t pathLb = 0;
};

class IiBoundAnalysis : public AnalysisResult
{
  public:
    static constexpr const char *kId = "ii-bound";

    static std::unique_ptr<IiBoundAnalysis>
    run(const Accelerator &accel, AnalysisManager &am);

    const TaskBound &of(const Task &task) const;

  private:
    std::map<const Task *, TaskBound> perTask_;
};

} // namespace muir::uir::analysis
