#include "uir/analysis/ii_bound.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "uir/analysis/footprint.hh"
#include "uir/analysis/value_range.hh"
#include "uir/delay_model.hh"

namespace muir::uir::analysis
{

namespace
{

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    uint64_t out;
    return __builtin_add_overflow(a, b, &out) ? UINT64_MAX : out;
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    uint64_t out;
    return __builtin_mul_overflow(a, b, &out) ? UINT64_MAX : out;
}

bool
isNonEvent(const Node *n)
{
    // Constants and resolved global addresses emit no dynamic event;
    // chains through them schedule from cycle 0.
    return n->kind() == NodeKind::ConstNode ||
           n->kind() == NodeKind::GlobalAddr;
}

struct Builder
{
    const Accelerator &accel;
    const ValueRangeAnalysis &vr;
    const FootprintAnalysis &fp;
    std::map<const Task *, TaskBound> done;
    std::set<const Task *> inProgress;

    /** Guaranteed event latency of one firing of n (hit-path memory
     *  access; full child span for awaited calls). */
    uint64_t nodeWeight(const Node *n)
    {
        uint64_t w = nodeLatency(*n);
        switch (n->kind()) {
          case NodeKind::Load:
          case NodeKind::Store:
            // Predicated-off firings skip the access entirely.
            if (!n->guard().valid()) {
                const Structure *s =
                    accel.findStructureForSpace(n->memSpace());
                if (s != nullptr) {
                    unsigned wide = std::max(1u, s->wideWords());
                    unsigned beats =
                        (std::max(1u, n->accessWords()) + wide - 1) /
                        wide;
                    w += uint64_t(s->latency()) + beats - 1;
                }
            }
            break;
          case NodeKind::ChildCall:
            // Awaited calls resolve to the child's completion event.
            if (!n->guard().valid() && !n->isSpawn() &&
                n->callee() != nullptr &&
                !inProgress.count(n->callee()))
                w = satAdd(w, bound(*n->callee()).spanLb);
            break;
          default:
            break;
        }
        return w;
    }

    const TaskBound &bound(const Task &task)
    {
        auto it = done.find(&task);
        if (it != done.end())
            return it->second;
        inProgress.insert(&task);
        TaskBound b = compute(task);
        inProgress.erase(&task);
        return done.emplace(&task, std::move(b)).first->second;
    }

    TaskBound compute(const Task &task);
};

TaskBound
Builder::compute(const Task &task)
{
    TaskBound b;
    const Node *lc = task.loopControl();
    const TaskRangeFacts &tf = vr.of(task);

    // ---- Sync spawn attribution (sound only in the simple shape:
    // one sync whose outputs feed no other side-effecting node, so
    // program order fixes which spawns it joins). ----
    const Node *sole_sync = nullptr;
    bool sync_simple = false;
    {
        unsigned syncs = 0;
        for (const auto &n : task.nodes())
            if (n->kind() == NodeKind::SyncNode) {
                ++syncs;
                sole_sync = n.get();
            }
        if (syncs == 1) {
            sync_simple = true;
            for (const Node *user : sole_sync->users())
                if (user->kind() == NodeKind::Load ||
                    user->kind() == NodeKind::Store ||
                    user->kind() == NodeKind::ChildCall ||
                    user->kind() == NodeKind::SyncNode)
                    sync_simple = false;
        }
    }

    // ---- Longest weighted paths over the forward dataflow. ----
    // ungated: finish-time bound from cycle 0 (any chain).
    // gated:   finish-time bound relative to the dispatch finish
    //          (chains rooted at LiveIn or LoopControl, whose first
    //          events depend on the dispatch).
    // rec:     longest chain from a carried-value latch (LoopControl
    //          output >= 1), bounding the loop recurrence.
    std::map<const Node *, uint64_t> ungated, gated, rec;
    for (const Node *n : task.topoOrder()) {
        if (isNonEvent(n))
            continue;
        uint64_t w = nodeWeight(n);
        uint64_t u = 0;
        bool has_g = false;
        uint64_t g = 0;
        bool has_r = false;
        uint64_t r = 0;
        auto absorb = [&](const Node::PortRef &ref) {
            if (isNonEvent(ref.node))
                return;
            auto itu = ungated.find(ref.node);
            if (itu != ungated.end())
                u = std::max(u, itu->second);
            auto itg = gated.find(ref.node);
            if (itg != gated.end()) {
                has_g = true;
                g = std::max(g, itg->second);
            }
            auto itr = rec.find(ref.node);
            if (itr != rec.end()) {
                has_r = true;
                r = std::max(r, itr->second);
            }
            if (ref.node == lc && ref.out >= 1)
                has_r = true; // Chain starts at a carried latch.
        };
        if (n->kind() == NodeKind::LoopControl) {
            // First-iteration seed deps: begin/end/step and carried
            // inits only — the runtime seed has no guard edge.
            unsigned limit = n->numForwardInputs();
            for (unsigned i = 0; i < limit; ++i)
                absorb(n->input(i));
            has_g = true; // Seed deps include the dispatch event.
        } else {
            n->forEachForwardDep(absorb);
        }
        if (n->kind() == NodeKind::LiveIn)
            has_g = true; // LiveIn events depend on the dispatch.
        if (n == sole_sync && sync_simple) {
            // The sync joins every unguarded spawn that precedes it
            // in program (id) order.
            for (const Node *call : task.childCalls()) {
                if (!call->isSpawn() || call->guard().valid() ||
                    call->callee() == nullptr ||
                    call->id() >= n->id() ||
                    inProgress.count(call->callee()))
                    continue;
                uint64_t child = bound(*call->callee()).spanLb;
                auto itu = ungated.find(call);
                if (itu != ungated.end())
                    u = std::max(u, satAdd(itu->second, child));
                auto itg = gated.find(call);
                if (itg != gated.end()) {
                    has_g = true;
                    g = std::max(g, satAdd(itg->second, child));
                }
            }
        }
        ungated[n] = satAdd(u, w);
        if (has_g)
            gated[n] = satAdd(g, w);
        if (has_r && n != lc)
            rec[n] = satAdd(r, w);
    }

    // ---- II components. ----
    if (lc != nullptr) {
        b.iiControl = lc->ctrlStages();
        for (unsigned k = 0; k < lc->numCarried(); ++k) {
            const Node *producer =
                lc->input(3 + lc->numCarried() + k).node;
            auto itr = rec.find(producer);
            if (itr != rec.end())
                b.iiRecurrence = std::max(b.iiRecurrence, itr->second);
        }
    }
    unsigned loads = 0, stores = 0;
    for (const auto &n : task.nodes()) {
        if (isNonEvent(n.get()) || n->kind() == NodeKind::LiveIn)
            continue;
        b.iiNode = std::max<uint64_t>(b.iiNode,
                                      nodeInitiationInterval(*n));
        if (n->guard().valid())
            continue;
        if (n->kind() == NodeKind::Load)
            ++loads;
        else if (n->kind() == NodeKind::Store)
            ++stores;
    }
    b.iiJunction =
        std::max<uint64_t>(loads / std::max(1u,
                                            task.junctionReadPorts()),
                           stores /
                               std::max(1u, task.junctionWritePorts()));
    for (const auto &s : accel.structures()) {
        uint64_t beats = fp.iterationBeats(task, *s);
        uint64_t ports = uint64_t(std::max(1u, s->banks())) *
                         std::max(1u, s->portsPerBank());
        b.iiBank = std::max(b.iiBank, beats / ports);
    }
    // Child-queue backpressure. Sound only when the measured trip
    // count is statically exact and every invocation of the callee
    // comes from this task's sequential loop (so queue-window chains
    // stay within one invocation's events).
    if (lc != nullptr && tf.tripExact && tf.trip >= 2) {
        for (const Node *call : task.childCalls()) {
            const Task *c = call->callee();
            if (c == nullptr || c == &task || call->isSpawn() ||
                call->guard().valid() || inProgress.count(c))
                continue;
            bool sole_caller = true;
            for (const auto &other : accel.tasks())
                for (const Node *oc : other->childCalls())
                    if (oc != call && oc->callee() == c)
                        sole_caller = false;
            if (!sole_caller)
                continue;
            uint64_t window = uint64_t(std::max(1u, c->queueDepth())) *
                              std::max(1u, c->numTiles());
            uint64_t chains = (tf.trip - 1) / window;
            uint64_t q = satMul(chains, bound(*c).spanLb) /
                         (tf.trip - 1);
            b.iiQueue = std::max(b.iiQueue, q);
        }
    }

    b.iiLb = 1;
    b.iiBinding = "trivial";
    if (lc != nullptr) {
        struct
        {
            const char *name;
            uint64_t value;
        } comps[] = {
            {"control", b.iiControl},   {"recurrence", b.iiRecurrence},
            {"node-ii", b.iiNode},      {"junction", b.iiJunction},
            {"bank", b.iiBank},         {"queue", b.iiQueue},
        };
        for (const auto &c : comps)
            if (c.value > b.iiLb) {
                b.iiLb = c.value;
                b.iiBinding = c.name;
            }
    }

    // ---- Invocation span and whole-run path bounds. ----
    uint64_t span = 0;
    for (const auto &n : task.nodes()) {
        bool tail = false;
        switch (n->kind()) {
          case NodeKind::Store:
          case NodeKind::ChildCall:
            // Guarded-off stores/calls are not awaited.
            tail = !n->guard().valid() &&
                   !(n->kind() == NodeKind::ChildCall && n->isSpawn());
            break;
          case NodeKind::SyncNode:
          case NodeKind::LiveOut:
            tail = true;
            break;
          default:
            break;
        }
        if (!tail)
            continue;
        auto itg = gated.find(n.get());
        if (itg != gated.end())
            span = std::max(span, itg->second);
    }
    if (lc != nullptr) {
        uint64_t ctrl = lc->ctrlStages();
        if (tf.tripExact)
            span = std::max(span, satMul(tf.trip + 1, ctrl));
        else
            span = std::max(span, ctrl);
        if (tf.tripExact && tf.trip >= 1) {
            uint64_t core = std::max({b.iiRecurrence, b.iiNode,
                                      b.iiJunction, b.iiBank});
            span = std::max(span, satMul(tf.trip - 1, core));
            if (tf.trip >= 2 && b.iiQueue > 0)
                span = std::max(span, satMul(b.iiQueue, tf.trip - 1));
        }
    }
    b.spanLb = span;
    uint64_t path = span;
    for (const auto &[n, depth] : ungated)
        path = std::max(path, depth);
    b.pathLb = path;
    return b;
}

} // namespace

std::unique_ptr<IiBoundAnalysis>
IiBoundAnalysis::run(const Accelerator &accel, AnalysisManager &am)
{
    Builder builder{accel, am.get<ValueRangeAnalysis>(),
                    am.get<FootprintAnalysis>(), {}, {}};
    for (const auto &task : accel.tasks())
        builder.bound(*task);
    auto result = std::make_unique<IiBoundAnalysis>();
    result->perTask_ = std::move(builder.done);
    return result;
}

const TaskBound &
IiBoundAnalysis::of(const Task &task) const
{
    auto it = perTask_.find(&task);
    muir_assert(it != perTask_.end(),
                "ii-bound: task %s not in analyzed design",
                task.name().c_str());
    return it->second;
}

} // namespace muir::uir::analysis
