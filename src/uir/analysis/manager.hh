/**
 * @file
 * μbound's AnalysisManager: a cache of whole-accelerator static
 * analysis results keyed by (design, analysis-id). Analyses are pure
 * functions of the design; the manager computes each lazily on first
 * request, hands out const references, and drops results when a
 * transformation invalidates them (μopt's PassManager asks each pass
 * which analyses it preserves and calls preserveOnly after the pass).
 *
 * An analysis result type T plugs in by deriving from AnalysisResult
 * and providing:
 *   static constexpr const char *kId;   // stable catalog id
 *   static std::unique_ptr<T> run(const Accelerator &,
 *                                 AnalysisManager &);
 * run() may request other analyses through the manager (dependency
 * cycles panic). Compute counts are observable so tests can prove
 * that preserved results are reused and invalidated ones recomputed.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "uir/accelerator.hh"

namespace muir::uir::analysis
{

/** Base class of all cached analysis results. */
class AnalysisResult
{
  public:
    virtual ~AnalysisResult() = default;
};

/** Preserve-all sentinel accepted by preserveOnly. */
inline constexpr const char *kPreserveAll = "*";

class AnalysisManager
{
  public:
    explicit AnalysisManager(const Accelerator &accel) : accel_(accel) {}

    AnalysisManager(const AnalysisManager &) = delete;
    AnalysisManager &operator=(const AnalysisManager &) = delete;

    /** The design this manager's cache is keyed to. */
    const Accelerator &design() const { return accel_; }

    /** Cached result for T, computing it on first request. */
    template <class T> const T &get()
    {
        // std::map node stability keeps `e` valid across the
        // recursive get<U>() calls T::run may make.
        Entry &e = entries_[T::kId];
        if (e.result == nullptr) {
            muir_assert(!e.computing,
                        "analysis dependency cycle at '%s'", T::kId);
            e.computing = true;
            ++e.computes;
            e.result = T::run(accel_, *this);
            e.computing = false;
            muir_assert(e.result != nullptr,
                        "analysis '%s' returned no result", T::kId);
        }
        return static_cast<const T &>(*e.result);
    }

    /** True when T is currently cached (without computing it). */
    template <class T> bool isCached() const
    {
        auto it = entries_.find(T::kId);
        return it != entries_.end() && it->second.result != nullptr;
    }

    /** Drop every cached result. */
    void invalidateAll();

    /**
     * Drop every cached result whose id is not listed in preserved.
     * A single kPreserveAll ("*") entry keeps everything.
     */
    void preserveOnly(const std::vector<std::string> &preserved);

    /** How many times the analysis with this id has been computed. */
    uint64_t computeCount(const std::string &id) const;

  private:
    struct Entry
    {
        std::unique_ptr<AnalysisResult> result;
        bool computing = false;
        uint64_t computes = 0;
    };

    const Accelerator &accel_;
    std::map<std::string, Entry> entries_;
};

} // namespace muir::uir::analysis
