#include "uir/analysis/value_range.hh"

#include <algorithm>
#include <set>

namespace muir::uir::analysis
{

namespace
{

/** Saturating-checked arithmetic: false means "treat as unknown". */
bool
addOk(int64_t a, int64_t b, int64_t &out)
{
    return !__builtin_add_overflow(a, b, &out);
}

bool
mulOk(int64_t a, int64_t b, int64_t &out)
{
    return !__builtin_mul_overflow(a, b, &out);
}

/** Interval [a.lo,a.hi] + [b.lo,b.hi]; unknown on overflow. */
ValueRange
addIntervals(const ValueRange &a, const ValueRange &b)
{
    ValueRange r;
    if (!a.known || !b.known)
        return r;
    if (!addOk(a.lo, b.lo, r.lo) || !addOk(a.hi, b.hi, r.hi))
        return ValueRange::unknown();
    r.known = true;
    r.exact = a.exact && b.exact;
    if ((a.affine || a.exact) && (b.affine || b.exact)) {
        int64_t stride;
        int64_t off;
        if (addOk(a.affine ? a.stride : 0, b.affine ? b.stride : 0,
                  stride) &&
            addOk(a.affine ? a.off : a.lo, b.affine ? b.off : b.lo,
                  off) &&
            (a.affine || b.affine)) {
            r.affine = true;
            r.stride = stride;
            r.off = off;
        }
    }
    return r;
}

ValueRange
negate(const ValueRange &a)
{
    ValueRange r;
    if (!a.known || a.lo == INT64_MIN || a.hi == INT64_MIN)
        return r;
    r.known = true;
    r.lo = -a.hi;
    r.hi = -a.lo;
    r.exact = a.exact;
    if (a.affine && a.stride != INT64_MIN && a.off != INT64_MIN) {
        r.affine = true;
        r.stride = -a.stride;
        r.off = -a.off;
    }
    return r;
}

/** Interval × exact scalar (the only multiplication we track). */
ValueRange
mulByConst(const ValueRange &a, int64_t c)
{
    ValueRange r;
    if (!a.known)
        return r;
    int64_t x, y;
    if (!mulOk(a.lo, c, x) || !mulOk(a.hi, c, y))
        return r;
    r.known = true;
    r.lo = std::min(x, y);
    r.hi = std::max(x, y);
    r.exact = a.exact;
    if (a.affine) {
        int64_t stride, off;
        if (mulOk(a.stride, c, stride) && mulOk(a.off, c, off)) {
            r.affine = true;
            r.stride = stride;
            r.off = off;
        }
    }
    return r;
}

/** Exact integer evaluation mirroring ir::applyPureOp. */
bool
evalExact(ir::Op op, const std::vector<ValueRange> &ops, int64_t &out)
{
    for (const auto &o : ops)
        if (!o.exact || o.base != nullptr)
            return false;
    auto a = [&] { return ops.at(0).lo; };
    auto b = [&] { return ops.at(1).lo; };
    switch (op) {
      case ir::Op::Add: return addOk(a(), b(), out);
      case ir::Op::Sub: return !__builtin_sub_overflow(a(), b(), &out);
      case ir::Op::Mul: return mulOk(a(), b(), out);
      case ir::Op::SDiv:
        if (b() == 0 || (a() == INT64_MIN && b() == -1))
            return false;
        out = a() / b();
        return true;
      case ir::Op::SRem:
        if (b() == 0 || (a() == INT64_MIN && b() == -1))
            return false;
        out = a() % b();
        return true;
      case ir::Op::And: out = a() & b(); return true;
      case ir::Op::Or:  out = a() | b(); return true;
      case ir::Op::Xor: out = a() ^ b(); return true;
      case ir::Op::Shl:
        out = static_cast<int64_t>(static_cast<uint64_t>(a())
                                   << (b() & 63));
        return true;
      case ir::Op::LShr:
        out = static_cast<int64_t>(static_cast<uint64_t>(a()) >>
                                   (b() & 63));
        return true;
      case ir::Op::AShr: out = a() >> (b() & 63); return true;
      case ir::Op::ICmpEq:  out = a() == b(); return true;
      case ir::Op::ICmpNe:  out = a() != b(); return true;
      case ir::Op::ICmpSlt: out = a() < b(); return true;
      case ir::Op::ICmpSle: out = a() <= b(); return true;
      case ir::Op::ICmpSgt: out = a() > b(); return true;
      case ir::Op::ICmpSge: out = a() >= b(); return true;
      case ir::Op::ZExt:
      case ir::Op::SExt:
        out = a();
        return true;
      default:
        return false;
    }
}

bool
isCompare(ir::Op op)
{
    switch (op) {
      case ir::Op::ICmpEq: case ir::Op::ICmpNe: case ir::Op::ICmpSlt:
      case ir::Op::ICmpSle: case ir::Op::ICmpSgt: case ir::Op::ICmpSge:
      case ir::Op::FCmpOeq: case ir::Op::FCmpOlt: case ir::Op::FCmpOle:
      case ir::Op::FCmpOgt: case ir::Op::FCmpOge:
        return true;
      default:
        return false;
    }
}

/**
 * Transfer function for one pure op over already-computed operand
 * ranges. `type` is the op's result type (GEP element sizing).
 */
ValueRange
transferOp(ir::Op op, const std::vector<ValueRange> &ops,
           const ir::Type &type)
{
    if (op == ir::Op::GEP) {
        // base + index * elemBytes, offset tracked relative to the
        // base array (runtime base addresses are unknown statically).
        if (ops.size() < 2 || !ops[0].known || ops[0].base == nullptr ||
            !type.isPtr())
            return ValueRange::unknown();
        int64_t elem = type.pointee().sizeBytes();
        ValueRange scaled = mulByConst(ops[1], elem);
        ValueRange r = addIntervals(ops[0], scaled);
        r.base = ops[0].base;
        return r;
    }

    int64_t exact;
    if (evalExact(op, ops, exact))
        return ValueRange::constant(exact);

    switch (op) {
      case ir::Op::Add:
        if (ops[0].base != nullptr && ops[1].base != nullptr)
            return ValueRange::unknown();
        if (ops[0].base != nullptr || ops[1].base != nullptr) {
            ValueRange r = addIntervals(ops[0], ops[1]);
            r.base = ops[0].base != nullptr ? ops[0].base : ops[1].base;
            return r;
        }
        return addIntervals(ops[0], ops[1]);
      case ir::Op::Sub: {
        if (ops[1].base != nullptr)
            return ValueRange::unknown();
        ValueRange r = addIntervals(ops[0], negate(ops[1]));
        r.base = ops[0].base;
        return r;
      }
      case ir::Op::Mul:
        if (ops[0].base != nullptr || ops[1].base != nullptr)
            return ValueRange::unknown();
        if (ops[1].exact)
            return mulByConst(ops[0], ops[1].lo);
        if (ops[0].exact)
            return mulByConst(ops[1], ops[0].lo);
        return ValueRange::unknown();
      case ir::Op::Shl:
        if (ops[1].exact && ops[1].lo >= 0 && ops[1].lo < 62 &&
            ops[0].base == nullptr)
            return mulByConst(ops[0], int64_t(1) << ops[1].lo);
        return ValueRange::unknown();
      case ir::Op::SRem:
        // x % r with r an exact positive modulus and x >= 0.
        if (ops[1].exact && ops[1].lo > 0 && ops[0].known &&
            ops[0].lo >= 0 && ops[0].base == nullptr) {
            ValueRange r;
            r.known = true;
            r.lo = 0;
            r.hi = std::min(ops[0].hi, ops[1].lo - 1);
            return r;
        }
        return ValueRange::unknown();
      case ir::Op::Select:
        if (ops.size() == 3)
            return ValueRange::join(ops[1], ops[2]);
        return ValueRange::unknown();
      case ir::Op::ZExt:
      case ir::Op::SExt:
        // Canonical runtime storage is a sign-extended int64; both
        // casts are the identity on it (see ir/op_eval.cc).
        return ops[0];
      case ir::Op::Trunc: {
        unsigned bits = type.bits();
        if (bits >= 64)
            return ops[0];
        if (bits == 0 || !ops[0].known || ops[0].base != nullptr)
            return ValueRange::unknown();
        int64_t max = (int64_t(1) << (bits - 1)) - 1;
        int64_t min = -max - 1;
        if (ops[0].lo >= min && ops[0].hi <= max)
            return ops[0]; // Representable: truncation is identity.
        return ValueRange::unknown();
      }
      default:
        if (isCompare(op)) {
            ValueRange r;
            r.known = true;
            r.lo = 0;
            r.hi = 1;
            return r;
        }
        return ValueRange::unknown();
    }
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    uint64_t out;
    if (__builtin_mul_overflow(a, b, &out))
        return UINT64_MAX;
    return out;
}

} // namespace

ValueRange
ValueRange::join(const ValueRange &a, const ValueRange &b)
{
    ValueRange r;
    if (!a.known || !b.known || a.base != b.base)
        return r;
    r.known = true;
    r.base = a.base;
    r.lo = std::min(a.lo, b.lo);
    r.hi = std::max(a.hi, b.hi);
    r.exact = a.exact && b.exact && a.lo == b.lo;
    if (a.affine && b.affine && a.stride == b.stride && a.off == b.off) {
        r.affine = true;
        r.stride = a.stride;
        r.off = a.off;
    }
    return r;
}

std::unique_ptr<ValueRangeAnalysis>
ValueRangeAnalysis::run(const Accelerator &accel, AnalysisManager &)
{
    auto result = std::make_unique<ValueRangeAnalysis>();
    auto &ranges = result->ranges_;
    auto &facts = result->taskFacts_;

    static const ValueRange kUnknown;

    auto rangeOf = [&](const Node::PortRef &ref) -> const ValueRange & {
        auto it = ranges.find({ref.node, ref.out});
        return it == ranges.end() ? kUnknown : it->second;
    };

    // ---- Call-graph order: callers before callees (Kahn). ----
    // Recursive cliques cannot be ordered; their members run last
    // with unknown live-ins, which keeps every interval sound.
    std::vector<const Task *> order;
    std::set<const Task *> processed;
    {
        std::map<const Task *, std::set<const Task *>> callers;
        for (const auto &t : accel.tasks())
            for (const Node *call : t->childCalls())
                if (call->callee() != nullptr)
                    callers[call->callee()].insert(t.get());
        std::set<const Task *> remaining;
        for (const auto &t : accel.tasks())
            remaining.insert(t.get());
        while (!remaining.empty()) {
            const Task *next = nullptr;
            for (const Task *t : remaining) {
                bool ready = true;
                for (const Task *c : callers[t])
                    if (c != t && remaining.count(c))
                        ready = false;
                // Self-calls can never be "ready"; exclude them from
                // the readiness test but not from live-in joins.
                if (callers[t].count(t))
                    ready = false;
                if (ready && (next == nullptr || t->id() < next->id()))
                    next = t;
            }
            if (next == nullptr) {
                // Recursive clique: fall back to id order.
                for (const Task *t : remaining)
                    if (next == nullptr || t->id() < next->id())
                        next = t;
            }
            order.push_back(next);
            remaining.erase(next);
        }
    }

    // Root is invoked exactly once by the driver.
    if (accel.root() != nullptr)
        facts[accel.root()].invocationsLb = 1;

    for (const Task *task : order) {
        TaskRangeFacts &tf = facts[task];

        // ---- Live-in join over every call site. ----
        std::vector<ValueRange> livein(task->liveIns().size());
        bool any_site = false;
        bool all_sites_processed = true;
        for (const auto &caller : accel.tasks()) {
            for (const Node *call : caller->childCalls()) {
                if (call->callee() != task)
                    continue;
                if (!processed.count(caller.get())) {
                    all_sites_processed = false;
                    continue;
                }
                for (unsigned k = 0;
                     k < livein.size() && k < call->numInputs(); ++k) {
                    const ValueRange &arg = rangeOf(call->input(k));
                    // Affinity is relative to the caller's loop; it
                    // does not survive the call boundary.
                    ValueRange flat = arg;
                    flat.affine = false;
                    flat.stride = flat.off = 0;
                    livein[k] = any_site
                                    ? ValueRange::join(livein[k], flat)
                                    : flat;
                }
                any_site = true;
            }
        }
        if (!any_site || !all_sites_processed)
            for (auto &r : livein)
                r = ValueRange::unknown();

        // ---- Dataflow walk in topological order. ----
        for (const Node *n : task->topoOrder()) {
            switch (n->kind()) {
              case NodeKind::LiveIn:
                if (n->liveIndex() < livein.size())
                    ranges[{n, 0}] = livein[n->liveIndex()];
                break;
              case NodeKind::ConstNode:
                if (!n->constIsFloat())
                    ranges[{n, 0}] =
                        ValueRange::constant(n->constInt());
                break;
              case NodeKind::GlobalAddr: {
                ValueRange r;
                r.known = r.exact = true;
                r.base = n->global();
                ranges[{n, 0}] = r;
                break;
              }
              case NodeKind::LoopControl: {
                const ValueRange &begin = rangeOf(n->input(0));
                const ValueRange &end = rangeOf(n->input(1));
                const ValueRange &step = rangeOf(n->input(2));
                ValueRange iv;
                int64_t last_iv = 0;
                if (begin.exact && end.exact && step.exact &&
                    step.lo > 0) {
                    tf.tripExact = true;
                    tf.trip =
                        end.lo > begin.lo
                            ? (uint64_t(end.lo) - uint64_t(begin.lo) +
                               uint64_t(step.lo) - 1) /
                                  uint64_t(step.lo)
                            : 0;
                    int64_t span;
                    if (tf.trip > 0 &&
                        mulOk(int64_t(tf.trip - 1), step.lo, span) &&
                        addOk(begin.lo, span, last_iv)) {
                        iv.known = true;
                        iv.lo = begin.lo;
                        iv.hi = last_iv;
                        iv.exact = tf.trip == 1;
                        iv.affine = true;
                        iv.off = begin.lo;
                        iv.stride = step.lo;
                    } else if (tf.trip == 0) {
                        iv.known = true;
                        iv.lo = iv.hi = begin.lo;
                    }
                } else if (begin.known && end.known &&
                           end.hi > INT64_MIN) {
                    // step > 0 is asserted at runtime, so the body
                    // only ever observes begin <= iv < end.
                    iv.known = true;
                    iv.lo = begin.lo;
                    iv.hi = std::max(begin.lo, end.hi - 1);
                }
                ranges[{n, 0}] = iv;
                // Carried outputs stay unknown (no fixpoint).
                break;
              }
              case NodeKind::Compute: {
                std::vector<ValueRange> ops;
                ops.reserve(n->numInputs());
                for (const auto &ref : n->inputs())
                    ops.push_back(rangeOf(ref));
                ranges[{n, 0}] = transferOp(n->op(), ops, n->irType());
                break;
              }
              case NodeKind::Fused: {
                std::vector<ValueRange> ext;
                ext.reserve(n->numInputs());
                for (const auto &ref : n->inputs())
                    ext.push_back(rangeOf(ref));
                std::vector<ValueRange> internal;
                internal.reserve(n->microOps().size());
                for (const auto &mop : n->microOps()) {
                    std::vector<ValueRange> ops;
                    ops.reserve(mop.srcs.size());
                    for (int src : mop.srcs)
                        ops.push_back(src < 0 ? ext.at(-src - 1)
                                              : internal.at(src));
                    internal.push_back(
                        transferOp(mop.op, ops, mop.type));
                }
                if (!internal.empty())
                    ranges[{n, 0}] = internal.back();
                break;
              }
              case NodeKind::LiveOut:
                if (n->numInputs() > 0) {
                    ValueRange flat = rangeOf(n->input(0));
                    flat.affine = false;
                    flat.stride = flat.off = 0;
                    ranges[{n, 0}] = flat;
                }
                break;
              case NodeKind::SyncNode:
                ranges[{n, 0}] = ValueRange::constant(1);
                break;
              default:
                // Load results, Store tokens and ChildCall outputs
                // stay unknown.
                break;
            }
        }

        // ---- Invocation counting along processed call sites. ----
        uint64_t body_rate =
            task->isLoop() ? (tf.tripExact ? tf.trip : 0) : 1;
        uint64_t site_firings = satMul(tf.invocationsLb, body_rate);
        for (const Node *call : task->childCalls()) {
            if (call->callee() == nullptr || call->guard().valid())
                continue;
            if (call->callee() == task ||
                processed.count(call->callee()))
                continue; // Back edge of a recursive clique.
            facts[call->callee()].invocationsLb =
                std::min(UINT64_MAX - site_firings,
                         facts[call->callee()].invocationsLb) +
                site_firings;
        }

        processed.insert(task);
    }

    return result;
}

const ValueRange &
ValueRangeAnalysis::of(const Node &node, unsigned out) const
{
    static const ValueRange kUnknown;
    auto it = ranges_.find({&node, out});
    return it == ranges_.end() ? kUnknown : it->second;
}

const TaskRangeFacts &
ValueRangeAnalysis::of(const Task &task) const
{
    static const TaskRangeFacts kNone;
    auto it = taskFacts_.find(&task);
    return it == taskFacts_.end() ? kNone : it->second;
}

uint64_t
ValueRangeAnalysis::firingsLb(const Node &node) const
{
    const Task *task = node.parent();
    if (task == nullptr)
        return 0;
    const TaskRangeFacts &tf = of(*task);
    switch (node.kind()) {
      case NodeKind::LiveIn:
      case NodeKind::ConstNode:
      case NodeKind::GlobalAddr:
        return tf.invocationsLb; // Once per invocation.
      default:
        break;
    }
    if (!task->isLoop())
        return tf.invocationsLb;
    if (!tf.tripExact)
        return 0;
    return satMul(tf.invocationsLb, tf.trip);
}

uint64_t
ValueRangeAnalysis::memAccessesLb(const Node &node) const
{
    if (node.kind() != NodeKind::Load && node.kind() != NodeKind::Store)
        return 0;
    if (node.guard().valid())
        return 0; // Predicated-off firings skip the memory system.
    return firingsLb(node);
}

} // namespace muir::uir::analysis
