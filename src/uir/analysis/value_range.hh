/**
 * @file
 * μbound value-range propagation over μIR task dataflows. For every
 * node output the analysis derives an over-approximating interval of
 * the values the output can take across all firings, plus two exact
 * refinements used by the footprint and II analyses:
 *   - pointer provenance: the global array an address is based on,
 *     with the interval describing byte offsets from its base (the
 *     runtime base address itself is unknown statically);
 *   - affinity: value == off + stride * k exactly at iteration k of
 *     the owning loop task, for every iteration of every invocation.
 *
 * Propagation is interprocedural: live-ins join the argument ranges
 * of every call site (callers analyzed first in call-graph order;
 * recursion degrades to unknown). Loop-carried values are unknown —
 * soundness of the interval never depends on a fixpoint.
 *
 * The analysis also derives per-task iteration/invocation facts:
 * exact trip counts when begin/end/step resolve to constants, and a
 * guaranteed lower bound on how many times each task is invoked
 * (guarded call sites and unknown trip counts contribute zero).
 */
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "uir/analysis/manager.hh"
#include "uir/task.hh"

namespace muir::uir::analysis
{

/** What is statically known about one node output. */
struct ValueRange
{
    /** lo/hi hold a valid over-approximating interval. */
    bool known = false;
    /** Value interval; byte offsets from base for pointer values. */
    int64_t lo = 0, hi = 0;
    /** The value is lo (== hi) on every firing. */
    bool exact = false;
    /** Pointer provenance: non-null when the value is an address
     *  into this global array. */
    const ir::GlobalArray *base = nullptr;
    /** value == off + stride * k exactly at iteration k of the
     *  owning task's loop, within every invocation. */
    bool affine = false;
    int64_t stride = 0, off = 0;

    static ValueRange unknown() { return {}; }
    static ValueRange constant(int64_t v)
    {
        ValueRange r;
        r.known = r.exact = true;
        r.lo = r.hi = v;
        return r;
    }
    /** Interval hull; exactness/affinity survive only when equal. */
    static ValueRange join(const ValueRange &a, const ValueRange &b);
};

/** Per-task iteration and invocation facts. */
struct TaskRangeFacts
{
    /** trip holds the exact iteration count of every invocation. */
    bool tripExact = false;
    uint64_t trip = 0;
    /** Guaranteed number of invocations (lower bound; root is 1). */
    uint64_t invocationsLb = 0;
};

class ValueRangeAnalysis : public AnalysisResult
{
  public:
    static constexpr const char *kId = "value-range";

    static std::unique_ptr<ValueRangeAnalysis>
    run(const Accelerator &accel, AnalysisManager &am);

    /** Range of output `out` of `node` (unknown() if untracked). */
    const ValueRange &of(const Node &node, unsigned out = 0) const;

    const TaskRangeFacts &of(const Task &task) const;

    /**
     * Guaranteed lower bound on dynamic firings of a body node:
     * invocations × trip count for loop bodies (0 when the trip
     * count is not exact).
     */
    uint64_t firingsLb(const Node &node) const;

    /**
     * Firings that reach the memory system: firingsLb for unguarded
     * Load/Store nodes, 0 for guarded ones (predicated-off memory
     * nodes fire for flow control but skip the access).
     */
    uint64_t memAccessesLb(const Node &node) const;

  private:
    std::map<std::pair<const Node *, unsigned>, ValueRange> ranges_;
    std::map<const Task *, TaskRangeFacts> taskFacts_;
};

} // namespace muir::uir::analysis
