#include "uir/analysis/task_metrics.hh"

#include <algorithm>

#include "uir/delay_model.hh"

namespace muir::uir
{

namespace
{

/** Effective per-firing latency including a nominal memory access. */
unsigned
effectiveLatency(const Node &n)
{
    unsigned lat = nodeLatency(n);
    if (n.kind() == NodeKind::Load || n.kind() == NodeKind::Store)
        lat += 2; // Nominal on-chip access; the simulator refines this.
    if (n.kind() == NodeKind::ChildCall)
        lat += 4; // Dispatch + child pipeline head.
    return lat;
}

} // namespace

unsigned
pipelineDepthCycles(const Task &task)
{
    std::map<const Node *, unsigned> depth;
    unsigned best = 1;
    for (const Node *n : task.topoOrder()) {
        unsigned in_depth = 0;
        n->forEachForwardDep([&](const Node::PortRef &ref) {
            auto it = depth.find(ref.node);
            if (it != depth.end())
                in_depth = std::max(in_depth, it->second);
        });
        unsigned d = in_depth + effectiveLatency(*n);
        depth[n] = d;
        best = std::max(best, d);
    }
    return best;
}

unsigned
recurrenceIiCycles(const Task &task)
{
    const Node *lc = task.loopControl();
    if (lc == nullptr)
        return 1;
    unsigned ii = lc->ctrlStages();

    // Longest carried chain: walk back from each next-value producer
    // toward the loop control, accumulating latency.
    for (unsigned k = 0; k < lc->numCarried(); ++k) {
        const Node::PortRef &next = lc->input(3 + lc->numCarried() + k);
        unsigned chain = 0;
        const Node *cur = next.node;
        for (unsigned steps = 0; steps < 64 && cur != nullptr; ++steps) {
            if (cur == lc)
                break;
            chain += effectiveLatency(*cur);
            // Follow the first input that is not a constant/global —
            // a heuristic spine of the recurrence.
            const Node *nxt = nullptr;
            for (const auto &ref : cur->inputs()) {
                if (ref.node->kind() == NodeKind::ConstNode ||
                    ref.node->kind() == NodeKind::GlobalAddr)
                    continue;
                nxt = ref.node;
                break;
            }
            cur = nxt;
        }
        ii = std::max(ii, chain);
    }
    return std::max(1u, ii);
}

namespace analysis
{

std::unique_ptr<TaskMetricsAnalysis>
TaskMetricsAnalysis::run(const Accelerator &accel, AnalysisManager &)
{
    auto result = std::make_unique<TaskMetricsAnalysis>();
    for (const auto &task : accel.tasks()) {
        Metrics m;
        m.pipelineDepth = pipelineDepthCycles(*task);
        m.recurrenceIi = recurrenceIiCycles(*task);
        result->perTask_[task.get()] = m;
    }
    return result;
}

const TaskMetricsAnalysis::Metrics &
TaskMetricsAnalysis::of(const Task &task) const
{
    auto it = perTask_.find(&task);
    muir_assert(it != perTask_.end(),
                "task-metrics: task %s not in analyzed design",
                task.name().c_str());
    return it->second;
}

} // namespace analysis

} // namespace muir::uir
