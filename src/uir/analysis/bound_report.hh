/**
 * @file
 * μbound whole-design bottleneck report: composes the per-task II/
 * span bounds (ii_bound.hh) with per-structure footprints
 * (footprint.hh) into one sound lower bound on total simulated
 * cycles, and names the binding structure or task. Rendered as text
 * (`muirc --analyze`) and as the `muir.static.v1` JSON schema
 * (`muirc --analyze-json`); field order is deterministic — tasks and
 * structures appear in design container order.
 */
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "uir/analysis/ii_bound.hh"
#include "uir/analysis/manager.hh"

namespace muir::uir::analysis
{

/** Whole-design throughput bound and its binding resource. */
struct DesignBound
{
    /** Sound lower bound on total simulated cycles. */
    uint64_t cycleLb = 0;
    /** Binding resource kind: critical-path | bank-ports | junction |
     *  dram-bandwidth. */
    std::string bottleneckKind = "critical-path";
    /** Name of the binding task or structure. */
    std::string bottleneckName;

    /** Component bounds feeding cycleLb. */
    uint64_t pathLb = 0; ///< root task critical path
    uint64_t dramLb = 0; ///< cold-miss DRAM transfer serialization

    struct StructBound
    {
        const Structure *structure = nullptr;
        uint64_t beatsLb = 0;
        uint64_t linesLb = 0;
        /** Cycles implied by serializing beatsLb on the bank ports. */
        uint64_t bankCycles = 0;
    };
    /** One entry per non-DRAM structure, in design order. */
    std::vector<StructBound> structures;

    struct TaskJunction
    {
        const Task *task = nullptr;
        /** Cycles implied by junction port pressure across all
         *  invocations and tiles. */
        uint64_t cycles = 0;
    };
    /** One entry per task, in design order. */
    std::vector<TaskJunction> junctions;
};

class BoundReportAnalysis : public AnalysisResult
{
  public:
    static constexpr const char *kId = "bound-report";

    static std::unique_ptr<BoundReportAnalysis>
    run(const Accelerator &accel, AnalysisManager &am);

    const DesignBound &design() const { return bound_; }

  private:
    DesignBound bound_;
};

/** @name Report rendering (muirc --analyze / --analyze-json) @{ */

/** Section names accepted by renderAnalysisText / --analyze-section. */
const std::vector<std::string> &analysisSectionNames();

/**
 * Render the human-readable report. @p section is one of
 * analysisSectionNames() ("all" prints everything).
 */
void renderAnalysisText(AnalysisManager &am, const std::string &section,
                        std::ostream &os);

/** Render the full muir.static.v1 JSON document. */
void renderAnalysisJson(AnalysisManager &am, std::ostream &os);

/** @} */

} // namespace muir::uir::analysis
