#include "uir/analysis/bound_report.hh"

#include <algorithm>
#include <ostream>

#include "support/json.hh"
#include "uir/analysis/footprint.hh"
#include "uir/analysis/value_range.hh"

namespace muir::uir::analysis
{

namespace
{

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    uint64_t out;
    return __builtin_add_overflow(a, b, &out) ? UINT64_MAX : out;
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    uint64_t out;
    return __builtin_mul_overflow(a, b, &out) ? UINT64_MAX : out;
}

uint64_t
ceilDiv(uint64_t n, uint64_t d)
{
    return d == 0 ? 0 : (n + d - 1) / d;
}

} // namespace

std::unique_ptr<BoundReportAnalysis>
BoundReportAnalysis::run(const Accelerator &accel, AnalysisManager &am)
{
    const ValueRangeAnalysis &vr = am.get<ValueRangeAnalysis>();
    const FootprintAnalysis &fp = am.get<FootprintAnalysis>();
    const IiBoundAnalysis &ii = am.get<IiBoundAnalysis>();

    auto result = std::make_unique<BoundReportAnalysis>();
    DesignBound &d = result->bound_;

    // ---- Critical path: the root task's whole-run path bound. ----
    const Task *root = accel.root();
    if (root != nullptr) {
        d.pathLb = ii.of(*root).pathLb;
        d.cycleLb = d.pathLb;
        d.bottleneckKind = "critical-path";
        d.bottleneckName = root->name();
    }

    // ---- Bank-port capacity: every beat occupies one bank-port
    // cycle exclusively, so cycles >= ceil(beats / (banks*ports)). ----
    for (const auto &s : accel.structures()) {
        if (s->kind() == StructureKind::Dram)
            continue;
        const StructureFootprint &sf = fp.of(*s);
        DesignBound::StructBound sb;
        sb.structure = s.get();
        sb.beatsLb = sf.beatsLb;
        sb.linesLb = sf.linesLb;
        uint64_t ports = uint64_t(std::max(1u, s->banks())) *
                         std::max(1u, s->portsPerBank());
        sb.bankCycles = ceilDiv(sf.beatsLb, ports);
        d.structures.push_back(sb);
        if (sb.bankCycles > d.cycleLb) {
            d.cycleLb = sb.bankCycles;
            d.bottleneckKind = "bank-ports";
            d.bottleneckName = s->name();
        }
    }

    // ---- Junction capacity: each provably-executed memory access
    // claims one cycle on its (task, tile) junction port. ----
    for (const auto &task : accel.tasks()) {
        uint64_t loads = 0, stores = 0;
        for (const Node *n : task->memOps()) {
            if (n->kind() == NodeKind::Load)
                loads = satAdd(loads, vr.memAccessesLb(*n));
            else
                stores = satAdd(stores, vr.memAccessesLb(*n));
        }
        uint64_t tiles = std::max(1u, task->numTiles());
        uint64_t jb = std::max(
            ceilDiv(loads,
                    tiles * std::max(1u, task->junctionReadPorts())),
            ceilDiv(stores,
                    tiles * std::max(1u, task->junctionWritePorts())));
        d.junctions.push_back({task.get(), jb});
        if (jb > d.cycleLb) {
            d.cycleLb = jb;
            d.bottleneckKind = "junction";
            d.bottleneckName = task->name();
        }
    }

    // ---- DRAM bandwidth: cold misses serialize on the DRAM port.
    // Each distinct line must miss at least once (tags start empty);
    // a straddling multi-word access can allocate two lines with one
    // transfer, so halve the line bound when such accesses exist. ----
    const Structure *dram = nullptr;
    for (const auto &s : accel.structures())
        if (s->kind() == StructureKind::Dram)
            dram = s.get();
    uint64_t dram_total = 0, dram_max_xfer = 0;
    uint64_t dram_min_miss = UINT64_MAX;
    std::string dram_name = dram ? dram->name() : "dram";
    for (const auto &s : accel.structures()) {
        if (s->kind() != StructureKind::Cache)
            continue;
        uint64_t lines = fp.of(*s).linesLb;
        if (lines == 0)
            continue;
        bool wide_access = false;
        for (const MemFact &f : fp.memFacts())
            if (f.structure == s.get() && f.words > 1)
                wide_access = true;
        uint64_t misses = wide_access ? (lines + 1) / 2 : lines;
        if (misses == 0)
            continue;
        double bpc = dram ? dram->bytesPerCycle() : s->bytesPerCycle();
        uint64_t xfer = static_cast<uint64_t>(s->lineBytes() /
                                              std::max(1.0, bpc));
        dram_total = satAdd(dram_total, satMul(misses, xfer));
        dram_max_xfer = std::max(dram_max_xfer, xfer);
        dram_min_miss =
            std::min<uint64_t>(dram_min_miss, s->missLatency());
    }
    if (dram_total > 0) {
        // Last transfer starts no earlier than the accumulated DRAM
        // busy time minus its own slot; its event then pays the miss
        // latency on top.
        d.dramLb = dram_total - dram_max_xfer +
                   (dram_min_miss == UINT64_MAX ? 0 : dram_min_miss);
        if (d.dramLb > d.cycleLb) {
            d.cycleLb = d.dramLb;
            d.bottleneckKind = "dram-bandwidth";
            d.bottleneckName = dram_name;
        }
    }

    return result;
}

const std::vector<std::string> &
analysisSectionNames()
{
    static const std::vector<std::string> kSections = {
        "bottleneck", "ii", "footprint", "all"};
    return kSections;
}

void
renderAnalysisText(AnalysisManager &am, const std::string &section,
                   std::ostream &os)
{
    const Accelerator &accel = am.design();
    const ValueRangeAnalysis &vr = am.get<ValueRangeAnalysis>();
    const IiBoundAnalysis &ii = am.get<IiBoundAnalysis>();
    const BoundReportAnalysis &br = am.get<BoundReportAnalysis>();
    const DesignBound &d = br.design();
    bool all = section == "all";

    if (all || section == "bottleneck") {
        os << "== bottleneck (" << accel.name() << ") ==\n";
        os << "  cycle lower bound: " << d.cycleLb << "  binding: "
           << d.bottleneckKind << " (" << d.bottleneckName << ")\n";
        os << "  components: critical-path=" << d.pathLb
           << " dram-bandwidth=" << d.dramLb << "\n";
        for (const auto &sb : d.structures)
            os << "    bank-ports " << sb.structure->name() << ": "
               << sb.bankCycles << "\n";
        for (const auto &tj : d.junctions)
            if (tj.cycles > 0)
                os << "    junction " << tj.task->name() << ": "
                   << tj.cycles << "\n";
    }
    if (all || section == "ii") {
        os << "== per-task throughput bounds ==\n";
        for (const auto &task : accel.tasks()) {
            const TaskBound &tb = ii.of(*task);
            const TaskRangeFacts &tf = vr.of(*task);
            os << "  " << task->name() << ": ii_lb=" << tb.iiLb
               << " (" << tb.iiBinding << ")";
            if (task->isLoop()) {
                if (tf.tripExact)
                    os << " trip=" << tf.trip;
                else
                    os << " trip=?";
            }
            os << " invocations_lb=" << tf.invocationsLb
               << " span_lb=" << tb.spanLb << " path_lb=" << tb.pathLb
               << "\n";
            if (task->isLoop())
                os << "    ii components: control=" << tb.iiControl
                   << " recurrence=" << tb.iiRecurrence
                   << " node=" << tb.iiNode
                   << " junction=" << tb.iiJunction
                   << " bank=" << tb.iiBank << " queue=" << tb.iiQueue
                   << "\n";
        }
    }
    if (all || section == "footprint") {
        os << "== structure footprints ==\n";
        for (const auto &sb : d.structures)
            os << "  " << sb.structure->name() << " ("
               << structureKindName(sb.structure->kind())
               << "): beats_lb=" << sb.beatsLb
               << " lines_lb=" << sb.linesLb
               << " banks=" << sb.structure->banks() << "x"
               << sb.structure->portsPerBank() << "\n";
    }
}

void
renderAnalysisJson(AnalysisManager &am, std::ostream &os)
{
    const Accelerator &accel = am.design();
    const ValueRangeAnalysis &vr = am.get<ValueRangeAnalysis>();
    const IiBoundAnalysis &ii = am.get<IiBoundAnalysis>();
    const BoundReportAnalysis &br = am.get<BoundReportAnalysis>();
    const DesignBound &d = br.design();

    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "muir.static.v1");
    w.field("design", accel.name());
    w.field("cycle_lb", d.cycleLb);
    w.beginObject("bottleneck");
    w.field("kind", d.bottleneckKind);
    w.field("name", d.bottleneckName);
    w.end();
    w.beginObject("components");
    w.field("critical_path", d.pathLb);
    w.field("dram_bandwidth", d.dramLb);
    w.end();
    w.beginArray("tasks");
    for (const auto &task : accel.tasks()) {
        const TaskBound &tb = ii.of(*task);
        const TaskRangeFacts &tf = vr.of(*task);
        w.beginObject();
        w.field("name", task->name());
        w.field("loop", task->isLoop());
        w.field("trip_exact", tf.tripExact);
        w.field("trip", tf.trip);
        w.field("invocations_lb", tf.invocationsLb);
        w.field("ii_lb", tb.iiLb);
        w.field("ii_binding", tb.iiBinding);
        w.beginObject("ii_components");
        w.field("control", tb.iiControl);
        w.field("recurrence", tb.iiRecurrence);
        w.field("node", tb.iiNode);
        w.field("junction", tb.iiJunction);
        w.field("bank", tb.iiBank);
        w.field("queue", tb.iiQueue);
        w.end();
        w.field("span_lb", tb.spanLb);
        w.field("path_lb", tb.pathLb);
        w.end();
    }
    w.end();
    w.beginArray("structures");
    for (const auto &sb : d.structures) {
        w.beginObject();
        w.field("name", sb.structure->name());
        w.field("kind", structureKindName(sb.structure->kind()));
        w.field("banks", sb.structure->banks());
        w.field("ports_per_bank", sb.structure->portsPerBank());
        w.field("beats_lb", sb.beatsLb);
        w.field("lines_lb", sb.linesLb);
        w.field("bank_bound_cycles", sb.bankCycles);
        w.end();
    }
    w.end();
    w.beginArray("junctions");
    for (const auto &tj : d.junctions) {
        w.beginObject();
        w.field("task", tj.task->name());
        w.field("bound_cycles", tj.cycles);
        w.end();
    }
    w.end();
    w.end();
    os << "\n";
}

} // namespace muir::uir::analysis
