/**
 * @file
 * μbound static memory-footprint analysis. For every Load/Store node
 * it resolves the serving structure and combines the address range
 * from value-range propagation with the node's access width into a
 * MemFact; per structure it aggregates:
 *   - beatsLb: total bank-port beats from provably-executed accesses
 *     (a sound lower bound on dynamic beat demand — every access is
 *     unguarded and its firing count is guaranteed);
 *   - linesLb: for caches, a lower bound on distinct lines touched
 *     (== a lower bound on cold misses, since tags start empty),
 *     derived alignment-independently from affine per-invocation
 *     access sets;
 *   - per-(task, structure) beats of one loop iteration, feeding the
 *     II bank-pressure component.
 * The bank-conflict lint (A003) and bottleneck report consume the
 * per-fact stride descriptors (address strides mod bank count).
 */
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "uir/analysis/manager.hh"
#include "uir/analysis/value_range.hh"
#include "uir/structure.hh"
#include "uir/task.hh"

namespace muir::uir::analysis
{

/** Static facts about one memory node. */
struct MemFact
{
    const Node *node = nullptr;
    /** Serving structure (never DRAM; null when unresolvable). */
    const Structure *structure = nullptr;
    /** Base array of the address, when provenance is known. */
    const ir::GlobalArray *base = nullptr;
    /** Byte-offset interval of the first accessed word (valid when
     *  base != null and the address range is known). */
    bool offsetKnown = false;
    int64_t lo = 0, hi = 0;
    /** Words and bank-port beats per access on this structure. */
    unsigned words = 1, beats = 1;
    bool guarded = false;
    /** Guaranteed dynamic accesses (0 when unprovable/guarded). */
    uint64_t accessesLb = 0;
    /** Within one invocation: offset == off + stride * k exactly for
     *  iterations k in [0, trip); requires an exact trip count and a
     *  guaranteed invocation. */
    bool affine = false;
    int64_t stride = 0, off = 0;
    uint64_t trip = 0;
};

/** Aggregated demand on one structure. */
struct StructureFootprint
{
    /** Total guaranteed beats (loads + stores). */
    uint64_t beatsLb = 0;
    /** Cache only: distinct-lines (== cold-miss) lower bound. */
    uint64_t linesLb = 0;
};

class FootprintAnalysis : public AnalysisResult
{
  public:
    static constexpr const char *kId = "footprint";

    static std::unique_ptr<FootprintAnalysis>
    run(const Accelerator &accel, AnalysisManager &am);

    /** One fact per Load/Store node, in task/node id order. */
    const std::vector<MemFact> &memFacts() const { return facts_; }

    /** Fact for a specific memory node (null if not a mem node). */
    const MemFact *factOf(const Node &node) const;

    const StructureFootprint &of(const Structure &s) const;

    /** Beats one loop iteration of `task` puts on `s` (unguarded
     *  memory nodes only). */
    uint64_t iterationBeats(const Task &task, const Structure &s) const;

  private:
    std::vector<MemFact> facts_;
    std::map<const Node *, size_t> byNode_;
    std::map<const Structure *, StructureFootprint> perStructure_;
    std::map<std::pair<const Task *, const Structure *>, uint64_t>
        iterBeats_;
};

} // namespace muir::uir::analysis
