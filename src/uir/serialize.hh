/**
 * @file
 * Textual serialization of μIR graphs. A deterministic, line-oriented
 * format that round-trips every structural fact the simulator, passes,
 * and backends consume — so optimized designs can be checkpointed to
 * disk, diffed in review, and reloaded without re-running the front
 * end or the pass pipeline.
 *
 * Format sketch (one entity per line, `#` comments allowed):
 *
 *   accelerator gemm
 *   structure l1 kind=cache banks=1 ports=1 wide=1 lat=2 size=64
 *             ways=4 line=64 miss=80 spaces=0
 *   task gemm.mm.k kind=loop tiles=1 queue=2 decoupled=0 jr=2 jw=1
 *     node loop kind=loopctrl type=i32 carried=1 stages=5 \
 *          in=c0:0,c24:0,c1:0,cf0:0,fma:0
 *   root gemm
 *
 * Node references are by name within the task; names are made unique
 * at serialization time. GlobalAddr nodes reference the source
 * module's arrays by name, so deserialization needs the same module.
 */
#pragma once

#include <memory>
#include <string>

#include "uir/accelerator.hh"

namespace muir::uir
{

/**
 * @name Parser resource caps
 * deserializeOrError is exposed to untrusted input (checkpoints from
 * disk, µserve request payloads), so the parser bounds every dimension
 * an adversarial input could blow up: total bytes, single-line length,
 * and entity counts. Exceeding a cap is a recoverable "input too
 * large" error — never an OOM or a crash. The caps are far above any
 * real design (baseline graphs are hundreds of nodes) while keeping
 * the worst-case parse cost small and predictable.
 * @{
 */
constexpr size_t kMaxSerializedBytes = 16u << 20;     ///< whole input
constexpr size_t kMaxSerializedLineBytes = 64u << 10; ///< one line
constexpr unsigned kMaxSerializedNodes = 1u << 16;    ///< across tasks
constexpr unsigned kMaxSerializedEdges = 1u << 18;    ///< in= + guards
constexpr unsigned kMaxSerializedTasks = 1u << 12;
constexpr unsigned kMaxSerializedStructures = 1u << 12;
/** @} */

/** Serialize the whole graph to the textual format. */
std::string serialize(const Accelerator &accel);

/** Outcome of a recoverable deserialization attempt. */
struct DeserializeResult
{
    /** The parsed graph; null when parsing failed. */
    std::unique_ptr<Accelerator> accel;
    /** Human-readable problem description (empty on success). */
    std::string error;
    /** 1-based input line of the problem (0 = whole-input problem). */
    unsigned line = 0;

    bool ok() const { return accel != nullptr; }
};

/**
 * Parse a serialized graph, reporting malformed input as an error +
 * line number instead of aborting — callers (muirc, services) print
 * the diagnostic and carry on. Global-array references resolve
 * against source (which must outlive the result).
 */
DeserializeResult deserializeOrError(const std::string &text,
                                     const ir::Module *source);

/**
 * Parse a serialized graph. Global-array references resolve against
 * source (which must outlive the result). Fatal on malformed input —
 * the orDie convenience over deserializeOrError for tests/tools that
 * want the old abort behavior.
 */
std::unique_ptr<Accelerator> deserialize(const std::string &text,
                                         const ir::Module *source);

} // namespace muir::uir
