/**
 * @file
 * The whole-accelerator circuit (§3.2): a structural, concurrent graph
 * of task blocks, hardware structures, and connections. This is the
 * object μopt passes transform and the Chisel backend lowers.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "uir/structure.hh"
#include "uir/task.hh"

namespace muir::uir
{

/**
 * The top-level μIR graph.
 *
 * Const-correctness IS the concurrency contract here: every const
 * method is genuinely read-only (no lazy caches, no mutation through
 * const lookups — const overloads return const pointers), so a
 * `const Accelerator &` may be shared across any number of concurrent
 * simulation runs without locking. Mutation (passes, perturbations,
 * deserialization) requires a non-const reference and must happen
 * before fan-out.
 */
class Accelerator
{
  public:
    Accelerator(std::string name, const ir::Module *source)
        : name_(std::move(name)), source_(source)
    {
    }

    Accelerator(const Accelerator &) = delete;
    Accelerator &operator=(const Accelerator &) = delete;

    const std::string &name() const { return name_; }

    /** The program this accelerator implements (owned by the caller;
     *  must outlive the accelerator). */
    const ir::Module *source() const { return source_; }

    /** @name Tasks @{ */
    Task *addTask(TaskKind kind, std::string name, Task *parent);
    const std::vector<std::unique_ptr<Task>> &tasks() const
    {
        return tasks_;
    }
    Task *root();
    const Task *root() const;
    /** Mark the root task (the front end creates children first). */
    void setRoot(Task *t) { root_ = t; }
    Task *taskByName(const std::string &name);
    const Task *taskByName(const std::string &name) const;
    /** @} */

    /** @name Hardware structures @{ */
    Structure *addStructure(StructureKind kind, std::string name);
    void removeStructure(Structure *s);
    const std::vector<std::unique_ptr<Structure>> &structures() const
    {
        return structures_;
    }
    Structure *structureByName(const std::string &name);
    const Structure *structureByName(const std::string &name) const;
    /**
     * The structure serving a memory space: the one explicitly listing
     * it, else the structure serving space 0 (the shared L1 cache in
     * the baseline). Exactly one structure may list a given space.
     */
    Structure *structureForSpace(unsigned space);
    const Structure *structureForSpace(unsigned space) const;
    /**
     * Non-panicking variant for diagnostics: nullptr when nothing
     * serves the space (and no space-0 default exists), the first
     * match when the space is doubly owned — the verifier and μlint
     * report those conditions instead of asserting on them.
     */
    Structure *findStructureForSpace(unsigned space);
    const Structure *findStructureForSpace(unsigned space) const;
    /** @} */

    /** @name Whole-graph statistics (Table 4) @{ */
    unsigned numNodes() const;
    unsigned numEdges() const;
    /** @} */

  private:
    std::string name_;
    const ir::Module *source_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::vector<std::unique_ptr<Structure>> structures_;
    Task *root_ = nullptr;
    unsigned nextStructureId_ = 0;
};

} // namespace muir::uir
