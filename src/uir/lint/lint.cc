#include "uir/lint/lint.hh"

namespace muir::uir::lint
{

Linter &
Linter::add(std::unique_ptr<LintCheck> check)
{
    checks_.push_back(std::move(check));
    return *this;
}

std::vector<Diagnostic>
Linter::run(const Accelerator &accel) const
{
    return run(accel, nullptr);
}

std::vector<Diagnostic>
Linter::run(const Accelerator &accel,
            analysis::AnalysisManager *am) const
{
    std::vector<Diagnostic> diags;
    for (const auto &check : checks_) {
        // A graph that fails structural validation cannot be walked
        // safely by the behavioural checks; report the errors found
        // so far instead of crashing inside a later check.
        if (check->requiresValidGraph() &&
            countAtLeast(diags, Severity::Error) > 0)
            continue;
        check->run(accel, am, diags);
    }
    return diags;
}

Linter
Linter::standard()
{
    Linter linter;
    linter.add(makeStructuralCheck())
        .add(makeRaceCheck())
        .add(makeDeadlockCheck())
        .add(makePortPressureCheck())
        .add(makeDeadNodeCheck())
        .add(makeMemBoundsCheck())
        .add(makeQueueSizeCheck())
        .add(makeBankConflictCheck());
    return linter;
}

} // namespace muir::uir::lint
