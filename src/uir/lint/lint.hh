/**
 * @file
 * μlint: a registry of static checks run over an Accelerator. Where
 * the structural verifier (uir/verifier.hh) only answers "does this
 * graph compose?", μlint finds accelerator bugs that otherwise only
 * surface in simulation or silicon: data races between concurrently
 * live spawned subtrees, spawn-graph deadlock/liveness hazards,
 * oversubscribed memory ports, and dead hardware.
 *
 * Usage:
 *   auto diags = lint::Linter::standard().run(accel);
 *   std::puts(lint::renderText(diags).c_str());
 */
#pragma once

#include <memory>
#include <vector>

#include "uir/accelerator.hh"
#include "uir/lint/diagnostic.hh"

namespace muir::uir::analysis
{
class AnalysisManager;
}

namespace muir::uir::lint
{

/** One registered static check. */
class LintCheck
{
  public:
    virtual ~LintCheck() = default;

    /** Stable catalog id, e.g. "R001". Never reused or renumbered. */
    virtual const char *id() const = 0;

    /** Short slug, e.g. "race.mem". */
    virtual const char *name() const = 0;

    /** One-line description for --help / docs. */
    virtual const char *description() const = 0;

    /** Append findings for this accelerator to out. */
    virtual void run(const Accelerator &accel,
                     std::vector<Diagnostic> &out) const = 0;

    /**
     * Analysis-aware variant: checks that consume μbound results
     * (uir/analysis/) override this to reuse `am`'s cache. The
     * default forwards to the plain overload. `am`, when non-null,
     * is keyed to `accel`.
     */
    virtual void run(const Accelerator &accel,
                     analysis::AnalysisManager *am,
                     std::vector<Diagnostic> &out) const
    {
        (void)am;
        run(accel, out);
    }

    /**
     * Behavioural checks walk the graph assuming it composes (topo
     * orders exist, call arities match); the Linter skips them when
     * an earlier check reported an Error. The structural check
     * overrides this to false so it always runs.
     */
    virtual bool requiresValidGraph() const { return true; }
};

/** @name Built-in check factories @{ */
/** G001/U001/U002/W001: structural verifier + interface widths. */
std::unique_ptr<LintCheck> makeStructuralCheck();
/** R001: memory races between concurrently live spawned subtrees. */
std::unique_ptr<LintCheck> makeRaceCheck();
/** D001/D002/D003: call cycles, unjoined spawns, spawn recursion. */
std::unique_ptr<LintCheck> makeDeadlockCheck();
/** P001: structural hazards on under-banked memory structures. */
std::unique_ptr<LintCheck> makePortPressureCheck();
/** X001: nodes whose outputs reach no effect. */
std::unique_ptr<LintCheck> makeDeadNodeCheck();
/** A001: provably out-of-bounds memory accesses (value ranges). */
std::unique_ptr<LintCheck> makeMemBoundsCheck();
/** A002: statically-undersized child queues. */
std::unique_ptr<LintCheck> makeQueueSizeCheck();
/** A003: bank-conflict hotspots from affine access strides. */
std::unique_ptr<LintCheck> makeBankConflictCheck();
/** @} */

/** An ordered collection of checks. */
class Linter
{
  public:
    /** Append a check; returns *this for chaining. */
    Linter &add(std::unique_ptr<LintCheck> check);

    /** Run every check; diagnostics in check order. */
    std::vector<Diagnostic> run(const Accelerator &accel) const;

    /**
     * Run every check against a shared analysis cache, so checks
     * consuming μbound analyses reuse results already computed by
     * passes or the `--analyze` report.
     */
    std::vector<Diagnostic> run(const Accelerator &accel,
                                analysis::AnalysisManager *am) const;

    const std::vector<std::unique_ptr<LintCheck>> &checks() const
    {
        return checks_;
    }

    /** All built-in checks, catalog order. */
    static Linter standard();

  private:
    std::vector<std::unique_ptr<LintCheck>> checks_;
};

} // namespace muir::uir::lint
