/**
 * @file
 * A001/A002/A003 — μbound-powered checks. These are the lint clients
 * of the static analysis framework (uir/analysis/): value ranges
 * prove memory accesses out of bounds, task metrics size child
 * queues, and affine address strides expose bank-conflict hotspots.
 * All three only report what the analyses *prove* — unknown ranges
 * and inexact trip counts silently pass, so the checks stay quiet on
 * designs the analyses cannot see through.
 */
#include <algorithm>
#include <numeric>

#include "support/strings.hh"
#include "uir/analysis/footprint.hh"
#include "uir/analysis/task_metrics.hh"
#include "uir/lint/lint.hh"

namespace muir::uir::lint
{

namespace
{

/** Shared shape: delegate the plain entry point through a local,
 *  single-use analysis cache. */
class AnalysisCheck : public LintCheck
{
  public:
    void run(const Accelerator &accel,
             std::vector<Diagnostic> &out) const final
    {
        analysis::AnalysisManager local(accel);
        runWith(accel, local, out);
    }

    void run(const Accelerator &accel, analysis::AnalysisManager *am,
             std::vector<Diagnostic> &out) const final
    {
        if (am == nullptr) {
            run(accel, out);
            return;
        }
        runWith(accel, *am, out);
    }

  protected:
    virtual void runWith(const Accelerator &accel,
                         analysis::AnalysisManager &am,
                         std::vector<Diagnostic> &out) const = 0;
};

/**
 * A001 mem.oob — accesses whose every possible address falls outside
 * the bounds of the global array it provably derives from. Over-
 * approximate ranges mean "possibly out of bounds" stays silent; a
 * finding here is a definite bug when the access executes.
 */
class MemBoundsCheck : public AnalysisCheck
{
  public:
    const char *id() const override { return "A001"; }
    const char *name() const override { return "mem.oob"; }
    const char *description() const override
    {
        return "memory access provably outside its global array";
    }

  protected:
    void runWith(const Accelerator &,
                 analysis::AnalysisManager &am,
                 std::vector<Diagnostic> &out) const override
    {
        const auto &fp = am.get<analysis::FootprintAnalysis>();
        for (const analysis::MemFact &f : fp.memFacts()) {
            if (!f.offsetKnown || f.base == nullptr || f.guarded)
                continue;
            uint64_t size = f.base->sizeBytes();
            uint64_t bytes = uint64_t(f.words) * 4;
            // Definitely OOB: the entire offset interval is negative,
            // or even the smallest offset runs past the array end.
            bool oob = f.hi < 0 ||
                       (f.lo >= 0 && uint64_t(f.lo) + bytes > size);
            if (!oob)
                continue;
            Diagnostic d;
            d.severity = Severity::Warning;
            d.check = "A001";
            d.node = f.node;
            d.task = f.node->parent();
            d.message =
                fmt("%s of %u word(s) at byte offset [%lld, %lld] is "
                    "out of bounds for '%s' (%llu bytes)",
                    f.node->kind() == NodeKind::Load ? "load" : "store",
                    f.words, static_cast<long long>(f.lo),
                    static_cast<long long>(f.hi),
                    f.base->name().c_str(),
                    static_cast<unsigned long long>(size));
            out.push_back(std::move(d));
        }
    }
};

/**
 * A002 queue.undersized — a decoupled child whose queue cannot cover
 * its own pipeline latency at the parent's dispatch rate, so the
 * parent will stall on a full queue while the child is merely deep.
 * Mirrors TaskQueuingPass's auto-sizing model; Note severity because
 * it is a throughput hint, not a correctness bug.
 */
class QueueSizeCheck : public AnalysisCheck
{
  public:
    const char *id() const override { return "A002"; }
    const char *name() const override { return "queue.undersized"; }
    const char *description() const override
    {
        return "decoupled child queue below its latency-coverage depth";
    }

  protected:
    void runWith(const Accelerator &accel,
                 analysis::AnalysisManager &am,
                 std::vector<Diagnostic> &out) const override
    {
        const auto &tm = am.get<analysis::TaskMetricsAnalysis>();
        for (const auto &task : accel.tasks()) {
            if (task->parentTask() == nullptr || !task->decoupled())
                continue;
            unsigned latency = tm.of(*task).pipelineDepth;
            unsigned rate = std::max(
                1u, tm.of(*task->parentTask()).recurrenceIi);
            unsigned desired = std::clamp(latency / rate, 2u, 32u);
            if (task->queueDepth() >= desired)
                continue;
            Diagnostic d;
            d.severity = Severity::Note;
            d.check = "A002";
            d.task = task.get();
            d.message = fmt(
                "queue depth %u cannot cover %u cycles of child "
                "latency at the parent's dispatch interval of %u",
                task->queueDepth(), latency, rate);
            d.fix = fmt("queue:%u", desired);
            out.push_back(std::move(d));
        }
    }
};

/**
 * A003 bank.conflict — an affine access stream whose stride keeps
 * revisiting a strict subset of a structure's banks, serializing on
 * bank ports while other banks idle. Fires only on structures that
 * were actually banked (banks >= 2); suggests a coprime bank count.
 */
class BankConflictCheck : public AnalysisCheck
{
  public:
    const char *id() const override { return "A003"; }
    const char *name() const override { return "bank.conflict"; }
    const char *description() const override
    {
        return "affine stride maps a bank subset; hotspot on banking";
    }

  protected:
    void runWith(const Accelerator &,
                 analysis::AnalysisManager &am,
                 std::vector<Diagnostic> &out) const override
    {
        const auto &fp = am.get<analysis::FootprintAnalysis>();
        for (const analysis::MemFact &f : fp.memFacts()) {
            if (!f.affine || f.guarded || f.structure == nullptr ||
                f.stride == 0)
                continue;
            const Structure *s = f.structure;
            unsigned banks = s->banks();
            if (banks < 2 || f.trip < banks)
                continue;
            // Bank selection granularity (sim/timing.cc): caches bank
            // by line, scratchpads by wide word.
            uint64_t unit =
                s->kind() == StructureKind::Cache
                    ? s->lineBytes()
                    : uint64_t(4) * std::max(1u, s->wideWords());
            uint64_t stride = f.stride < 0
                                  ? uint64_t(-(f.stride + 1)) + 1
                                  : uint64_t(f.stride);
            if (unit == 0 || stride % unit != 0)
                continue; // Sub-unit strides touch neighboring banks.
            uint64_t units = stride / unit;
            if (units == 0)
                continue;
            uint64_t g = std::gcd<uint64_t>(banks, units);
            unsigned distinct = unsigned(banks / g);
            if (distinct >= banks)
                continue; // Stride cycles through every bank.
            Diagnostic d;
            d.severity = Severity::Warning;
            d.check = "A003";
            d.node = f.node;
            d.task = f.node->parent();
            d.structure = s;
            d.message = fmt(
                "stride-%llu access stream touches only %u of %u "
                "banks on '%s'; conflicting accesses serialize",
                static_cast<unsigned long long>(stride), distinct,
                banks, s->name().c_str());
            // A bank count coprime with the stride units spreads the
            // stream across every bank.
            for (unsigned n = banks + 1; n <= 4 * banks + 1; ++n)
                if (std::gcd<uint64_t>(n, units) == 1) {
                    d.fix = fmt("bank:%u", n);
                    break;
                }
            out.push_back(std::move(d));
        }
    }
};

} // namespace

std::unique_ptr<LintCheck>
makeMemBoundsCheck()
{
    return std::make_unique<MemBoundsCheck>();
}

std::unique_ptr<LintCheck>
makeQueueSizeCheck()
{
    return std::make_unique<QueueSizeCheck>();
}

std::unique_ptr<LintCheck>
makeBankConflictCheck()
{
    return std::make_unique<BankConflictCheck>();
}

} // namespace muir::uir::lint
