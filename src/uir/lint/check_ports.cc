/**
 * @file
 * P001 port.pressure — structural hazards on memory structures.
 *
 * Each task's junction multiplexes its memory ops onto the structure
 * serving their space (§3.4), so the same-cycle demand a task can
 * present is bounded by its junction ports, multiplied by its
 * execution tiles (Pass 2). A structure offers banks() x
 * portsPerBank() concurrent ports (Pass 4). When aggregate demand
 * overwhelms supply the accelerator serializes on bank conflicts —
 * exactly the hazard Figure 16's cache-banking sweep measures — so
 * the check suggests the banking factor that restores balance.
 */
#include <algorithm>

#include "support/strings.hh"
#include "uir/lint/lint.hh"

namespace muir::uir::lint
{

namespace
{

/** Demand may exceed supply by this factor before we warn: junction
 *  arbitration already absorbs small overcommit without stalling the
 *  pipeline (the baseline 2R+1W junction against a 1-port cache). */
constexpr unsigned kSlack = 4;

unsigned
nextPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

class PortPressureCheck : public LintCheck
{
  public:
    const char *id() const override { return "P001"; }
    const char *name() const override { return "port.pressure"; }
    const char *description() const override
    {
        return "same-cycle accessors vs banks x ports per structure";
    }

    void run(const Accelerator &accel,
             std::vector<Diagnostic> &out) const override
    {
        for (const auto &s : accel.structures()) {
            if (s->kind() == StructureKind::Dram)
                continue; // DRAM bandwidth is the cost model's domain.
            // Tasks in a pipeline hit their memory phases at
            // different times, so the structure sees the *peak*
            // task's same-cycle demand, not the sum across tasks —
            // only tiling replicates accessors within one cycle.
            unsigned demand = 0;
            for (const auto &t : accel.tasks()) {
                unsigned loads = 0, stores = 0;
                for (const Node *m : t->memOps()) {
                    if (accel.findStructureForSpace(m->memSpace()) !=
                        s.get())
                        continue;
                    if (m->kind() == NodeKind::Load)
                        ++loads;
                    else
                        ++stores;
                }
                if (loads + stores == 0)
                    continue;
                unsigned tiles = std::max(1u, t->numTiles());
                demand = std::max(
                    demand,
                    tiles *
                        (std::min(loads, t->junctionReadPorts()) +
                         std::min(stores, t->junctionWritePorts())));
            }
            unsigned ports = std::max(1u, s->portsPerBank());
            unsigned supply = std::max(1u, s->banks()) * ports;
            if (demand <= supply * kSlack)
                continue;
            Diagnostic d;
            d.severity = Severity::Warning;
            d.check = "P001";
            d.structure = s.get();
            d.message = fmt(
                "%u same-cycle-capable accessors contend for %u ports "
                "(%u banks x %u/bank); accesses will serialize on "
                "bank conflicts",
                demand, supply, std::max(1u, s->banks()), ports);
            d.fix = fmt("bank:%u",
                        nextPow2((demand + ports * kSlack - 1) /
                                 (ports * kSlack)));
            out.push_back(std::move(d));
        }
    }
};

} // namespace

std::unique_ptr<LintCheck>
makePortPressureCheck()
{
    return std::make_unique<PortPressureCheck>();
}

} // namespace muir::uir::lint
