/**
 * @file
 * Spawn-graph deadlock and liveness checks.
 *
 *   D001 deadlock.callcycle  — a cycle of awaited (non-spawn) child
 *        calls: every tile of every task in the cycle can end up
 *        waiting on a deeper recursive instance, and the queue window
 *        (queueDepth x tiles) bounds how deep the hardware can nest
 *        before dispatch stalls forever.
 *   D002 liveness.unjoined   — a spawn whose completion no SyncNode
 *        ever joins, in this task or any ancestor: its side effects
 *        are unordered with the rest of the program and accelerator
 *        completion is undefined.
 *   D003 deadlock.spawncycle — a call cycle containing a spawn edge:
 *        unbounded fan-out into a finite task queue.
 */
#include <algorithm>
#include <set>

#include "support/strings.hh"
#include "uir/lint/lint.hh"

namespace muir::uir::lint
{

namespace
{

class DeadlockCheck : public LintCheck
{
  public:
    const char *id() const override { return "D001"; }
    const char *name() const override { return "deadlock.spawn"; }
    const char *description() const override
    {
        return "task-call cycles, unjoined spawns, spawn recursion";
    }

    void run(const Accelerator &accel,
             std::vector<Diagnostic> &out) const override
    {
        findCycles(accel, out);
        if (accel.root() != nullptr) {
            std::set<const Task *> active;
            const Node *leak = nullptr;
            if (hasUnjoinedSpawn(*accel.root(), active, leak) &&
                leak != nullptr) {
                Diagnostic d;
                d.severity = Severity::Warning;
                d.check = "D002";
                d.task = leak->parent();
                d.node = leak;
                d.message = fmt("spawn of task %s is never joined by a "
                                "sync on any path to completion",
                                leak->callee()->name().c_str());
                d.fix = "insert sync";
                out.push_back(std::move(d));
            }
        }
    }

  private:
    /** DFS over the task-call graph; report each cycle once. */
    static void findCycles(const Accelerator &accel,
                           std::vector<Diagnostic> &out)
    {
        std::set<std::set<const Task *>> seen_cycles;
        for (const auto &t : accel.tasks()) {
            std::vector<const Task *> stack;
            dfsCycle(t.get(), stack, seen_cycles, out);
        }
    }

    static void dfsCycle(const Task *task,
                         std::vector<const Task *> &stack,
                         std::set<std::set<const Task *>> &seen,
                         std::vector<Diagnostic> &out)
    {
        auto on_stack =
            std::find(stack.begin(), stack.end(), task);
        if (on_stack != stack.end()) {
            std::vector<const Task *> cycle(on_stack, stack.end());
            std::set<const Task *> key(cycle.begin(), cycle.end());
            if (!seen.insert(key).second)
                return;
            // Does the cycle contain a spawn edge?
            bool spawned = false;
            for (size_t i = 0; i < cycle.size(); ++i) {
                const Task *from = cycle[i];
                const Task *to = cycle[(i + 1) % cycle.size()];
                for (const Node *call : from->childCalls())
                    if (call->callee() == to && call->isSpawn())
                        spawned = true;
            }
            std::vector<std::string> names;
            for (const Task *t : cycle)
                names.push_back(t->name());
            Diagnostic d;
            d.task = cycle.front();
            if (spawned) {
                d.severity = Severity::Warning;
                d.check = "D003";
                d.message = fmt("self-recursive spawn chain %s: "
                                "unbounded fan-out into a task queue "
                                "of depth %u",
                                join(names, " -> ").c_str(),
                                cycle.front()->queueDepth());
                d.fix = fmt("queue:%u or convert the recursion to "
                            "iteration",
                            2 * std::max(1u,
                                         cycle.front()->queueDepth()));
            } else {
                d.severity = Severity::Warning;
                d.check = "D001";
                d.message = fmt(
                    "task-call cycle %s: recursion deeper than the "
                    "queue window (%u) deadlocks every tile",
                    join(names, " -> ").c_str(),
                    cycle.front()->queueDepth() *
                        std::max(1u, cycle.front()->numTiles()));
                d.fix = "bound the recursion or raise queue depth";
            }
            out.push_back(std::move(d));
            return;
        }
        stack.push_back(task);
        std::set<const Task *> visited_callees;
        for (const Task *callee : task->childTasks())
            if (visited_callees.insert(callee).second)
                dfsCycle(callee, stack, seen, out);
        stack.pop_back();
    }

    /**
     * Walk side-effecting nodes in program (id) order, mirroring the
     * executor's outstanding-spawn semantics: spawns accumulate, a
     * sync joins everything outstanding, and a called child's unjoined
     * spawns continue past the call into the caller.
     * @return true if spawns are still outstanding at task end; leak
     *         names a representative spawn node.
     */
    static bool hasUnjoinedSpawn(const Task &task,
                                 std::set<const Task *> &active,
                                 const Node *&leak)
    {
        if (!active.insert(&task).second)
            return false;
        std::vector<const Node *> sites;
        for (const auto &n : task.nodes())
            if (n->kind() == NodeKind::ChildCall ||
                n->kind() == NodeKind::SyncNode)
                sites.push_back(n.get());
        std::sort(sites.begin(), sites.end(),
                  [](const Node *a, const Node *b) {
                      return a->id() < b->id();
                  });
        bool outstanding = false;
        const Node *local_leak = nullptr;
        for (const Node *site : sites) {
            if (site->kind() == NodeKind::SyncNode) {
                outstanding = false;
                local_leak = nullptr;
            } else if (site->callee() != nullptr) {
                if (site->isSpawn()) {
                    outstanding = true;
                    local_leak = site;
                } else if (hasUnjoinedSpawn(*site->callee(), active,
                                            leak)) {
                    outstanding = true;
                    if (local_leak == nullptr)
                        local_leak = leak;
                }
            }
        }
        active.erase(&task);
        if (outstanding && local_leak != nullptr)
            leak = local_leak;
        return outstanding;
    }
};

} // namespace

std::unique_ptr<LintCheck>
makeDeadlockCheck()
{
    return std::make_unique<DeadlockCheck>();
}

} // namespace muir::uir::lint
