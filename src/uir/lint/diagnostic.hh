/**
 * @file
 * μlint diagnostics: structured findings produced by static checks
 * over a μIR accelerator graph. Each diagnostic carries a stable check
 * id (see docs/lint.md for the catalog), a severity, the offending
 * task/node/structure, and — where the fix is mechanical — a
 * machine-actionable suggestion such as "bank:4" or "insert sync".
 */
#pragma once

#include <string>
#include <vector>

namespace muir::uir
{

class Task;
class Node;
class Structure;

namespace lint
{

/** How bad a finding is. Errors make the graph unfit to build. */
enum class Severity
{
    /** Informational: worth knowing, never fails a build. */
    Note,
    /** Likely bug or performance hazard; fails under -Werror. */
    Warning,
    /** Definite violation of μIR semantics. */
    Error,
};

/** @return printable severity name ("note" / "warning" / "error"). */
const char *severityName(Severity severity);

/** One finding. */
struct Diagnostic
{
    Severity severity = Severity::Warning;
    /** Stable check id, e.g. "R001" (docs/lint.md catalog). */
    std::string check;
    /** Human-readable explanation. */
    std::string message;
    /** Offending loci; any subset may be null. */
    const Task *task = nullptr;
    const Node *node = nullptr;
    const Structure *structure = nullptr;
    /** Suggested fix, e.g. "bank:4" or "insert sync"; may be empty. */
    std::string fix;
};

/**
 * Render one diagnostic per line:
 *   error [U001] task root, node ld0: space 7 unserved (fix: ...)
 */
std::string renderText(const std::vector<Diagnostic> &diags);

/** Render a JSON array of diagnostic objects (schema in docs/lint.md). */
std::string renderJson(const std::vector<Diagnostic> &diags);

/** Number of diagnostics at or above a severity. */
unsigned countAtLeast(const std::vector<Diagnostic> &diags,
                      Severity severity);

} // namespace lint
} // namespace muir::uir
