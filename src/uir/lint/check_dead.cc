/**
 * @file
 * X001 dead.node — hardware that computes values nobody observes.
 *
 * A μIR node earns its function unit by (transitively) feeding an
 * effect: a Store, a LiveOut, a child-task dispatch, a sync, or the
 * loop control. Everything else elaborates to gates that burn area
 * and power for no architectural reason — usually the residue of an
 * earlier transformation. Interface nodes (LiveIn/LiveOut) are part
 * of the task's latency-insensitive contract and are exempt; an
 * unused LiveIn is reported as a Note, not a Warning.
 */
#include <set>
#include <vector>

#include "uir/lint/lint.hh"

namespace muir::uir::lint
{

namespace
{

bool
isEffect(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Store:
      case NodeKind::LiveOut:
      case NodeKind::ChildCall:
      case NodeKind::SyncNode:
      case NodeKind::LoopControl:
        return true;
      default:
        return false;
    }
}

class DeadNodeCheck : public LintCheck
{
  public:
    const char *id() const override { return "X001"; }
    const char *name() const override { return "dead.node"; }
    const char *description() const override
    {
        return "nodes whose outputs reach no store/live-out/control";
    }

    void run(const Accelerator &accel,
             std::vector<Diagnostic> &out) const override
    {
        for (const auto &t : accel.tasks())
            runTask(*t, out);
    }

  private:
    static void runTask(const Task &task, std::vector<Diagnostic> &out)
    {
        // Backward reachability from effects over inputs + guards.
        std::set<const Node *> reached;
        std::vector<const Node *> stack;
        for (const auto &n : task.nodes()) {
            if (isEffect(n->kind())) {
                reached.insert(n.get());
                stack.push_back(n.get());
            }
        }
        while (!stack.empty()) {
            const Node *n = stack.back();
            stack.pop_back();
            auto visit = [&](const Node *p) {
                if (p != nullptr && reached.insert(p).second)
                    stack.push_back(p);
            };
            for (const auto &ref : n->inputs())
                visit(ref.node);
            if (n->guard().valid())
                visit(n->guard().node);
        }

        for (const auto &n : task.nodes()) {
            if (reached.count(n.get()))
                continue;
            Diagnostic d;
            d.check = "X001";
            d.task = &task;
            d.node = n.get();
            if (n->kind() == NodeKind::LiveIn) {
                d.severity = Severity::Note;
                d.message = "live-in feeds no effect; the argument is "
                            "transferred but never used";
                d.fix = "drop the live-in from the task interface";
            } else {
                d.severity = Severity::Warning;
                d.message = "node output reaches no store, live-out, "
                            "child call, or control node";
                d.fix = "remove the dead node";
            }
            out.push_back(std::move(d));
        }
    }
};

} // namespace

std::unique_ptr<LintCheck>
makeDeadNodeCheck()
{
    return std::make_unique<DeadNodeCheck>();
}

} // namespace muir::uir::lint
