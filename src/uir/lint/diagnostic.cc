#include "uir/lint/diagnostic.hh"

#include <sstream>

#include "support/strings.hh"
#include "uir/accelerator.hh"

namespace muir::uir::lint
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

namespace
{

/** "task root, node st0, structure spad" (only the non-null loci). */
std::string
locus(const Diagnostic &d)
{
    std::vector<std::string> parts;
    if (d.task != nullptr)
        parts.push_back("task " + d.task->name());
    if (d.node != nullptr)
        parts.push_back("node " + d.node->name());
    if (d.structure != nullptr)
        parts.push_back("structure " + d.structure->name());
    return join(parts, ", ");
}

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += fmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
renderText(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    for (const Diagnostic &d : diags) {
        os << severityName(d.severity) << " [" << d.check << "]";
        std::string where = locus(d);
        if (!where.empty())
            os << " " << where;
        os << ": " << d.message;
        if (!d.fix.empty())
            os << " (fix: " << d.fix << ")";
        os << "\n";
    }
    return os.str();
}

std::string
renderJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    os << "[\n";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << "  {\"severity\": \"" << severityName(d.severity)
           << "\", \"check\": \"" << jsonEscape(d.check) << "\"";
        if (d.task != nullptr)
            os << ", \"task\": \"" << jsonEscape(d.task->name()) << "\"";
        if (d.node != nullptr)
            os << ", \"node\": \"" << jsonEscape(d.node->name()) << "\"";
        if (d.structure != nullptr)
            os << ", \"structure\": \""
               << jsonEscape(d.structure->name()) << "\"";
        os << ", \"message\": \"" << jsonEscape(d.message) << "\"";
        if (!d.fix.empty())
            os << ", \"fix\": \"" << jsonEscape(d.fix) << "\"";
        os << "}" << (i + 1 < diags.size() ? "," : "") << "\n";
    }
    os << "]\n";
    return os.str();
}

unsigned
countAtLeast(const std::vector<Diagnostic> &diags, Severity severity)
{
    unsigned n = 0;
    for (const Diagnostic &d : diags)
        if (d.severity >= severity)
            ++n;
    return n;
}

} // namespace muir::uir::lint
