/**
 * @file
 * Structural μlint checks, folded in from/alongside the verifier:
 *
 *   G001 graph.malformed  — per-task structural violations (arity,
 *                           cross-task edges, acyclicity), wrapping
 *                           uir::verifyTasks.
 *   U001 space.unserved   — a memory node addresses a space no
 *                           structure serves.
 *   U002 space.multiowner — two structures claim the same space.
 *   W001 width.mismatch   — latency-insensitive interface widths
 *                           disagree (child-call argument vs callee
 *                           live-in, live-out input vs declared type).
 */
#include <map>

#include "support/strings.hh"
#include "uir/lint/lint.hh"
#include "uir/verifier.hh"

namespace muir::uir::lint
{

namespace
{

class StructuralCheck : public LintCheck
{
  public:
    const char *id() const override { return "G001"; }
    bool requiresValidGraph() const override { return false; }
    const char *name() const override { return "graph.structural"; }
    const char *description() const override
    {
        return "structural verifier: arity, edges, spaces, widths";
    }

    void run(const Accelerator &accel,
             std::vector<Diagnostic> &out) const override
    {
        // G001: per-task structural violations keep their verifier
        // message verbatim.
        for (const std::string &msg : verifyTasks(accel)) {
            Diagnostic d;
            d.severity = Severity::Error;
            d.check = "G001";
            d.message = msg;
            out.push_back(std::move(d));
        }

        checkSpaces(accel, out);
        checkWidths(accel, out);
    }

  private:
    static void checkSpaces(const Accelerator &accel,
                            std::vector<Diagnostic> &out)
    {
        // U002: exactly one structure may claim each space.
        std::map<unsigned, const Structure *> owner;
        for (const auto &s : accel.structures()) {
            for (unsigned space : s->spaces()) {
                auto [it, inserted] = owner.emplace(space, s.get());
                if (!inserted) {
                    Diagnostic d;
                    d.severity = Severity::Error;
                    d.check = "U002";
                    d.structure = s.get();
                    d.message = fmt("space %u owned by both %s and %s",
                                    space, it->second->name().c_str(),
                                    s->name().c_str());
                    d.fix = fmt("remove space %u from one structure",
                                space);
                    out.push_back(std::move(d));
                }
            }
        }

        // U001: every memory node's space must resolve to a structure.
        for (const auto &t : accel.tasks()) {
            for (const auto &n : t->nodes()) {
                if (n->kind() != NodeKind::Load &&
                    n->kind() != NodeKind::Store)
                    continue;
                if (accel.findStructureForSpace(n->memSpace()) !=
                    nullptr)
                    continue;
                Diagnostic d;
                d.severity = Severity::Error;
                d.check = "U001";
                d.task = t.get();
                d.node = n.get();
                d.message = fmt("memory space %u unserved by any "
                                "structure", n->memSpace());
                d.fix = fmt("add space %u to a scratchpad or cache",
                            n->memSpace());
                out.push_back(std::move(d));
            }
        }
    }

    static void checkWidths(const Accelerator &accel,
                            std::vector<Diagnostic> &out)
    {
        for (const auto &t : accel.tasks()) {
            for (const auto &n : t->nodes()) {
                if (n->kind() == NodeKind::ChildCall &&
                    n->callee() != nullptr) {
                    const auto &formals = n->callee()->liveIns();
                    unsigned limit = std::min<unsigned>(
                        n->numInputs(), formals.size());
                    for (unsigned i = 0; i < limit; ++i) {
                        const Node::PortRef &ref = n->input(i);
                        unsigned got = HwType::fromIr(
                            ref.node->outputType(ref.out)).flitBits();
                        unsigned want = formals[i]->hwType().flitBits();
                        if (got == want)
                            continue;
                        Diagnostic d;
                        d.severity = Severity::Error;
                        d.check = "W001";
                        d.task = t.get();
                        d.node = n.get();
                        d.message = fmt(
                            "argument %u is %u bits but callee %s "
                            "live-in %s is %u bits", i, got,
                            n->callee()->name().c_str(),
                            formals[i]->name().c_str(), want);
                        d.fix = "insert a width cast or fix the "
                                "live-in type";
                        out.push_back(std::move(d));
                    }
                } else if (n->kind() == NodeKind::LiveOut &&
                           n->numInputs() == 1) {
                    const Node::PortRef &ref = n->input(0);
                    unsigned got = HwType::fromIr(
                        ref.node->outputType(ref.out)).flitBits();
                    unsigned want = n->hwType().flitBits();
                    if (got == want)
                        continue;
                    Diagnostic d;
                    d.severity = Severity::Error;
                    d.check = "W001";
                    d.task = t.get();
                    d.node = n.get();
                    d.message = fmt("live-out declared %u bits but its "
                                    "producer drives %u bits", want,
                                    got);
                    d.fix = "match the live-out type to its producer";
                    out.push_back(std::move(d));
                }
            }
        }
    }
};

} // namespace

std::unique_ptr<LintCheck>
makeStructuralCheck()
{
    return std::make_unique<StructuralCheck>();
}

} // namespace muir::uir::lint
