/**
 * @file
 * R001 race.mem — static memory race detection.
 *
 * μIR's spawn interface (§3.5) makes task-level parallelism explicit:
 * a ChildCall with isSpawn() dispatches its callee asynchronously and
 * only a SyncNode joins the outstanding children. Node ids record
 * program order for side-effecting nodes (see Task::executionOrder),
 * so a single in-order walk over each task's effectful nodes models
 * which spawned subtrees are concurrently live.
 *
 * Two memory accesses race when they are concurrently live, touch the
 * same memory space with a possibly-overlapping address, and at least
 * one is a Store. Address disambiguation is deliberately cheap:
 *
 *  - accesses whose address chains root at different global arrays
 *    are disjoint;
 *  - for the same spawn site re-fired across loop iterations, accesses
 *    whose addresses are tainted by a per-iteration value (the loop
 *    control's outputs, or a live-in bound to one at the spawn site)
 *    are assumed iteration-private — the standard cilk_for contract
 *    that parallel iterations index disjoint elements.
 *
 * Everything else is reported as a Warning with fix "insert sync".
 */
#include <algorithm>
#include <array>
#include <set>

#include "support/strings.hh"
#include "uir/lint/lint.hh"

namespace muir::uir::lint
{

namespace
{

/** Sentinel for "address base could not be resolved". */
const ir::GlobalArray *const kUnknownBase =
    reinterpret_cast<const ir::GlobalArray *>(~uintptr_t(0));

/** One static memory access inside a (possibly nested) subtree. */
struct Access
{
    const Node *node = nullptr;
    const Task *owner = nullptr;
    bool store = false;
    unsigned space = 0;
    /** Resolved global base, kUnknownBase, or nullptr (no base). */
    const ir::GlobalArray *base = kUnknownBase;
    /** Address depends on a per-spawn-distinct value. */
    bool distinct = false;
};

/** The memory effects of one task subtree, from a call site's view. */
struct Footprint
{
    /** Effects ordered with the caller (complete before returning). */
    std::vector<Access> ordered;
    /** Effects of spawns not joined inside the subtree. */
    std::vector<Access> outstanding;

    std::vector<Access> all() const
    {
        std::vector<Access> v = ordered;
        v.insert(v.end(), outstanding.begin(), outstanding.end());
        return v;
    }
};

/** Per-call-site facts about one actual argument. */
struct ArgInfo
{
    bool distinct = false;
    const ir::GlobalArray *base = kUnknownBase;
};

bool
basesMayAlias(const Access &a, const Access &b)
{
    if (a.base == kUnknownBase || b.base == kUnknownBase)
        return true;
    return a.base == b.base;
}

class RaceCheck : public LintCheck
{
  public:
    const char *id() const override { return "R001"; }
    const char *name() const override { return "race.mem"; }
    const char *description() const override
    {
        return "memory races between concurrently live spawned "
               "subtrees";
    }

    void run(const Accelerator &accel,
             std::vector<Diagnostic> &out) const override
    {
        State st{accel, out, {}, {}};
        if (accel.root() != nullptr)
            footprint(st, *accel.root(), {});
    }

  private:
    struct State
    {
        const Accelerator &accel;
        std::vector<Diagnostic> &out;
        /** Tasks on the current recursion stack (cycle guard; cycles
         *  themselves are the deadlock check's business). */
        std::set<const Task *> active;
        /** Reported (nodeA, nodeB) pairs, normalized by ids. */
        std::set<std::array<unsigned, 4>> reported;
    };

    /**
     * Nodes whose value depends on a per-spawn-distinct seed: the
     * given live-ins plus the task's own loop control outputs. Two
     * forward passes approximate a fixpoint across loop back edges.
     */
    static std::set<const Node *>
    taintedNodes(const Task &task, const std::set<unsigned> &live_ins)
    {
        std::set<const Node *> tainted;
        for (const Node *li : task.liveIns())
            if (live_ins.count(li->liveIndex()))
                tainted.insert(li);
        if (task.loopControl() != nullptr)
            tainted.insert(task.loopControl());
        auto order = task.topoOrder();
        for (int pass = 0; pass < 2; ++pass) {
            for (const Node *n : order) {
                if (tainted.count(n))
                    continue;
                for (const auto &ref : n->inputs()) {
                    if (tainted.count(ref.node)) {
                        tainted.insert(n);
                        break;
                    }
                }
            }
        }
        return tainted;
    }

    /**
     * Root global of an address expression: follow data inputs
     * upward; a unique GlobalAddr ancestor resolves the base, a
     * LiveIn defers to the call site's knowledge, anything opaque
     * (loads, call results) makes the base unknown.
     */
    static const ir::GlobalArray *
    traceBase(const Node *addr,
              const std::vector<ArgInfo> &live_in_info)
    {
        std::set<const ir::GlobalArray *> bases;
        bool unknown = false;
        std::set<const Node *> seen;
        std::vector<const Node *> stack{addr};
        while (!stack.empty()) {
            const Node *n = stack.back();
            stack.pop_back();
            if (!seen.insert(n).second)
                continue;
            switch (n->kind()) {
              case NodeKind::GlobalAddr:
                bases.insert(n->global());
                break;
              case NodeKind::ConstNode:
                break;
              case NodeKind::LiveIn:
                if (n->liveIndex() < live_in_info.size()) {
                    const ir::GlobalArray *b =
                        live_in_info[n->liveIndex()].base;
                    if (b == kUnknownBase) {
                        // Non-pointer args carry no base; only treat
                        // pointer-typed live-ins as opaque.
                        if (n->irType().isPtr())
                            unknown = true;
                    } else if (b != nullptr) {
                        bases.insert(b);
                    }
                } else if (n->irType().isPtr()) {
                    unknown = true;
                }
                break;
              case NodeKind::Load:
              case NodeKind::ChildCall:
              case NodeKind::LoopControl:
                // Pointers materialized through memory, children, or
                // loop-carried slots are opaque — but integer indexes
                // routinely flow through these, so only a pointer
                // result poisons the base.
                if (n->irType().isPtr())
                    unknown = true;
                break;
              default:
                for (const auto &ref : n->inputs())
                    stack.push_back(ref.node);
                break;
            }
        }
        if (unknown || bases.size() > 1)
            return kUnknownBase;
        if (bases.size() == 1)
            return *bases.begin();
        return nullptr; // Pure offset (e.g. a constant address).
    }

    /** ArgInfo of every input of a call node, from the caller's view. */
    static std::vector<ArgInfo>
    argInfo(const Node &call, const std::set<const Node *> &tainted,
            const std::vector<ArgInfo> &caller_live_ins)
    {
        std::vector<ArgInfo> info(call.numInputs());
        for (unsigned i = 0; i < call.numInputs(); ++i) {
            const Node *producer = call.input(i).node;
            info[i].distinct = tainted.count(producer) > 0;
            info[i].base = traceBase(producer, caller_live_ins);
        }
        return info;
    }

    void reportPair(State &st, const Access &a, const Access &b,
                    const char *how) const
    {
        bool a_first =
            a.owner->id() < b.owner->id() ||
            (a.owner->id() == b.owner->id() &&
             a.node->id() <= b.node->id());
        const Access &first = a_first ? a : b;
        const Access &second = a_first ? b : a;
        std::array<unsigned, 4> key{first.owner->id(), first.node->id(),
                                    second.owner->id(),
                                    second.node->id()};
        if (!st.reported.insert(key).second)
            return;
        Diagnostic d;
        d.severity = Severity::Warning;
        d.check = "R001";
        d.task = first.owner;
        d.node = first.node;
        d.message = fmt(
            "%s %s (task %s) may race with %s %s (task %s) on space %u "
            "%s; no dominating sync",
            first.store ? "store" : "load", first.node->name().c_str(),
            first.owner->name().c_str(),
            second.store ? "store" : "load",
            second.node->name().c_str(), second.owner->name().c_str(),
            first.space, how);
        d.fix = "insert sync";
        st.out.push_back(std::move(d));
    }

    /** Conflicts between two distinct concurrently-live subtrees. */
    void crossConflicts(State &st, const std::vector<Access> &a,
                        const std::vector<Access> &b) const
    {
        for (const Access &x : a)
            for (const Access &y : b)
                if ((x.store || y.store) && x.space == y.space &&
                    basesMayAlias(x, y))
                    reportPair(st, x, y, "across sibling spawns");
    }

    /** Conflicts of one spawn site with itself across iterations. */
    void selfConflicts(State &st, const std::vector<Access> &group,
                       bool trust_distinct) const
    {
        for (size_t i = 0; i < group.size(); ++i) {
            for (size_t j = i; j < group.size(); ++j) {
                const Access &x = group[i], &y = group[j];
                if (!(x.store || y.store) || x.space != y.space ||
                    !basesMayAlias(x, y))
                    continue;
                if (trust_distinct && x.distinct && y.distinct)
                    continue; // Iteration-private indexing.
                reportPair(st, x, y, "across loop iterations");
            }
        }
    }

    /**
     * Compute the subtree footprint of task, reporting conflicts found
     * inside it. live_in_info describes the actuals at the call site.
     */
    Footprint footprint(State &st, const Task &task,
                        const std::vector<ArgInfo> &live_in_info) const
    {
        Footprint fp;
        if (!st.active.insert(&task).second)
            return fp; // Recursive cycle; deadlock check reports it.

        std::set<unsigned> tainted_live_ins;
        for (unsigned i = 0; i < live_in_info.size(); ++i)
            if (live_in_info[i].distinct)
                tainted_live_ins.insert(i);
        auto tainted = taintedNodes(task, tainted_live_ins);

        // Side-effecting nodes in program (id) order.
        std::vector<const Node *> sites;
        unsigned last_sync_id = 0;
        bool has_sync = false;
        for (const auto &n : task.nodes()) {
            switch (n->kind()) {
              case NodeKind::Load:
              case NodeKind::Store:
              case NodeKind::ChildCall:
                sites.push_back(n.get());
                break;
              case NodeKind::SyncNode:
                sites.push_back(n.get());
                has_sync = true;
                last_sync_id = std::max(last_sync_id, n->id());
                break;
              default:
                break;
            }
        }
        std::sort(sites.begin(), sites.end(),
                  [](const Node *a, const Node *b) {
                      return a->id() < b->id();
                  });

        std::vector<std::vector<Access>> outstanding;
        for (const Node *site : sites) {
            switch (site->kind()) {
              case NodeKind::SyncNode:
                // Joins every spawn dispatched so far (§3.5; mirrors
                // the executor's outstanding-set semantics).
                for (auto &group : outstanding)
                    fp.ordered.insert(fp.ordered.end(), group.begin(),
                                      group.end());
                outstanding.clear();
                break;
              case NodeKind::Load:
              case NodeKind::Store: {
                Access acc;
                acc.node = site;
                acc.owner = &task;
                acc.store = site->kind() == NodeKind::Store;
                acc.space = site->memSpace();
                unsigned addr_slot = acc.store ? 1 : 0;
                if (site->numInputs() > addr_slot)
                    acc.base = traceBase(site->input(addr_slot).node,
                                         live_in_info);
                acc.distinct =
                    site->numInputs() > addr_slot &&
                    tainted.count(site->input(addr_slot).node) > 0;
                for (const auto &group : outstanding)
                    crossConflicts(st, group, {acc});
                fp.ordered.push_back(acc);
                break;
              }
              case NodeKind::ChildCall: {
                if (site->callee() == nullptr)
                    break;
                auto info = argInfo(*site, tainted, live_in_info);
                Footprint child =
                    footprint(st, *site->callee(), info);
                // A spawn re-fires per iteration of its spawning loop;
                // without a later sync in this task, instances from
                // different iterations are concurrently live.
                bool self_concurrent =
                    task.loopControl() != nullptr &&
                    !(has_sync && last_sync_id > site->id());
                if (site->isSpawn()) {
                    std::vector<Access> group = child.all();
                    for (const auto &g : outstanding)
                        crossConflicts(st, g, group);
                    if (self_concurrent)
                        selfConflicts(st, group,
                                      /*trust_distinct=*/true);
                    outstanding.push_back(std::move(group));
                } else {
                    for (const auto &g : outstanding)
                        crossConflicts(st, g, child.all());
                    fp.ordered.insert(fp.ordered.end(),
                                      child.ordered.begin(),
                                      child.ordered.end());
                    if (!child.outstanding.empty()) {
                        if (self_concurrent)
                            selfConflicts(st, child.outstanding,
                                          /*trust_distinct=*/true);
                        outstanding.push_back(
                            std::move(child.outstanding));
                    }
                }
                break;
              }
              default:
                break;
            }
        }

        for (auto &group : outstanding)
            fp.outstanding.insert(fp.outstanding.end(), group.begin(),
                                  group.end());
        st.active.erase(&task);
        return fp;
    }
};

} // namespace

std::unique_ptr<LintCheck>
makeRaceCheck()
{
    return std::make_unique<RaceCheck>();
}

} // namespace muir::uir::lint
