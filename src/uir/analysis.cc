#include "uir/analysis.hh"

#include <algorithm>
#include <map>

#include "uir/delay_model.hh"

namespace muir::uir
{

namespace
{

/** Effective per-firing latency including a nominal memory access. */
unsigned
effectiveLatency(const Node &n)
{
    unsigned lat = nodeLatency(n);
    if (n.kind() == NodeKind::Load || n.kind() == NodeKind::Store)
        lat += 2; // Nominal on-chip access; the simulator refines this.
    if (n.kind() == NodeKind::ChildCall)
        lat += 4; // Dispatch + child pipeline head.
    return lat;
}

} // namespace

unsigned
pipelineDepthCycles(const Task &task)
{
    std::map<const Node *, unsigned> depth;
    unsigned best = 1;
    for (const Node *n : task.topoOrder()) {
        unsigned in_depth = 0;
        unsigned limit = n->numInputs();
        if (n->kind() == NodeKind::LoopControl)
            limit = 3 + n->numCarried(); // Forward edges only.
        for (unsigned i = 0; i < limit; ++i) {
            auto it = depth.find(n->input(i).node);
            if (it != depth.end())
                in_depth = std::max(in_depth, it->second);
        }
        if (n->guard().valid()) {
            auto it = depth.find(n->guard().node);
            if (it != depth.end())
                in_depth = std::max(in_depth, it->second);
        }
        unsigned d = in_depth + effectiveLatency(*n);
        depth[n] = d;
        best = std::max(best, d);
    }
    return best;
}

unsigned
recurrenceIiCycles(const Task &task)
{
    const Node *lc = task.loopControl();
    if (lc == nullptr)
        return 1;
    unsigned ii = lc->ctrlStages();

    // Longest carried chain: walk back from each next-value producer
    // toward the loop control, accumulating latency.
    for (unsigned k = 0; k < lc->numCarried(); ++k) {
        const Node::PortRef &next = lc->input(3 + lc->numCarried() + k);
        unsigned chain = 0;
        const Node *cur = next.node;
        for (unsigned steps = 0; steps < 64 && cur != nullptr; ++steps) {
            if (cur == lc)
                break;
            chain += effectiveLatency(*cur);
            // Follow the first input that is not a constant/global —
            // a heuristic spine of the recurrence.
            const Node *nxt = nullptr;
            for (const auto &ref : cur->inputs()) {
                if (ref.node->kind() == NodeKind::ConstNode ||
                    ref.node->kind() == NodeKind::GlobalAddr)
                    continue;
                nxt = ref.node;
                break;
            }
            cur = nxt;
        }
        ii = std::max(ii, chain);
    }
    return std::max(1u, ii);
}

} // namespace muir::uir
