/**
 * @file
 * Text and Graphviz renderings of μIR graphs for debugging, docs, and
 * golden tests.
 */
#pragma once

#include <string>

#include "uir/accelerator.hh"

namespace muir::uir
{

/** One-line description of a node. */
std::string printNode(const Node &node);

/** Multi-line description of one task's dataflow. */
std::string printTask(const Task &task);

/** Whole-accelerator dump: structures, then tasks in id order. */
std::string printAccelerator(const Accelerator &accel);

/** Graphviz dot of the whole accelerator (tasks as clusters). */
std::string toDot(const Accelerator &accel);

} // namespace muir::uir
