/**
 * @file
 * Static analyses over μIR task dataflows, used by μopt passes to make
 * quantitative decisions: per-task pipeline depth (critical path in
 * cycles, using the shared delay model) and iteration-interval lower
 * bounds from loop recurrences. §4 Pass 1 motivates this: "the tensor
 * block has higher latency and we require more decoupling".
 */
#pragma once

#include "uir/task.hh"

namespace muir::uir
{

/**
 * Critical-path latency of one invocation through the task's forward
 * dataflow, in cycles (node latencies from the delay model; memory
 * nodes counted at their transit latency plus a nominal access).
 */
unsigned pipelineDepthCycles(const Task &task);

/**
 * Lower bound on the task's iteration initiation interval: the loop
 * control recurrence and the longest carried-value chain (for loop
 * tasks); 1 for plain tasks.
 */
unsigned recurrenceIiCycles(const Task &task);

} // namespace muir::uir
