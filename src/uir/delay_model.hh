/**
 * @file
 * Shared hardware timing model: per-op combinational delay (in
 * fractions of a nominal clock period), per-node pipeline latency and
 * initiation interval. Used by the cycle-level simulator (event
 * latencies), the op-fusion pass (delay budget so fusion never lowers
 * the clock, §6.1), and the synthesis cost model (critical path →
 * achievable frequency).
 *
 * The baseline dataflow pays one pipeline-register/handshake cycle at
 * every node boundary (§3.3: nodes handshake via ready/valid on every
 * edge); fused nodes pay it once for the whole cluster.
 */
#pragma once

#include "uir/node.hh"

namespace muir::uir
{

/**
 * Combinational delay of one op as a fraction of the nominal clock
 * period (1.0 = a full cycle at the target frequency). Multi-cycle
 * units (FP, div) report > 1.0.
 */
double opDelayUnits(ir::Op op);

/** Pipeline latency in cycles of one node, including the handshake
 *  register at its output. Memory/child-call nodes report only their
 *  local (transit) latency — the memory system adds the rest. */
unsigned nodeLatency(const Node &node);

/** Initiation interval in cycles (how often the unit accepts). */
unsigned nodeInitiationInterval(const Node &node);

/** Total combinational delay of a fused node's micro-ops. */
double fusedDelayUnits(const Node &node);

} // namespace muir::uir
