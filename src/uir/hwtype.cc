#include "uir/hwtype.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::uir
{

HwType
HwType::scalarInt(unsigned bits)
{
    HwType t;
    t.base_ = Base::Int;
    t.bits_ = bits;
    return t;
}

HwType
HwType::scalarFloat()
{
    HwType t;
    t.base_ = Base::Float;
    t.bits_ = 32;
    return t;
}

HwType
HwType::tensor2d(unsigned rows, unsigned cols)
{
    HwType t;
    t.base_ = Base::Tensor;
    t.bits_ = 32;
    t.rows_ = rows;
    t.cols_ = cols;
    return t;
}

HwType
HwType::fromIr(const ir::Type &type)
{
    switch (type.kind()) {
      case ir::Type::Kind::Void:
        return none();
      case ir::Type::Kind::Int:
        return scalarInt(type.bits());
      case ir::Type::Kind::Float:
        return scalarFloat();
      case ir::Type::Kind::Ptr:
        return addr();
      case ir::Type::Kind::Tensor:
        return tensor2d(type.rows(), type.cols());
    }
    muir_panic("fromIr: bad type kind");
}

unsigned
HwType::words() const
{
    switch (base_) {
      case Base::None:
        return 0;
      case Base::Int:
      case Base::Float:
        return (bits_ + 31) / 32;
      case Base::Tensor:
        return rows_ * cols_;
    }
    return 0;
}

std::string
HwType::str() const
{
    switch (base_) {
      case Base::None:
        return "none";
      case Base::Int:
        return fmt("UInt<%u>", bits_);
      case Base::Float:
        return "Float32";
      case Base::Tensor:
        return fmt("Tensor2D<%ux%u>", rows_, cols_);
    }
    return "?";
}

} // namespace muir::uir
