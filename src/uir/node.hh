/**
 * @file
 * Dataflow nodes of a μIR task block (§3.3). A node intuitively
 * represents a function unit allocated to implement an operation; it
 * can be single-cycle combinational, multi-cycle internally pipelined,
 * or a non-deterministic-latency transit point (loads/stores and child
 * task calls). Connections are polymorphic 1-1 producer→consumer
 * edges; physical widths are inferred from node types at RTL time.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.hh"
#include "ir/module.hh"
#include "uir/hwtype.hh"

namespace muir::uir
{

class Task;
class Structure;

/** The structural role a node plays in the dataflow. */
enum class NodeKind
{
    /** A single operation implemented by a dedicated function unit. */
    Compute,
    /** Several fused operations sharing one unit (Pass 5, §6.1). */
    Fused,
    /** Memory transit points routed through a junction (§3.4). */
    Load, Store,
    /** Task argument entry / result exit ports. */
    LiveIn, LiveOut,
    /** A literal driven onto the dataflow. */
    ConstNode,
    /** The resolved base address of a global array. */
    GlobalAddr,
    /** Iteration sequencing + loop-carried registers (§3.5). */
    LoopControl,
    /** Invocation of a child task (variable-latency transit, §3.5). */
    ChildCall,
    /** Join point waiting for all spawned children (Cilk sync). */
    SyncNode,
};

/** @return printable kind name. */
const char *nodeKindName(NodeKind kind);

/**
 * One μIR dataflow node. Owned by its Task; edges are non-owning
 * pointers kept consistent through addInput/rewireInput.
 */
class Node
{
  public:
    /** A reference to one output port of a producer node. */
    struct PortRef
    {
        Node *node = nullptr;
        unsigned out = 0;
        bool valid() const { return node != nullptr; }
    };

    /**
     * One constituent operation of a Fused node. srcs entries >= 0
     * index earlier micro-ops; entry -(k+1) references external
     * input k of the fused node.
     */
    struct MicroOp
    {
        ir::Op op;
        std::vector<int> srcs;
        ir::Type type;
    };

    Node(unsigned id, NodeKind kind, std::string name, Task *parent)
        : id_(id), kind_(kind), name_(std::move(name)), parent_(parent)
    {
    }

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    unsigned id() const { return id_; }
    NodeKind kind() const { return kind_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    Task *parent() const { return parent_; }

    /** @name Result type @{ */
    const ir::Type &irType() const { return type_; }
    void setIrType(ir::Type t) { type_ = std::move(t); }
    HwType hwType() const { return HwType::fromIr(type_); }
    /** @} */

    /** @name Compute configuration @{ */
    ir::Op op() const { return op_; }
    void setOp(ir::Op op) { op_ = op; }
    /** @} */

    /** @name Edges @{ */
    const std::vector<PortRef> &inputs() const { return inputs_; }
    const PortRef &input(unsigned i) const;
    unsigned numInputs() const { return inputs_.size(); }
    void addInput(Node *producer, unsigned out = 0);
    /** Redirect input i to a new producer port. */
    void rewireInput(unsigned i, Node *producer, unsigned out = 0);
    /** Consumers of any output of this node. */
    const std::vector<Node *> &users() const { return users_; }
    /** @} */

    /** @name Predicated execution (§3.5 dataflow predication) @{ */
    const PortRef &guard() const { return guard_; }
    void setGuard(Node *pred_node, unsigned out = 0);
    /** @} */

    /** @name Constants / global addresses @{ */
    int64_t constInt() const { return constInt_; }
    double constFp() const { return constFp_; }
    bool constIsFloat() const { return constIsFloat_; }
    void setConstInt(int64_t v) { constInt_ = v; constIsFloat_ = false; }
    void setConstFp(double v) { constFp_ = v; constIsFloat_ = true; }
    const ir::GlobalArray *global() const { return global_; }
    void setGlobal(const ir::GlobalArray *g) { global_ = g; }
    /** @} */

    /** @name Memory nodes @{ */
    unsigned memSpace() const { return memSpace_; }
    void setMemSpace(unsigned space) { memSpace_ = space; }
    /** Words transferred per access (tensor databox width, §3.4). */
    unsigned accessWords() const;
    /** @} */

    /** @name Child-task invocation @{ */
    Task *callee() const { return callee_; }
    void setCallee(Task *t) { callee_ = t; }
    /** Spawned (asynchronous) vs called (result awaited). */
    bool isSpawn() const { return spawn_; }
    void setSpawn(bool s) { spawn_ = s; }
    /** @} */

    /** @name Live-in / live-out @{ */
    unsigned liveIndex() const { return liveIndex_; }
    void setLiveIndex(unsigned i) { liveIndex_ = i; }
    /** @} */

    /** @name LoopControl configuration @{ */
    unsigned numCarried() const { return numCarried_; }
    void setNumCarried(unsigned n) { numCarried_ = n; }
    /**
     * Pipeline stages of the loop-control recurrence. The baseline
     * dataflow is Buffer→φ→i++→cmp→br = 5 stages (§4 Pass 5); op
     * fusion re-times this to 2.
     */
    unsigned ctrlStages() const { return ctrlStages_; }
    void setCtrlStages(unsigned s) { ctrlStages_ = s; }
    /** @} */

    /** @name Fused nodes @{ */
    const std::vector<MicroOp> &microOps() const { return microOps_; }
    std::vector<MicroOp> &microOps() { return microOps_; }
    /** @} */

    /** @name Forward-dataflow shape (shared by every graph walk) @{ */
    /**
     * Number of leading inputs that are forward dataflow dependences
     * within one iteration: numInputs() for every kind except
     * LoopControl, whose carried next-value slots
     * [3+numCarried, 3+2*numCarried) are loop back edges.
     */
    unsigned numForwardInputs() const;
    /** Forward dependence count including the guard edge. */
    unsigned numForwardDeps() const
    {
        return numForwardInputs() + (guard_.valid() ? 1 : 0);
    }
    /**
     * Invoke fn on every forward-dependence producer port: the first
     * numForwardInputs() inputs, then the guard when present. This is
     * the single definition of "forward edge" used by topological
     * orders, critical-path walks, and the verifier.
     */
    template <class Fn> void forEachForwardDep(Fn &&fn) const
    {
        unsigned limit = numForwardInputs();
        for (unsigned i = 0; i < limit; ++i)
            fn(inputs_[i]);
        if (guard_.valid())
            fn(guard_);
    }
    /** @} */

    /** Number of output ports (LoopControl: 1 + carried; others 1). */
    unsigned numOutputs() const;

    /** Result type of output port i. */
    ir::Type outputType(unsigned i) const;

    /** @name Used by Task during graph surgery @{ */
    void addUser(Node *user) { users_.push_back(user); }
    void removeUser(Node *user);
    void clearInputs();
    /** @} */

  private:
    unsigned id_;
    NodeKind kind_;
    std::string name_;
    Task *parent_;
    ir::Type type_;
    ir::Op op_ = ir::Op::Add;
    std::vector<PortRef> inputs_;
    std::vector<Node *> users_;
    PortRef guard_;
    int64_t constInt_ = 0;
    double constFp_ = 0.0;
    bool constIsFloat_ = false;
    const ir::GlobalArray *global_ = nullptr;
    unsigned memSpace_ = 0;
    Task *callee_ = nullptr;
    bool spawn_ = false;
    unsigned liveIndex_ = 0;
    unsigned numCarried_ = 0;
    unsigned ctrlStages_ = 5;
    std::vector<MicroOp> microOps_;
};

} // namespace muir::uir
