#include "uir/verifier.hh"

#include <set>

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::uir
{

namespace
{

void
verifyTask(const Accelerator &accel, const Task &task,
           std::vector<std::string> &errors)
{
    auto err = [&](const std::string &msg) {
        errors.push_back(fmt("task %s: %s", task.name().c_str(),
                             msg.c_str()));
    };

    std::set<const Node *> owned;
    for (const auto &n : task.nodes())
        owned.insert(n.get());

    unsigned live_in_seen = 0, live_out_seen = 0;
    for (const auto &n : task.nodes()) {
        // Every input must come from a node of the same task.
        for (const auto &ref : n->inputs()) {
            if (!owned.count(ref.node))
                err(fmt("node %s has a cross-task input from %s",
                        n->name().c_str(), ref.node->name().c_str()));
            if (ref.out >= ref.node->numOutputs())
                err(fmt("node %s reads missing output %u of %s",
                        n->name().c_str(), ref.out,
                        ref.node->name().c_str()));
        }
        if (n->guard().valid() && !owned.count(n->guard().node))
            err(fmt("node %s has a cross-task guard", n->name().c_str()));

        switch (n->kind()) {
          case NodeKind::Compute:
            if (n->numInputs() == 0)
                err(fmt("compute node %s has no inputs",
                        n->name().c_str()));
            break;
          case NodeKind::Fused:
            if (n->microOps().empty())
                err(fmt("fused node %s has no micro-ops",
                        n->name().c_str()));
            for (const auto &mop : n->microOps())
                for (int src : mop.srcs)
                    if (src < 0 &&
                        unsigned(-src - 1) >= n->numInputs())
                        err(fmt("fused node %s micro-op reads missing "
                                "external input", n->name().c_str()));
            break;
          case NodeKind::Load:
            if (n->numInputs() != 1)
                err(fmt("load %s needs exactly 1 input (addr), has %u",
                        n->name().c_str(), n->numInputs()));
            break;
          case NodeKind::Store:
            if (n->numInputs() != 2)
                err(fmt("store %s needs (value, addr) inputs, has %u",
                        n->name().c_str(), n->numInputs()));
            break;
          case NodeKind::LiveIn:
            ++live_in_seen;
            if (n->numInputs() != 0)
                err(fmt("livein %s has inputs", n->name().c_str()));
            break;
          case NodeKind::LiveOut:
            ++live_out_seen;
            if (n->numInputs() != 1)
                err(fmt("liveout %s needs exactly 1 input",
                        n->name().c_str()));
            break;
          case NodeKind::LoopControl: {
            unsigned expect = 3 + 2 * n->numCarried();
            if (n->numInputs() != expect)
                err(fmt("loopctrl %s has %u inputs, expected %u",
                        n->name().c_str(), n->numInputs(), expect));
            if (task.loopControl() != n.get())
                err("loop control node not registered on task");
            break;
          }
          case NodeKind::ChildCall: {
            if (n->callee() == nullptr) {
                err(fmt("childcall %s has no callee", n->name().c_str()));
                break;
            }
            bool known = false;
            for (const auto &t : accel.tasks())
                if (t.get() == n->callee())
                    known = true;
            if (!known)
                err(fmt("childcall %s targets a foreign task",
                        n->name().c_str()));
            unsigned expect = n->callee()->liveIns().size();
            if (n->numInputs() != expect)
                err(fmt("childcall %s passes %u args, callee %s takes %u",
                        n->name().c_str(), n->numInputs(),
                        n->callee()->name().c_str(), expect));
            break;
          }
          case NodeKind::ConstNode:
          case NodeKind::GlobalAddr:
            if (n->numInputs() != 0)
                err(fmt("%s node %s has inputs", nodeKindName(n->kind()),
                        n->name().c_str()));
            break;
          case NodeKind::SyncNode:
            break;
        }

    }

    if (live_in_seen != task.liveIns().size())
        err("live-in list out of sync with nodes");
    if (live_out_seen != task.liveOuts().size())
        err("live-out list out of sync with nodes");

    // Acyclicity of the forward dataflow. topoOrderInto reports a
    // cycle instead of panicking, but its edge bookkeeping reads node
    // inputs by index, so only run it once arities checked out above.
    if (errors.empty()) {
        std::vector<Node *> order;
        if (!task.topoOrderInto(order))
            err("dataflow not a DAG after removing loop back edges");
    }
}

} // namespace

std::vector<std::string>
verifySpaces(const Accelerator &accel)
{
    std::vector<std::string> errors;
    // Exactly one structure may claim each space.
    std::map<unsigned, std::string> space_owner;
    for (const auto &s : accel.structures()) {
        for (unsigned space : s->spaces()) {
            auto [it, inserted] = space_owner.emplace(space, s->name());
            if (!inserted)
                errors.push_back(fmt("space %u owned by both %s and %s",
                                     space, it->second.c_str(),
                                     s->name().c_str()));
        }
    }
    // Memory nodes must resolve to a structure.
    for (const auto &t : accel.tasks()) {
        for (const auto &n : t->nodes()) {
            if (n->kind() != NodeKind::Load &&
                n->kind() != NodeKind::Store)
                continue;
            if (accel.findStructureForSpace(n->memSpace()) == nullptr)
                errors.push_back(fmt("task %s: memory node %s space %u "
                                     "unserved", t->name().c_str(),
                                     n->name().c_str(), n->memSpace()));
        }
    }
    return errors;
}

std::vector<std::string>
verifyTasks(const Accelerator &accel)
{
    std::vector<std::string> errors;
    if (accel.tasks().empty()) {
        errors.push_back("accelerator has no tasks");
        return errors;
    }
    for (const auto &t : accel.tasks())
        verifyTask(accel, *t, errors);
    return errors;
}

std::vector<std::string>
verify(const Accelerator &accel)
{
    std::vector<std::string> errors = verifySpaces(accel);
    auto task_errors = verifyTasks(accel);
    errors.insert(errors.end(), task_errors.begin(), task_errors.end());
    return errors;
}

void
verifyOrDie(const Accelerator &accel)
{
    auto errors = verify(accel);
    if (!errors.empty())
        muir_panic("μIR verification failed:\n  %s",
                   join(errors, "\n  ").c_str());
}

} // namespace muir::uir
