#include "uir/delay_model.hh"

#include <cmath>

#include "support/logging.hh"

namespace muir::uir
{

double
opDelayUnits(ir::Op op)
{
    using ir::Op;
    switch (op) {
      // Cheap logic: a fraction of a cycle, prime fusion candidates.
      case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::LShr: case Op::AShr:
      case Op::Trunc: case Op::ZExt: case Op::SExt:
      case Op::Select:
        return 0.15;
      // Integer add/sub/compare: about half a cycle at target clock.
      case Op::Add: case Op::Sub:
      case Op::ICmpEq: case Op::ICmpNe: case Op::ICmpSlt:
      case Op::ICmpSle: case Op::ICmpSgt: case Op::ICmpSge:
      case Op::GEP:
        return 0.45;
      // Integer multiply: DSP block, ~2 cycles pipelined.
      case Op::Mul:
        return 2.0;
      case Op::SDiv: case Op::SRem:
        return 12.0;
      // FP units (internally pipelined hardfloat/IP cores).
      case Op::FAdd: case Op::FSub:
        return 4.0;
      case Op::FMul:
        return 4.0;
      case Op::FDiv:
        return 12.0;
      case Op::FExp:
        return 16.0;
      case Op::FSqrt:
        return 12.0;
      case Op::FCmpOeq: case Op::FCmpOlt: case Op::FCmpOle:
      case Op::FCmpOgt: case Op::FCmpOge:
        return 1.0;
      case Op::SIToFP: case Op::FPToSI:
        return 2.0;
      // Tensor function units: reduction-tree implementations (§6.3,
      // Figure 14) — wide but shallow.
      case Op::TMul:
        return 6.0;
      case Op::TAdd: case Op::TSub:
        return 4.0;
      case Op::TRelu:
        return 1.0;
      default:
        muir_panic("opDelayUnits: %s has no delay (not a compute op)",
                   ir::opName(op));
    }
}

double
fusedDelayUnits(const Node &node)
{
    muir_assert(node.kind() == NodeKind::Fused, "not a fused node");
    double total = 0.0;
    for (const auto &mop : node.microOps())
        total += opDelayUnits(mop.op);
    return total;
}

unsigned
nodeLatency(const Node &node)
{
    switch (node.kind()) {
      case NodeKind::Compute:
        // Combinational stage(s) + the output handshake register.
        return static_cast<unsigned>(
                   std::ceil(opDelayUnits(node.op()) - 1e-9)) +
               1;
      case NodeKind::Fused:
        // One handshake for the whole cluster; the fusion pass keeps
        // the internal delay within the period budget.
        return static_cast<unsigned>(
                   std::ceil(fusedDelayUnits(node) - 1e-9)) +
               1;
      case NodeKind::Load:
      case NodeKind::Store:
        return 1; // Transit latency; the memory system adds access time.
      case NodeKind::LiveIn:
      case NodeKind::LiveOut:
        return 1; // Interface buffer.
      case NodeKind::ConstNode:
      case NodeKind::GlobalAddr:
        return 0;
      case NodeKind::LoopControl:
        return node.ctrlStages();
      case NodeKind::ChildCall:
        return 1; // Dispatch into the child's task queue.
      case NodeKind::SyncNode:
        return 1;
    }
    return 1;
}

unsigned
nodeInitiationInterval(const Node &node)
{
    switch (node.kind()) {
      case NodeKind::Compute:
        switch (node.op()) {
          case ir::Op::SDiv:
          case ir::Op::SRem:
          case ir::Op::FDiv:
          case ir::Op::FSqrt:
            return 8; // Iterative units, not fully pipelined.
          case ir::Op::FExp:
            return 4;
          default:
            return 1;
        }
      default:
        return 1;
    }
}

} // namespace muir::uir
