/**
 * @file
 * Implementations for Node, Task, and Accelerator.
 *
 * LoopControl input layout (fixed contract used across front end,
 * executor, and passes): inputs[0]=begin, [1]=end, [2]=step,
 * [3 .. 3+C) = carried initial values, [3+C .. 3+2C) = carried
 * next-iteration values (loop back edges). Outputs: out 0 = induction
 * variable, out k+1 = carried value k.
 */
#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <utility>

#include "support/logging.hh"
#include "support/strings.hh"
#include "uir/accelerator.hh"

namespace muir::uir
{

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Compute: return "compute";
      case NodeKind::Fused: return "fused";
      case NodeKind::Load: return "load";
      case NodeKind::Store: return "store";
      case NodeKind::LiveIn: return "livein";
      case NodeKind::LiveOut: return "liveout";
      case NodeKind::ConstNode: return "const";
      case NodeKind::GlobalAddr: return "globaladdr";
      case NodeKind::LoopControl: return "loopctrl";
      case NodeKind::ChildCall: return "childcall";
      case NodeKind::SyncNode: return "sync";
    }
    return "?";
}

const char *
structureKindName(StructureKind kind)
{
    switch (kind) {
      case StructureKind::Scratchpad: return "scratchpad";
      case StructureKind::Cache: return "cache";
      case StructureKind::Dram: return "dram";
    }
    return "?";
}

const char *
taskKindName(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Root: return "root";
      case TaskKind::Loop: return "loop";
      case TaskKind::Spawn: return "spawn";
      case TaskKind::Func: return "func";
    }
    return "?";
}

const Node::PortRef &
Node::input(unsigned i) const
{
    muir_assert(i < inputs_.size(), "node %s: input %u out of range",
                name_.c_str(), i);
    return inputs_[i];
}

void
Node::addInput(Node *producer, unsigned out)
{
    muir_assert(producer != nullptr, "null producer");
    muir_assert(out < producer->numOutputs(),
                "node %s: producer %s has no output %u", name_.c_str(),
                producer->name().c_str(), out);
    inputs_.push_back({producer, out});
    producer->addUser(this);
}

void
Node::rewireInput(unsigned i, Node *producer, unsigned out)
{
    muir_assert(i < inputs_.size(), "rewire: input %u out of range", i);
    inputs_[i].node->removeUser(this);
    inputs_[i] = {producer, out};
    producer->addUser(this);
}

void
Node::setGuard(Node *pred_node, unsigned out)
{
    if (guard_.valid())
        guard_.node->removeUser(this);
    guard_ = {pred_node, out};
    if (pred_node)
        pred_node->addUser(this);
}

unsigned
Node::accessWords() const
{
    muir_assert(kind_ == NodeKind::Load || kind_ == NodeKind::Store,
                "accessWords on non-memory node");
    // Stores carry the stored value's type; loads carry the result's.
    return hwType().isNone() ? 1 : hwType().words();
}

unsigned
Node::numForwardInputs() const
{
    if (kind_ == NodeKind::LoopControl)
        return 3 + numCarried_; // begin/end/step + carried inits.
    return inputs_.size();
}

unsigned
Node::numOutputs() const
{
    switch (kind_) {
      case NodeKind::LoopControl:
        return 1 + numCarried_;
      case NodeKind::ChildCall:
        if (spawn_)
            return 1; // Completion token only.
        return std::max<unsigned>(1, callee_->liveOuts().size());
      case NodeKind::Store:
      case NodeKind::LiveOut:
      case NodeKind::SyncNode:
        return 1; // Completion token.
      default:
        return 1;
    }
}

ir::Type
Node::outputType(unsigned i) const
{
    switch (kind_) {
      case NodeKind::LoopControl:
        if (i == 0)
            return type_; // Induction variable.
        muir_assert(i <= numCarried_, "loopctrl output %u out of range", i);
        {
            const PortRef &init = input(3 + (i - 1));
            return init.node->outputType(init.out);
        }
      case NodeKind::ChildCall:
        if (spawn_ || callee_->liveOuts().empty())
            return ir::Type::i1(); // Completion token.
        muir_assert(i < callee_->liveOuts().size(),
                    "childcall output %u out of range", i);
        return callee_->liveOuts()[i]->irType();
      default:
        muir_assert(i == 0, "node %s has one output", name_.c_str());
        return type_;
    }
}

void
Node::removeUser(Node *user)
{
    auto it = std::find(users_.begin(), users_.end(), user);
    muir_assert(it != users_.end(), "removeUser: %s is not a user of %s",
                user->name().c_str(), name_.c_str());
    users_.erase(it);
}

void
Node::clearInputs()
{
    for (const PortRef &ref : inputs_)
        ref.node->removeUser(this);
    inputs_.clear();
    if (guard_.valid()) {
        guard_.node->removeUser(this);
        guard_ = PortRef();
    }
}

Node *
Task::addNode(NodeKind kind, std::string name)
{
    nodes_.push_back(std::make_unique<Node>(nextNodeId_++, kind,
                                            std::move(name), this));
    Node *n = nodes_.back().get();
    if (kind == NodeKind::LoopControl) {
        muir_assert(loopControl_ == nullptr,
                    "task %s already has a loop control", name_.c_str());
        loopControl_ = n;
    }
    return n;
}

Node *
Task::addCompute(ir::Op op, ir::Type type, std::string name)
{
    Node *n = addNode(NodeKind::Compute, std::move(name));
    n->setOp(op);
    n->setIrType(std::move(type));
    return n;
}

Node *
Task::addConstInt(ir::Type type, int64_t value)
{
    Node *n = addNode(NodeKind::ConstNode, fmt("c%lld",
                                               static_cast<long long>(value)));
    n->setIrType(std::move(type));
    n->setConstInt(value);
    return n;
}

Node *
Task::addConstFp(double value)
{
    Node *n = addNode(NodeKind::ConstNode, fmt("cf%g", value));
    n->setIrType(ir::Type::f32());
    n->setConstFp(value);
    return n;
}

Node *
Task::addGlobalAddr(const ir::GlobalArray *g)
{
    Node *n = addNode(NodeKind::GlobalAddr, "addr_" + g->name());
    n->setIrType(g->type());
    n->setGlobal(g);
    return n;
}

Node *
Task::addLoad(ir::Type type, unsigned space, std::string name)
{
    Node *n = addNode(NodeKind::Load, std::move(name));
    n->setIrType(std::move(type));
    n->setMemSpace(space);
    return n;
}

Node *
Task::addStore(unsigned space, std::string name)
{
    Node *n = addNode(NodeKind::Store, std::move(name));
    n->setIrType(ir::Type::voidTy());
    n->setMemSpace(space);
    return n;
}

Node *
Task::addLiveIn(ir::Type type, std::string name)
{
    Node *n = addNode(NodeKind::LiveIn, std::move(name));
    n->setIrType(std::move(type));
    n->setLiveIndex(liveIns_.size());
    liveIns_.push_back(n);
    return n;
}

Node *
Task::addLiveOut(ir::Type type, std::string name)
{
    Node *n = addNode(NodeKind::LiveOut, std::move(name));
    n->setIrType(std::move(type));
    n->setLiveIndex(liveOuts_.size());
    liveOuts_.push_back(n);
    return n;
}

Node *
Task::addChildCall(Task *callee, bool spawn, std::string name)
{
    muir_assert(callee != nullptr, "childcall of null task");
    Node *n = addNode(NodeKind::ChildCall, std::move(name));
    n->setCallee(callee);
    n->setSpawn(spawn);
    n->setIrType(ir::Type::i1());
    return n;
}

void
Task::removeNode(Node *node)
{
    muir_assert(node->users().empty(), "removing node %s with users",
                node->name().c_str());
    node->clearInputs();
    if (loopControl_ == node)
        loopControl_ = nullptr;
    auto it = std::find_if(nodes_.begin(), nodes_.end(),
                           [&](const auto &p) { return p.get() == node; });
    muir_assert(it != nodes_.end(), "node %s not in task %s",
                node->name().c_str(), name_.c_str());
    nodes_.erase(it);
}

unsigned
Task::numEdges() const
{
    unsigned edges = 0;
    for (const auto &n : nodes_) {
        edges += n->numInputs();
        if (n->guard().valid())
            ++edges;
    }
    return edges;
}

std::vector<Task *>
Task::childTasks() const
{
    std::vector<Task *> children;
    for (const auto &n : nodes_)
        if (n->kind() == NodeKind::ChildCall)
            children.push_back(n->callee());
    return children;
}

std::vector<Node *>
Task::childCalls() const
{
    std::vector<Node *> calls;
    for (const auto &n : nodes_)
        if (n->kind() == NodeKind::ChildCall)
            calls.push_back(n.get());
    return calls;
}

std::vector<Node *>
Task::memOps() const
{
    std::vector<Node *> ops;
    for (const auto &n : nodes_)
        if (n->kind() == NodeKind::Load || n->kind() == NodeKind::Store)
            ops.push_back(n.get());
    return ops;
}

std::vector<Node *>
Task::topoOrder() const
{
    std::vector<Node *> order;
    muir_assert(topoOrderInto(order),
                "task %s dataflow has a combinational cycle "
                "(%zu of %zu ordered)",
                name_.c_str(), order.size(), nodes_.size());
    return order;
}

bool
Task::topoOrderInto(std::vector<Node *> &order) const
{
    // Kahn's algorithm with a min-id priority queue. Loop back edges
    // (the carried-next inputs of LoopControl) are excluded from the
    // dependence count. Taking the smallest ready id preserves node
    // creation order — which is program order — so side-effecting
    // nodes with no dataflow edge between them (e.g. two sequential
    // loop dispatches communicating through memory) still execute in
    // the order the program wrote them during functional replay.
    std::map<const Node *, unsigned> pending;
    auto by_id_desc = [](const Node *a, const Node *b) {
        return a->id() > b->id();
    };
    std::priority_queue<Node *, std::vector<Node *>,
                        decltype(by_id_desc)>
        ready(by_id_desc);
    for (const auto &n : nodes_) {
        unsigned deps = n->numForwardDeps();
        pending[n.get()] = deps;
        if (deps == 0)
            ready.push(n.get());
    }
    order.reserve(order.size() + nodes_.size());
    size_t ordered_before = order.size();
    while (!ready.empty()) {
        Node *n = ready.top();
        ready.pop();
        order.push_back(n);
        // users() lists one entry per edge; visit each user once.
        std::vector<Node *> unique_users;
        for (Node *user : n->users())
            if (std::find(unique_users.begin(), unique_users.end(), user) ==
                unique_users.end())
                unique_users.push_back(user);
        for (Node *user : unique_users) {
            // Does this edge count as a forward dependence for user?
            unsigned forward = 0;
            user->forEachForwardDep([&](const Node::PortRef &ref) {
                if (ref.node == n)
                    ++forward;
            });
            if (forward == 0)
                continue;
            auto it = pending.find(user);
            muir_assert(it != pending.end() && it->second >= forward,
                        "topo: bookkeeping error at %s",
                        user->name().c_str());
            it->second -= forward;
            if (it->second == 0)
                ready.push(user);
        }
    }
    return order.size() - ordered_before == nodes_.size();
}

std::vector<Node *>
Task::executionOrder() const
{
    // Depth-first post-order from every node, visiting side-effecting
    // roots in id order; dependencies are pulled in first, so the
    // result is topological and effects stay in program order.
    std::vector<Node *> order;
    order.reserve(nodes_.size());
    std::set<const Node *> visited;

    // Iterative DFS (graphs can be deep after long chains).
    auto visit = [&](Node *root) {
        if (visited.count(root))
            return;
        std::vector<std::pair<Node *, unsigned>> stack{{root, 0}};
        while (!stack.empty()) {
            auto &[n, next_dep] = stack.back();
            if (visited.count(n)) {
                stack.pop_back();
                continue;
            }
            unsigned limit = n->numForwardInputs();
            unsigned total = n->numForwardDeps();
            if (next_dep < total) {
                Node *dep = next_dep < limit
                                ? n->input(next_dep).node
                                : n->guard().node;
                ++next_dep;
                if (!visited.count(dep))
                    stack.emplace_back(dep, 0);
                continue;
            }
            visited.insert(n);
            order.push_back(n);
            stack.pop_back();
        }
    };

    std::vector<Node *> by_id;
    for (const auto &n : nodes_)
        by_id.push_back(n.get());
    std::sort(by_id.begin(), by_id.end(),
              [](const Node *a, const Node *b) {
                  return a->id() < b->id();
              });
    for (Node *n : by_id) {
        switch (n->kind()) {
          case NodeKind::Load:
          case NodeKind::Store:
          case NodeKind::ChildCall:
          case NodeKind::SyncNode:
            visit(n);
            break;
          default:
            break;
        }
    }
    for (Node *n : by_id)
        visit(n);
    muir_assert(order.size() == nodes_.size(),
                "executionOrder: %zu of %zu nodes ordered", order.size(),
                nodes_.size());
    return order;
}

Task *
Accelerator::addTask(TaskKind kind, std::string name, Task *parent)
{
    tasks_.push_back(std::make_unique<Task>(tasks_.size(), kind,
                                            std::move(name), this));
    Task *t = tasks_.back().get();
    t->setParentTask(parent);
    return t;
}

const Task *
Accelerator::root() const
{
    if (root_ != nullptr)
        return root_;
    muir_assert(!tasks_.empty(), "accelerator %s has no tasks",
                name_.c_str());
    return tasks_.front().get();
}

Task *
Accelerator::root()
{
    return const_cast<Task *>(std::as_const(*this).root());
}

const Task *
Accelerator::taskByName(const std::string &name) const
{
    for (const auto &t : tasks_)
        if (t->name() == name)
            return t.get();
    return nullptr;
}

Task *
Accelerator::taskByName(const std::string &name)
{
    return const_cast<Task *>(std::as_const(*this).taskByName(name));
}

Structure *
Accelerator::addStructure(StructureKind kind, std::string name)
{
    structures_.push_back(std::make_unique<Structure>(nextStructureId_++,
                                                      kind,
                                                      std::move(name)));
    return structures_.back().get();
}

void
Accelerator::removeStructure(Structure *s)
{
    auto it = std::find_if(structures_.begin(), structures_.end(),
                           [&](const auto &p) { return p.get() == s; });
    muir_assert(it != structures_.end(), "structure not in accelerator");
    structures_.erase(it);
}

const Structure *
Accelerator::structureByName(const std::string &name) const
{
    for (const auto &s : structures_)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

Structure *
Accelerator::structureByName(const std::string &name)
{
    return const_cast<Structure *>(
        std::as_const(*this).structureByName(name));
}

const Structure *
Accelerator::structureForSpace(unsigned space) const
{
    const Structure *fallback = nullptr;
    const Structure *match = nullptr;
    for (const auto &s : structures_) {
        if (s->kind() == StructureKind::Dram)
            continue;
        if (s->serves(space)) {
            muir_assert(match == nullptr,
                        "space %u served by two structures (%s, %s)",
                        space, match->name().c_str(), s->name().c_str());
            match = s.get();
        }
        if (s->serves(0))
            fallback = s.get();
    }
    if (match)
        return match;
    muir_assert(fallback != nullptr,
                "no structure serves space %u and no default (space-0) "
                "structure exists", space);
    return fallback;
}

Structure *
Accelerator::structureForSpace(unsigned space)
{
    return const_cast<Structure *>(
        std::as_const(*this).structureForSpace(space));
}

const Structure *
Accelerator::findStructureForSpace(unsigned space) const
{
    const Structure *fallback = nullptr;
    for (const auto &s : structures_) {
        if (s->kind() == StructureKind::Dram)
            continue;
        if (s->serves(space))
            return s.get();
        if (s->serves(0))
            fallback = s.get();
    }
    return fallback;
}

Structure *
Accelerator::findStructureForSpace(unsigned space)
{
    return const_cast<Structure *>(
        std::as_const(*this).findStructureForSpace(space));
}

unsigned
Accelerator::numNodes() const
{
    unsigned n = 0;
    for (const auto &t : tasks_)
        n += t->numNodes();
    return n;
}

unsigned
Accelerator::numEdges() const
{
    unsigned edges = 0;
    for (const auto &t : tasks_) {
        edges += t->numEdges();
        // Inter-task (<||>) connections: one per child call.
        edges += t->childCalls().size();
    }
    return edges;
}

} // namespace muir::uir
