/**
 * @file
 * Structural well-formedness checks for μIR graphs. μopt runs these
 * after every pass: latency-insensitive interfaces guarantee that any
 * graph passing these checks composes correctly (§1, Composability).
 */
#pragma once

#include <string>
#include <vector>

#include "uir/accelerator.hh"

namespace muir::uir
{

/** Verify; returns human-readable violations (empty = well-formed). */
std::vector<std::string> verify(const Accelerator &accel);

/** Per-task structural checks only (arity, edges, acyclicity). The
 *  space-ownership half lives in verifySpaces; μlint runs the two
 *  halves as separate checks with structured diagnostics. */
std::vector<std::string> verifyTasks(const Accelerator &accel);

/** Space-ownership checks only (unserved / multiply-owned spaces). */
std::vector<std::string> verifySpaces(const Accelerator &accel);

/** Verify and panic on violation. */
void verifyOrDie(const Accelerator &accel);

} // namespace muir::uir
