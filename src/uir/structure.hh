/**
 * @file
 * Hardware structures (§3.2): elements with no software representation
 * — scratchpads (DMA-managed local RAM), caches (hardware-managed,
 * coherent with DRAM over AXI), and the DRAM/AXI port itself. The
 * memory model is a partitioned global address space: scratchpad
 * spaces are incoherent with each other but coherent with DRAM.
 */
#pragma once

#include <set>
#include <string>

namespace muir::uir
{

/** What a structure is lowered to. */
enum class StructureKind { Scratchpad, Cache, Dram };

/** @return printable kind name. */
const char *structureKindName(StructureKind kind);

/**
 * One hardware structure. All parameters the μopt passes tune live
 * here: bank count (Pass 4), ports, access shape (tensorization widens
 * wideWords), and the set of memory spaces the structure serves
 * (memory localization moves spaces between structures).
 */
class Structure
{
  public:
    Structure(unsigned id, StructureKind kind, std::string name)
        : id_(id), kind_(kind), name_(std::move(name))
    {
        if (kind == StructureKind::Cache) {
            latency_ = 2;
        } else if (kind == StructureKind::Dram) {
            latency_ = 80;
        } else {
            latency_ = 1;
        }
    }

    Structure(const Structure &) = delete;
    Structure &operator=(const Structure &) = delete;

    unsigned id() const { return id_; }
    StructureKind kind() const { return kind_; }
    const std::string &name() const { return name_; }

    /** @name Banking and ports (tuned by μopt) @{ */
    unsigned banks() const { return banks_; }
    void setBanks(unsigned b) { banks_ = b; }
    unsigned portsPerBank() const { return portsPerBank_; }
    void setPortsPerBank(unsigned p) { portsPerBank_ = p; }
    /** Words a single port moves per access (wide tensor reads). */
    unsigned wideWords() const { return wideWords_; }
    void setWideWords(unsigned w) { wideWords_ = w; }
    /** @} */

    /** @name Timing @{ */
    unsigned latency() const { return latency_; }
    void setLatency(unsigned l) { latency_ = l; }
    /** @} */

    /** @name Capacity / cache geometry @{ */
    unsigned sizeKb() const { return sizeKb_; }
    void setSizeKb(unsigned kb) { sizeKb_ = kb; }
    unsigned ways() const { return ways_; }
    void setWays(unsigned w) { ways_ = w; }
    unsigned lineBytes() const { return lineBytes_; }
    void setLineBytes(unsigned b) { lineBytes_ = b; }
    /** @} */

    /** @name DRAM backing @{ */
    unsigned missLatency() const { return missLatency_; }
    void setMissLatency(unsigned l) { missLatency_ = l; }
    double bytesPerCycle() const { return bytesPerCycle_; }
    void setBytesPerCycle(double b) { bytesPerCycle_ = b; }
    /** @} */

    /** @name Memory spaces served @{ */
    const std::set<unsigned> &spaces() const { return spaces_; }
    void addSpace(unsigned space) { spaces_.insert(space); }
    void removeSpace(unsigned space) { spaces_.erase(space); }
    bool serves(unsigned space) const { return spaces_.count(space) > 0; }
    /** @} */

  private:
    unsigned id_;
    StructureKind kind_;
    std::string name_;
    unsigned banks_ = 1;
    unsigned portsPerBank_ = 1;
    unsigned wideWords_ = 1;
    unsigned latency_;
    unsigned sizeKb_ = 64;
    unsigned ways_ = 4;
    unsigned lineBytes_ = 64;
    unsigned missLatency_ = 80;
    double bytesPerCycle_ = 8.0;
    std::set<unsigned> spaces_;
};

} // namespace muir::uir
