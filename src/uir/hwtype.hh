/**
 * @file
 * Hardware-level types for μIR ports and connections. μIR edges are
 * "polymorphic" (§3.3): the designer specifies node data types and RTL
 * generation infers physical wire widths and flit sizes from them —
 * flitBits() is that inference.
 */
#pragma once

#include <string>

#include "ir/type.hh"

namespace muir::uir
{

/** The type carried by a μIR port/connection. */
class HwType
{
  public:
    enum class Base { None, Int, Float, Tensor };

    HwType() = default;

    static HwType none() { return HwType(); }
    static HwType scalarInt(unsigned bits);
    static HwType scalarFloat();
    static HwType tensor2d(unsigned rows, unsigned cols);
    /** Addresses are 64-bit integers at the hardware level. */
    static HwType addr() { return scalarInt(64); }
    /** Predicates are single wires. */
    static HwType pred() { return scalarInt(1); }

    /** Derive from a compiler-IR type (pointers become addresses). */
    static HwType fromIr(const ir::Type &type);

    Base base() const { return base_; }
    bool isNone() const { return base_ == Base::None; }
    bool isTensor() const { return base_ == Base::Tensor; }
    bool isFloat() const { return base_ == Base::Float; }
    unsigned bits() const { return bits_; }
    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }

    /** Words (32-bit) moved per token — 1 for scalars, R*C for tensors. */
    unsigned words() const;

    /** Physical wire width of a connection carrying this type. */
    unsigned flitBits() const { return words() * 32 < bits_ ? bits_
                                                            : words() * 32; }

    bool operator==(const HwType &o) const
    {
        return base_ == o.base_ && bits_ == o.bits_ && rows_ == o.rows_ &&
               cols_ == o.cols_;
    }
    bool operator!=(const HwType &o) const { return !(*this == o); }

    std::string str() const;

  private:
    Base base_ = Base::None;
    unsigned bits_ = 0;
    unsigned rows_ = 0;
    unsigned cols_ = 0;
};

} // namespace muir::uir
