#include "uir/printer.hh"

#include <sstream>

#include "support/strings.hh"

namespace muir::uir
{

std::string
printNode(const Node &node)
{
    std::ostringstream os;
    os << "%" << node.name() << " = " << nodeKindName(node.kind());
    switch (node.kind()) {
      case NodeKind::Compute:
        os << "." << ir::opName(node.op());
        break;
      case NodeKind::Fused: {
        os << "{";
        bool first = true;
        for (const auto &mop : node.microOps()) {
            os << (first ? "" : "+") << ir::opName(mop.op);
            first = false;
        }
        os << "}";
        break;
      }
      case NodeKind::Load:
      case NodeKind::Store:
        os << " @space" << node.memSpace();
        break;
      case NodeKind::ConstNode:
        if (node.constIsFloat())
            os << " " << node.constFp();
        else
            os << " " << node.constInt();
        break;
      case NodeKind::GlobalAddr:
        os << " @" << node.global()->name();
        break;
      case NodeKind::ChildCall:
        os << (node.isSpawn() ? " spawn " : " call ")
           << node.callee()->name();
        break;
      case NodeKind::LoopControl:
        os << " carried=" << node.numCarried() << " stages="
           << node.ctrlStages();
        break;
      default:
        break;
    }
    if (!node.irType().isVoid())
        os << " : " << node.hwType().str();
    if (!node.inputs().empty()) {
        os << " (";
        bool first = true;
        for (const auto &ref : node.inputs()) {
            os << (first ? "" : ", ") << "%" << ref.node->name();
            if (ref.node->numOutputs() > 1)
                os << "#" << ref.out;
            first = false;
        }
        os << ")";
    }
    if (node.guard().valid())
        os << " if %" << node.guard().node->name();
    return os.str();
}

std::string
printTask(const Task &task)
{
    std::ostringstream os;
    os << "task " << task.name() << " [" << taskKindName(task.kind())
       << "] tiles=" << task.numTiles() << " queue=" << task.queueDepth()
       << (task.decoupled() ? " decoupled" : "") << " junction=R"
       << task.junctionReadPorts() << "/W" << task.junctionWritePorts()
       << " {\n";
    for (const auto &n : task.nodes())
        os << "    " << printNode(*n) << "\n";
    os << "}\n";
    return os.str();
}

std::string
printAccelerator(const Accelerator &accel)
{
    std::ostringstream os;
    os << "accelerator " << accel.name() << "\n";
    for (const auto &s : accel.structures()) {
        os << "structure " << s->name() << " ["
           << structureKindName(s->kind()) << "] banks=" << s->banks()
           << " ports=" << s->portsPerBank() << " wide=" << s->wideWords()
           << " lat=" << s->latency();
        if (s->kind() == StructureKind::Cache)
            os << " size=" << s->sizeKb() << "KB ways=" << s->ways();
        if (!s->spaces().empty())
            os << " spaces={" << join(s->spaces(), ",") << "}";
        os << "\n";
    }
    for (const auto &t : accel.tasks())
        os << "\n" << printTask(*t);
    return os.str();
}

std::string
toDot(const Accelerator &accel)
{
    std::ostringstream os;
    os << "digraph \"" << accel.name() << "\" {\n";
    os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
    for (const auto &t : accel.tasks()) {
        os << "  subgraph cluster_" << t->id() << " {\n";
        os << "    label=\"" << t->name() << " (x" << t->numTiles()
           << ")\";\n";
        for (const auto &n : t->nodes()) {
            os << "    n" << t->id() << "_" << n->id() << " [label=\""
               << n->name() << "\\n" << nodeKindName(n->kind())
               << "\"];\n";
        }
        for (const auto &n : t->nodes()) {
            for (const auto &ref : n->inputs())
                os << "    n" << t->id() << "_" << ref.node->id()
                   << " -> n" << t->id() << "_" << n->id() << ";\n";
            if (n->guard().valid())
                os << "    n" << t->id() << "_" << n->guard().node->id()
                   << " -> n" << t->id() << "_" << n->id()
                   << " [style=dashed];\n";
        }
        os << "  }\n";
    }
    // Inter-task spawn edges.
    for (const auto &t : accel.tasks()) {
        for (const Node *call : t->childCalls()) {
            os << "  n" << t->id() << "_" << call->id() << " -> n"
               << call->callee()->id() << "_"
               << call->callee()->nodes().front()->id()
               << " [color=blue, lhead=cluster_"
               << call->callee()->id() << "];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace muir::uir
