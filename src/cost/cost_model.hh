/**
 * @file
 * Analytical synthesis cost model standing in for Quartus (Arria 10)
 * and Synopsys DC (UMC 28 nm). Component-additive: each μIR node and
 * structure contributes FPGA ALMs/registers/DSPs and ASIC area, and
 * the achievable clock comes from the worst per-stage combinational
 * delay plus the paper's observed penalties (FP macro cap, Cilk
 * task-queue logic on the critical path, routing pressure with size).
 * Calibrated to the *ranges* of Table 2; absolute numbers are
 * explicitly out of scope for this reproduction (see DESIGN.md).
 */
#pragma once

#include "support/stats.hh"
#include "uir/accelerator.hh"

namespace muir::cost
{

/** Resource/area/timing/power estimate for one accelerator. */
struct SynthesisReport
{
    /** @name FPGA (Arria 10 class) @{ */
    double fpgaMhz = 0;
    double fpgaMw = 0;
    double alms = 0;
    double regs = 0;
    unsigned dsps = 0;
    /** @} */

    /** @name ASIC (28 nm class) @{ */
    double asicGhz = 0;
    double asicMw = 0;
    /** Area in 10^-3 mm^2 (the unit of Table 2's area column). */
    double asicKum2 = 0;
    /** @} */
};

/** Per-node FPGA resource estimate. */
struct NodeCost
{
    double alms = 0;
    double regs = 0;
    unsigned dsps = 0;
    double asicUm2 = 0;
};

/** Resource estimate for a single dataflow node. */
NodeCost nodeCost(const uir::Node &node);

/** Resource estimate for a hardware structure. */
NodeCost structureCost(const uir::Structure &structure);

/**
 * Full synthesis estimate.
 * @param activity Optional utilization in [0,1] (dynamic firings per
 *        cycle per node, from simulation) scaling dynamic power.
 */
SynthesisReport synthesize(const uir::Accelerator &accel,
                           double activity = 0.3);

} // namespace muir::cost
