#include "cost/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "uir/delay_model.hh"

namespace muir::cost
{

namespace
{

/** ALM cost of one compute opcode. */
double
opAlms(ir::Op op)
{
    using ir::Op;
    switch (op) {
      case Op::And: case Op::Or: case Op::Xor:
      case Op::Trunc: case Op::ZExt: case Op::SExt:
        return 10;
      case Op::Shl: case Op::LShr: case Op::AShr:
      case Op::Select:
        return 18;
      case Op::Add: case Op::Sub: case Op::GEP:
      case Op::ICmpEq: case Op::ICmpNe: case Op::ICmpSlt:
      case Op::ICmpSle: case Op::ICmpSgt: case Op::ICmpSge:
        return 32;
      case Op::Mul:
        return 48; // Plus a DSP block.
      case Op::SDiv: case Op::SRem:
        return 420;
      case Op::FAdd: case Op::FSub:
        return 380; // Soft-logic hardfloat adder.
      case Op::FMul:
        return 160; // Plus a DSP block.
      case Op::FDiv:
        return 640;
      case Op::FExp:
        return 820; // Polynomial/table unit, logic only.
      case Op::FSqrt:
        return 540;
      case Op::FCmpOeq: case Op::FCmpOlt: case Op::FCmpOle:
      case Op::FCmpOgt: case Op::FCmpOge:
        return 70;
      case Op::SIToFP: case Op::FPToSI:
        return 90;
      case Op::TMul:
        return 260; // Reduction tree control; muls sit in DSPs.
      case Op::TAdd: case Op::TSub:
        return 220;
      case Op::TRelu:
        return 60;
      default:
        return 24;
    }
}

/** DSP blocks of one compute opcode. */
unsigned
opDsps(ir::Op op)
{
    using ir::Op;
    switch (op) {
      case Op::Mul:
      case Op::FMul:
        return 1;
      case Op::TMul:
        return 8; // Figure 14: 2x2 reduction-tree multiplier array.
      case Op::TAdd: case Op::TSub:
        return 2;
      case Op::TRelu:
        return 4; // Wide comparator lanes packed into DSPs.
      default:
        return 0;
    }
}

/** 28 nm standard-cell area factor relative to ALMs. */
constexpr double kUm2PerAlm = 7.2;
/** DSP block equivalent area. */
constexpr double kUm2PerDsp = 900.0;

} // namespace

NodeCost
nodeCost(const uir::Node &node)
{
    NodeCost c;
    unsigned flit = std::max(1u, node.hwType().flitBits());
    // Every node pays its output handshake register + valid/ready.
    double handshake_regs = flit + 2;
    double handshake_alms = 14;

    switch (node.kind()) {
      case uir::NodeKind::Compute:
        c.alms = opAlms(node.op()) + handshake_alms;
        c.dsps = opDsps(node.op());
        break;
      case uir::NodeKind::Fused: {
        // One handshake for the cluster; internal ops share routing,
        // so logic packs about 10% denser than standalone units.
        double sum = 0;
        for (const auto &mop : node.microOps()) {
            sum += opAlms(mop.op);
            c.dsps += opDsps(mop.op);
        }
        c.alms = sum * 0.9 + handshake_alms;
        break;
      }
      case uir::NodeKind::Load:
      case uir::NodeKind::Store:
        // Databox: type conversion, coalescing, shift/mask (§3.4).
        c.alms = 130 + 22.0 * node.accessWords() + handshake_alms;
        break;
      case uir::NodeKind::LoopControl:
        c.alms = 90 + 26.0 * node.numCarried() + handshake_alms;
        handshake_regs += 32.0 * (1 + node.numCarried());
        break;
      case uir::NodeKind::ChildCall:
        c.alms = 64 + handshake_alms;
        break;
      case uir::NodeKind::SyncNode:
        c.alms = 40 + handshake_alms;
        break;
      case uir::NodeKind::LiveIn:
      case uir::NodeKind::LiveOut:
        c.alms = 18 + handshake_alms;
        break;
      case uir::NodeKind::ConstNode:
      case uir::NodeKind::GlobalAddr:
        c.alms = 2;
        handshake_regs = 0;
        break;
    }
    c.regs = handshake_regs + c.alms * 0.9;
    c.asicUm2 = c.alms * kUm2PerAlm + c.dsps * kUm2PerDsp;
    return c;
}

NodeCost
structureCost(const uir::Structure &s)
{
    NodeCost c;
    switch (s.kind()) {
      case uir::StructureKind::Scratchpad:
        c.alms = 90.0 * s.banks() + 40.0 * s.banks() * s.portsPerBank() +
                 25.0 * s.wideWords();
        break;
      case uir::StructureKind::Cache:
        c.alms = 650 + 160.0 * s.banks() + 3.0 * s.sizeKb();
        break;
      case uir::StructureKind::Dram:
        c.alms = 420; // AXI port logic.
        break;
    }
    c.regs = c.alms * 1.2;
    c.asicUm2 = c.alms * kUm2PerAlm;
    return c;
}

SynthesisReport
synthesize(const uir::Accelerator &accel, double activity)
{
    SynthesisReport r;
    bool has_fp = false, has_exp = false, has_tensor = false;
    bool has_queues = false;
    double worst_stage = 0.4; // Control-path floor.

    for (const auto &task : accel.tasks()) {
        if (task->decoupled() || task->kind() == uir::TaskKind::Spawn)
            has_queues = true;
        // Task queue / dispatch logic.
        double queue_alms =
            40.0 + 18.0 * task->queueDepth() + 60.0 * task->numTiles();
        r.alms += queue_alms * (task->numTiles());
        r.regs += queue_alms;
        for (const auto &node : task->nodes()) {
            NodeCost c = nodeCost(*node);
            // Execution tiling replicates the whole datapath.
            unsigned copies = std::max(1u, task->numTiles());
            r.alms += c.alms * copies;
            r.regs += c.regs * copies;
            r.dsps += c.dsps * copies;
            r.asicKum2 += c.asicUm2 * copies / 1000.0;

            if (node->kind() == uir::NodeKind::Compute) {
                if (node->op() == ir::Op::FExp)
                    has_exp = true;
                double d = uir::opDelayUnits(node->op());
                if (d >= 3.0 && d < 12.0 && node->irType().isFloat())
                    has_fp = true;
                // Per-stage delay: internally pipelined units split
                // their delay across ceil(delay) stages.
                worst_stage = std::max(
                    worst_stage, d / std::max(1.0, std::ceil(d)));
            } else if (node->kind() == uir::NodeKind::Fused) {
                worst_stage =
                    std::max(worst_stage, uir::fusedDelayUnits(*node));
            }
            if (node->irType().isTensor())
                has_tensor = true;
        }
    }
    for (const auto &s : accel.structures()) {
        NodeCost c = structureCost(*s);
        r.alms += c.alms;
        r.regs += c.regs;
        r.asicKum2 += c.asicUm2 / 1000.0;
    }

    // --- Frequency. Base fabric limit, derated by the worst stage,
    // FP macros, Cilk queue/dispatch logic, and routing pressure.
    double fmax = 520.0 / std::max(1.0, worst_stage);
    if (has_fp)
        fmax = std::min(fmax, 415.0);
    if (has_queues)
        fmax = std::min(fmax, 320.0);
    fmax -= 2.2 * std::sqrt(r.alms / 100.0); // Routing pressure.
    r.fpgaMhz = std::max(150.0, fmax);

    double ghz = 2.5;
    if (has_exp)
        ghz = 2.0;
    else if (has_fp)
        ghz = 1.66;
    if (has_queues && !has_tensor)
        ghz = std::min(ghz, 2.5);
    r.asicGhz = ghz;

    // --- Power: static + activity-scaled dynamic.
    activity = std::clamp(activity, 0.0, 1.0);
    r.fpgaMw = 330.0 + 0.055 * r.alms + 0.022 * r.regs + 6.0 * r.dsps;
    r.fpgaMw *= (0.75 + 0.8 * activity);
    r.asicMw = 2.0 + 0.5 * r.asicKum2 * (r.asicGhz / 2.5);
    r.asicMw *= (0.6 + 1.1 * activity);
    return r;
}

} // namespace muir::cost
