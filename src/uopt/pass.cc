#include "uopt/pass.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::uopt
{

Pass *
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
    return passes_.back().get();
}

void
PassManager::run(uir::Accelerator &accel)
{
    for (const auto &pass : passes_) {
        pass->run(accel);
        if (lintEnabled_) {
            lastDiagnostics_ =
                uir::lint::Linter::standard().run(accel);
            std::vector<uir::lint::Diagnostic> failing;
            for (const auto &d : lastDiagnostics_)
                if (d.severity >= failSeverity_)
                    failing.push_back(d);
            if (!failing.empty()) {
                muir_panic("graph invalid after pass %s:\n%s",
                           pass->name().c_str(),
                           uir::lint::renderText(failing).c_str());
            }
        }
        muir_inform("µopt: %s (%llu nodes, %llu edges changed)",
                    pass->name().c_str(),
                    static_cast<unsigned long long>(
                        pass->changes().get("nodes.changed")),
                    static_cast<unsigned long long>(
                        pass->changes().get("edges.changed")));
    }
}

StatSet
PassManager::totalChanges() const
{
    StatSet total;
    for (const auto &pass : passes_)
        total.merge(pass->changes());
    return total;
}

} // namespace muir::uopt
