#include "uopt/pass.hh"

#include <chrono>

#include "support/logging.hh"
#include "support/strings.hh"

namespace muir::uopt
{

Pass *
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
    return passes_.back().get();
}

void
PassManager::run(uir::Accelerator &accel)
{
    records_.clear();
    records_.reserve(passes_.size());
    std::unique_ptr<uir::analysis::AnalysisManager> local_am;
    uir::analysis::AnalysisManager *am = analysisManager_;
    if (am != nullptr) {
        muir_assert(&am->design() == &accel,
                    "pass manager: analysis cache keyed to a "
                    "different design than the one being transformed");
    } else {
        local_am = std::make_unique<uir::analysis::AnalysisManager>(
            accel);
        am = local_am.get();
    }
    for (const auto &pass : passes_) {
        PassRecord record;
        record.name = pass->name();
        record.nodesBefore = accel.numNodes();
        record.edgesBefore = accel.numEdges();
        uint64_t nodes0 = pass->changes().get("nodes.changed");
        uint64_t edges0 = pass->changes().get("edges.changed");
        auto t0 = std::chrono::steady_clock::now();
        pass->setAnalysisContext(am);
        pass->run(accel);
        pass->setAnalysisContext(nullptr);
        am->preserveOnly(pass->preservedAnalyses());
        auto t1 = std::chrono::steady_clock::now();
        record.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        record.nodesAfter = accel.numNodes();
        record.edgesAfter = accel.numEdges();
        record.nodesChanged =
            pass->changes().get("nodes.changed") - nodes0;
        record.edgesChanged =
            pass->changes().get("edges.changed") - edges0;
        if (cycleProbe_)
            record.cyclesAfter = cycleProbe_(accel);
        records_.push_back(std::move(record));
        if (lintEnabled_) {
            lastDiagnostics_ =
                uir::lint::Linter::standard().run(accel, am);
            std::vector<uir::lint::Diagnostic> failing;
            for (const auto &d : lastDiagnostics_)
                if (d.severity >= failSeverity_)
                    failing.push_back(d);
            if (!failing.empty()) {
                muir_panic("graph invalid after pass %s:\n%s",
                           pass->name().c_str(),
                           uir::lint::renderText(failing).c_str());
            }
        }
        muir_inform("µopt: %s (%llu nodes, %llu edges changed)",
                    pass->name().c_str(),
                    static_cast<unsigned long long>(
                        pass->changes().get("nodes.changed")),
                    static_cast<unsigned long long>(
                        pass->changes().get("edges.changed")));
    }
}

StatSet
PassManager::totalChanges() const
{
    StatSet total;
    for (const auto &pass : passes_)
        total.merge(pass->changes());
    return total;
}

} // namespace muir::uopt
