/**
 * @file
 * The paper's μopt optimization passes (§4, Figure 8):
 *
 *   Pass 1  TaskQueuingPass        — decouple <||> interfaces with
 *                                    deeper task queues (§4 Pass 1)
 *   Pass 2  ExecutionTilingPass    — replicate task execution units
 *                                    (§4 Pass 2, §6.2)
 *   Pass 3  MemoryLocalizationPass — per-space local scratchpads
 *                                    (§4 Pass 3, Algorithm 2, §6.4)
 *   Pass 4  BankingPass            — scratchpad / cache banking
 *                                    (§4 Pass 4, §6.4)
 *   Pass 5  OpFusionPass           — auto-pipelining + op fusion,
 *                                    incl. loop-control re-timing
 *                                    (§4 Pass 5, §6.1, Figure 10)
 *   —       TensorWideningPass     — widen memory/databox paths to
 *                                    move whole Tensor2D operands per
 *                                    beat (§6.3)
 */
#pragma once

#include "uopt/pass.hh"

namespace muir::uopt
{

/**
 * Pass 1: decouple parent/child task interfaces with FIFO queues.
 * With depth = 0 ("auto") each task's queue is sized from analysis:
 * enough entries to cover its own pipeline depth at the parent's
 * dispatch rate — the §4 rationale that higher-latency blocks need
 * more decoupling.
 */
class TaskQueuingPass : public Pass
{
  public:
    explicit TaskQueuingPass(unsigned depth = 8) : depth_(depth) {}
    std::string name() const override { return "task-queuing"; }
    void run(uir::Accelerator &accel) override;
    /** Queue depths change backpressure, not dataflow: value ranges,
     *  footprints and the latency metrics all survive; the II/bound
     *  analyses consume queue windows and must recompute. */
    std::vector<std::string> preservedAnalyses() const override
    {
        return {"task-metrics", "value-range", "footprint"};
    }

  private:
    unsigned depth_;
};

/** Pass 2: replicate execution tiles of spawned (Cilk) task blocks. */
class ExecutionTilingPass : public Pass
{
  public:
    explicit ExecutionTilingPass(unsigned tiles = 4,
                                 bool spawn_only = true)
        : tiles_(tiles), spawnOnly_(spawn_only)
    {
    }
    std::string name() const override { return "execution-tiling"; }
    void run(uir::Accelerator &accel) override;
    /** Tile counts scale junction/queue capacity (II, bound report)
     *  but leave the dataflow graph and memory demand untouched. */
    std::vector<std::string> preservedAnalyses() const override
    {
        return {"task-metrics", "value-range", "footprint"};
    }

  private:
    unsigned tiles_;
    bool spawnOnly_;
};

/**
 * Pass 3 (Algorithm 2, analysis + transformation): group memory ops
 * by their memory space and give each streamed space a local
 * scratchpad instead of the shared L1.
 */
class MemoryLocalizationPass : public Pass
{
  public:
    /** Spaces whose backing array exceeds max_kb stay in the cache. */
    explicit MemoryLocalizationPass(unsigned max_kb = 16)
        : maxKb_(max_kb)
    {
    }
    std::string name() const override { return "memory-localization"; }
    void run(uir::Accelerator &accel) override;
    /** Moves spaces between structures: every structure-dependent
     *  analysis (footprint, II, bounds) is stale; values are not. */
    std::vector<std::string> preservedAnalyses() const override
    {
        return {"task-metrics", "value-range"};
    }

  private:
    unsigned maxKb_;
};

/** Pass 4: set the bank count of scratchpads and/or the L1 cache. */
class BankingPass : public Pass
{
  public:
    BankingPass(unsigned banks, bool bank_scratchpads = true,
                bool bank_caches = true)
        : banks_(banks), scratchpads_(bank_scratchpads),
          caches_(bank_caches)
    {
    }
    std::string name() const override { return "banking"; }
    void run(uir::Accelerator &accel) override;
    /** Bank counts change port capacity only; demand-side facts
     *  (ranges, beats, lines) stay valid. */
    std::vector<std::string> preservedAnalyses() const override
    {
        return {"task-metrics", "value-range", "footprint"};
    }

  private:
    unsigned banks_;
    bool scratchpads_;
    bool caches_;
};

/**
 * Pass 5: greedy auto-pipelining / op fusion (Figure 10). Fuses
 * single-consumer chains of compute nodes whose combined combinational
 * delay stays within the clock-period budget (so the fused design
 * never loses frequency), and re-times loop-control recurrences from
 * the baseline 5 stages (Buffer→φ→i++→cmp→br) down to fused 2.
 */
class OpFusionPass : public Pass
{
  public:
    explicit OpFusionPass(double delay_budget = 1.0,
                          unsigned fused_ctrl_stages = 2)
        : budget_(delay_budget), ctrlStages_(fused_ctrl_stages)
    {
    }
    std::string name() const override { return "op-fusion"; }
    void run(uir::Accelerator &accel) override;

  private:
    double budget_;
    unsigned ctrlStages_;
};

/**
 * Tensor higher-order ops enablement (§6.3): widens the databox and
 * memory structures serving Tensor2D spaces so a whole tile moves per
 * beat, and widens the junctions of tensor tasks.
 */
class TensorWideningPass : public Pass
{
  public:
    std::string name() const override { return "tensor-widening"; }
    void run(uir::Accelerator &accel) override;
    /** Widening reshapes structures and junction widths: beats and
     *  timing change, but node values and latency metrics do not. */
    std::vector<std::string> preservedAnalyses() const override
    {
        return {"task-metrics", "value-range"};
    }
};

} // namespace muir::uopt
