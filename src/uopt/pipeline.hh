/**
 * @file
 * Textual pass-pipeline specs: the `queue:4,tile:2,fusion` syntax
 * muirc always accepted, factored out so every driver that replays a
 * pipeline — muirc, the μscope bench gate, future tools — parses the
 * same language and stays in sync with the pass catalog. Specs are
 * comma-separated pass names with an optional `:<arg>` parameter:
 *
 *   queue[:depth] tile[:n] localize[:maxkb] bank[:n]
 *   fusion[:budget_x100] tensor
 */
#pragma once

#include <string>

#include "uopt/passes.hh"

namespace muir::uopt
{

/**
 * Append the passes of @p spec to @p pm. Arguments must be positive
 * integers; unknown names, malformed args, and empty components are
 * rejected.
 * @return false with a one-line diagnostic in @p error (when set).
 */
bool buildPipeline(PassManager &pm, const std::string &spec,
                   std::string *error = nullptr);

} // namespace muir::uopt
