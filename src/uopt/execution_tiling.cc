#include "uopt/passes.hh"

namespace muir::uopt
{

void
ExecutionTilingPass::run(uir::Accelerator &accel)
{
    changes_ = StatSet();
    for (const auto &task : accel.tasks()) {
        bool eligible = task->kind() == uir::TaskKind::Spawn ||
                        (!spawnOnly_ &&
                         task->kind() == uir::TaskKind::Loop);
        if (!eligible || task->numTiles() >= tiles_)
            continue;
        // Replicating a task block replicates the whole block —
        // including the nested-loop tasks enclosed in it (§3.5: each
        // nested loop is encapsulated within the block it serves).
        std::vector<uir::Task *> subtree{task.get()};
        for (size_t i = 0; i < subtree.size(); ++i)
            for (uir::Task *child : subtree[i]->childTasks())
                subtree.push_back(child);
        for (uir::Task *t : subtree) {
            if (t->numTiles() >= tiles_)
                continue;
            t->setNumTiles(tiles_);
            // Keep the feeding queue at least as deep as the tile
            // count so the dispatcher can keep every tile busy.
            if (t->queueDepth() < tiles_)
                t->setQueueDepth(tiles_);
        }
        // Replicating the block: one node (the task block) changes,
        // plus the dispatch crossbar edges (task in, result out,
        // memory request/response), as in Table 4's "Execution Tile
        // 1 to 2" column.
        notedNodes(1);
        notedEdges(4);
        changes_.inc("tasks.tiled");
    }
}

} // namespace muir::uopt
