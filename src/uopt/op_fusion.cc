#include <algorithm>
#include <set>

#include "support/logging.hh"
#include "uir/delay_model.hh"
#include "uopt/passes.hh"

namespace muir::uopt
{

namespace
{

/** Ops worth fusing: cheap, fully pipelined compute. */
bool
fusibleOp(ir::Op op)
{
    if (!ir::isComputeOp(op))
        return false;
    switch (op) {
      // Iterative / long-latency units keep their own stations.
      case ir::Op::SDiv: case ir::Op::SRem: case ir::Op::FDiv:
      case ir::Op::FExp: case ir::Op::FSqrt:
        return false;
      default:
        return true;
    }
}

/** Unique users of a node (users() has one entry per edge). */
std::vector<uir::Node *>
uniqueUsers(const uir::Node &node)
{
    std::vector<uir::Node *> out;
    for (uir::Node *u : node.users())
        if (std::find(out.begin(), out.end(), u) == out.end())
            out.push_back(u);
    return out;
}

} // namespace

void
OpFusionPass::run(uir::Accelerator &accel)
{
    changes_ = StatSet();
    for (const auto &task : accel.tasks()) {
        // --- Loop-control re-timing: fuse Buffer→φ→i++→cmp→br into a
        // two-stage recurrence (§4 Pass 5).
        if (uir::Node *lc = task->loopControl()) {
            if (lc->ctrlStages() > ctrlStages_) {
                lc->setCtrlStages(ctrlStages_);
                notedNodes(1);
                changes_.inc("loops.retimed");
            }
        }

        // --- Pipeline balancing: duplicate cheap multi-consumer ops
        // so each consumer owns a private copy that can fuse into its
        // chain (recomputing a sub-cycle op is cheaper than routing
        // it). This is the "auto balance" half of §6.1.
        {
            std::vector<uir::Node *> snapshot;
            for (const auto &n : task->nodes())
                snapshot.push_back(n.get());
            for (uir::Node *n : snapshot) {
                if (n->kind() != uir::NodeKind::Compute ||
                    !fusibleOp(n->op()) ||
                    uir::opDelayUnits(n->op()) > 0.5)
                    continue;
                auto users = uniqueUsers(*n);
                if (users.size() < 2 || users.size() > 4)
                    continue;
                // Keep the original for the first user; clone for the
                // rest.
                for (size_t u = 1; u < users.size(); ++u) {
                    uir::Node *copy = task->addCompute(
                        n->op(), n->irType(),
                        n->name() + "_dup" + std::to_string(u));
                    for (const auto &ref : n->inputs())
                        copy->addInput(ref.node, ref.out);
                    uir::Node *user = users[u];
                    for (unsigned i = 0; i < user->numInputs(); ++i)
                        if (user->input(i).node == n)
                            user->rewireInput(i, copy, 0);
                    if (user->guard().valid() &&
                        user->guard().node == n)
                        user->setGuard(copy, 0);
                    notedNodes(1);
                    notedEdges(1 + n->numInputs());
                    changes_.inc("ops.duplicated");
                }
            }
        }

        // --- Greedy chain fusion over the dataflow (Figure 10).
        std::set<const uir::Node *> consumed;
        // Snapshot: fusion mutates the node list.
        std::vector<uir::Node *> order = task->topoOrder();
        for (uir::Node *head : order) {
            if (consumed.count(head))
                continue;
            if (head->kind() != uir::NodeKind::Compute ||
                !fusibleOp(head->op()))
                continue;
            double delay = uir::opDelayUnits(head->op());
            if (delay > budget_)
                continue;

            std::vector<uir::Node *> chain{head};
            uir::Node *cur = head;
            while (true) {
                auto users = uniqueUsers(*cur);
                if (users.size() != 1)
                    break;
                uir::Node *next = users[0];
                if (next->parent() != task.get() ||
                    next->kind() != uir::NodeKind::Compute ||
                    !fusibleOp(next->op()) || consumed.count(next))
                    break;
                // Never fuse across a guard edge: the predicate must
                // stay observable by the guarded node.
                if (next->guard().valid() && next->guard().node == cur)
                    break;
                double d = uir::opDelayUnits(next->op());
                if (delay + d > budget_)
                    break;
                delay += d;
                chain.push_back(next);
                cur = next;
            }
            if (chain.size() < 2)
                continue;

            // Build the fused node.
            uir::Node *fused = task->addNode(uir::NodeKind::Fused,
                                             "fuse_" + head->name());
            fused->setIrType(chain.back()->irType());
            std::vector<uir::Node::PortRef> ext;
            auto extIndex = [&](const uir::Node::PortRef &ref) {
                for (size_t k = 0; k < ext.size(); ++k)
                    if (ext[k].node == ref.node && ext[k].out == ref.out)
                        return int(k);
                ext.push_back(ref);
                return int(ext.size() - 1);
            };
            auto chainIndex = [&](const uir::Node *n) {
                for (size_t k = 0; k < chain.size(); ++k)
                    if (chain[k] == n)
                        return int(k);
                return -1;
            };
            unsigned internal_edges = 0;
            for (uir::Node *member : chain) {
                muir_assert(!member->guard().valid(),
                            "fusing a guarded compute node");
                uir::Node::MicroOp mop;
                mop.op = member->op();
                mop.type = member->irType();
                for (const auto &ref : member->inputs()) {
                    int ci = chainIndex(ref.node);
                    if (ci >= 0) {
                        mop.srcs.push_back(ci);
                        ++internal_edges;
                    } else {
                        mop.srcs.push_back(-(extIndex(ref) + 1));
                    }
                }
                fused->microOps().push_back(std::move(mop));
            }
            for (const auto &ref : ext)
                fused->addInput(ref.node, ref.out);

            // Rewire consumers of the chain sink to the fused node.
            uir::Node *sink = chain.back();
            unsigned rewired = 0;
            std::vector<uir::Node *> sink_users = uniqueUsers(*sink);
            for (uir::Node *user : sink_users) {
                for (unsigned i = 0; i < user->numInputs(); ++i) {
                    if (user->input(i).node == sink) {
                        user->rewireInput(i, fused, 0);
                        ++rewired;
                    }
                }
                if (user->guard().valid() && user->guard().node == sink) {
                    user->setGuard(fused, 0);
                    ++rewired;
                }
            }
            // Remove the dead chain, sink first.
            for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
                consumed.insert(*it);
                task->removeNode(*it);
            }
            consumed.insert(fused);

            notedNodes(chain.size() + 1);
            notedEdges(internal_edges + rewired + ext.size());
            changes_.inc("chains.fused");
            changes_.inc("ops.fused", chain.size());
        }
    }
}

void
TensorWideningPass::run(uir::Accelerator &accel)
{
    changes_ = StatSet();
    // Widen every structure serving a space accessed with tensor-wide
    // memory operations, so a tile moves in one beat (§6.3: "operand
    // networks are all widened to implicitly transfer all the elements
    // of the Tensor2D at one time").
    std::map<uir::Structure *, unsigned> widest;
    std::map<uir::Task *, unsigned> tensor_tasks;
    for (const auto &task : accel.tasks()) {
        for (uir::Node *op : task->memOps()) {
            unsigned words = op->accessWords();
            if (words <= 1)
                continue;
            uir::Structure *s = accel.structureForSpace(op->memSpace());
            widest[s] = std::max(widest[s], words);
            tensor_tasks[task.get()] =
                std::max(tensor_tasks[task.get()], words);
        }
    }
    for (auto &[s, words] : widest) {
        if (s->wideWords() >= words)
            continue;
        s->setWideWords(words);
        notedNodes(1); // The databox/RAM macro is re-shaped.
        notedEdges(2); // Request/response paths widen.
        changes_.inc("structures.widened");
    }
    // Tensor task junctions grow extra ports so wide loads of several
    // operand tiles can issue in the same cycle.
    for (auto &[task, words] : tensor_tasks) {
        (void)words;
        if (task->junctionReadPorts() >= 4)
            continue;
        task->setJunctionPorts(4, 2);
        notedEdges(3);
        changes_.inc("junctions.widened");
    }
}

} // namespace muir::uopt
