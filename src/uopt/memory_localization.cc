#include <map>
#include <vector>

#include "ir/analysis/memory_objects.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "uopt/passes.hh"

namespace muir::uopt
{

void
MemoryLocalizationPass::run(uir::Accelerator &accel)
{
    changes_ = StatSet();

    // --- Analysis (Algorithm 2, getMemoryAccess): group memory ops by
    // the memory space the points-to analysis assigned them.
    std::map<unsigned, std::vector<uir::Node *>> groups;
    for (const auto &task : accel.tasks())
        for (uir::Node *op : task->memOps())
            groups[op->memSpace()].push_back(op);

    const ir::Module *module = accel.source();
    muir_assert(module != nullptr, "localization needs source module");

    // --- Transformation (Algorithm 2, scratchpadBanking first half):
    // create one scratchpad per localizable space and re-route its
    // memory ops (op.connect(Mem)) by claiming the space.
    // Snapshot initial ownership: the shared-scratchpad split must be
    // decided before this loop starts mutating space assignments.
    std::map<unsigned, uir::Structure *> initial_owner;
    std::map<const uir::Structure *, size_t> initial_width;
    for (auto &[space, ops] : groups) {
        if (space == ir::kGlobalSpace)
            continue;
        uir::Structure *owner = accel.structureForSpace(space);
        initial_owner[space] = owner;
        initial_width[owner] = owner->spaces().size();
    }

    std::vector<uir::Structure *> drained;
    for (auto &[space, ops] : groups) {
        if (space == ir::kGlobalSpace)
            continue; // Unresolved pointers stay behind the cache.
        uir::Structure *current = initial_owner.at(space);
        // A space already alone in its own scratchpad is localized; a
        // space sharing a scratchpad with others (the Cilk baseline's
        // spad_shared) is split out, relieving port contention.
        if (current->kind() == uir::StructureKind::Scratchpad &&
            initial_width.at(current) <= 1)
            continue;

        // Find the backing array to size the scratchpad.
        const ir::GlobalArray *array = nullptr;
        for (const auto &g : module->globals())
            if (g->spaceId() == space)
                array = g.get();
        muir_assert(array != nullptr, "space %u has no backing global",
                    space);
        unsigned kb = static_cast<unsigned>(
            (array->sizeBytes() + 1023) / 1024);
        if (kb > maxKb_) {
            changes_.inc("spaces.kept_in_cache");
            continue;
        }

        uir::Structure *spad = accel.addStructure(
            uir::StructureKind::Scratchpad, "spad_" + array->name());
        spad->setSizeKb(std::max(1u, kb));
        spad->setLatency(1);
        spad->setPortsPerBank(1);
        spad->addSpace(space);
        if (current->kind() == uir::StructureKind::Scratchpad) {
            current->removeSpace(space);
            if (current->spaces().empty())
                drained.push_back(current);
        }

        // Structure node added; every memory op in the group re-routes
        // over the new junction connection.
        notedNodes(1);
        notedEdges(ops.size());
        changes_.inc("scratchpads.created");
        changes_.inc("memops.rerouted", ops.size());
    }
    for (uir::Structure *s : drained) {
        accel.removeStructure(s);
        notedNodes(1);
        changes_.inc("scratchpads.removed");
    }
}

} // namespace muir::uopt
