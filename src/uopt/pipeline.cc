#include "uopt/pipeline.hh"

#include <cerrno>
#include <cstdlib>
#include <memory>
#include <vector>

#include "uopt/passes.hh"

namespace muir::uopt
{

namespace
{

std::vector<std::string>
splitSpec(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (true) {
        size_t next = text.find(sep, pos);
        if (next == std::string::npos) {
            parts.push_back(text.substr(pos));
            return parts;
        }
        parts.push_back(text.substr(pos, next - pos));
        pos = next + 1;
    }
}

bool
parsePositive(const std::string &text, unsigned &out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0' || v == 0 ||
        v > 1u << 20)
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

bool
addPass(PassManager &pm, const std::string &spec, std::string *error)
{
    auto parts = splitSpec(spec, ':');
    const std::string &name = parts[0];
    long arg = -1;
    if (parts.size() > 1) {
        unsigned v = 0;
        if (parts.size() > 2 || !parsePositive(parts[1], v))
            return fail(error, "pass '" + name + "': '" +
                                   spec.substr(name.size() + 1) +
                                   "' is not a positive integer");
        arg = static_cast<long>(v);
    }
    if (name == "queue") {
        pm.add(std::make_unique<TaskQueuingPass>(
            arg > 0 ? unsigned(arg) : 8));
    } else if (name == "tile") {
        pm.add(std::make_unique<ExecutionTilingPass>(
            arg > 0 ? unsigned(arg) : 4));
    } else if (name == "localize") {
        pm.add(std::make_unique<MemoryLocalizationPass>(
            arg > 0 ? unsigned(arg) : 16));
    } else if (name == "bank") {
        pm.add(std::make_unique<BankingPass>(arg > 0 ? unsigned(arg)
                                                     : 4));
    } else if (name == "fusion") {
        pm.add(std::make_unique<OpFusionPass>(arg > 0 ? arg / 100.0
                                                      : 1.0));
    } else if (name == "tensor") {
        pm.add(std::make_unique<TensorWideningPass>());
    } else {
        return fail(error, "unknown pass '" + name +
                               "' (valid: queue, tile, localize, "
                               "bank, fusion, tensor)");
    }
    return true;
}

} // namespace

bool
buildPipeline(PassManager &pm, const std::string &spec,
              std::string *error)
{
    if (spec.empty())
        return true;
    for (const auto &part : splitSpec(spec, ','))
        if (!addPass(pm, part, error))
            return false;
    return true;
}

} // namespace muir::uopt
