#include "uopt/passes.hh"

namespace muir::uopt
{

void
BankingPass::run(uir::Accelerator &accel)
{
    changes_ = StatSet();
    for (const auto &s : accel.structures()) {
        bool eligible =
            (s->kind() == uir::StructureKind::Scratchpad &&
             scratchpads_) ||
            (s->kind() == uir::StructureKind::Cache && caches_);
        if (!eligible || s->banks() == banks_)
            continue;
        unsigned before = s->banks();
        s->setBanks(banks_);
        // Each added bank is a RAM macro plus its routing into the
        // junction tree (request + response edges).
        if (banks_ > before) {
            notedNodes(banks_ - before);
            notedEdges(2 * (banks_ - before));
        } else {
            notedNodes(before - banks_);
            notedEdges(2 * (before - banks_));
        }
        changes_.inc("structures.rebanked");
    }
}

} // namespace muir::uopt
