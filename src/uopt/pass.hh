/**
 * @file
 * The μopt pass framework (§4): microarchitecture optimizations are
 * iterative transformations of the μIR graph. Passes record how many
 * graph nodes/edges they touched — the conciseness metric Table 4
 * compares against FIRRTL-level rewrites.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/stats.hh"
#include "uir/accelerator.hh"

namespace muir::uopt
{

/** Base class of all μopt passes. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Short pass name, e.g. "op-fusion". */
    virtual std::string name() const = 0;

    /** Transform the accelerator graph in place. */
    virtual void run(uir::Accelerator &accel) = 0;

    /**
     * Change counters recorded by the last run: at least
     * "nodes.changed" and "edges.changed" (Table 4's ΔNode/ΔEdge),
     * plus pass-specific counters.
     */
    const StatSet &changes() const { return changes_; }

  protected:
    /** Record graph-surgery activity. */
    void notedNodes(uint64_t n) { changes_.inc("nodes.changed", n); }
    void notedEdges(uint64_t n) { changes_.inc("edges.changed", n); }

    StatSet changes_;
};

/**
 * Runs a pass pipeline, verifying the graph after every pass — the
 * latency-insensitive composition guarantee (§1) means a verified
 * graph stays functionally correct under any pass order.
 */
class PassManager
{
  public:
    /** Append a pass; returns it for configuration chaining. */
    Pass *add(std::unique_ptr<Pass> pass);

    /** Run all passes in order. Panics if verification fails. */
    void run(uir::Accelerator &accel);

    const std::vector<std::unique_ptr<Pass>> &passes() const
    {
        return passes_;
    }

    /** Aggregate change stats across all passes. */
    StatSet totalChanges() const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace muir::uopt
