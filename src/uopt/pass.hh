/**
 * @file
 * The μopt pass framework (§4): microarchitecture optimizations are
 * iterative transformations of the μIR graph. Passes record how many
 * graph nodes/edges they touched — the conciseness metric Table 4
 * compares against FIRRTL-level rewrites.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/stats.hh"
#include "uir/accelerator.hh"
#include "uir/lint/lint.hh"

namespace muir::uopt
{

/** Base class of all μopt passes. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Short pass name, e.g. "op-fusion". */
    virtual std::string name() const = 0;

    /** Transform the accelerator graph in place. */
    virtual void run(uir::Accelerator &accel) = 0;

    /**
     * Change counters recorded by the last run: at least
     * "nodes.changed" and "edges.changed" (Table 4's ΔNode/ΔEdge),
     * plus pass-specific counters.
     */
    const StatSet &changes() const { return changes_; }

  protected:
    /** Record graph-surgery activity. */
    void notedNodes(uint64_t n) { changes_.inc("nodes.changed", n); }
    void notedEdges(uint64_t n) { changes_.inc("edges.changed", n); }

    StatSet changes_;
};

/**
 * Runs a pass pipeline, linting the graph after every pass — the
 * latency-insensitive composition guarantee (§1) means a verified
 * graph stays functionally correct under any pass order. μlint's
 * structural checks subsume the old panic-on-error verifier; its
 * behavioural checks (races, deadlock, port pressure) surface as
 * warnings that a caller may escalate via setFailSeverity.
 */
class PassManager
{
  public:
    /** Append a pass; returns it for configuration chaining. */
    Pass *add(std::unique_ptr<Pass> pass);

    /**
     * Run all passes in order. Panics when the post-pass lint finds
     * a diagnostic at or above the failure severity.
     */
    void run(uir::Accelerator &accel);

    const std::vector<std::unique_ptr<Pass>> &passes() const
    {
        return passes_;
    }

    /** Aggregate change stats across all passes. */
    StatSet totalChanges() const;

    /** @name Post-pass lint policy @{ */
    /** Skip the per-pass lint entirely (not recommended). */
    void setLintEnabled(bool enabled) { lintEnabled_ = enabled; }
    /** Severity that aborts the pipeline; default Error. */
    void setFailSeverity(uir::lint::Severity severity)
    {
        failSeverity_ = severity;
    }
    /** Diagnostics from the most recent post-pass lint. */
    const std::vector<uir::lint::Diagnostic> &lastDiagnostics() const
    {
        return lastDiagnostics_;
    }
    /** @} */

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    bool lintEnabled_ = true;
    uir::lint::Severity failSeverity_ = uir::lint::Severity::Error;
    std::vector<uir::lint::Diagnostic> lastDiagnostics_;
};

} // namespace muir::uopt
