/**
 * @file
 * The μopt pass framework (§4): microarchitecture optimizations are
 * iterative transformations of the μIR graph. Passes record how many
 * graph nodes/edges they touched — the conciseness metric Table 4
 * compares against FIRRTL-level rewrites.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/stats.hh"
#include "uir/accelerator.hh"
#include "uir/analysis/manager.hh"
#include "uir/lint/lint.hh"

namespace muir::uopt
{

/** Sentinel for "no cycle probe installed". */
inline constexpr uint64_t kNoCycles = ~uint64_t(0);

/**
 * What one pass did to the graph, recorded by PassManager for the
 * μprof run report: wall time, graph size before/after (ΔNode/ΔEdge
 * at the whole-graph level), the pass's own change counters, and —
 * when a cycle probe is installed — simulated cycles after the pass,
 * so a report can show which pass bought which speedup.
 */
struct PassRecord
{
    std::string name;
    double wallMs = 0.0;
    unsigned nodesBefore = 0;
    unsigned nodesAfter = 0;
    unsigned edgesBefore = 0;
    unsigned edgesAfter = 0;
    uint64_t nodesChanged = 0;
    uint64_t edgesChanged = 0;
    /** Cycles of a probe run after this pass (kNoCycles if unprobed). */
    uint64_t cyclesAfter = kNoCycles;
};

/** Base class of all μopt passes. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Short pass name, e.g. "op-fusion". */
    virtual std::string name() const = 0;

    /** Transform the accelerator graph in place. */
    virtual void run(uir::Accelerator &accel) = 0;

    /**
     * Analysis ids (uir/analysis/) this pass keeps valid: results the
     * transformation provably does not change. PassManager drops
     * everything else from its cache after the pass runs. Return a
     * single uir::analysis::kPreserveAll entry for a pure analysis
     * pass. Default: preserves nothing.
     */
    virtual std::vector<std::string> preservedAnalyses() const
    {
        return {};
    }

    /**
     * The analysis cache for the design currently being transformed,
     * installed by PassManager around run(); null when the pass runs
     * standalone. Passes may consult it instead of recomputing
     * analyses from scratch (e.g. task-queuing's auto depth).
     */
    void setAnalysisContext(uir::analysis::AnalysisManager *am)
    {
        am_ = am;
    }

    /**
     * Change counters recorded by the last run: at least
     * "nodes.changed" and "edges.changed" (Table 4's ΔNode/ΔEdge),
     * plus pass-specific counters.
     */
    const StatSet &changes() const { return changes_; }

  protected:
    /** Record graph-surgery activity. */
    void notedNodes(uint64_t n) { changes_.inc("nodes.changed", n); }
    void notedEdges(uint64_t n) { changes_.inc("edges.changed", n); }

    StatSet changes_;
    uir::analysis::AnalysisManager *am_ = nullptr;
};

/**
 * Runs a pass pipeline, linting the graph after every pass — the
 * latency-insensitive composition guarantee (§1) means a verified
 * graph stays functionally correct under any pass order. μlint's
 * structural checks subsume the old panic-on-error verifier; its
 * behavioural checks (races, deadlock, port pressure) surface as
 * warnings that a caller may escalate via setFailSeverity.
 */
class PassManager
{
  public:
    /** Append a pass; returns it for configuration chaining. */
    Pass *add(std::unique_ptr<Pass> pass);

    /**
     * Run all passes in order. Panics when the post-pass lint finds
     * a diagnostic at or above the failure severity.
     */
    void run(uir::Accelerator &accel);

    const std::vector<std::unique_ptr<Pass>> &passes() const
    {
        return passes_;
    }

    /** Aggregate change stats across all passes. */
    StatSet totalChanges() const;

    /** @name μprof pass instrumentation @{ */
    /**
     * Install a probe that simulates the accelerator and returns its
     * cycle count; when set, run() invokes it after every pass and
     * stores the result in PassRecord::cyclesAfter.
     */
    void setCycleProbe(
        std::function<uint64_t(const uir::Accelerator &)> probe)
    {
        cycleProbe_ = std::move(probe);
    }
    /** One record per pass executed by the most recent run(). */
    const std::vector<PassRecord> &records() const { return records_; }
    /** @} */

    /** @name Analysis cache plumbing @{ */
    /**
     * Share an external analysis cache (keyed to the accelerator the
     * pipeline will run on). run() then consults each pass's
     * preservedAnalyses() and drops stale results from this manager
     * after the pass, so callers holding the manager keep only valid
     * results. Without one, run() maintains a private cache with the
     * same invalidation discipline.
     */
    void setAnalysisManager(uir::analysis::AnalysisManager *am)
    {
        analysisManager_ = am;
    }
    /** @} */

    /** @name Post-pass lint policy @{ */
    /** Skip the per-pass lint entirely (not recommended). */
    void setLintEnabled(bool enabled) { lintEnabled_ = enabled; }
    /** Severity that aborts the pipeline; default Error. */
    void setFailSeverity(uir::lint::Severity severity)
    {
        failSeverity_ = severity;
    }
    /** Diagnostics from the most recent post-pass lint. */
    const std::vector<uir::lint::Diagnostic> &lastDiagnostics() const
    {
        return lastDiagnostics_;
    }
    /** @} */

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    uir::analysis::AnalysisManager *analysisManager_ = nullptr;
    std::vector<PassRecord> records_;
    std::function<uint64_t(const uir::Accelerator &)> cycleProbe_;
    bool lintEnabled_ = true;
    uir::lint::Severity failSeverity_ = uir::lint::Severity::Error;
    std::vector<uir::lint::Diagnostic> lastDiagnostics_;
};

} // namespace muir::uopt
